"""Shared helpers for the benchmark/experiment harness.

Each bench regenerates one experiment row of DESIGN.md: it rebuilds the
paper artifact (figure dag / boxed claim), verifies the claim, renders
the reproduced rows/series with :mod:`repro.analysis.reporting`, and
writes them to ``benchmarks/out/<experiment>.txt`` (also echoed to
stdout, visible with ``pytest -s``).  pytest-benchmark times the
representative kernel of each experiment.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_report(experiment: str, text: str) -> None:
    """Persist (and echo) one experiment's regenerated artifact."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {experiment} ===\n{text}")


def policy_table(dag, schedule, clients=8, seed=0):
    """The standard IC-OPT-vs-baselines simulation table used by
    several experiments."""
    from repro.analysis import render_table
    from repro.sim import compare_policies

    cmp = compare_policies(dag, schedule, clients=clients, seed=seed)
    n = clients if isinstance(clients, int) else len(clients)
    return render_table(
        ["policy", "makespan", "starvation", "idle", "util",
         "headroom", "seed"],
        cmp.table_rows(),
        title=f"{dag.name}: {n} clients",
    )
