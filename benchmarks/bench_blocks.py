"""E-F1 — Fig. 1: the Vee and Lambda building blocks.

Regenerates: the two blocks, their duality, their IC-optimal schedules
and eligibility profiles; times the exhaustive optimality verification.
"""

from repro.analysis import render_series, render_table
from repro.blocks import block
from repro.core import dual_dag, is_ic_optimal, max_eligibility_profile

from _harness import write_report


def test_fig1_blocks(benchmark):
    v, sv = block("V")
    lam, sl = block("Λ")

    def verify():
        return (
            is_ic_optimal(sv),
            is_ic_optimal(sl),
            dual_dag(v).is_isomorphic_to(lam),
        )

    v_opt, l_opt, dual_ok = benchmark(verify)
    assert v_opt and l_opt and dual_ok

    rows = []
    for kind in ("V", "Λ"):
        g, s = block(kind)
        rows.append(
            (
                kind,
                len(g),
                len(g.arcs),
                str(s.profile),
                is_ic_optimal(s),
            )
        )
    report = render_table(
        ["block", "nodes", "arcs", "E(t) profile", "IC-optimal"],
        rows,
        title="Fig. 1 blocks (V and Λ are mutually dual: verified)",
    )
    report += "\n" + render_series(
        "max profile V", max_eligibility_profile(block("V")[0])
    )
    report += "\n" + render_series(
        "max profile Λ", max_eligibility_profile(block("Λ")[0])
    )
    write_report("E-F1_blocks", report)
