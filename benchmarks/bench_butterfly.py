"""E-F8-10 — Figs. 8-10: butterfly networks.

Regenerates: B_d as iterated compositions of B (block counts per
Fig. 10), the paired-source schedule characterization, profiles, and
exhaustive verification for B_2; times scheduling of B_8 (2304 nodes).
"""

from repro.analysis import render_series, render_table
from repro.core import Certificate, is_ic_optimal, schedule_dag
from repro.families import butterfly_net as bf

from _harness import write_report


def test_butterfly_schedules(benchmark):
    def run():
        return schedule_dag(bf.butterfly_chain(8))

    result = benchmark(run)
    assert result.certificate is Certificate.COMPOSITION

    rows = []
    for d in (1, 2, 3, 4):
        ch = bf.butterfly_chain(d)
        r = schedule_dag(ch)
        paired = bf.paired_schedule_orders(r.schedule, ch)
        verified = is_ic_optimal(r.schedule) if d <= 2 else "-"
        rows.append(
            (f"B_{d}", len(ch.dag), len(ch), r.certificate.value, paired, verified)
        )
    report = render_table(
        ["network", "nodes", "B copies", "certificate", "paired-src", "exhaustive"],
        rows,
        title="Figs. 8-10: butterfly networks as ▷-linear compositions of B",
    )
    ch2 = bf.butterfly_chain(2)
    r2 = schedule_dag(ch2)
    report += "\n" + render_series("B_2 IC-optimal E(t)", r2.schedule.profile)
    write_report("E-F8-10_butterfly", report)
