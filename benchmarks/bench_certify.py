"""E-CERTIFY — decomposition-first certification vs the exhaustive
lattice search.

Measures, per recognized family, the *deterministic* search effort
(``search_states_expanded_total``) of three certification modes:

* **exhaustive** — the monolithic ideal-lattice search
  (``strategy="exhaustive"``, profile cache off);
* **compositional** — recognition + Theorem 2.1 assembly over a cold
  :class:`~repro.core.certify.BlockCertificateLibrary`: only the
  blocks are searched;
* **warm** — the same certification against the now-populated
  library: zero states (every block is a cache hit).

States-expanded counts are machine-independent, so the recorded
ratios are gated hard by ``tools/check_bench_regression.py``: the
headline claim — compositional certification of ``B_3`` expands at
least **10x** fewer states than the exhaustive search while granting
a certificate with the byte-identical eligibility profile — is pinned
in the committed ``benchmarks/BENCH_certify.json`` baseline.  Wall
times are recorded for context (host-dependent; gated only under
``--absolute``).

Run standalone (``python benchmarks/bench_certify.py``); writes
``benchmarks/out/BENCH_certify.json`` and a readable report.
"""

from __future__ import annotations

import json
import time

from repro.analysis import render_table
from repro.core import (
    BlockCertificateLibrary,
    certify,
    max_eligibility_profile,
)
from repro.families import butterfly_net, diamond, mesh, prefix, trees
from repro.obs import MetricsRegistry, set_global_registry

from _harness import OUT_DIR, write_report

FRESH_RECORD = OUT_DIR / "BENCH_certify.json"

#: the recognized families measured — ``butterfly_3`` carries the
#: gated headline ratio (B_3-sized input per the acceptance claim).
FAMILIES = [
    ("out_mesh_6", lambda: mesh.out_mesh_dag(6)),
    ("in_mesh_5", lambda: mesh.in_mesh_dag(5)),
    ("out_tree_4", lambda: trees.complete_out_tree(4).dag),
    ("diamond_3", lambda: diamond.complete_diamond(3).dag),
    ("prefix_8", lambda: prefix.prefix_dag(8)),
    ("butterfly_3", lambda: butterfly_net.butterfly_dag(3)),
]


def _measured(fn) -> tuple[float, float]:
    """Run ``fn`` under a fresh metrics registry; returns
    ``(states_expanded, wall_seconds)``."""
    reg = MetricsRegistry()
    old = set_global_registry(reg)
    try:
        t0 = time.perf_counter()
        fn()
        wall = time.perf_counter() - t0
        return reg.value("search_states_expanded_total"), wall
    finally:
        set_global_registry(old)


def run() -> dict:
    rows = []
    record_families = []
    for name, build in FAMILIES:
        dag = build()
        ceiling = list(max_eligibility_profile(dag))

        ex_states, ex_wall = _measured(
            lambda: certify(dag, strategy="exhaustive", cache=False)
        )
        lib = BlockCertificateLibrary()
        results = {}

        def cold():
            results["cold"] = certify(
                dag, strategy="compositional", cache=False, library=lib
            )

        def warm():
            results["warm"] = certify(
                dag, strategy="compositional", cache=False, library=lib
            )

        co_states, co_wall = _measured(cold)
        warm_states, warm_wall = _measured(warm)

        # the certificate must be byte-identical to the exhaustive
        # ceiling — a bench that measured a wrong certificate would
        # gate a lie
        for which, res in results.items():
            assert list(res.schedule.profile) == ceiling, (
                f"{name}/{which}: composed profile deviates from M(t)"
            )
            assert res.ic_optimal

        ratio = ex_states / co_states if co_states else float("inf")
        record_families.append({
            "family": name,
            "nodes": len(dag),
            "states_exhaustive": int(ex_states),
            "states_compositional": int(co_states),
            "states_warm": int(warm_states),
            "ratio": round(ratio, 1) if ratio != float("inf") else None,
            "wall_exhaustive_s": round(ex_wall, 6),
            "wall_compositional_s": round(co_wall, 6),
            "wall_warm_s": round(warm_wall, 6),
        })
        rows.append((
            name, len(dag), int(ex_states), int(co_states),
            int(warm_states),
            f"{ratio:.0f}x" if ratio != float("inf") else "inf",
        ))

    headline = next(
        f for f in record_families if f["family"] == "butterfly_3"
    )
    record = {
        "schema": 1,
        "workload": (
            "recognized families certified three ways; states expanded "
            "is deterministic and gated, wall times informational"
        ),
        "families": record_families,
        "headline": {
            "family": "butterfly_3",
            "ratio": headline["ratio"],
            "min_ratio": 10.0,
        },
    }
    report = render_table(
        ["family", "nodes", "exhaustive", "compositional", "warm",
         "ratio"],
        rows,
        title="states expanded per certification mode",
    )
    report += (
        f"\nheadline: B_3 compositional expands "
        f"{headline['ratio']}x fewer states (floor 10x)"
    )
    return record, report


def main() -> int:
    record, report = run()
    OUT_DIR.mkdir(exist_ok=True)
    FRESH_RECORD.write_text(json.dumps(record, indent=2) + "\n")
    write_report("E-CERTIFY", report)
    print(f"record -> {FRESH_RECORD}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
