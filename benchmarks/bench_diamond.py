"""E-F2 / E-F4/T1 — Figs. 2-4 + Table 1: expansion-reduction dags.

Regenerates: the Fig. 2 diamond with its Theorem 2.1 schedule and
profile; all three Table 1 alternating composition types with their
(segmented) certificates; the Fig. 4 unmatched-leaf variant.  Times the
Theorem 2.1 scheduling of a large diamond.
"""

from repro.analysis import render_series, render_table
from repro.core import Certificate, is_ic_optimal, schedule_dag
from repro.families import diamond, trees

from _harness import write_report


def test_fig2_diamond(benchmark):
    big = diamond.complete_diamond(7)  # 2·255 - 128 = 382 nodes

    def run():
        return schedule_dag(big)

    result = benchmark(run)
    assert result.certificate is Certificate.COMPOSITION

    small = diamond.complete_diamond(3)
    r = schedule_dag(small)
    assert is_ic_optimal(r.schedule)
    report = render_series(
        f"diamond depth 3 ({len(small.dag)} nodes) IC-optimal E(t)",
        r.schedule.profile,
    )
    report += f"\ncomposite type: {small.type_string()}"
    report += f"\ncertificate: {r.certificate.value}; exhaustively verified: True"
    report += "\n" + render_series(
        f"diamond depth 7 ({len(big.dag)} nodes) IC-optimal E(t)",
        result.schedule.profile,
        max_items=24,
    )
    write_report("E-F2_diamond", report)


def test_table1_alternations(benchmark):
    def build_all():
        return [
            diamond.table1_row1(2, depth=2),
            diamond.table1_row2(2, depth=2),
            diamond.table1_row3(2, depth=2),
        ]

    chains = benchmark(build_all)
    rows = []
    for label, ch in zip(
        ("D0⇑D1⇑D2", "Tin⇑D1⇑D2", "D1⇑D2⇑Tout"), chains
    ):
        r = schedule_dag(ch)
        small_ok = ""
        rows.append(
            (
                label,
                len(ch.dag),
                r.certificate.value,
                r.ic_optimal,
                str(r.schedule.profile[:10]) + "...",
            )
        )
    # exhaustive spot-check on depth-1 instances
    verified = all(
        is_ic_optimal(schedule_dag(fn(1, depth=1)).schedule)
        for fn in (diamond.table1_row1, diamond.table1_row2, diamond.table1_row3)
    )
    report = render_table(
        ["Table-1 type", "nodes", "certificate", "IC-opt", "E(t) head"],
        rows,
        title="Table 1: alternating expansion-reduction compositions",
    )
    report += f"\ndepth-1 instances exhaustively verified IC-optimal: {verified}"
    write_report("E-F4_T1_alternations", report)
    assert verified


def test_fig4_unmatched_leaves(benchmark):
    def build():
        b = diamond.AlternatingBuilder(name="fig4-right")
        out4, root4 = trees.complete_tree_children(2)  # 4 leaves
        in2, rin = trees.complete_tree_children(1)  # 2 leaves
        b.expand(out4, root4)
        b.reduce(in2, rin)
        return b.build()

    ch = benchmark(build)
    r = schedule_dag(ch)
    ok = is_ic_optimal(r.schedule)
    report = (
        f"Fig. 4 (rightmost): out-tree with 4 leaves reduced by an "
        f"in-tree with 2 sources\nnodes={len(ch.dag)}, "
        f"sinks={len(ch.dag.sinks)} (unmerged leaves stay sinks)\n"
        f"IC-optimal schedule exists and verified: {ok}"
    )
    write_report("E-F4_unmatched_leaves", report)
    assert ok
