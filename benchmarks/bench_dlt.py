"""E-F13 / E-F14/15 — §6.2.1: the two DLT dags.

Regenerates: L_8 = P_8 ⇑ T_8 (Fig. 13 left), the coarsened L_8
(Fig. 13 right), the ternary-tree L'_8 (Fig. 15), their ▷-chains and
certificates, and numeric agreement of both algorithms with the direct
sum (6.4); times the L_n pipeline end to end.
"""

import cmath
import random

from repro.analysis import render_table
from repro.core import is_ic_optimal, schedule_dag
from repro.compute.dlt import dlt_direct, dlt_via_prefix, dlt_via_tree
from repro.families import dlt

from _harness import write_report


def test_dlt_dags(benchmark):
    rng = random.Random(3)
    x = [complex(rng.random(), rng.random()) for _ in range(8)]
    w = cmath.exp(2j * cmath.pi / 16)

    def run():
        return dlt_via_prefix(x, w, 3)

    val = benchmark(run)
    assert abs(val - dlt_direct(x, w, 3)) < 1e-9

    rows = []
    for name, ch in (
        ("L_8 = P_8 ⇑ T_8 (Fig 13 left)", dlt.dlt_prefix_chain(8)),
        ("coarsened L_8 (Fig 13 right)", dlt.coarsened_dlt_chain(8, 2)),
        ("L'_8 ternary (Fig 15)", dlt.dlt_tree_chain(8)),
    ):
        r = schedule_dag(ch)
        rows.append((name, len(ch.dag), r.certificate.value, r.ic_optimal))
    report = render_table(
        ["dag", "nodes", "certificate", "IC-optimal"],
        rows,
        title="§6.2.1 DLT dags",
    )
    small = dlt.dlt_prefix_chain(4)
    report += (
        f"\nL_4 exhaustively verified: "
        f"{is_ic_optimal(schedule_dag(small).schedule)}"
    )

    err_rows = []
    for k in range(4):
        d = dlt_direct(x, w, k)
        err_rows.append(
            (
                k,
                f"{abs(dlt_via_prefix(x, w, k) - d):.1e}",
                f"{abs(dlt_via_tree(x, w, k) - d):.1e}",
            )
        )
    report += "\n" + render_table(
        ["k", "prefix-alg err", "tree-alg err"],
        err_rows,
        title="y_k(ω) vs direct evaluation of (6.4), n = 8",
    )
    write_report("E-F13-15_dlt", report)
