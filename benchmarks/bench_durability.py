"""E-DURABILITY — write-ahead journal overhead and crash-recovery
latency.

PR 9 made the scheduling service durable: a CRC-checksummed
write-ahead journal (:mod:`repro.service.durability`) records every
registry admit, certificate attach, and LRU spill, and a crashed
service replays back to its pre-crash registry on boot.  This bench
proves the durability layer honors its two budgets and records
``benchmarks/out/BENCH_durability.json``:

* **overhead** — the registry submit path (``put`` + \
  ``attach_schedule``) timed three ways: *kernel* (the pre-durability
  shard operations, no journal branch at all), *disabled* (the public
  path with ``journal = None`` — the default in-memory service), and
  *journaled* (a live journal, ``fsync=never`` so the measured cost
  is serialization + buffered writes, not the disk).
  ``overhead.disabled_pct`` is gated under an absolute **5%** budget
  by ``tools/check_bench_regression.py``: a service that never opts
  into durability must not pay for it.  The journaled cost is
  recorded for context (it is the price of the feature, not a
  regression signal);
* **journal** — deterministic accounting for the overhead workload:
  records appended and journal bytes per submit — machine-independent,
  gated exactly against the committed baseline;
* **recovery** — a journal holding ``RECOVERY_ENTRIES`` distinct dags
  (a slice of them certified) is replayed into a fresh registry.
  The restored/applied/invalid counts are deterministic and gated
  exactly; the replay wall time is gated against the absolute
  ``recovery.limit_seconds`` pin the record carries (generous enough
  for any CI host, tight enough to catch an accidentally quadratic
  replay).

Run standalone (``python benchmarks/bench_durability.py``) or under
pytest-benchmark; the committed baseline is
``benchmarks/BENCH_durability.json``.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import repro.api as api
from repro.core.dag import ComputationDag
from repro.obs import MetricsRegistry, set_global_registry
from repro.service import DagRegistry, DurabilityManager, scan_journal
from repro.service.registry import DagEntry

from _harness import OUT_DIR, write_report

FRESH_RECORD = OUT_DIR / "BENCH_durability.json"

#: distinct dags in the overhead workload (each certified once,
#: so the journaled path appends one admit + one certificate each).
N_DAGS = 48
#: best-of repeats for the timed submit loops.
REPEATS = 5
#: hard ceiling on the journal-disabled submit overhead, in percent
#: (gated by tools/check_bench_regression.py).
DISABLED_OVERHEAD_LIMIT_PCT = 5.0
#: entries replayed in the recovery scenario ...
RECOVERY_ENTRIES = 200
#: ... of which this many carry a certified schedule (certificate
#: replay re-validates the order against the rebuilt dag — the
#: expensive half of recovery).
RECOVERY_CERTIFIED = 32
#: absolute wall-time pin for replaying the recovery journal, in
#: seconds.  Generous for any CI host (measured ~10-20x under it on a
#: development machine) while still catching an accidentally
#: quadratic replay.
RECOVERY_LIMIT_SECONDS = 10.0


def _chain(n: int) -> ComputationDag:
    """A length-``n`` path dag — the cheapest family of structurally
    distinct fingerprints (one per ``n``)."""
    dag = ComputationDag(nodes=range(n), name=f"chain-{n}")
    for i in range(n - 1):
        dag.add_arc(i, i + 1)
    dag.validate()
    return dag


def _kernel_put(reg: DagRegistry, dag: ComputationDag) -> DagEntry:
    """Exactly what ``DagRegistry.put`` did before the journal hooks
    existed: the shard-locked insert/LRU body minus every durability
    touchpoint.  The reference the disabled-path overhead is measured
    against."""
    fp = dag.fingerprint()
    shard = reg._shard_for(fp)
    with shard.lock:
        entry = shard.entries.get(fp)
        if entry is not None:
            shard.entries.move_to_end(fp)
            reg._m_lookups().labels("hit").inc()
            entry.hits += 1
            return entry
        entry = DagEntry(fingerprint=fp, dag=dag)
        shard.entries[fp] = entry
        reg._m_stores().inc()
        evicted = 0
        while len(shard.entries) > reg.capacity_per_shard:
            shard.entries.popitem(last=False)
            evicted += 1
    if evicted:
        reg._m_evictions().inc(evicted)
    reg._publish_size()
    return entry


def _kernel_attach(reg: DagRegistry, fp: str, schedule) -> None:
    """``DagRegistry.attach_schedule`` minus the journal hook."""
    shard = reg._shard_for(fp)
    with shard.lock:
        entry = shard.entries.get(fp)
        if entry is not None:
            entry.schedule = schedule


def _best_of(repeats: int, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _overhead_phase(tmp: Path) -> tuple[dict, dict]:
    """Time the submit path kernel / disabled / journaled; return the
    overhead record and the deterministic journal accounting."""
    dags = [_chain(n) for n in range(2, 2 + N_DAGS)]
    results = [api.schedule(d) for d in dags]
    fps = [d.fingerprint() for d in dags]  # warm the fingerprint cache

    def submit_kernel():
        reg = DagRegistry(capacity_per_shard=N_DAGS)
        for dag, fp, res in zip(dags, fps, results):
            _kernel_put(reg, dag)
            _kernel_attach(reg, fp, res)
        return reg

    def submit_disabled():
        reg = DagRegistry(capacity_per_shard=N_DAGS)
        for dag, fp, res in zip(dags, fps, results):
            reg.put(dag)
            reg.attach_schedule(fp, res)
        return reg

    journal_dirs = iter(
        tmp / f"journal-{i}" for i in range(REPEATS + 1))
    managers: list[DurabilityManager] = []

    def submit_journaled():
        reg = DagRegistry(capacity_per_shard=N_DAGS)
        mgr = DurabilityManager(str(next(journal_dirs)),
                                fsync="never", snapshot_every=0)
        managers.append(mgr)
        reg.journal = mgr
        for dag, fp, res in zip(dags, fps, results):
            reg.put(dag)
            reg.attach_schedule(fp, res)
        mgr.flush()  # close() would snapshot + truncate: not timed
        return mgr.journal_path

    t_kernel, reg_k = _best_of(REPEATS, submit_kernel)
    t_disabled, reg_d = _best_of(REPEATS, submit_disabled)
    t_journaled, journal_path = _best_of(REPEATS, submit_journaled)
    assert len(reg_k) == len(reg_d) == N_DAGS, (
        "kernel and disabled paths diverged"
    )

    scan = scan_journal(journal_path)
    for mgr in managers:
        mgr._fh.close()  # skip close(): it would snapshot + truncate
    assert scan.stopped is None, f"clean journal scan: {scan.stopped}"
    assert len(scan.records) == 2 * N_DAGS, (
        f"expected {2 * N_DAGS} records, scanned {len(scan.records)}"
    )

    overhead_disabled = max(0.0, (t_disabled / t_kernel - 1.0) * 100.0)
    overhead_journaled = max(0.0,
                             (t_journaled / t_kernel - 1.0) * 100.0)
    overhead = {
        "kernel_s": round(t_kernel, 6),
        "disabled_s": round(t_disabled, 6),
        "journaled_s": round(t_journaled, 6),
        "disabled_pct": round(overhead_disabled, 3),
        "journaled_pct": round(overhead_journaled, 3),
        "limit_disabled_pct": DISABLED_OVERHEAD_LIMIT_PCT,
    }
    journal = {
        "submits": N_DAGS,
        "records": len(scan.records),
        "records_per_submit": round(len(scan.records) / N_DAGS, 6),
        "bytes": scan.good_bytes,
        "torn_bytes": scan.torn_bytes,
    }
    return overhead, journal


def _recovery_phase(tmp: Path) -> dict:
    """Build a ``RECOVERY_ENTRIES``-entry journal, replay it into a
    fresh registry, and time the replay."""
    data_dir = tmp / "recovery"
    mgr = DurabilityManager(str(data_dir), fsync="never",
                            snapshot_every=0)
    dags = [_chain(n) for n in range(2, 2 + RECOVERY_ENTRIES)]
    for dag in dags:
        mgr.record_admitted(dag.fingerprint(), dag)
    for dag in dags[:RECOVERY_CERTIFIED]:
        mgr.record_certificate(dag.fingerprint(), api.schedule(dag))
    mgr.flush()
    mgr._fh.close()  # skip close(): it would snapshot + truncate,
    # and this scenario times the full-journal replay

    def replay():
        reg = DagRegistry(capacity_per_shard=RECOVERY_ENTRIES)
        report = DurabilityManager(
            str(data_dir), fsync="never",
        ).recover(reg, truncate=False)
        return reg, report

    t_replay, (reg, report) = _best_of(3, replay)
    assert report.records_applied == \
        RECOVERY_ENTRIES + RECOVERY_CERTIFIED
    assert report.snapshot_used == "none"
    assert report.entries_restored == RECOVERY_ENTRIES
    assert report.certified_restored == RECOVERY_CERTIFIED
    assert report.records_invalid == 0
    assert report.torn_bytes_discarded == 0
    assert len(reg) == RECOVERY_ENTRIES
    assert t_replay < RECOVERY_LIMIT_SECONDS, (
        f"replaying {RECOVERY_ENTRIES} entries took {t_replay:.3f}s "
        f"(limit {RECOVERY_LIMIT_SECONDS}s)"
    )

    # compact, then recover again from the snapshot: the fast path a
    # long-lived service boots through (informational timing).
    mgr = DurabilityManager(str(data_dir), fsync="never",
                            snapshot_every=0)
    mgr.recover(DagRegistry(capacity_per_shard=RECOVERY_ENTRIES))
    assert mgr.snapshot_now()
    mgr.close()

    def replay_snapshot():
        reg2 = DagRegistry(capacity_per_shard=RECOVERY_ENTRIES)
        report2 = DurabilityManager(
            str(data_dir), fsync="never",
        ).recover(reg2, truncate=False)
        return report2

    t_snap, snap_report = _best_of(3, replay_snapshot)
    assert snap_report.snapshot_used == "current"
    assert snap_report.entries_restored == RECOVERY_ENTRIES

    return {
        "entries": RECOVERY_ENTRIES,
        "certified": RECOVERY_CERTIFIED,
        "records_applied": report.records_applied,
        "records_invalid": report.records_invalid,
        "entries_restored": report.entries_restored,
        "certified_restored": report.certified_restored,
        "journal_replay_s": round(t_replay, 6),
        "snapshot_replay_s": round(t_snap, 6),
        "limit_seconds": RECOVERY_LIMIT_SECONDS,
    }


def collect_record() -> dict:
    registry = MetricsRegistry()
    old = set_global_registry(registry)
    try:
        with tempfile.TemporaryDirectory() as tmp:
            overhead, journal = _overhead_phase(Path(tmp))
            recovery = _recovery_phase(Path(tmp))
    finally:
        set_global_registry(old)
    return {
        "schema": 1,
        "workload": (
            f"{N_DAGS} submit+certify cycles (kernel vs disabled vs "
            f"journaled), {RECOVERY_ENTRIES}-entry replay "
            f"({RECOVERY_CERTIFIED} certified)"
        ),
        "overhead": overhead,
        "journal": journal,
        "recovery": recovery,
    }


def _render(record: dict) -> str:
    from repro.analysis import render_table

    o, j, r = record["overhead"], record["journal"], record["recovery"]
    rows = [
        ("submit, kernel", f"{o['kernel_s'] * 1e3:.3f} ms", "reference"),
        ("submit, journal off", f"{o['disabled_s'] * 1e3:.3f} ms",
         f"+{o['disabled_pct']:.2f}% "
         f"(limit {o['limit_disabled_pct']:.0f}%)"),
        ("submit, journaled", f"{o['journaled_s'] * 1e3:.3f} ms",
         f"+{o['journaled_pct']:.2f}%"),
        ("journal accounting",
         f"{j['records']} records / {j['bytes']} B",
         f"{j['records_per_submit']:.1f} per submit"),
        ("replay (journal)", f"{r['journal_replay_s'] * 1e3:.1f} ms",
         f"{r['entries_restored']} entries, "
         f"{r['certified_restored']} certified"),
        ("replay (snapshot)", f"{r['snapshot_replay_s'] * 1e3:.1f} ms",
         "compacted boot path"),
    ]
    return render_table(
        ["phase", "cost", "result"], rows,
        title="write-ahead journal overhead and recovery",
    )


def run() -> dict:
    record = collect_record()
    OUT_DIR.mkdir(exist_ok=True)
    FRESH_RECORD.write_text(json.dumps(record, indent=2) + "\n")
    write_report("E-DURABILITY_durability", _render(record))
    return record


def test_durability_bench(benchmark):
    dag = _chain(16)
    res = api.schedule(dag)
    fp = dag.fingerprint()
    with tempfile.TemporaryDirectory() as tmp:
        reg = DagRegistry()
        mgr = DurabilityManager(tmp, fsync="never", snapshot_every=0)
        reg.journal = mgr

        def journaled_submit():
            reg.put(dag)
            reg.attach_schedule(fp, res)

        benchmark(journaled_submit)
        mgr.close()
    record = run()
    assert record["overhead"]["disabled_pct"] < \
        record["overhead"]["limit_disabled_pct"], (
            f"journal-disabled submit overhead "
            f"{record['overhead']['disabled_pct']}% breaches the "
            f"{record['overhead']['limit_disabled_pct']}% budget"
        )
    assert record["recovery"]["entries_restored"] == RECOVERY_ENTRIES


if __name__ == "__main__":
    rec = run()
    print(json.dumps(
        {"overhead": rec["overhead"], "recovery": rec["recovery"]},
        indent=2,
    ))
