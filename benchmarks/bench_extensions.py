"""Extension experiments (Section 8 future thrusts + the [20]
companion), beyond the paper's own figures:

* E-X1 — almost-optimal scheduling (thrust 2): best-effort vs greedy
  on dags admitting no IC-optimal schedule;
* E-X2 — batched scheduling ([20]): exact optimum vs Hu vs
  Coffman-Graham round counts;
* E-X3 — communication-aware granularity (thrust 3): makespan vs
  coarsening level as the per-input transfer cost varies;
* E-X4 — structure recognition: certifying bare (label-scrambled)
  dags.
"""

import random

from repro.analysis import render_table
from repro.core import (
    ComputationDag,
    best_effort_schedule,
    coffman_graham_batches,
    find_ic_optimal_schedule,
    greedy_schedule,
    hu_batches,
    max_eligibility_profile,
    min_rounds_lower_bound,
    optimal_batches,
    quality_report,
    recognize,
    schedule_dag,
)
from repro.families import butterfly_net, mesh, prefix, trees
from repro.granularity.mesh_coarsen import mesh_block_cluster_map
from repro.sim import granularity_tradeoff

from _harness import write_report


def _random_dag(n, p, seed):
    rng = random.Random(seed)
    dag = ComputationDag(nodes=range(n), name=f"rand{seed}")
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                dag.add_arc(u, v)
    return dag


def test_almost_optimal_scheduling(benchmark):
    hard = ComputationDag(
        arcs=[("a", "w")]
        + [(s, t) for s in ("b", "c") for t in ("x", "y", "z")]
    )

    def run():
        return best_effort_schedule(hard)

    benchmark(run)

    rows = []
    n_no_opt = 0
    for seed in range(40):
        dag = _random_dag(7, 0.45, seed)
        if find_ic_optimal_schedule(dag) is not None:
            continue
        n_no_opt += 1
        ceiling = max_eligibility_profile(dag)
        be = quality_report(best_effort_schedule(dag), ceiling)
        gr = quality_report(greedy_schedule(dag), ceiling)
        rows.append(
            (
                f"rand{seed}",
                be.deficit,
                gr.deficit,
                f"{be.ratio:.3f}",
                f"{gr.ratio:.3f}",
                f"{be.area:.3f}",
                f"{gr.area:.3f}",
            )
        )
    report = render_table(
        [
            "dag (no IC-opt exists)",
            "BE deficit",
            "greedy deficit",
            "BE ratio",
            "greedy ratio",
            "BE area",
            "greedy area",
        ],
        rows,
        title="§8 thrust 2: almost-optimal (best-effort, BE) vs greedy on "
        f"the {n_no_opt}/40 random 7-node dags admitting no IC-optimal "
        "schedule",
    )
    better = sum(1 for r in rows if r[1] <= r[2])
    report += f"\nBE deficit <= greedy deficit on {better}/{len(rows)} dags"
    write_report("E-X1_almost_optimal", report)
    assert better == len(rows)


def test_batched_scheduling(benchmark):
    dag = mesh.out_mesh_dag(4)

    def run():
        return optimal_batches(dag, 3)

    benchmark(run)

    rows = []
    cases = [
        ("out-mesh d=3", mesh.out_mesh_dag(3)),
        ("out-tree d=3", trees.complete_out_tree(3).dag),
        ("in-tree d=3", trees.complete_in_tree(3).dag),
        ("butterfly B_2", butterfly_net.butterfly_dag(2)),
    ]
    for name, d in cases:
        for cap in (2, 3):
            opt = optimal_batches(d, cap, node_limit=16)
            hu = hu_batches(d, cap)
            cg = coffman_graham_batches(d, cap)
            rows.append(
                (
                    name,
                    cap,
                    min_rounds_lower_bound(d, cap),
                    opt.rounds,
                    hu.rounds,
                    cg.rounds,
                )
            )
    report = render_table(
        ["dag", "capacity", "lower bound", "exact", "Hu", "Coffman-Graham"],
        rows,
        title="[20] batched framework: exact optimum (exponential) vs the "
        "polynomial batchers — CG matches exact at capacity 2, Hu on trees",
    )
    write_report("E-X2_batched", report)


def test_communication_granularity(benchmark):
    fine = mesh.out_mesh_dag(15)
    maps = {b: mesh_block_cluster_map(15, b) for b in (1, 2, 4, 8)}

    def run():
        return granularity_tradeoff(fine, maps, clients=8, comm_per_input=0.5)

    benchmark(run)

    sections = []
    for comm in (0.0, 0.25, 1.0):
        rows = granularity_tradeoff(
            fine, maps, clients=8, comm_per_input=comm
        )
        sections.append(
            render_table(
                ["block b", "tasks", "cut arcs", "makespan", "utilization"],
                rows,
                title=f"comm cost per input = {comm}",
            )
        )
    report = (
        "§8 thrust 3 + Fig. 7: makespan vs coarsening level of the "
        "depth-15 out-mesh, 8 clients.\nHigher communication cost pushes "
        "the optimum toward coarser tasks:\n\n" + "\n\n".join(sections)
    )
    write_report("E-X3_comm_granularity", report)


def test_structure_recognition(benchmark):
    scrambled = mesh.out_mesh_dag(10).relabel(
        lambda v: ("opaque", hash(("s", v)) & 0xFFFFFFFF)
    )

    def run():
        return recognize(scrambled)

    chain = benchmark(run)
    assert chain is not None

    rows = []
    for name, dag in (
        ("out-mesh d=10", scrambled),
        (
            "in-tree d=4",
            trees.complete_in_tree(4).dag.relabel(lambda v: ("q", v)),
        ),
        (
            "butterfly B_3",
            butterfly_net.butterfly_dag(3).relabel(lambda v: ("b", v)),
        ),
        ("prefix P_8", prefix.prefix_dag(8).relabel(lambda v: ("p", v))),
    ):
        ch = recognize(dag)
        r = schedule_dag(ch) if ch else None
        rows.append(
            (
                name,
                len(dag),
                ch.name.split(":")[-1] if ch else "-",
                r.certificate.value if r else "-",
            )
        )
    report = render_table(
        ["scrambled input", "nodes", "recognized as", "certificate"],
        rows,
        title="recognizing bare dags and recovering their Theorem 2.1 "
        "certificates",
    )
    write_report("E-X4_recognition", report)


def test_batched_vs_event_driven(benchmark):
    """E-X5 — the [20] trade-off: batched rounds are operationally
    simple but barrier-idle fast clients; the event-driven IC server
    exploits heterogeneity."""
    from repro.core import hu_batches
    from repro.sim import ClientSpec, make_policy, simulate, simulate_batched

    dag = mesh.out_mesh_dag(12)
    bs = hu_batches(dag, 6)
    clients = [ClientSpec(speed=s) for s in (0.5, 1, 1, 2, 2, 4)]

    def run():
        return simulate_batched(dag, bs, clients, seed=0)

    batched = benchmark(run)

    rows = []
    for name, chain in (
        ("out-mesh d=12", mesh.out_mesh_chain(12)),
        ("prefix P_16", prefix.prefix_chain(16)),
        ("butterfly B_4", butterfly_net.butterfly_chain(4)),
    ):
        d = chain.dag
        b = hu_batches(d, 6)
        rb = simulate_batched(d, b, clients, seed=0)
        sched = schedule_dag(chain).schedule
        re = simulate(d, make_policy("IC-OPT", sched), clients, seed=0)
        rows.append(
            (
                name,
                b.rounds,
                round(rb.makespan, 2),
                round(re.makespan, 2),
                round(rb.makespan / re.makespan, 2),
            )
        )
    report = render_table(
        ["dag", "rounds", "batched makespan", "event-driven", "ratio"],
        rows,
        title="[20]'s batched regimen vs the event-driven IC server, 6 "
        "heterogeneous clients (capacity 6 batches via Hu)",
    )
    write_report("E-X5_batched_vs_event", report)
    assert all(r[4] >= 1.0 for r in rows)


def test_strassen_extension(benchmark):
    """E-X6 — Strassen through the §7 gateway: 7 multiplications vs 8,
    dag execution matching numpy."""
    import numpy as np

    from repro.compute.strassen import strassen_multiply
    from repro.families.matmul_dag import matmul_chain, strassen_dag

    rng = np.random.default_rng(0)
    a = rng.random((16, 16))
    b = rng.random((16, 16))

    def run():
        return strassen_multiply(a, b)

    out = benchmark(run)
    assert np.allclose(out, a @ b)

    sdag = strassen_dag()
    mdag = matmul_chain().dag
    rows = [
        ("dag M (Fig. 17)", len(mdag), 8, "C4 ⇑ C4 ⇑ Λ⁴ (Thm 2.1)"),
        ("Strassen", len(sdag), 7, "no catalogued decomposition"),
    ]
    report = render_table(
        ["dag", "nodes", "multiplications", "certification"],
        rows,
        title="one recursion level, 2×2 block product",
    )
    from repro.core import find_ic_optimal_schedule

    s = find_ic_optimal_schedule(sdag)
    report += (
        f"\nStrassen dag admits an IC-optimal schedule: {s is not None}"
    )
    write_report("E-X6_strassen", report)


def test_width_and_parallelism(benchmark):
    """E-X7 — peak parallelism: dag width equals the maximum eligible
    count every family can offer (max_t M(t) == width, a theorem the
    two independent engines cross-check), i.e. the largest client pool
    a family can ever saturate."""
    from repro.core import dag_width, max_eligibility_profile
    from repro.families.diamond import complete_diamond
    from repro.families.dlt import dlt_prefix_chain

    big = mesh.out_mesh_dag(25)

    def run():
        return dag_width(big)

    assert benchmark(run) == 26

    rows = []
    for name, dag in (
        ("diamond d=3", complete_diamond(3).dag),
        ("out-mesh d=5", mesh.out_mesh_dag(5)),
        ("butterfly B_2", butterfly_net.butterfly_dag(2)),
        ("prefix P_5", prefix.prefix_dag(5)),
        ("DLT L_4", dlt_prefix_chain(4).dag),
        ("out-tree d=4", trees.complete_out_tree(4).dag),
    ):
        w = dag_width(dag)
        peak = max(max_eligibility_profile(dag))
        rows.append((name, len(dag), w, peak, peak == w))
    report = render_table(
        ["family", "nodes", "width (max antichain)", "max_t M(t)", "equal"],
        rows,
        title="peak eligibility == dag width: the most clients a family "
        "can ever feed simultaneously",
    )
    write_report("E-X7_width", report)
    assert all(r[4] for r in rows)
