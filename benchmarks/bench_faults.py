"""E-FAULTS — fault-tolerance machinery cost and chaos-scenario gates.

PR 4 added the realistic failure model (``repro.sim.faults``): the
public ``simulate()`` now dispatches to a fault-tolerant engine when a
``server_policy`` / ``fault_plan`` is given.  This bench proves the
fault path costs nothing when unused and stays deterministic when
used.  It times the simulation of a ``B_7`` butterfly three ways —

* **kernel** — the ideal-model event loop called directly
  (``repro.sim.server._simulate_ideal``), i.e. exactly what
  ``simulate()`` ran before PR 4;
* **disabled** — the public ``simulate()`` with faults left off
  (default arguments), measuring the dispatch overhead.  Gated
  **under 5%** by ``tools/check_bench_regression.py`` — the
  faults-disabled budget mirroring the observability budget;
* **engine** — ``simulate()`` through the fault-tolerant engine with
  the default :class:`~repro.sim.faults.ServerPolicy` and *no* fault
  plan (informational: what timeout/speculation bookkeeping costs when
  armed but never firing).

The kernel and disabled paths are asserted byte-identical before any
number is recorded.  Each canned chaos scenario (churn, stragglers,
flaky, blackout) is then run on a ``B_4`` butterfly with fixed seeds;
the resulting makespans and fault counts are **deterministic and
machine-independent**, so the regression gate compares them against
the committed baseline directly — a drift means the chaos semantics
changed, which must be a deliberate, baseline-updating decision.

Run standalone (``python benchmarks/bench_faults.py``) or under
pytest-benchmark; the fresh record lands in
``benchmarks/out/BENCH_faults.json`` and the committed baseline in
``benchmarks/BENCH_faults.json``.
"""

from __future__ import annotations

import json
import time

from repro.families.butterfly_net import butterfly_dag
from repro.obs import (
    MetricsRegistry,
    Tracer,
    set_global_registry,
    set_global_tracer,
)
from repro.sim import FAULT_SCENARIOS, FaultPlan, ServerPolicy, simulate
from repro.sim.heuristics import make_policy
from repro.sim.server import _simulate_ideal

from _harness import OUT_DIR, write_report

FRESH_RECORD = OUT_DIR / "BENCH_faults.json"

#: timing workload: big enough (1024 nodes, ~tens of ms) that the
#: dispatch overhead is measured against a stable denominator.
DIM = 7
#: chaos-scenario workload: small enough that all four scenarios run
#: in well under a second.
SCENARIO_DIM = 4
CLIENTS = 8
SCENARIO_CLIENTS = 6
SEED = 1
REPEATS = 5
#: hard ceiling on the faults-disabled dispatch overhead, in percent
#: (gated by tools/check_bench_regression.py).
DISABLED_OVERHEAD_LIMIT_PCT = 5.0


def _best_of(repeats: int, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def collect_record() -> dict:
    dag = butterfly_dag(DIM)

    # isolate this workload's metrics; tracing stays off throughout
    # (the fault path must be cheap in the default configuration).
    old_reg = set_global_registry(MetricsRegistry())
    old_tracer = set_global_tracer(Tracer())
    try:
        t_kernel, r_kernel = _best_of(
            REPEATS,
            lambda: _simulate_ideal(
                dag, make_policy("CRITPATH"), clients=CLIENTS, seed=SEED
            ),
        )
        t_disabled, r_disabled = _best_of(
            REPEATS,
            lambda: simulate(
                dag, make_policy("CRITPATH"), clients=CLIENTS, seed=SEED
            ),
        )
        assert r_disabled == r_kernel, (
            "faults-disabled simulate() diverged from the ideal kernel"
        )
        t_engine, r_engine = _best_of(
            REPEATS,
            lambda: simulate(
                dag, make_policy("CRITPATH"), clients=CLIENTS,
                seed=SEED, server_policy=ServerPolicy(),
            ),
        )
        # the armed-but-idle engine must agree on the physics even
        # though its bookkeeping differs.
        assert r_engine.completed == r_kernel.completed
        assert abs(r_engine.makespan - r_kernel.makespan) < 1e-9, (
            "fault engine makespan diverged with no faults injected"
        )
        assert r_engine.fault_report is not None
        assert r_engine.fault_report.retries == 0

        scenario_dag = butterfly_dag(SCENARIO_DIM)
        scenarios: dict[str, dict] = {}
        for name in sorted(FAULT_SCENARIOS):
            plan = FaultPlan.scenario(
                name, n_clients=SCENARIO_CLIENTS, seed=0
            )
            res = simulate(
                scenario_dag, make_policy("CRITPATH"),
                clients=SCENARIO_CLIENTS, seed=SEED, fault_plan=plan,
            )
            rep = res.fault_report
            assert res.completed == len(scenario_dag), (
                f"scenario {name!r} lost tasks permanently"
            )
            scenarios[name] = {
                "makespan": round(res.makespan, 6),
                "completed": res.completed,
                "retries": rep.retries,
                "timeouts": rep.timeouts_fired,
                "speculative_wins": rep.speculative_wins,
                "lost_allocations": res.lost_allocations,
            }
    finally:
        set_global_registry(old_reg)
        set_global_tracer(old_tracer)

    overhead_disabled = max(0.0, (t_disabled / t_kernel - 1.0) * 100.0)
    overhead_engine = max(0.0, (t_engine / t_kernel - 1.0) * 100.0)
    return {
        "schema": 1,
        "workload": f"B_{DIM} simulation under CRITPATH "
                    f"({CLIENTS} clients)",
        "sim": {
            "dag": f"B_{DIM}",
            "nodes": len(dag),
            "clients": CLIENTS,
            "kernel_s": round(t_kernel, 6),
            "disabled_s": round(t_disabled, 6),
            "engine_s": round(t_engine, 6),
        },
        "overhead": {
            "disabled_pct": round(overhead_disabled, 3),
            "engine_pct": round(overhead_engine, 3),
            "limit_disabled_pct": DISABLED_OVERHEAD_LIMIT_PCT,
        },
        "scenarios": {
            "dag": f"B_{SCENARIO_DIM}",
            "nodes": len(scenario_dag),
            "clients": SCENARIO_CLIENTS,
            "seed": SEED,
            "results": scenarios,
        },
    }


def _render(record: dict) -> str:
    from repro.analysis import render_table

    s, o = record["sim"], record["overhead"]
    rows = [
        ("ideal kernel (direct)", f"{s['kernel_s'] * 1e3:.3f}", "-"),
        ("simulate(), faults off", f"{s['disabled_s'] * 1e3:.3f}",
         f"{o['disabled_pct']:.2f}%"),
        ("fault engine, no faults", f"{s['engine_s'] * 1e3:.3f}",
         f"{o['engine_pct']:.2f}%"),
    ]
    report = render_table(
        ["path", "best ms", "overhead"],
        rows,
        title=f"fault-path overhead on {s['dag']} "
              f"(limit {o['limit_disabled_pct']:.0f}% disabled)",
    )
    scen_rows = [
        (name, r["makespan"], r["retries"], r["timeouts"],
         r["speculative_wins"], r["completed"])
        for name, r in record["scenarios"]["results"].items()
    ]
    report += "\n\n" + render_table(
        ["scenario", "makespan", "retries", "timeouts", "spec-wins",
         "completed"],
        scen_rows,
        title=f"chaos scenarios on {record['scenarios']['dag']} "
              f"({record['scenarios']['clients']} clients, "
              f"seed {record['scenarios']['seed']})",
    )
    return report


def run() -> dict:
    record = collect_record()
    OUT_DIR.mkdir(exist_ok=True)
    FRESH_RECORD.write_text(json.dumps(record, indent=2) + "\n")
    write_report("E-FAULTS_faults", _render(record))
    return record


def test_fault_path_overhead(benchmark):
    dag = butterfly_dag(SCENARIO_DIM)
    plan = FaultPlan.scenario("churn", n_clients=SCENARIO_CLIENTS)
    benchmark(
        lambda: simulate(
            dag, make_policy("CRITPATH"), clients=SCENARIO_CLIENTS,
            seed=SEED, fault_plan=plan,
        )
    )
    record = run()
    assert (record["overhead"]["disabled_pct"]
            < DISABLED_OVERHEAD_LIMIT_PCT), (
        f"faults-disabled dispatch overhead "
        f"{record['overhead']['disabled_pct']}% breaches the "
        f"{DISABLED_OVERHEAD_LIMIT_PCT}% budget"
    )
    for name, r in record["scenarios"]["results"].items():
        assert r["completed"] == record["scenarios"]["nodes"], name


if __name__ == "__main__":
    rec = run()
    print(json.dumps(rec["overhead"], indent=2))
