"""E-S5.2b — §5.2 convolutions: FFT on the butterfly network.

Regenerates: FFT correctness vs the direct DFT and numpy, polynomial
multiplication via the convolution theorem (transformation 5.2), and
the Θ(n log n) vs Θ(n²) crossover; times the dag-engine FFT of 64
points.
"""

import random
import time

import numpy as np

from repro.analysis import render_table
from repro.compute.convolution import (
    direct_convolution,
    fft_convolution,
    polynomial_multiply,
)
from repro.compute.fft import direct_dft, fft

from _harness import write_report


def test_fft_convolution(benchmark):
    rng = random.Random(1)
    x64 = [complex(rng.random(), rng.random()) for _ in range(64)]

    def run():
        return fft(x64)

    out = benchmark(run)
    assert max(abs(a - b) for a, b in zip(out, np.fft.fft(np.array(x64)))) < 1e-9

    rows = []
    for n in (4, 8, 16, 32):
        x = [complex(rng.random(), rng.random()) for _ in range(n)]
        ours = fft(x)
        err_np = max(abs(a - b) for a, b in zip(ours, np.fft.fft(np.array(x))))
        err_direct = max(abs(a - b) for a, b in zip(ours, direct_dft(x)))
        rows.append((n, f"{err_np:.1e}", f"{err_direct:.1e}"))
    report = render_table(
        ["n", "max err vs numpy", "max err vs O(n²) DFT"],
        rows,
        title="§5.2 FFT on B_d with the convolution transformation (5.2)",
    )

    # polynomial multiplication correctness + shape of the crossover
    a = [float(rng.randint(-9, 9)) for _ in range(12)]
    b = [float(rng.randint(-9, 9)) for _ in range(9)]
    got = polynomial_multiply(a, b)
    ref = [c.real for c in direct_convolution(a, b)]
    poly_err = max(abs(x - y) for x, y in zip(got, ref))
    report += f"\npolynomial product (deg 11 × deg 8) max err: {poly_err:.2e}"

    timing_rows = []
    for n in (16, 64, 256):
        va = [1.0] * n
        t0 = time.perf_counter()
        direct_convolution(va, va)
        t_direct = time.perf_counter() - t0
        t0 = time.perf_counter()
        fft_convolution(va, va)
        t_fft = time.perf_counter() - t0
        timing_rows.append((n, f"{t_direct*1e3:.2f}", f"{t_fft*1e3:.2f}"))
    report += "\n" + render_table(
        ["n", "direct O(n²) ms", "FFT Θ(n log n) ms"],
        timing_rows,
        title="convolution scaling (dag-engine FFT; absolute times are "
        "engine-bound, the shape is the point)",
    )
    write_report("E-S5.2b_fft", report)
