"""E-F3 / E-F7 / §5.1 — multi-granularity coarsenings.

Regenerates: the Fig. 3 coarsened diamond (quotient = coarse diamond,
still IC-optimally schedulable), the Fig. 7 mesh blocking with the
quadratic-work/linear-communication accounting, and the B_{a+b} -> B_a
butterfly coarsening; times the mesh quotient construction.
"""

from repro.analysis import render_table
from repro.core import is_ic_optimal, schedule_dag
from repro.families import butterfly_net, mesh, trees
from repro.families.diamond import diamond_chain
from repro.granularity import clustering_report, quotient_dag
from repro.granularity.butterfly_coarsen import (
    butterfly_coarsening_accounting,
    coarsened_butterfly,
)
from repro.granularity.mesh_coarsen import mesh_coarsening_accounting
from repro.granularity.tree_coarsen import coarsened_diamond, diamond_cluster_map

from _harness import write_report


def test_fig3_diamond_coarsening(benchmark):
    children, root = trees.complete_tree_children(4)

    def run():
        return coarsened_diamond(children, root, [(2, 0), (2, 3)])

    coarse = benchmark(run)
    r = schedule_dag(coarse)
    fine = diamond_chain(children, root)
    cmap = diamond_cluster_map(children, root, [(2, 0), (2, 3)])
    rep = clustering_report(fine.dag, cmap)
    iso = quotient_dag(fine.dag, cmap).is_isomorphic_to(coarse.dag)
    report = (
        f"Fig. 3: coarsening two subtrees of the depth-4 diamond\n"
        f"fine dag: {fine.dag.summary()}\n"
        f"coarse dag: {coarse.dag.summary()}\n"
        f"quotient isomorphic to coarse diamond: {iso}\n"
        f"coarse tasks still IC-optimally schedulable: {r.ic_optimal}\n"
        f"work per cluster: {rep.min_work}..{rep.max_work}; "
        f"communication fraction: {rep.communication_fraction:.3f} (fine = 1.0)"
    )
    write_report("E-F3_diamond_coarsening", report)
    assert iso and r.ic_optimal


def test_fig7_mesh_coarsening(benchmark):
    def run():
        return mesh_coarsening_accounting(23, 4)

    rep = benchmark(run)
    rows = []
    for b in (1, 2, 3, 4, 6):
        r = mesh_coarsening_accounting(23, b)
        quotient_is_mesh = (
            r.quotient.is_isomorphic_to(mesh.out_mesh_dag(24 // b - 1))
            if 24 % b == 0
            else "-"
        )
        rows.append(
            (
                b,
                len(r.work),
                r.max_work,
                f"{r.cut_arcs / len(r.work):.2f}",
                f"{r.communication_fraction:.3f}",
                quotient_is_mesh,
            )
        )
    report = render_table(
        ["block b", "clusters", "max work", "cut arcs/cluster", "comm frac", "quotient=mesh"],
        rows,
        title="Fig. 7: depth-23 out-mesh blocked b×b — work grows ~b², "
        "communication per cluster ~b (§4 closing claim)",
    )
    write_report("E-F7_mesh_coarsening", report)


def test_butterfly_coarsening(benchmark):
    def run():
        return coarsened_butterfly(3, 2)

    q = benchmark(run)
    assert q.same_structure(butterfly_net.butterfly_dag(3))
    rows = []
    for a, b in ((1, 1), (2, 1), (2, 2), (3, 2)):
        rep = butterfly_coarsening_accounting(a, b)
        ok = rep.quotient.same_structure(butterfly_net.butterfly_dag(a))
        rows.append(
            (
                f"B_{a+b} -> B_{a}",
                len(rep.work),
                f"{rep.min_work}..{rep.max_work}",
                f"{rep.communication_fraction:.3f}",
                ok,
            )
        )
    report = render_table(
        ["coarsening", "supertasks", "work range", "comm frac", "quotient=B_a"],
        rows,
        title="§5.1: B_{a+b} is a copy of B_a whose nodes are B_b-sized "
        "supertasks — granularity tunes while keeping butterfly structure",
    )
    write_report("E-S5.1_butterfly_coarsening", report)
