"""E-S3.2 — Section 3.2: adaptive-quadrature diamond execution.

Regenerates: the data-dependent out-tree, the diamond dag, the
Theorem 2.1 schedule, and the integral values vs closed forms; times
the full integrate() pipeline.
"""

import math

from repro.analysis import render_table
from repro.compute.integration import integrate

from _harness import write_report

CASES = [
    ("sin on [0, π]", math.sin, 0.0, math.pi, 2.0),
    ("exp on [0, 1]", math.exp, 0.0, 1.0, math.e - 1),
    ("1/(1+x²) on [0, 1]", lambda x: 1 / (1 + x * x), 0.0, 1.0, math.pi / 4),
    (
        "peaked gaussian",
        lambda x: math.exp(-50 * (x - 0.3) ** 2),
        0.0,
        1.0,
        math.sqrt(math.pi / 50)
        * 0.5
        * (math.erf(math.sqrt(50) * 0.7) + math.erf(math.sqrt(50) * 0.3)),
    ),
]


def test_quadrature_pipeline(benchmark):
    def run():
        return integrate(math.sin, 0.0, math.pi, tol=1e-6)

    res = benchmark(run)
    assert abs(res.value - 2.0) < 1e-5

    rows = []
    for name, f, a, b, exact in CASES:
        r = integrate(f, a, b, tol=1e-7, rule="simpson")
        nodes = len(r.chain.dag) if r.chain else 1
        rows.append(
            (
                name,
                r.panels,
                nodes,
                f"{r.value:.10f}",
                f"{abs(r.value - exact):.2e}",
            )
        )
    report = render_table(
        ["integrand", "panels", "dag nodes", "value", "abs err"],
        rows,
        title="§3.2 adaptive quadrature via IC-optimally scheduled diamonds "
        "(Simpson, tol=1e-7)",
    )
    write_report("E-S3.2_integration", report)
