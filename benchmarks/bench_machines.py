"""E-MACHINES — machine-model overhead budget and crossover sweep.

The pluggable machine layer (``repro.sim.machines``) answers ROADMAP
item 3: *when does IC-optimality still win once communication and
memory are not free?*  This bench guards both halves of that feature:

* **overhead** — the ``machine=`` dispatch must cost nothing when the
  machine is ideal.  The ideal-model kernel
  (``repro.sim.server._simulate_ideal``) is timed against the public
  ``simulate(..., machine="ideal")`` and the two results are asserted
  byte-identical before any number is recorded; the relative overhead
  is gated **under 5%** by ``tools/check_bench_regression.py``
  (mirroring the observability / faults / durability budgets);
* **sweep** — IC-OPT and the baselines (FIFO, RANDOM, plus the
  DAGPS-inspired PACKING and TROUBLESOME) race across every machine
  model on two workload families.  Seeded event-driven simulation is
  **deterministic and machine-independent**, so the per-cell makespans
  are compared against the committed baseline exactly — a drift means
  the machine semantics changed, which must be a deliberate,
  baseline-updating decision.  The rendered report names, per family x
  machine, whether IC-OPT still wins (the EXPERIMENTS.md E-MACHINES
  verdicts come from here).

Run standalone (``python benchmarks/bench_machines.py``) or under
pytest-benchmark; the fresh record lands in
``benchmarks/out/BENCH_machines.json`` and the committed baseline in
``benchmarks/BENCH_machines.json``.
"""

from __future__ import annotations

import json
import time

from repro.core import schedule_dag
from repro.families.butterfly_net import butterfly_dag
from repro.families.mesh import out_mesh_dag
from repro.obs import (
    MetricsRegistry,
    Tracer,
    set_global_registry,
    set_global_tracer,
)
from repro.sim import compare_policies, make_policy, simulate
from repro.sim.server import _simulate_ideal

from _harness import OUT_DIR, write_report

FRESH_RECORD = OUT_DIR / "BENCH_machines.json"

#: timing workload: large enough that dispatch overhead is measured
#: against a stable denominator.
DIM = 7
CLIENTS = 8
SEED = 1
REPEATS = 5
#: hard ceiling on the ideal-machine dispatch overhead, in percent
#: (gated by tools/check_bench_regression.py).
IDEAL_OVERHEAD_LIMIT_PCT = 5.0

#: sweep configuration: every machine x policy cell is deterministic.
SWEEP_CLIENTS = 4
SWEEP_SEED = 0
MACHINES = (
    "ideal",
    "bsp:g=1,L=2",
    "memcap:cap=2",
    "hetero:spread=0.5,seed=1",
)
POLICIES = ("FIFO", "RANDOM", "PACKING", "TROUBLESOME")


def _families() -> dict:
    return {
        "B_4": butterfly_dag(4),
        "M_6": out_mesh_dag(6),
    }


def _best_of(repeats: int, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def collect_record() -> dict:
    dag = butterfly_dag(DIM)

    old_reg = set_global_registry(MetricsRegistry())
    old_tracer = set_global_tracer(Tracer())
    try:
        t_kernel, r_kernel = _best_of(
            REPEATS,
            lambda: _simulate_ideal(
                dag, make_policy("CRITPATH"), clients=CLIENTS, seed=SEED
            ),
        )
        t_ideal, r_ideal = _best_of(
            REPEATS,
            lambda: simulate(
                dag, make_policy("CRITPATH"), clients=CLIENTS,
                seed=SEED, machine="ideal",
            ),
        )
        assert r_ideal == r_kernel, (
            "simulate(machine='ideal') diverged from the ideal kernel"
        )

        sweep: dict[str, dict] = {}
        for fam_name, fam_dag in _families().items():
            sched = schedule_dag(fam_dag).schedule
            per_machine: dict[str, dict] = {}
            for machine in MACHINES:
                cmp = compare_policies(
                    fam_dag, sched, clients=SWEEP_CLIENTS,
                    policies=POLICIES, seed=SWEEP_SEED,
                    machine=None if machine == "ideal" else machine,
                )
                makespans = {
                    name: round(res.makespan, 6)
                    for name, res in cmp.results.items()
                }
                for name, res in cmp.results.items():
                    assert res.completed == len(fam_dag), (
                        f"{fam_name}/{machine}/{name} lost tasks"
                    )
                best = min(makespans, key=makespans.get)
                per_machine[machine] = {
                    "makespans": makespans,
                    "best": best,
                    "ic_wins": makespans["IC-OPT"] <= makespans[best],
                }
            sweep[fam_name] = {
                "nodes": len(fam_dag),
                "machines": per_machine,
            }
    finally:
        set_global_registry(old_reg)
        set_global_tracer(old_tracer)

    overhead_ideal = max(0.0, (t_ideal / t_kernel - 1.0) * 100.0)
    return {
        "schema": 1,
        "workload": f"B_{DIM} simulation under CRITPATH "
                    f"({CLIENTS} clients)",
        "sim": {
            "dag": f"B_{DIM}",
            "nodes": len(dag),
            "clients": CLIENTS,
            "kernel_s": round(t_kernel, 6),
            "ideal_s": round(t_ideal, 6),
        },
        "overhead": {
            "ideal_pct": round(overhead_ideal, 3),
            "limit_ideal_pct": IDEAL_OVERHEAD_LIMIT_PCT,
        },
        "sweep": {
            "clients": SWEEP_CLIENTS,
            "seed": SWEEP_SEED,
            "policies": ["IC-OPT", *POLICIES],
            "families": sweep,
        },
    }


def _render(record: dict) -> str:
    from repro.analysis import render_table

    s, o = record["sim"], record["overhead"]
    report = render_table(
        ["path", "best ms", "overhead"],
        [
            ("ideal kernel (direct)", f"{s['kernel_s'] * 1e3:.3f}", "-"),
            ("simulate(machine='ideal')", f"{s['ideal_s'] * 1e3:.3f}",
             f"{o['ideal_pct']:.2f}%"),
        ],
        title=f"machine-dispatch overhead on {s['dag']} "
              f"(limit {o['limit_ideal_pct']:.0f}%)",
    )
    sweep = record["sweep"]
    for fam_name, fam in sweep["families"].items():
        rows = []
        for machine, cell in fam["machines"].items():
            m = cell["makespans"]
            rows.append((
                machine,
                *(m[p] for p in sweep["policies"]),
                cell["best"],
                "yes" if cell["ic_wins"] else "NO",
            ))
        report += "\n\n" + render_table(
            ["machine", *sweep["policies"], "best", "IC wins"],
            rows,
            title=f"{fam_name} ({fam['nodes']} nodes, "
                  f"{sweep['clients']} clients, seed {sweep['seed']})",
        )
    return report


def run() -> dict:
    record = collect_record()
    OUT_DIR.mkdir(exist_ok=True)
    FRESH_RECORD.write_text(json.dumps(record, indent=2) + "\n")
    write_report("E-MACHINES_machines", _render(record))
    return record


def test_machine_sweep(benchmark):
    dag = butterfly_dag(4)
    sched = schedule_dag(dag).schedule
    benchmark(
        lambda: simulate(
            dag, make_policy("IC-OPT", sched), clients=SWEEP_CLIENTS,
            seed=SWEEP_SEED, machine="bsp:g=1,L=2",
        )
    )


if __name__ == "__main__":
    run()
