"""E-F17 — §7: the matrix-multiplication dag M.

Regenerates: the Fig. 17 dag, the §7 boxed schedule in both readings
(the reproduction finding about the verbatim product order), the
recursive scalar-granularity dags, and numeric correctness vs numpy;
times the recursive 8×8 multiply through the dag engine.
"""

import numpy as np

from repro.analysis import render_series, render_table
from repro.compute.matmul import multiply_blocks_2x2, recursive_multiply
from repro.core import is_ic_optimal, max_eligibility_profile, schedule_dag
from repro.families import matmul_dag as mm

from _harness import write_report


def test_matmul_dag(benchmark):
    rng = np.random.default_rng(7)
    a8 = rng.random((8, 8))
    b8 = rng.random((8, 8))

    def run():
        return recursive_multiply(a8, b8)

    out = benchmark(run)
    assert np.allclose(out, a8 @ b8)

    ch = mm.matmul_chain()
    dag = ch.dag
    r = schedule_dag(ch)
    ceiling = max_eligibility_profile(dag)
    paper = mm.paper_schedule(dag)
    verbatim = mm.verbatim_box_schedule(dag)

    report = (
        f"Fig. 17 dag M: {dag.summary()}\n"
        f"composite type: {ch.type_string()} "
        f"(certificate: {r.certificate.value})\n"
    )
    report += render_series("max-profile ceiling M(t)", ceiling) + "\n"
    report += render_series(
        "paper schedule (loads A,E,C,F,B,G,D,H; products sum-paired)",
        paper.profile,
    )
    report += f"\n  -> IC-optimal: {is_ic_optimal(paper, ceiling)}\n"
    report += render_series(
        "verbatim §7-box product order (AE,CE,CF,AF,BG,DG,DH,BH)",
        verbatim.profile,
    )
    report += (
        f"\n  -> IC-optimal: {is_ic_optimal(verbatim, ceiling)} "
        "(reproduction finding: dominated at steps 10-14; the box's "
        "order is the ELIGIBLE-rendering order of the load phase, not "
        "an optimal product execution order)\n"
    )

    # numeric checks across granularities
    rows = []
    a2 = [[1.0, 2.0], [3.0, 4.0]]
    b2 = [[5.0, 6.0], [7.0, 8.0]]
    got2 = np.array(multiply_blocks_2x2(a2, b2))
    rows.append(("2×2 scalar blocks (dag M)", np.allclose(got2, np.array(a2) @ np.array(b2))))
    blocks_a = [[rng.random((4, 4)) for _ in range(2)] for _ in range(2)]
    blocks_b = [[rng.random((4, 4)) for _ in range(2)] for _ in range(2)]
    gotb = np.block(multiply_blocks_2x2(blocks_a, blocks_b))
    rows.append(
        (
            "2×2 matrix blocks (7.1 without commutativity)",
            np.allclose(gotb, np.block(blocks_a) @ np.block(blocks_b)),
        )
    )
    for n in (2, 4, 8):
        a = rng.random((n, n))
        b = rng.random((n, n))
        rows.append(
            (
                f"recursive {n}×{n} scalar dag "
                f"({len(mm.recursive_matmul_dag(n.bit_length() - 1))} nodes)",
                np.allclose(recursive_multiply(a, b), a @ b),
            )
        )
    report += render_table(
        ["computation", "matches numpy"], rows, title="value-level checks"
    )
    write_report("E-F17_matmul", report)
