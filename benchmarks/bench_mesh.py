"""E-F5/6 — Figs. 5-6: out-/in-meshes as W-/M-dag compositions.

Regenerates: the W-dag decomposition sizes, the by-diagonal IC-optimal
schedules and their profiles, exhaustive verification on small depths,
and a profile comparison against a row-major sweep; times the
Theorem 2.1 scheduling of a deep mesh.
"""

from repro.analysis import dominance_relation, render_series, render_table
from repro.core import Certificate, Schedule, is_ic_optimal, schedule_dag
from repro.families import mesh

from _harness import write_report


def test_out_mesh_schedule(benchmark):
    deep = mesh.out_mesh_chain(30)  # 496 nodes

    def run():
        return schedule_dag(deep)

    result = benchmark(run)
    assert result.certificate is Certificate.COMPOSITION

    ch = mesh.out_mesh_chain(4)
    r = schedule_dag(ch)
    sizes = [len(rec.block.sources) for rec in ch.blocks]
    report = f"Fig. 6 decomposition of depth-4 out-mesh: W-dag sizes {sizes}"
    report += "\n" + render_series(
        "IC-optimal (by-diagonal) E(t)", r.schedule.profile
    )
    report += f"\nexhaustively verified IC-optimal: {is_ic_optimal(r.schedule)}"

    # comparison: anti-diagonal sweep vs row-major sweep
    dag = mesh.out_mesh_dag(4)
    row_major = Schedule(
        dag, sorted(dag.nodes, key=lambda v: (v[1], v[0])), name="row-major"
    )
    diag = mesh.diagonal_schedule(dag)
    rows = [
        ("by-diagonal (IC-opt)", str(diag.profile)),
        ("row-major sweep", str(row_major.profile)),
    ]
    report += "\n" + render_table(
        ["schedule", "E(t)"],
        rows,
        title="depth-4 out-mesh: diagonal sweep dominates "
        f"({dominance_relation(diag.profile, row_major.profile)!r} wins)",
    )
    write_report("E-F5_out_mesh", report)


def test_in_mesh_schedule(benchmark):
    def run():
        return schedule_dag(mesh.in_mesh_chain(20))

    result = benchmark(run)
    assert result.certificate is Certificate.COMPOSITION

    ch = mesh.in_mesh_chain(4)
    r = schedule_dag(ch)
    sizes = [len(rec.block.sinks) for rec in ch.blocks]
    report = f"In-mesh (pyramid) M-dag decomposition sizes: {sizes}"
    report += "\n" + render_series("IC-optimal E(t)", r.schedule.profile)
    report += f"\nexhaustively verified: {is_ic_optimal(r.schedule)}"
    write_report("E-F5_in_mesh", report)
