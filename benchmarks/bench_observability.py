"""E-OBS — instrumentation overhead of the observability layer.

PR 2 threaded the metrics registry and tracer through the certification
hot path (``repro.core.optimality``).  This bench proves the wiring is
effectively free: it times the PR-1 scale workload (the ``B_3``
ideal-lattice search of ``bench_optimality_scale.py``) three ways —

* **kernel** — the bare, *uninstrumented* search kernel
  (``_bit_tables`` + ``_level_bfs`` + the closed-form sink tail),
  i.e. exactly what ``max_eligibility_profile`` did before PR 2;
* **disabled** — the instrumented public path with tracing disabled
  (the default: per-call aggregate metrics only, no-op spans);
* **enabled** — the same with structured tracing turned on;
* **serving** — the disabled path measured while an
  :class:`~repro.obs.server.ObsServer` is scraped concurrently
  (~20 Hz ``GET /metrics``), i.e. the live-exposition serving path.

``overhead.disabled_pct`` and ``overhead.serving_pct`` — gated by
``tools/check_bench_regression.py`` — must stay **under 5%**: the
instrumentation budget for code that is always on.  A primitive
microbench (ns per no-op span, per counter increment, per live event)
is recorded alongside so a regression can be localized.

PR 7 added schedule-frame capture (:mod:`repro.obs.observatory`) to
the simulator under the same contract, and this bench gates it the
same way: a **frames** scenario times the simulation event loop three
ways — ``reference`` (``_simulate_ideal(..., _frames=False)``: no
frame-store lookup at all), ``disabled`` (the default public path:
one store lookup + enabled check per run — the store is resolved
once, so per-event cost in both paths is the same pointer compare),
and ``enabled`` (a live :class:`~repro.obs.observatory.FrameStore`
recording every step, informational).  ``frames.disabled_pct`` is
gated under the same 5% budget.

All three paths are asserted to produce byte-identical profiles before
any number is recorded.  Run standalone (``python
benchmarks/bench_observability.py``) or under pytest-benchmark; the
fresh record lands in ``benchmarks/out/BENCH_observability.json`` and
the committed baseline in ``benchmarks/BENCH_observability.json``.
"""

from __future__ import annotations

import json
import time

from repro.core.optimality import (
    _bit_tables,
    _level_bfs,
    max_eligibility_profile,
)
from repro.families.butterfly_net import butterfly_dag
from repro.obs import (
    MetricsRegistry,
    Tracer,
    global_registry,
    global_tracer,
    set_global_registry,
    set_global_tracer,
)
from repro.sim import simulate
from repro.sim.heuristics import make_policy
from repro.core import schedule_dag

from _harness import OUT_DIR, write_report

FRESH_RECORD = OUT_DIR / "BENCH_observability.json"

#: the PR-1 scale workload: the largest exactly certifiable butterfly.
DIM = 3
BUDGET = 20_000_000
REPEATS = 5
#: the serving path gets more repeats: each run is a few ms while
#: scrapes land every ~50 ms, so best-of needs enough samples to see
#: runs both with and without a concurrent scrape.
REPEATS_SERVING = 12
#: hard ceiling on the disabled-path overhead, in percent (gated).
DISABLED_OVERHEAD_LIMIT_PCT = 5.0
#: the frame-capture scenario workload: a larger butterfly simulated
#: under FIFO (no certification in the timed loop), so the event loop
#: — where the frame gating lives — dominates.
FRAMES_DIM = 5
FRAMES_CLIENTS = 8
#: best-of over many repeats: the per-run delta under test (one store
#: lookup + enabled check) is ~100 ns on a ~2 ms run, so the gate is
#: really measuring scheduler noise — drive it down with samples.
REPEATS_FRAMES = 50


def _kernel_profile(dag, state_budget: int = BUDGET) -> list[int]:
    """The uninstrumented sequential search: what the public path does
    minus every observability touchpoint (no clock reads, no registry,
    no span).  The reference the overhead is measured against."""
    dag.validate()
    total = len(dag)
    _nodes, children, parents_mask, nonsink_mask, init_eligible = (
        _bit_tables(dag)
    )
    n = nonsink_mask.bit_count()
    profile = [init_eligible.bit_count()]
    if n:
        maxima, _states, _peak, _owned = _level_bfs(
            children, parents_mask, nonsink_mask,
            0, init_eligible, 0, n, state_budget, dag.name,
        )
        profile.extend(maxima)
    for t in range(n + 1, total + 1):
        profile.append(total - t)
    return profile


def _best_of(repeats: int, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _time_primitive(fn, n: int = 20_000) -> float:
    """Mean nanoseconds per call over ``n`` calls (loop cost included —
    an upper bound, which is the conservative direction for a gate)."""
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - t0) / n * 1e9


def collect_record() -> dict:
    dag = butterfly_dag(DIM)

    # isolate this workload's metrics; keep tracing off for the
    # kernel/disabled measurements.
    old_reg = set_global_registry(MetricsRegistry())
    old_tracer = set_global_tracer(Tracer(capacity=1 << 18))
    try:
        t_kernel, p_kernel = _best_of(
            REPEATS, lambda: _kernel_profile(dag)
        )
        t_disabled, p_disabled = _best_of(
            REPEATS, lambda: max_eligibility_profile(dag, BUDGET)
        )
        global_tracer().enable()
        t_enabled, p_enabled = _best_of(
            REPEATS, lambda: max_eligibility_profile(dag, BUDGET)
        )
        global_tracer().disable()
        assert p_disabled == p_kernel, "instrumented path diverged"
        assert p_enabled == p_kernel, "traced path diverged"

        # primitive costs (disabled span is THE hot-path fast path).
        tracer = global_tracer()
        counter = global_registry().counter("bench_prim_total", "bench")
        ns_span_disabled = _time_primitive(
            lambda: tracer.span("bench.noop")
        )
        ns_counter_inc = _time_primitive(counter.inc)
        tracer.enable()
        ns_event_enabled = _time_primitive(
            lambda: tracer.event("bench.event")
        )
        tracer.disable()
        tracer.clear()

        # serving path: the same (tracing-off) search while a scraper
        # thread polls GET /metrics at ~20 Hz — the overhead a live
        # Prometheus scrape adds to a running search.
        import threading
        from urllib.request import urlopen

        from repro.obs import ObsServer
        from repro.obs.server import PROM_CONTENT_TYPE

        scrape_n = 0
        scrape_lat = 0.0
        stop = threading.Event()
        with ObsServer() as srv:
            # warm the listener (thread + socket + first exposition)
            # outside the measured window.
            with urlopen(srv.url + "/metrics", timeout=5) as resp:
                assert resp.status == 200
                resp.read()

            def _scrape_loop():
                nonlocal scrape_n, scrape_lat
                while not stop.is_set():
                    t0 = time.perf_counter()
                    with urlopen(srv.url + "/metrics", timeout=5) as resp:
                        assert resp.status == 200
                        assert resp.headers["Content-Type"] == (
                            PROM_CONTENT_TYPE
                        )
                        resp.read()
                    scrape_lat += time.perf_counter() - t0
                    scrape_n += 1
                    stop.wait(0.05)

            scraper = threading.Thread(target=_scrape_loop, daemon=True)
            scraper.start()
            t_serving, p_serving = _best_of(
                REPEATS_SERVING, lambda: max_eligibility_profile(dag, BUDGET)
            )
            stop.set()
            scraper.join(timeout=10)
        assert p_serving == p_kernel, "served path diverged"
        assert scrape_n > 0, "scraper never completed a request"

        # frame-capture scenario: the simulation event loop with the
        # frame path (a) compiled out (_frames=False reference),
        # (b) present but disabled (the default), (c) recording.
        from repro.obs.observatory import (
            FrameStore,
            global_frame_store,
            set_global_frame_store,
        )
        from repro.sim.server import _simulate_ideal

        frames_dag = butterfly_dag(FRAMES_DIM)
        old_store = set_global_frame_store(FrameStore())
        try:
            t_fr_ref, r_ref = _best_of(
                REPEATS_FRAMES,
                lambda: _simulate_ideal(
                    frames_dag, make_policy("FIFO"),
                    clients=FRAMES_CLIENTS, _frames=False,
                ),
            )
            t_fr_disabled, r_dis = _best_of(
                REPEATS_FRAMES,
                lambda: _simulate_ideal(
                    frames_dag, make_policy("FIFO"),
                    clients=FRAMES_CLIENTS,
                ),
            )
            store = global_frame_store()
            store.enable()
            t_fr_enabled, r_en = _best_of(
                REPEATS_FRAMES,
                lambda: _simulate_ideal(
                    frames_dag, make_policy("FIFO"),
                    clients=FRAMES_CLIENTS,
                ),
            )
            store.disable()
            assert r_ref.makespan == r_dis.makespan == r_en.makespan, (
                "frame capture changed the simulation"
            )
            channel = store.get(frames_dag.fingerprint())
            frames_captured = channel.seq if channel is not None else 0
            assert frames_captured > 0, "enabled store captured nothing"
        finally:
            set_global_frame_store(old_store)

        # sim trace segment (informational): a traced simulation of
        # the same dag, counting structured records emitted.
        scheduling = schedule_dag(dag)
        tracer.enable()
        res = simulate(
            dag, make_policy("IC-OPT", scheduling.schedule),
            clients=4, record_trace=True,
        )
        tracer.disable()
        sim_events = len(tracer.records())
        assert res.completed == len(dag)
        assert len(res.trace) == res.completed + res.lost_allocations
    finally:
        set_global_registry(old_reg)
        set_global_tracer(old_tracer)

    overhead_disabled = max(0.0, (t_disabled / t_kernel - 1.0) * 100.0)
    overhead_enabled = max(0.0, (t_enabled / t_kernel - 1.0) * 100.0)
    overhead_serving = max(0.0, (t_serving / t_kernel - 1.0) * 100.0)
    fr_disabled_pct = max(0.0, (t_fr_disabled / t_fr_ref - 1.0) * 100.0)
    fr_enabled_pct = max(0.0, (t_fr_enabled / t_fr_ref - 1.0) * 100.0)
    return {
        "schema": 3,
        "workload": f"B_{DIM} ideal-lattice search "
                    "(PR-1 scale benchmark workload)",
        "search": {
            "dag": f"B_{DIM}",
            "nodes": len(dag),
            "kernel_s": round(t_kernel, 6),
            "disabled_s": round(t_disabled, 6),
            "enabled_s": round(t_enabled, 6),
            "serving_s": round(t_serving, 6),
        },
        "overhead": {
            "disabled_pct": round(overhead_disabled, 3),
            "enabled_pct": round(overhead_enabled, 3),
            "serving_pct": round(overhead_serving, 3),
            "limit_disabled_pct": DISABLED_OVERHEAD_LIMIT_PCT,
        },
        "serving": {
            "scrapes": scrape_n,
            "mean_scrape_ms": round(scrape_lat / scrape_n * 1e3, 3),
        },
        "primitives_ns": {
            "span_disabled": round(ns_span_disabled, 1),
            "counter_inc": round(ns_counter_inc, 1),
            "event_enabled": round(ns_event_enabled, 1),
        },
        "frames": {
            "dag": f"B_{FRAMES_DIM}",
            "nodes": len(frames_dag),
            "clients": FRAMES_CLIENTS,
            "reference_s": round(t_fr_ref, 6),
            "disabled_s": round(t_fr_disabled, 6),
            "enabled_s": round(t_fr_enabled, 6),
            "disabled_pct": round(fr_disabled_pct, 3),
            "enabled_pct": round(fr_enabled_pct, 3),
            "captured": frames_captured,
            "limit_disabled_pct": DISABLED_OVERHEAD_LIMIT_PCT,
        },
        "sim_trace": {
            "allocations": len(res.trace),
            "structured_events": sim_events,
        },
    }


def _render(record: dict) -> str:
    from repro.analysis import render_table

    s, o, p = record["search"], record["overhead"], record["primitives_ns"]
    rows = [
        ("kernel (uninstrumented)", f"{s['kernel_s'] * 1e3:.3f}", "-"),
        ("instrumented, tracing off", f"{s['disabled_s'] * 1e3:.3f}",
         f"{o['disabled_pct']:.2f}%"),
        ("instrumented, tracing on", f"{s['enabled_s'] * 1e3:.3f}",
         f"{o['enabled_pct']:.2f}%"),
        ("instrumented, scraped @20Hz", f"{s['serving_s'] * 1e3:.3f}",
         f"{o['serving_pct']:.2f}%"),
    ]
    report = render_table(
        ["path", "best ms", "overhead"],
        rows,
        title=f"observability overhead on {s['dag']} "
              f"(limit {o['limit_disabled_pct']:.0f}% disabled)",
    )
    fr = record["frames"]
    report += "\n\n" + render_table(
        ["frame-capture path", "best ms", "overhead"],
        [
            ("reference (no frame path)",
             f"{fr['reference_s'] * 1e3:.3f}", "-"),
            ("store present, disabled",
             f"{fr['disabled_s'] * 1e3:.3f}",
             f"{fr['disabled_pct']:.2f}%"),
            ("store enabled, recording",
             f"{fr['enabled_s'] * 1e3:.3f}",
             f"{fr['enabled_pct']:.2f}%"),
        ],
        title=f"schedule-frame capture on {fr['dag']} sim "
              f"({fr['clients']} clients, {fr['captured']} frames; "
              f"limit {fr['limit_disabled_pct']:.0f}% disabled)",
    )
    report += (
        f"\nprimitives: no-op span {p['span_disabled']:.0f} ns, "
        f"counter.inc {p['counter_inc']:.0f} ns, "
        f"live event {p['event_enabled']:.0f} ns"
        f"\nserving: {record['serving']['scrapes']} scrapes, "
        f"{record['serving']['mean_scrape_ms']:.2f} ms mean /metrics"
        f"\nsim trace: {record['sim_trace']['allocations']} allocations, "
        f"{record['sim_trace']['structured_events']} structured events"
    )
    return report


def run() -> dict:
    record = collect_record()
    OUT_DIR.mkdir(exist_ok=True)
    FRESH_RECORD.write_text(json.dumps(record, indent=2) + "\n")
    write_report("E-OBS_observability", _render(record))
    return record


def test_observability_overhead(benchmark):
    dag = butterfly_dag(DIM)
    benchmark(lambda: max_eligibility_profile(dag, BUDGET))
    record = run()
    assert (record["overhead"]["disabled_pct"]
            < DISABLED_OVERHEAD_LIMIT_PCT), (
        f"disabled-path instrumentation overhead "
        f"{record['overhead']['disabled_pct']}% breaches the "
        f"{DISABLED_OVERHEAD_LIMIT_PCT}% budget"
    )
    assert (record["overhead"]["serving_pct"]
            < DISABLED_OVERHEAD_LIMIT_PCT), (
        f"serving-path overhead {record['overhead']['serving_pct']}% "
        f"breaches the {DISABLED_OVERHEAD_LIMIT_PCT}% budget"
    )
    assert (record["frames"]["disabled_pct"]
            < DISABLED_OVERHEAD_LIMIT_PCT), (
        f"frame-capture disabled-path overhead "
        f"{record['frames']['disabled_pct']}% breaches the "
        f"{DISABLED_OVERHEAD_LIMIT_PCT}% budget"
    )
    assert record["frames"]["captured"] > 0
    assert record["serving"]["scrapes"] > 0
    assert record["sim_trace"]["structured_events"] > 0


if __name__ == "__main__":
    rec = run()
    print(json.dumps(rec["overhead"], indent=2))
