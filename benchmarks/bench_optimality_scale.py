"""E-PERF — IC-optimality certification at scale.

Regenerates the perf-regression record ``BENCH_optimality.json`` for
the hot path of the whole assessment arm: the exhaustive ideal-lattice
searches of :mod:`repro.core.optimality` on the Section 5
butterfly/FFT certification workload, which every figure benchmark
funnels through.

Four measurements per size (butterfly networks ``B_2`` and ``B_3`` —
``B_3`` is the largest exactly certifiable butterfly; ``B_4``'s
nonsink ideal lattice exceeds 2·10⁷ states):

* **legacy** — the pre-rewrite frozenset-based level BFS, kept here
  verbatim as the reference implementation and correctness oracle;
* **sequential** — the bitmask engine (canonical frontier keys);
* **parallel** — the same engine with ``parallel=True`` first-level
  fan-out (informational on 1-core hosts);
* **cached** — a repeat certification through
  :class:`repro.core.ProfileCache` (the O(1) common case).

Plus a sim-server workload segment: repeated
:func:`repro.api.simulate` requests over a fixed dag population,
pinned to ``strategy="exhaustive"`` (the decomposition-first default
would recognize the butterflies and skip the lattice search entirely
— see ``benchmarks/bench_certify.py`` for that comparison), reporting
the certification cache hit rate a server actually sees.

Every path is asserted byte-identical to the legacy profile before any
number is recorded.  Run standalone (``python
benchmarks/bench_optimality_scale.py``) or under pytest-benchmark;
compare records across commits with ``tools/check_bench_regression.py``
(see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro import api
from repro.core import (
    ProfileCache,
    SearchStats,
    find_ic_optimal_schedule,
    max_eligibility_profile,
    set_global_profile_cache,
)
from repro.exceptions import OptimalityError
from repro.families.butterfly_net import butterfly_dag

from _harness import OUT_DIR, write_report

#: where a fresh run writes its record (the committed baseline lives at
#: ``benchmarks/BENCH_optimality.json``).
FRESH_RECORD = OUT_DIR / "BENCH_optimality.json"
BASELINE_RECORD = pathlib.Path(__file__).parent / "BENCH_optimality.json"

#: butterfly dimensions certified; the last entry is "the largest".
SIZES = (2, 3)
REPEATS = 3


def _legacy_max_profile(dag, state_budget: int = 20_000_000) -> list[int]:
    """The seed implementation (frozenset states), verbatim: the
    reference the rewrite must match byte for byte."""
    dag.validate()
    total = len(dag)
    nonsinks = [v for v in dag.nodes if not dag.is_sink(v)]
    n = len(nonsinks)
    nonsink_set = set(nonsinks)
    parents_count = {v: dag.indegree(v) for v in dag.nodes}
    init_eligible = frozenset(v for v in dag.nodes if parents_count[v] == 0)
    profile = [len(init_eligible)]
    frontier = {frozenset(): init_eligible}
    states_seen = 1
    for _t in range(1, n + 1):
        nxt: dict = {}
        for executed, eligible in frontier.items():
            for u in eligible:
                if u not in nonsink_set:
                    continue
                new_exec = executed | {u}
                if new_exec in nxt:
                    continue
                newly = [
                    c
                    for c in dag.children(u)
                    if all(p in new_exec for p in dag.parents(c))
                ]
                nxt[new_exec] = (eligible - {u}) | frozenset(newly)
                states_seen += 1
                if states_seen > state_budget:
                    raise OptimalityError("legacy reference exceeded budget")
        profile.append(max(len(e) for e in nxt.values()))
        frontier = nxt
    for t in range(n + 1, total + 1):
        profile.append(total - t)
    return profile


def _best_of(repeats: int, fn):
    """(best wall-clock seconds, last result) of ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def collect_record() -> dict:
    """Run the whole workload; return the JSON-ready record."""
    budget = 20_000_000
    sizes = []
    for d in SIZES:
        dag = butterfly_dag(d)
        t_legacy, p_legacy = _best_of(
            REPEATS, lambda g=dag: _legacy_max_profile(g, budget)
        )
        stats = SearchStats()
        t_seq, p_seq = _best_of(
            REPEATS,
            lambda g=dag: max_eligibility_profile(g, budget, stats=stats),
        )
        t_par, p_par = _best_of(
            REPEATS,
            lambda g=dag: max_eligibility_profile(g, budget, parallel=True),
        )
        cache = ProfileCache()
        cache.max_profile(dag, budget)  # warm
        t_cached, p_cached = _best_of(
            REPEATS, lambda g=dag: cache.max_profile(g, budget)
        )
        assert p_seq == p_legacy, f"B_{d}: sequential diverged from legacy"
        assert p_par == p_legacy, f"B_{d}: parallel diverged from legacy"
        assert p_cached == p_legacy, f"B_{d}: cached diverged from legacy"
        sched = find_ic_optimal_schedule(dag, budget, max_profile=p_seq)
        assert sched is not None and list(sched.profile) == p_legacy
        sizes.append(
            {
                "dag": f"B_{d}",
                "nodes": len(dag),
                "nonsinks": len(dag.nonsinks),
                "states_expanded": stats.states_expanded,
                "frontier_peak": stats.frontier_peak,
                "legacy_s": round(t_legacy, 6),
                "sequential_s": round(t_seq, 6),
                "parallel_s": round(t_par, 6),
                "cached_s": round(t_cached, 6),
                "nodes_per_sec": round(len(dag) / t_seq, 1),
                "states_per_sec": round(stats.states_expanded / t_seq, 1),
                "speedup_vs_legacy": round(t_legacy / t_seq, 2),
                "cached_speedup_vs_legacy": round(t_legacy / t_cached, 2),
            }
        )

    # ---- sim-server workload: repeated certification of a fixed dag
    # population, as a long-running server sees it.
    workload_cache = ProfileCache()
    old = set_global_profile_cache(workload_cache)
    try:
        requests = 0
        for _round in range(4):
            for d in (1, 2):
                res = api.simulate(
                    butterfly_dag(d), clients=4, seed=_round,
                    strategy="exhaustive",
                )
                assert res.completed == len(butterfly_dag(d))
                assert res.certificate == "exhaustive"
                requests += 1
    finally:
        set_global_profile_cache(old)
    sim_stats = workload_cache.stats()

    largest = sizes[-1]
    return {
        "schema": 1,
        "workload": "Section 5 butterfly/FFT certification",
        "sizes": sizes,
        "largest": {
            "dag": largest["dag"],
            "speedup_vs_legacy": largest["speedup_vs_legacy"],
            "cached_speedup_vs_legacy": largest["cached_speedup_vs_legacy"],
            "states_expanded": largest["states_expanded"],
        },
        "sim_server": {
            "requests": requests,
            "cache_hits": sim_stats.hits,
            "cache_misses": sim_stats.misses,
            "cache_hit_rate": round(sim_stats.hit_rate, 4),
        },
    }


def _render(record: dict) -> str:
    from repro.analysis import render_table

    rows = [
        (
            s["dag"],
            s["nodes"],
            s["states_expanded"],
            f"{s['legacy_s'] * 1e3:.2f}",
            f"{s['sequential_s'] * 1e3:.2f}",
            f"{s['cached_s'] * 1e3:.3f}",
            f"{s['speedup_vs_legacy']:.1f}x",
        )
        for s in record["sizes"]
    ]
    report = render_table(
        ["dag", "nodes", "states", "legacy ms", "bitmask ms", "cached ms",
         "speedup"],
        rows,
        title="ideal-lattice certification: legacy vs bitmask engine",
    )
    sim = record["sim_server"]
    report += (
        f"\nsim-server workload: {sim['requests']} scheduling requests, "
        f"cache hit rate {sim['cache_hit_rate']:.2f} "
        f"({sim['cache_hits']} hits / {sim['cache_misses']} misses)"
    )
    return report


def run() -> dict:
    record = collect_record()
    OUT_DIR.mkdir(exist_ok=True)
    FRESH_RECORD.write_text(json.dumps(record, indent=2) + "\n")
    write_report("E-PERF_optimality_scale", _render(record))
    return record


def test_optimality_scale(benchmark):
    dag = butterfly_dag(SIZES[-1])
    benchmark(lambda: max_eligibility_profile(dag, 20_000_000))
    record = run()
    assert record["largest"]["speedup_vs_legacy"] >= 5.0
    assert record["sim_server"]["cache_hit_rate"] > 0.0


if __name__ == "__main__":
    rec = run()
    print(json.dumps(rec["largest"], indent=2))
