"""E-F16 — §6.2.2: computing all paths in a 9-node graph.

Regenerates: the Fig. 16 instance (9-node graph, 8 logical powers,
accumulation in-tree), the β-vector matrix M, cross-checked against
iterated boolean matrix multiplication and networkx; times the full
dag execution.
"""

import networkx as nx
import numpy as np

from repro.analysis import render_table
from repro.compute.graph_paths import all_paths_reference, paths_matrix
from repro.core import schedule_dag
from repro.families.paths import graph_paths_chain

from _harness import write_report


def test_graph_paths(benchmark):
    rng = np.random.default_rng(16)
    adj = rng.random((9, 9)) < 0.25
    np.fill_diagonal(adj, False)

    def run():
        return paths_matrix(adj, 8)

    m = benchmark(run)
    assert np.array_equal(m, all_paths_reference(adj, 8))

    ch = graph_paths_chain(8)
    r = schedule_dag(ch)
    g = nx.from_numpy_array(adj.astype(int), create_using=nx.DiGraph)
    power = nx.to_numpy_array(g, dtype=np.int64)
    walk = power.copy()
    nx_ok = True
    for k in range(8):
        if k:
            walk = walk @ power
        nx_ok &= np.array_equal(m[:, :, k], walk > 0)
    sample = m[0, :, :].astype(int)
    report = (
        f"Fig. 16: 9-node graph, K = 8 powers\n"
        f"dag: {ch.dag.summary()}\n"
        f"certificate: {r.certificate.value}\n"
        f"matches iterated boolean matmul: True\n"
        f"matches networkx walk counts:    {nx_ok}\n"
    )
    rows = [
        (j, "".join(map(str, sample[j])))
        for j in range(9)
    ]
    report += render_table(
        ["j", "β-vector (k=1..8)"],
        rows,
        title="path vectors from node 0 (1 = path of that length exists)",
    )
    write_report("E-F16_graph_paths", report)
    assert nx_ok
