"""E-F11/12 — Figs. 11-12: parallel-prefix dags.

Regenerates: the N-dag decomposition of P_8 exactly as §6.2.1 states
it, the nonincreasing-source-order schedule and its profile, and
exhaustive verification for small n; times scheduling of P_64.
"""

from repro.analysis import render_series, render_table
from repro.core import Certificate, is_ic_optimal, schedule_dag
from repro.families import prefix as px

from _harness import write_report


def test_prefix_schedules(benchmark):
    def run():
        return schedule_dag(px.prefix_chain(64))

    result = benchmark(run)
    assert result.certificate is Certificate.COMPOSITION

    report = (
        "Fig. 12 / §6.2.1(b): P_8 composite type: "
        + " ⇑ ".join(f"N_{s}" for s in px.prefix_ndag_sizes(8))
    )
    rows = []
    for n in (2, 4, 5, 8, 16):
        ch = px.prefix_chain(n)
        r = schedule_dag(ch)
        verified = is_ic_optimal(r.schedule) if n <= 5 else "-"
        nonincr = px.prefix_ndag_sizes(n) == sorted(
            px.prefix_ndag_sizes(n), reverse=True
        )
        rows.append(
            (f"P_{n}", len(ch.dag), r.certificate.value, nonincr, verified)
        )
    report += "\n" + render_table(
        ["dag", "nodes", "certificate", "nonincreasing N order", "exhaustive"],
        rows,
        title="§6.1 box: N-dags executed in nonincreasing source order",
    )
    r8 = schedule_dag(px.prefix_chain(8))
    report += "\n" + render_series("P_8 IC-optimal E(t)", r8.schedule.profile)
    write_report("E-F11-12_prefix", report)
