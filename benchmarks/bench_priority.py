"""E-PRIO — §2.3: the priority relation ▷ across all paper blocks.

Regenerates: the full pairwise ▷ matrix over the building blocks the
paper uses, every in-paper priority fact, and the Theorem 2.3 duality
checks; times the matrix computation.
"""

from repro.analysis import render_table
from repro.blocks import PAPER_PRIORITY_FACTS, block
from repro.core import has_priority, priority_matrix

from _harness import write_report

SPECS = [
    ("V", 2),
    ("V", 3),
    ("Λ", 2),
    ("W", 2),
    ("W", 4),
    ("M", 2),
    ("N", 4),
    ("N", 8),
    ("C", 4),
    ("B", None),
]


def test_priority_matrix(benchmark):
    pairs = [block(k, p) for k, p in SPECS]
    dags = [p[0] for p in pairs]
    scheds = [p[1] for p in pairs]

    def run():
        return priority_matrix(dags, scheds)

    matrix = benchmark(run)

    names = [d.name for d in dags]
    rows = [
        [names[i]] + ["▷" if matrix[i][j] else "·" for j in range(len(names))]
        for i in range(len(names))
    ]
    report = render_table(
        ["G1\\G2"] + names,
        rows,
        title="pairwise ▷ under the reconstructed eq. (2.1) "
        "(row ▷ column)",
    )

    fact_rows = []
    all_ok = True
    for (k1, p1), (k2, p2), expect in PAPER_PRIORITY_FACTS:
        g1, s1 = block(k1, p1)
        g2, s2 = block(k2, p2)
        got = has_priority(g1, g2, s1, s2)
        all_ok &= got is expect
        fact_rows.append((f"{g1.name} ▷ {g2.name}", expect, got))
    report += "\n" + render_table(
        ["paper fact", "expected", "computed"],
        fact_rows,
        title="every priority fact asserted in the paper",
    )
    report += f"\nall paper facts reproduced: {all_ok}"
    write_report("E-PRIO_priority", report)
    assert all_ok
