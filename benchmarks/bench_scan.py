"""E-S6.1 — §6.1: the scan operator at three granularities.

Regenerates: the paper's three scan instantiations — integer powers,
complex powers, logical matrix powers — executed on P_n under the
IC-optimal schedule, with per-op task-cost scaling; times the
boolean-matrix-power scan (the coarsest).
"""

import cmath
import operator

import numpy as np

from repro.analysis import render_table
from repro.compute.scan import bool_matmul, parallel_scan, powers, sequential_scan

from _harness import write_report


def test_scan_granularities(benchmark):
    rng = np.random.default_rng(0)
    adj = rng.random((16, 16)) < 0.2

    def run():
        return powers(adj, 8, bool_matmul)

    mats = benchmark(run)
    ref = adj.copy()
    for m in mats:
        assert np.array_equal(m, ref)
        ref = bool_matmul(ref, adj)

    rows = []
    # fine grain: integer multiplication
    got = powers(3, 16, operator.mul)
    rows.append(
        ("integer ×", "int", 16, got == [3**i for i in range(1, 17)])
    )
    # medium: complex multiplication
    w = cmath.exp(2j * cmath.pi / 16)
    cgot = powers(w, 16, operator.mul)
    ok = all(
        cmath.isclose(v, w**i, abs_tol=1e-9) for i, v in enumerate(cgot, 1)
    )
    rows.append(("complex ×", "complex", 16, ok))
    # coarse: logical matrix multiplication (§6.1 third bullet)
    mok = all(
        np.array_equal(a, b)
        for a, b in zip(
            powers(adj, 8, bool_matmul),
            sequential_scan([adj] * 8, bool_matmul),
        )
    )
    rows.append(("logical matmul", "16×16 bool", 8, mok))
    report = render_table(
        ["operation *", "task payload", "n", "matches reference"],
        rows,
        title="§6.1: the *-parallel-prefix operator at three task "
        "granularities (same P_n dag, same IC-optimal schedule)",
    )
    # generic scan sanity across op families
    vals = list(range(1, 13))
    report += (
        f"\nadd-scan of 1..12: {parallel_scan(vals, operator.add)}"
    )
    write_report("E-S6.1_scan", report)
