"""E-SERVICE — scheduling-as-a-service throughput, latency, and
coalescing gates.

Exercises the full ``repro.service`` stack — hardened HTTP layer,
admission pipeline, sharded registry — over real loopback HTTP and
records ``benchmarks/out/BENCH_service.json``:

* **coalesce** — a deterministic thundering herd: 16 concurrent
  submissions of one fingerprint while the certification search is
  held open, so every duplicate must join the in-flight search.  The
  search count (exactly 1) and the coalesce hit rate (15/16) are
  *machine-independent* — gated against the committed baseline by
  ``tools/check_bench_regression.py``;
* **resubmit** — every previously certified dag answered from the
  registry without any search (``cached_fraction`` = 1.0; gated);
* **throughput / latency** — concurrent ``POST /v1/simulate``
  requests (by-fingerprint, named policy, so no search cost), with
  requests/s and p50/p99 latency recorded.  Host-dependent: gated
  only under ``--absolute``.

Run standalone (``python benchmarks/bench_service.py``) or under
pytest-benchmark; the committed baseline is
``benchmarks/BENCH_service.json``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import repro.api as api
from repro.families.mesh import out_mesh_dag
from repro.obs import MetricsRegistry, set_global_registry
from repro.service import PipelineConfig, SchedulingService

from _harness import OUT_DIR, write_report

FRESH_RECORD = OUT_DIR / "BENCH_service.json"

#: distinct dag structures submitted (then resubmitted) — mesh depths
#: 2..2+N-1, all within the default exhaustive limit or certified
#: heuristically; what matters is that each has a distinct fingerprint.
N_DAGS = 10
#: concurrent submissions of one fingerprint in the coalesce phase.
HERD = 16
#: simulate-phase load: total requests and client threads.
SIM_REQUESTS = 48
SIM_THREADS = 8


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=60) as r:
        return json.loads(r.read())


def _percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1,
              max(0, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _coalesce_phase(svc: SchedulingService, registry) -> dict:
    """Deterministic thundering herd: hold the leader's search open
    until every follower is parked on it, then release."""
    release = threading.Event()
    real_schedule = api.schedule

    def gated(target, **kw):
        release.wait(60)
        return real_schedule(target, **kw)

    wire = api.dag_to_dict(out_mesh_dag(N_DAGS + 4))
    searches0 = registry.value("service_searches_total")
    results: list[dict] = []
    lock = threading.Lock()

    def submit():
        body = _post(svc.url + "/v1/dags", wire)
        with lock:
            results.append(body)

    api.schedule = gated
    try:
        threads = [threading.Thread(target=submit) for _ in range(HERD)]
        for t in threads:
            t.start()
        deadline = time.perf_counter() + 60.0
        while (registry.value("service_coalesced_total") < HERD - 1
               and time.perf_counter() < deadline):
            time.sleep(0.005)
        release.set()
        for t in threads:
            t.join(timeout=60)
    finally:
        api.schedule = real_schedule

    searches = int(registry.value("service_searches_total") - searches0)
    coalesced = sum(1 for b in results if b["how"] == "coalesced")
    assert len(results) == HERD, "herd requests lost"
    assert searches == 1, f"herd ran {searches} searches, expected 1"
    return {
        "requests": HERD,
        "searches": searches,
        "coalesced": coalesced,
        "hit_rate": round(coalesced / HERD, 6),
    }


def collect_record() -> dict:
    registry = MetricsRegistry()
    old_reg = set_global_registry(registry)
    try:
        svc = SchedulingService(
            pipeline_config=PipelineConfig(workers=SIM_THREADS)
        )
        with svc:
            # -- submit N distinct dags ----------------------------
            wires = [api.dag_to_dict(out_mesh_dag(d))
                     for d in range(2, 2 + N_DAGS)]
            submit_lat: list[float] = []
            fingerprints = []
            for wire in wires:
                t0 = time.perf_counter()
                body = _post(svc.url + "/v1/dags", wire)
                submit_lat.append(time.perf_counter() - t0)
                fingerprints.append(body["fingerprint"])

            # -- resubmit: all answered from the registry ----------
            cached = 0
            for wire in wires:
                body = _post(svc.url + "/v1/dags", wire)
                cached += body["how"] == "cached"

            # -- coalesce: deterministic thundering herd -----------
            coalesce = _coalesce_phase(svc, registry)

            # -- simulate load: throughput + latency ---------------
            sim_lat: list[float] = []
            lat_lock = threading.Lock()

            def sim_worker(worker: int) -> None:
                for i in range(SIM_REQUESTS // SIM_THREADS):
                    fp = fingerprints[(worker + i) % len(fingerprints)]
                    t0 = time.perf_counter()
                    _post(svc.url + "/v1/simulate",
                          {"fingerprint": fp, "policy": "CRITPATH",
                           "clients": 4, "seed": worker})
                    dt = time.perf_counter() - t0
                    with lat_lock:
                        sim_lat.append(dt)

            t_load0 = time.perf_counter()
            workers = [
                threading.Thread(target=sim_worker, args=(w,))
                for w in range(SIM_THREADS)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            t_load = time.perf_counter() - t_load0

            batches = int(registry.value("service_batches_total"))
            batched = int(
                registry.value("service_batched_requests_total"))
            entries = len(svc.registry)
    finally:
        set_global_registry(old_reg)

    sim_lat.sort()
    submit_lat.sort()
    return {
        "schema": 1,
        "workload": (
            f"{N_DAGS} distinct dags submitted + resubmitted, "
            f"{HERD}-way herd on one fingerprint, "
            f"{len(sim_lat)} simulate requests from "
            f"{SIM_THREADS} threads"
        ),
        "coalesce": coalesce,
        "resubmit": {
            "requests": N_DAGS,
            "cached": cached,
            "cached_fraction": round(cached / N_DAGS, 6),
        },
        "registry": {"entries": entries},
        "batching": {
            "requests": batched,
            "batches": batches,
        },
        "submit": {
            "requests": N_DAGS,
            "p50_ms": round(
                _percentile(submit_lat, 0.50) * 1e3, 3),
            "p99_ms": round(
                _percentile(submit_lat, 0.99) * 1e3, 3),
        },
        "simulate": {
            "requests": len(sim_lat),
            "threads": SIM_THREADS,
            "wall_s": round(t_load, 6),
            "requests_per_sec": round(len(sim_lat) / t_load, 3),
            "p50_ms": round(_percentile(sim_lat, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(sim_lat, 0.99) * 1e3, 3),
        },
    }


def _render(record: dict) -> str:
    from repro.analysis import render_table

    c, r = record["coalesce"], record["resubmit"]
    s = record["simulate"]
    rows = [
        ("herd coalescing",
         f"{c['requests']} reqs -> {c['searches']} search",
         f"hit rate {c['hit_rate']:.4f}"),
        ("registry resubmit",
         f"{r['requests']} reqs -> {r['cached']} cached",
         f"cached {r['cached_fraction']:.2f}"),
        ("simulate load",
         f"{s['requests']} reqs @ {s['threads']} threads",
         f"{s['requests_per_sec']}/s "
         f"p50 {s['p50_ms']}ms p99 {s['p99_ms']}ms"),
    ]
    return render_table(
        ["phase", "shape", "result"], rows,
        title="scheduling service over loopback HTTP",
    )


def run() -> dict:
    record = collect_record()
    OUT_DIR.mkdir(exist_ok=True)
    FRESH_RECORD.write_text(json.dumps(record, indent=2) + "\n")
    write_report("E-SERVICE_service", _render(record))
    return record


def test_service_bench(benchmark):
    # time one submit+simulate round trip as the representative kernel
    registry = MetricsRegistry()
    old = set_global_registry(registry)
    try:
        svc = SchedulingService(pipeline_config=PipelineConfig(workers=2))
        with svc:
            wire = api.dag_to_dict(out_mesh_dag(4))
            body = _post(svc.url + "/v1/dags", wire)

            def round_trip():
                _post(svc.url + "/v1/simulate",
                      {"fingerprint": body["fingerprint"],
                       "policy": "CRITPATH", "clients": 4})

            benchmark(round_trip)
    finally:
        set_global_registry(old)
    record = run()
    assert record["coalesce"]["searches"] == 1
    assert record["coalesce"]["hit_rate"] >= (HERD - 1) / HERD
    assert record["resubmit"]["cached_fraction"] == 1.0


if __name__ == "__main__":
    rec = run()
    print(json.dumps(
        {"coalesce": rec["coalesce"], "simulate": rec["simulate"]},
        indent=2,
    ))
