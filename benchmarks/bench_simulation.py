"""E-SIM — the assessment substrate: IC-optimal schedules vs heuristic
baselines on the simulated IC server (standing in for the studies the
paper cites as its evaluation arm, [15] and [19]; see DESIGN.md).

Regenerates, per dag family: the policy comparison table (makespan,
starvation, idle time, utilization, headroom) with heterogeneous
clients, the single-client headroom ranking (where IC-OPT provably
maximizes E(t) pointwise), and the §2.2 batch-satisfaction metric;
times one full simulation sweep.
"""

from repro.analysis import render_table
from repro.core import schedule_dag
from repro.families import diamond, dlt, mesh, prefix
from repro.families.butterfly_net import butterfly_chain
from repro.sim import ClientSpec, batch_satisfaction, compare_policies
from repro.sim.workloads import random_diamond, random_layered_dag

from _harness import policy_table, write_report

FAMILIES = [
    ("diamond d=5", lambda: diamond.complete_diamond(5)),
    ("out-mesh d=12", lambda: mesh.out_mesh_chain(12)),
    ("butterfly B_5", lambda: butterfly_chain(5)),
    ("prefix P_32", lambda: prefix.prefix_chain(32)),
    ("DLT L_16", lambda: dlt.dlt_prefix_chain(16)),
    ("random diamond", lambda: random_diamond(40, seed=11)),
]

HETERO = [ClientSpec(speed=s, dropout=0.15) for s in (0.5, 0.5, 1, 1, 1, 2, 2, 4)]


def test_policy_comparison_per_family(benchmark):
    ch = mesh.out_mesh_chain(12)
    sched = schedule_dag(ch).schedule

    def run():
        return compare_policies(ch.dag, sched, clients=HETERO, seed=1)

    benchmark(run)

    sections = []
    for name, build in FAMILIES:
        chain = build()
        s = schedule_dag(chain).schedule
        sections.append(policy_table(chain.dag, s, clients=HETERO, seed=1))
    write_report(
        "E-SIM_policies",
        "IC-OPT vs baselines, 8 heterogeneous flaky clients\n\n"
        + "\n\n".join(sections),
    )


def test_headroom_and_batches(benchmark):
    """Scenario metrics of §2.2: (1) headroom/starvation with many
    clients, (2) batch satisfaction directly from the eligibility
    profile, where IC-optimality gives a per-step guarantee."""
    ch0 = diamond.complete_diamond(5)
    s0 = schedule_dag(ch0).schedule
    benchmark(lambda: batch_satisfaction(s0.profile, 8))
    rows = []
    agg_ic_best = 0
    for name, build in FAMILIES:
        chain = build()
        s = schedule_dag(chain).schedule
        cmp = compare_policies(chain.dag, s, clients=1, seed=0)
        ic = cmp.results["IC-OPT"].mean_headroom
        best_other = max(
            r.mean_headroom for k, r in cmp.results.items() if k != "IC-OPT"
        )
        agg_ic_best += ic >= best_other - 1e-9
        bs = {
            b: round(batch_satisfaction(s.profile, b), 4) for b in (2, 4, 8)
        }
        rows.append(
            (
                name,
                round(ic, 3),
                round(best_other, 3),
                bs[2],
                bs[4],
                bs[8],
            )
        )
    report = render_table(
        [
            "family",
            "IC-OPT headroom",
            "best baseline",
            "batch-2",
            "batch-4",
            "batch-8",
        ],
        rows,
        title="single-client headroom (IC-OPT maximizes E(t) pointwise) and "
        "§2.2 batch satisfaction of the IC-optimal profile",
    )
    report += (
        f"\nfamilies where IC-OPT headroom >= every baseline: "
        f"{agg_ic_best}/{len(FAMILIES)}"
    )
    write_report("E-SIM_headroom", report)
    assert agg_ic_best == len(FAMILIES)


def test_aggregate_over_random_dags(benchmark):
    """The [15]-style aggregate: many artificially generated dags, mean
    rank of each policy by starvation events."""

    def run():
        ranks: dict[str, list[int]] = {}
        for seed in range(8):
            dag = random_layered_dag(6, 6, arc_prob=0.3, seed=seed)
            sched = schedule_dag(dag, exhaustive_limit=0).schedule
            cmp = compare_policies(dag, sched, clients=6, seed=seed)
            ordered = sorted(
                cmp.results.items(),
                key=lambda kv: (kv[1].starvation_events, kv[1].makespan),
            )
            for rank, (name, _res) in enumerate(ordered):
                ranks.setdefault(name, []).append(rank)
        return {k: sum(v) / len(v) for k, v in ranks.items()}

    mean_ranks = benchmark(run)
    rows = sorted(mean_ranks.items(), key=lambda kv: kv[1])
    report = render_table(
        ["policy", "mean rank (starvation, lower better)"],
        [(k, round(v, 2)) for k, v in rows],
        title="aggregate over 8 random layered dags, 6 clients "
        "(IC-OPT uses the greedy max-eligibility schedule here: these "
        "dags have no certified decomposition — matching [15]'s setup "
        "of the scheduler-vs-heuristics comparison)",
    )
    write_report("E-SIM_aggregate", report)


def test_gridlock_under_client_loss(benchmark):
    """The paper's gridlock motivation made concrete: with lossy
    clients (results that never return), reallocations multiply; the
    comparison shows how each policy's eligibility headroom absorbs
    the churn."""
    from repro.sim import make_policy, simulate

    lossy = [ClientSpec(speed=s, loss=0.25) for s in (0.5, 1, 1, 2, 2, 4)]
    ch = diamond.complete_diamond(5)
    sched = schedule_dag(ch).schedule

    def run():
        return simulate(ch.dag, make_policy("IC-OPT", sched), lossy, seed=4)

    benchmark(run)

    rows = []
    for name in ("IC-OPT", "FIFO", "LIFO", "RANDOM", "MAXOUT", "CRITPATH"):
        policy = make_policy(name, sched if name == "IC-OPT" else None)
        res = simulate(ch.dag, policy, lossy, seed=4)
        rows.append(
            (
                name,
                round(res.makespan, 2),
                res.lost_allocations,
                round(res.wasted_work, 2),
                res.starvation_events,
                round(res.utilization, 4),
            )
        )
    report = render_table(
        ["policy", "makespan", "losses", "wasted work", "starvation", "util"],
        rows,
        title="diamond d=5 on 6 lossy clients (25% result loss, "
        "reallocation on detection)",
    )
    write_report("E-SIM_gridlock_loss", report)


def test_scientific_workflows(benchmark):
    """The [19]-style evaluation rebuilt: policy comparison on the four
    scientific-workflow replicas (see DESIGN.md substitutions)."""
    from repro.sim import make_policy, simulate
    from repro.sim.scientific import SCIENTIFIC_WORKFLOWS

    clients = [ClientSpec(speed=s, dropout=0.1) for s in (0.5, 1, 1, 2, 2, 4)]
    dag0, work0 = SCIENTIFIC_WORKFLOWS["cybershake"]()
    sched0 = schedule_dag(dag0, exhaustive_limit=0).schedule

    def run():
        return simulate(
            dag0, make_policy("IC-OPT", sched0), clients, work=work0, seed=2
        )

    benchmark(run)

    rows = []
    wins = 0
    for name in sorted(SCIENTIFIC_WORKFLOWS):
        dag, work = SCIENTIFIC_WORKFLOWS[name]()
        sched = schedule_dag(dag, exhaustive_limit=0).schedule
        cmp = compare_policies(dag, sched, clients=clients, work=work, seed=2)
        ic = cmp.results["IC-OPT"]
        fifo = cmp.results["FIFO"]
        wins += ic.makespan <= fifo.makespan
        rows.append(
            (
                dag.name,
                len(dag),
                round(ic.makespan, 2),
                round(fifo.makespan, 2),
                ic.starvation_events,
                fifo.starvation_events,
            )
        )
    report = render_table(
        [
            "workflow",
            "tasks",
            "IC-OPT makespan",
            "FIFO makespan",
            "IC-OPT starv.",
            "FIFO starv.",
        ],
        rows,
        title="[19] substitution: IC-greedy scheduler vs DAGMan-style "
        "FIFO on four scientific-workflow replicas, 6 heterogeneous "
        "flaky clients",
    )
    report += f"\nIC-OPT matches-or-beats FIFO makespan on {wins}/4 workflows"
    write_report("E-SIM_scientific", report)
