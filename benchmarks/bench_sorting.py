"""E-S5.2a — §5.2 sorting: comparator networks via the butterfly block.

Regenerates: bitonic networks of several widths, their ▷-linear
certificates, and end-to-end sorting correctness under the IC-optimal
schedule; times the full sort of 64 keys through the dag engine.
"""

import random

from repro.analysis import render_table
from repro.compute.sorting import bitonic_sort, sorting_network_chain
from repro.core import is_ic_optimal, schedule_dag

from _harness import write_report


def test_bitonic_sorting(benchmark):
    rng = random.Random(0)
    keys64 = [rng.randint(0, 10_000) for _ in range(64)]

    def run():
        return bitonic_sort(keys64)

    out = benchmark(run)
    assert out == sorted(keys64)

    rows = []
    for n in (4, 8, 16, 32):
        ch = sorting_network_chain(n)
        r = schedule_dag(ch)
        keys = [rng.randint(0, 999) for _ in range(n)]
        ok = bitonic_sort(keys) == sorted(keys)
        verified = is_ic_optimal(r.schedule) if n <= 4 else "-"
        rows.append(
            (n, len(ch.dag), len(ch), r.certificate.value, verified, ok)
        )
    report = render_table(
        ["wires", "nodes", "comparators", "certificate", "exhaustive", "sorts"],
        rows,
        title="§5.2 comparator sorting (bitonic) on iterated compositions of B "
        "(transformation 5.1)",
    )
    write_report("E-S5.2a_sorting", report)
