"""The Section 8 extensions in action: almost-optimal scheduling,
batched rounds, structure recognition, and Strassen through the §7
gateway.

Run:  python examples/beyond_the_paper.py
"""

import numpy as np

from repro.analysis import render_table
from repro.compute.strassen import strassen_multiply
from repro.core import (
    ComputationDag,
    best_effort_schedule,
    coffman_graham_batches,
    find_ic_optimal_schedule,
    greedy_schedule,
    hu_batches,
    optimal_batches,
    quality_report,
    recognize,
    schedule_dag,
)
from repro.families import mesh


def main() -> None:
    # 1. A dag with no IC-optimal schedule — and the best schedule it
    #    *does* admit (§8 thrust 2)
    hard = ComputationDag(
        arcs=[("a", "w")] + [(s, t) for s in "bc" for t in "xyz"],
        name="no-optimum",
    )
    assert find_ic_optimal_schedule(hard) is None
    print("dag", hard.name, "admits no IC-optimal schedule; best effort:")
    print(" ", quality_report(best_effort_schedule(hard)))
    print("  vs greedy:", quality_report(greedy_schedule(hard)))
    print()

    # 2. Batched scheduling ([20]): exact vs polynomial batchers
    dag = mesh.out_mesh_dag(4)
    rows = []
    for cap in (2, 3):
        rows.append(
            (
                cap,
                optimal_batches(dag, cap, node_limit=16).rounds,
                hu_batches(dag, cap).rounds,
                coffman_graham_batches(dag, cap).rounds,
            )
        )
    print(
        render_table(
            ["capacity", "exact rounds", "Hu", "Coffman-Graham"],
            rows,
            title="batched scheduling of the depth-4 out-mesh",
        )
    )
    print()

    # 3. Structure recognition: a scrambled mesh regains its certificate
    scrambled = mesh.out_mesh_dag(8).relabel(
        lambda v: ("anon", hash(("salt", v)) & 0xFFFF)
    )
    chain = recognize(scrambled)
    result = schedule_dag(chain)
    print(
        f"recognized scrambled dag as {chain.name.split(':')[-1]}; "
        f"certificate: {result.certificate.value}"
    )
    print()

    # 4. Strassen: 7 multiplications through the same dag machinery
    rng = np.random.default_rng(0)
    a, b = rng.random((8, 8)), rng.random((8, 8))
    print(
        "Strassen 8×8 matches numpy:",
        bool(np.allclose(strassen_multiply(a, b), a @ b)),
    )


if __name__ == "__main__":
    main()
