"""Cookbook: wiring *your own* computation into the theory.

A toy map-reduce analytics job — split a corpus, count words in each
shard, merge the counts — is exactly an expansion-reduction computation
(Section 3), so the library certifies its schedule, executes it, and
simulates it on flaky volunteers, end to end.

Run:  python examples/custom_computation.py
"""

from collections import Counter

from repro.analysis import render_gantt, render_series
from repro.compute import TaskGraph
from repro.core import is_ic_optimal, schedule_dag
from repro.families.diamond import diamond_chain
from repro.sim import ClientSpec, make_policy, simulate

CORPUS = (
    "the quick brown fox jumps over the lazy dog "
    "the dog barks and the fox runs away over the hill "
    "a lazy afternoon for the quick brown dog and the sly fox "
    "the hill is quiet and the afternoon runs away quick"
).split()


def main() -> None:
    # 1. Shape: a binary split tree over 8 shards + its dual merge tree.
    children = {
        ("split", lo, hi): [
            ("split", lo, (lo + hi) // 2),
            ("split", (lo + hi) // 2, hi),
        ]
        for lo, hi in [
            (0, 8), (0, 4), (4, 8), (0, 2), (2, 4), (4, 6), (6, 8)
        ]
    }
    root = ("split", 0, 8)
    chain = diamond_chain(children, root, name="wordcount")
    result = schedule_dag(chain)
    print(chain.dag.summary())
    print("certificate:", result.certificate.value,
          "| exhaustively optimal:", is_ic_optimal(result.schedule))
    print(render_series("E(t)", result.schedule.profile))
    print()

    # 2. Semantics: split tasks slice the corpus; leaf tasks count
    #    their shard; merge tasks add Counters.
    shard = len(CORPUS) // 8
    tg = TaskGraph(chain.dag)
    for v in chain.dag.nodes:
        if v in children:  # internal split: pass the range down
            tg.set_task(v, lambda *_a, _v=v: _v[1:])
        elif isinstance(v, tuple) and v[0] == "split":  # leaf shard
            lo, hi = v[1], v[2]
            end = len(CORPUS) if hi == 8 else hi * shard
            words = CORPUS[lo * shard : end]
            tg.set_task(v, lambda *_a, _w=tuple(words): Counter(_w))
        else:  # ("acc", ...): merge counts
            tg.set_task(v, lambda *cs: sum(cs, Counter()))
    counts = tg.run(result.schedule)[chain.dag.sinks[0]]
    print("top words:", counts.most_common(4))
    assert counts == Counter(CORPUS)
    print()

    # 3. Operations: run it on four flaky volunteers and look at the
    #    allocation timeline.
    res = simulate(
        chain.dag,
        make_policy("IC-OPT", result.schedule),
        clients=[ClientSpec(speed=s, loss=0.15) for s in (1, 1, 2, 4)],
        seed=3,
        record_trace=True,
    )
    print(
        f"simulated: makespan {res.makespan:.2f}, "
        f"lost allocations {res.lost_allocations}, "
        f"wasted work {res.wasted_work:.2f}"
    )
    print(render_gantt(res.trace, 4, width=64))


if __name__ == "__main__":
    main()
