"""Section 5.2: butterfly-structured computations — FFT, polynomial
multiplication, and comparator sorting on the same dag family.

Every butterfly block computes (y₀, y₁) from (x₀, x₁); swapping the
transformation turns the d-dimensional butterfly network from an FFT
engine (5.2) into a sorting network stage (5.1), and either way the
network is an iterated composition of B, so the same IC-optimal
schedule applies.

Run:  python examples/fft_convolution.py
"""

import random

import numpy as np

from repro.analysis import render_series
from repro.compute.convolution import polynomial_multiply
from repro.compute.fft import fft, inverse_fft
from repro.compute.sorting import bitonic_sort
from repro.core import schedule_dag
from repro.families.butterfly_net import butterfly_chain


def main() -> None:
    rng = random.Random(0)

    # The dag family and its schedule
    chain = butterfly_chain(4)
    result = schedule_dag(chain)
    print(chain.dag.summary())
    print(
        f"B_4 = {len(chain)} copies of B, certificate:",
        result.certificate.value,
    )
    print(render_series("E(t)", result.schedule.profile, max_items=26))
    print()

    # Transformation (5.2): the FFT
    x = [complex(rng.random(), rng.random()) for _ in range(16)]
    ours = fft(x)
    ref = np.fft.fft(np.array(x))
    print("FFT of 16 random points, max |err| vs numpy:",
          max(abs(a - b) for a, b in zip(ours, ref)))
    back = inverse_fft(ours)
    print("round-trip max |err|:", max(abs(a - b) for a, b in zip(back, x)))
    print()

    # Convolution / polynomial product via the convolution theorem
    p = [1.0, 2.0, 3.0]  # 1 + 2x + 3x²
    q = [4.0, 0.0, -1.0]  # 4 - x²
    print(f"({p}) × ({q}) =", [round(c, 6) for c in polynomial_multiply(p, q)])
    print("numpy.convolve       :", list(np.convolve(p, q)))
    print()

    # Transformation (5.1): comparator sorting on the same block
    keys = [rng.randint(0, 99) for _ in range(16)]
    print("keys  :", keys)
    print("sorted:", bitonic_sort(keys))


if __name__ == "__main__":
    main()
