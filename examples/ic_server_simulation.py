"""The IC server simulation: IC-optimal allocation vs natural
heuristics on heterogeneous, flaky remote clients.

This reproduces the shape of the assessment the paper cites ([15],
[19]): on dags from the paper's own families, the eligibility-greedy
IC-optimal policy matches or beats FIFO/LIFO/random/greedy baselines
on starvation events and headroom.

Run:  python examples/ic_server_simulation.py
"""

from repro.analysis import render_table
from repro.core import schedule_dag
from repro.families import diamond, mesh, prefix
from repro.sim import ClientSpec, batch_satisfaction, compare_policies


def main() -> None:
    clients = [
        ClientSpec(speed=s, dropout=0.15) for s in (0.5, 0.5, 1, 1, 1, 2, 2, 4)
    ]
    for name, chain in (
        ("diamond depth 5", diamond.complete_diamond(5)),
        ("out-mesh depth 12", mesh.out_mesh_chain(12)),
        ("parallel-prefix P_32", prefix.prefix_chain(32)),
    ):
        sched_result = schedule_dag(chain)
        cmp = compare_policies(
            chain.dag, sched_result.schedule, clients=clients, seed=1
        )
        print(
            render_table(
                ["policy", "makespan", "starvation", "idle", "util", "headroom"],
                cmp.table_rows(),
                title=f"{name} ({len(chain.dag)} tasks, "
                f"certificate={sched_result.certificate.value}), "
                "8 heterogeneous flaky clients",
            )
        )
        profile = sched_result.schedule.profile
        print(
            "batch satisfaction of the IC-optimal profile:",
            {b: round(batch_satisfaction(profile, b), 3) for b in (2, 4, 8)},
        )
        print()


if __name__ == "__main__":
    main()
