"""Section 7: the matrix-multiplication dag M — including the
reproduction finding about the §7 boxed schedule.

Run:  python examples/matrix_multiply.py
"""

import numpy as np

from repro.analysis import render_series
from repro.compute.matmul import multiply_blocks_2x2, recursive_multiply
from repro.core import (
    ExecutionState,
    is_ic_optimal,
    max_eligibility_profile,
    schedule_dag,
)
from repro.families import matmul_dag as mm


def main() -> None:
    chain = mm.matmul_chain()
    dag = chain.dag
    result = schedule_dag(chain)
    print(dag.summary())
    print("composite type:", chain.type_string())
    print("certificate:", result.certificate.value)
    print()

    # The §7 box says: "compute the eight products in the order
    # AE, CE, CF, AF, BG, DG, DH, BH".  Executing the loads in cycle
    # order renders the products ELIGIBLE in exactly that order:
    st = ExecutionState(dag)
    rendered = []
    for v in mm.LOAD_ORDER:
        rendered.extend(st.execute(v))
    print("loads", mm.LOAD_ORDER, "render products eligible as:", rendered)

    # ...but *executing* the product tasks in that verbatim order is
    # not IC-optimal — pairing products by their sums dominates:
    ceiling = max_eligibility_profile(dag)
    paper = mm.paper_schedule(dag)
    verbatim = mm.verbatim_box_schedule(dag)
    print(render_series("ceiling M(t)      ", ceiling))
    print(render_series("sum-paired products", paper.profile))
    print("  IC-optimal:", is_ic_optimal(paper, ceiling))
    print(render_series("verbatim box order ", verbatim.profile))
    print("  IC-optimal:", is_ic_optimal(verbatim, ceiling))
    print()

    # Value-level execution, fine to coarse
    a = [[1.0, 2.0], [3.0, 4.0]]
    b = [[5.0, 6.0], [7.0, 8.0]]
    print("2×2 via the dag:", multiply_blocks_2x2(a, b))
    print("numpy           :", (np.array(a) @ np.array(b)).tolist())

    rng = np.random.default_rng(0)
    a8, b8 = rng.random((8, 8)), rng.random((8, 8))
    got = recursive_multiply(a8, b8)
    print(
        "recursive 8×8 scalar dag matches numpy:",
        bool(np.allclose(got, a8 @ b8)),
    )


if __name__ == "__main__":
    main()
