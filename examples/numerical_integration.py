"""Section 3.2 end to end: adaptive quadrature as an IC-scheduled
expansion-reduction (diamond) computation.

The adaptive rule decides, per interval, whether a single panel is
accurate enough or the interval must split — growing the irregular
out-tree.  The dual in-tree accumulates the panel areas.  The whole
diamond is a ▷-linear composition, so Theorem 2.1 hands us an
IC-optimal schedule, and executing the task graph under it computes
the integral.

Run:  python examples/numerical_integration.py
"""

import math

from repro.analysis import render_series, render_table
from repro.compute.integration import integrate, quadrature_diamond
from repro.core import linear_composition_schedule, schedule_dag


def main() -> None:
    cases = [
        ("sin(x) on [0, π]", math.sin, 0.0, math.pi, 2.0),
        ("e^x on [0, 1]", math.exp, 0.0, 1.0, math.e - 1),
        (
            "sharp gaussian at x=0.2",
            lambda x: math.exp(-200 * (x - 0.2) ** 2),
            0.0,
            1.0,
            None,
        ),
    ]
    rows = []
    for name, f, a, b, exact in cases:
        res = integrate(f, a, b, tol=1e-8, rule="simpson")
        err = "-" if exact is None else f"{abs(res.value - exact):.2e}"
        nodes = len(res.chain.dag) if res.chain else 1
        rows.append((name, res.panels, nodes, f"{res.value:.10f}", err))
    print(
        render_table(
            ["integrand", "panels", "dag nodes", "integral", "abs err"],
            rows,
            title="adaptive Simpson quadrature via IC-optimally scheduled diamonds",
        )
    )

    # Peek at the machinery for the irregular case: the tree is deeper
    # where the integrand is sharp, and the diamond still certifies.
    chain, tg = quadrature_diamond(
        lambda x: math.exp(-200 * (x - 0.2) ** 2), 0.0, 1.0, tol=1e-6
    )
    result = schedule_dag(chain)
    print()
    print("irregular diamond:", chain.dag.summary())
    print("certificate:", result.certificate.value)
    sched = linear_composition_schedule(chain)
    print(render_series("E(t) under Theorem 2.1", sched.profile, max_items=30))
    values = tg.run(sched)
    print("integral from the dag execution:", values[chain.dag.sinks[0]])


if __name__ == "__main__":
    main()
