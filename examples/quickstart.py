"""Quickstart: build a paper dag, derive its IC-optimal schedule, and
see why eligibility headroom matters.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_series, render_table
from repro.core import Schedule, is_ic_optimal, schedule_dag
from repro.families import mesh
from repro.sim import compare_policies


def main() -> None:
    # 1. Build the depth-6 out-mesh (Fig. 5) as its Fig. 6 composition
    #    chain W_1 ⇑ W_2 ⇑ ... ⇑ W_6 — the chain carries the
    #    decomposition certificate Theorem 2.1 needs.
    chain = mesh.out_mesh_chain(6)
    print(chain.dag.summary())
    print("composite type:", chain.type_string())

    # 2. Schedule it.  The result says *how* optimality is certified.
    result = schedule_dag(chain)
    print("certificate:", result.certificate.value)
    print(render_series("IC-optimal eligibility profile E(t)", result.schedule.profile))

    # 3. Cross-check with the exhaustive engine (feasible at this size).
    print("exhaustively verified IC-optimal:", is_ic_optimal(result.schedule))

    # 4. Compare against a naive row-major sweep of the same mesh.
    dag = chain.dag
    row_major = Schedule(dag, sorted(dag.nodes, key=lambda v: (v[1], v[0])))
    print(render_series("row-major sweep E(t)      ", row_major.profile))

    # 5. Simulate an IC server handing tasks to 6 remote clients under
    #    different allocation policies.
    cmp = compare_policies(dag, result.schedule, clients=6, seed=0)
    print()
    print(
        render_table(
            ["policy", "makespan", "starvation", "idle", "util", "headroom"],
            cmp.table_rows(),
            title="6 unit-speed clients pulling tasks from the IC server",
        )
    )


if __name__ == "__main__":
    main()
