"""Section 4: wavefront computations on mesh dags, plus the Fig. 7
coarsening trade-off.

Run:  python examples/wavefront_mesh.py
"""

import math

from repro.analysis import render_series, render_table
from repro.compute.wavefront import pascal_triangle, wavefront_relaxation
from repro.core import schedule_dag
from repro.families import mesh
from repro.granularity.mesh_coarsen import mesh_coarsening_accounting


def main() -> None:
    # The dag and its by-diagonal IC-optimal schedule
    chain = mesh.out_mesh_chain(8)
    result = schedule_dag(chain)
    print(chain.dag.summary())
    print("certificate:", result.certificate.value)
    print(render_series("E(t)", result.schedule.profile, max_items=30))
    print()

    # A fine-grained wavefront: Pascal's triangle
    rows = pascal_triangle(8)
    print("Pascal row 8 via the mesh dag:", rows[8])
    print("math.comb check             :", [math.comb(8, m) for m in range(9)])
    print()

    # A finite-element-flavoured sweep
    vals = wavefront_relaxation(6, source=lambda k, m: 1.0 / (1 + k + m))
    deepest = [vals[(6, m)] for m in range(7)]
    print("relaxation values on the deepest diagonal:")
    print([round(v, 4) for v in deepest])
    print()

    # Fig. 7: block coarsening — work grows with area, communication
    # with perimeter
    rows = []
    for b in (1, 2, 4, 6):
        rep = mesh_coarsening_accounting(23, b)
        rows.append(
            (
                b,
                len(rep.work),
                rep.max_work,
                f"{rep.cut_arcs / len(rep.work):.2f}",
                f"{rep.communication_fraction:.3f}",
            )
        )
    print(
        render_table(
            ["block b", "clusters", "max work", "cut/cluster", "comm fraction"],
            rows,
            title="Fig. 7 coarsening of the depth-23 out-mesh",
        )
    )


if __name__ == "__main__":
    main()
