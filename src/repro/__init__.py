"""repro — a reproduction of *Applying IC-Scheduling Theory to Familiar
Classes of Computations* (Cordasco, Malewicz, Rosenberg; IPPS 2007).

The package implements IC-Scheduling Theory — scheduling
computation-dags for Internet-based computing so that ELIGIBLE tasks
are produced at the maximum possible rate — together with every dag
family, computation, multi-granularity transform, and simulation
baseline the paper discusses.

Quick start::

    from repro import families, core

    mesh = families.mesh.out_mesh_chain(6)          # Fig. 5/6 out-mesh
    result = core.schedule_dag(mesh)                # Theorem 2.1
    assert result.ic_optimal
    print(result.schedule.profile)                  # eligibility E(t)

Subpackages
-----------
``repro.core``
    Dags, execution/eligibility model, schedules, exhaustive
    IC-optimality, the ▷ relation, composition ⇑, duality (Section 2).
``repro.blocks``
    The building-block catalog: V, Λ, W, M, N, cycle, butterfly blocks
    with their known IC-optimal schedules.
``repro.families``
    The paper's dag families: trees, diamonds (Section 3), meshes
    (Section 4), butterfly networks (Section 5), parallel-prefix
    (Section 6.1), DLT dags (Section 6.2.1), graph-paths (Section
    6.2.2), matrix-multiply (Section 7).
``repro.compute``
    Value-level task semantics: adaptive quadrature, FFT/convolution,
    comparator sorting, scans, DLT, block matrix multiply, wavefront
    dynamic programming.
``repro.granularity``
    Task clustering / multi-granularity transforms (coarsening).
``repro.sim``
    The event-driven IC server/client simulator with heuristic
    baselines (FIFO, LIFO, random, greedy, critical-path).
``repro.analysis``
    Eligibility-profile analytics and report rendering.
"""

from . import analysis, blocks, compute, core, families, granularity, sim
from .core import (
    CompositionChain,
    ComputationDag,
    Schedule,
    schedule_dag,
)
from .exceptions import (
    ClusteringError,
    CompositionError,
    ComputeError,
    CycleError,
    DagStructureError,
    OptimalityError,
    PriorityError,
    ReproError,
    ScheduleError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "CompositionChain",
    "ComputationDag",
    "Schedule",
    "schedule_dag",
    "analysis",
    "blocks",
    "compute",
    "core",
    "families",
    "granularity",
    "sim",
    "ReproError",
    "DagStructureError",
    "CycleError",
    "ScheduleError",
    "CompositionError",
    "PriorityError",
    "OptimalityError",
    "ClusteringError",
    "SimulationError",
    "ComputeError",
    "__version__",
]
