"""repro — a reproduction of *Applying IC-Scheduling Theory to Familiar
Classes of Computations* (Cordasco, Malewicz, Rosenberg; IPPS 2007).

The package implements IC-Scheduling Theory — scheduling
computation-dags for Internet-based computing so that ELIGIBLE tasks
are produced at the maximum possible rate — together with every dag
family, computation, multi-granularity transform, and simulation
baseline the paper discusses.

Quick start::

    from repro import api, families

    mesh = families.mesh.out_mesh_chain(6)          # Fig. 5/6 out-mesh
    result = api.schedule(mesh)                     # Theorem 2.1
    assert result.ic_optimal
    print(result.profile)                           # eligibility E(t)

Subpackages
-----------
``repro.api``
    The stable v1 facade: ``schedule()``, ``verify()``,
    ``simulate()``, ``compare()``, ``coarsen()`` with keyword-only
    options and frozen results — the import surface the CLI and the
    scheduling service use (see ``docs/API_MIGRATION.md``).
``repro.service``
    Scheduling-as-a-service: the sharded dag registry, the
    coalescing/batching request pipeline, and the HTTP JSON API
    (see ``docs/SERVICE.md``).
``repro.core``
    Dags, execution/eligibility model, schedules, exhaustive
    IC-optimality, the ▷ relation, composition ⇑, duality (Section 2).
``repro.blocks``
    The building-block catalog: V, Λ, W, M, N, cycle, butterfly blocks
    with their known IC-optimal schedules.
``repro.families``
    The paper's dag families: trees, diamonds (Section 3), meshes
    (Section 4), butterfly networks (Section 5), parallel-prefix
    (Section 6.1), DLT dags (Section 6.2.1), graph-paths (Section
    6.2.2), matrix-multiply (Section 7).
``repro.compute``
    Value-level task semantics: adaptive quadrature, FFT/convolution,
    comparator sorting, scans, DLT, block matrix multiply, wavefront
    dynamic programming.
``repro.granularity``
    Task clustering / multi-granularity transforms (coarsening).
``repro.sim``
    The event-driven IC server/client simulator with heuristic
    baselines (FIFO, LIFO, random, greedy, critical-path).
``repro.analysis``
    Eligibility-profile analytics and report rendering.
"""

from . import analysis, blocks, compute, core, families, granularity, sim
from .core import (
    CompositionChain,
    ComputationDag,
    Schedule,
    schedule_dag,
)
from .exceptions import (
    ClusteringError,
    CompositionError,
    ComputeError,
    CycleError,
    DagStructureError,
    OptimalityError,
    PriorityError,
    ReproError,
    ScheduleError,
    SimulationError,
)

__version__ = "1.0.0"

#: lazily imported subpackages (PEP 562): the facade and the service
#: pull in simulation / HTTP machinery that library-only users (and
#: the hot layers themselves) never need at import time.
_LAZY_SUBPACKAGES = ("api", "service")


def __getattr__(name: str):
    if name in _LAZY_SUBPACKAGES:
        import importlib

        return importlib.import_module(f"{__name__}.{name}")
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "CompositionChain",
    "ComputationDag",
    "Schedule",
    "api",
    "schedule_dag",
    "service",
    "analysis",
    "blocks",
    "compute",
    "core",
    "families",
    "granularity",
    "sim",
    "ReproError",
    "DagStructureError",
    "CycleError",
    "ScheduleError",
    "CompositionError",
    "PriorityError",
    "OptimalityError",
    "ClusteringError",
    "SimulationError",
    "ComputeError",
    "__version__",
]
