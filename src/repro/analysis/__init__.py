"""Eligibility-profile analytics and plain-text report rendering for
the benchmark harness."""

from . import ascii_dag, profiles, reporting
from . import dot
from .ascii_dag import render_dag, render_gantt, render_profile_bars
from .dot import to_dot
from .profiles import (
    dominance_relation,
    profile_area,
    profile_summary,
    time_to_k_eligible,
)
from .reporting import render_kv, render_series, render_table

__all__ = [
    "ascii_dag",
    "dominance_relation",
    "dot",
    "render_dag",
    "render_gantt",
    "render_profile_bars",
    "profile_area",
    "profile_summary",
    "profiles",
    "render_kv",
    "render_series",
    "render_table",
    "reporting",
    "to_dot",
    "time_to_k_eligible",
]
