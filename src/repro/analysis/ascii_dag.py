"""Plain-text dag rendering.

Draws a dag level by level (longest-path depth), one line of node
labels per level with arc fan-in annotations — enough to eyeball the
structures of Figs. 1-17 in a terminal and in the bench reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.dag import ComputationDag, Node

if TYPE_CHECKING:
    from ..sim.server import TraceRecord

__all__ = ["render_dag", "render_profile_bars", "render_gantt"]


def _short(v: Node, width: int = 12) -> str:
    s = str(v)
    return s if len(s) <= width else s[: width - 1] + "…"


def render_dag(dag: ComputationDag, max_width: int = 100) -> str:
    """Render ``dag`` as one line per depth level.

    Each node shows as ``label(<parents)`` where the parent list is
    elided to its count for fan-in above 2.  Lines longer than
    ``max_width`` are truncated with an ellipsis and a node count.
    """
    levels: dict[int, list[Node]] = {}
    for v, lv in dag.node_levels().items():
        levels.setdefault(lv, []).append(v)
    lines = [f"{dag.name}: {len(dag)} nodes, depth {dag.depth()}"]
    for lv in sorted(levels):
        cells = []
        for v in levels[lv]:
            parents = dag.parents(v)
            if not parents:
                cells.append(_short(v))
            elif len(parents) <= 2:
                ps = ",".join(_short(p, 8) for p in parents)
                cells.append(f"{_short(v)}(<{ps})")
            else:
                cells.append(f"{_short(v)}(<{len(parents)}p)")
        line = f"  L{lv}: " + "  ".join(cells)
        if len(line) > max_width:
            line = line[: max_width - 16] + f"… [{len(levels[lv])} nodes]"
        lines.append(line)
    return "\n".join(lines)


def render_profile_bars(
    profile: list[int], width: int = 50, label: str = "E(t)"
) -> str:
    """A horizontal bar chart of an eligibility profile."""
    if not profile:
        return f"{label}: (empty)"
    peak = max(max(profile), 1)
    lines = [f"{label} (peak {peak}):"]
    for t, e in enumerate(profile):
        bar = "#" * round(e / peak * width)
        lines.append(f"  t={t:<4d} {e:>4d} |{bar}")
    return "\n".join(lines)


def render_gantt(
    trace: "list[TraceRecord]",
    n_clients: int,
    width: int = 72,
    max_label: int = 6,
) -> str:
    """An ASCII Gantt chart of a simulation trace (one row per client).

    ``trace`` rows are :class:`repro.sim.server.TraceRecord` entries
    (``(client_id, task, start, end, kind)``, index-compatible with
    the bare tuples of earlier versions) as produced by
    ``simulate(..., record_trace=True)``; lost allocations render in
    lowercase-x fill, completed ones with ``=``.
    """
    if not trace:
        return "(empty trace)"
    horizon = max(end for _c, _t, _s, end, _k in trace)
    if horizon <= 0:
        return "(zero-length trace)"
    scale = width / horizon
    lines = [f"gantt (horizon {horizon:g}, {len(trace)} allocations):"]
    for cid in range(n_clients):
        row = [" "] * (width + 1)
        for c, task, start, end, kind in trace:
            if c != cid:
                continue
            a = int(start * scale)
            b = max(a + 1, int(end * scale))
            fill = "x" if kind == "lost" else "="
            for i in range(a, min(b, width)):
                row[i] = fill
            label = str(task)[:max_label]
            for i, ch in enumerate(label):
                if a + i < width:
                    row[a + i] = ch
        lines.append(f"  c{cid:<2d} |{''.join(row)}|")
    return "\n".join(lines)
