"""Graphviz DOT export.

Emits plain DOT text (no graphviz dependency) for dags, optionally
annotated with a schedule's execution order or a clustering's
supertask grouping — paste into any DOT renderer to draw the paper's
figures from the live objects.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core.dag import ComputationDag, Node
from ..core.schedule import Schedule

__all__ = ["to_dot"]


def _ident(v: Node) -> str:
    return '"' + str(v).replace('"', "'") + '"'


def to_dot(
    dag: ComputationDag,
    schedule: Schedule | None = None,
    clusters: Mapping[Node, Node] | None = None,
    rankdir: str = "TB",
) -> str:
    """DOT text for ``dag``.

    ``schedule`` annotates each node with its execution step;
    ``clusters`` groups nodes into DOT subgraph clusters (the
    granularity view).  Sources render as doublecircles, sinks as
    boxes.
    """
    lines = [f"digraph {_ident(dag.name)} {{", f"  rankdir={rankdir};"]
    step = (
        {v: i for i, v in enumerate(schedule.order)} if schedule else {}
    )

    def node_line(v: Node, indent: str = "  ") -> str:
        attrs = []
        if dag.is_source(v):
            attrs.append("shape=doublecircle")
        elif dag.is_sink(v):
            attrs.append("shape=box")
        label = str(v)
        if v in step:
            label += f"\\n#{step[v]}"
        attrs.append(f'label="{label}"')
        return f"{indent}{_ident(v)} [{', '.join(attrs)}];"

    if clusters:
        grouped: dict[Node, list[Node]] = {}
        for v in dag.nodes:
            grouped.setdefault(clusters.get(v, v), []).append(v)
        for i, (cid, members) in enumerate(grouped.items()):
            lines.append(f"  subgraph cluster_{i} {{")
            lines.append(f'    label="{cid}";')
            for v in members:
                lines.append(node_line(v, indent="    "))
            lines.append("  }")
    else:
        for v in dag.nodes:
            lines.append(node_line(v))
    for u, v in dag.arcs:
        lines.append(f"  {_ident(u)} -> {_ident(v)};")
    lines.append("}")
    return "\n".join(lines)
