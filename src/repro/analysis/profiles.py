"""Eligibility-profile analytics.

Helpers the benches and experiments use to compare schedules along the
paper's quality measure: pointwise dominance, aggregate area (total
eligibility headroom over the run), and time-to-k-eligible (how fast a
schedule can feed k parallel clients).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.dag import ComputationDag
from ..core.schedule import Schedule, dominates

__all__ = [
    "profile_area",
    "time_to_k_eligible",
    "dominance_relation",
    "profile_summary",
]


def profile_area(profile: Sequence[int]) -> int:
    """Sum of the eligibility profile — total headroom integrated over
    (event-driven) time.  An IC-optimal schedule maximizes every term,
    hence also this aggregate."""
    return sum(profile)


def time_to_k_eligible(profile: Sequence[int], k: int) -> int | None:
    """The first step ``t`` with ``E(t) >= k`` — the earliest moment a
    size-k client burst could be fully served — or ``None`` if the
    profile never reaches ``k``."""
    for t, e in enumerate(profile):
        if e >= k:
            return t
    return None


def dominance_relation(a: Sequence[int], b: Sequence[int]) -> str:
    """Classify two equal-length profiles: ``"equal"``, ``"a"`` /
    ``"b"`` (strict pointwise dominance), or ``"incomparable"``."""
    ge = dominates(a, b)
    le = dominates(b, a)
    if ge and le:
        return "equal"
    if ge:
        return "a"
    if le:
        return "b"
    return "incomparable"


def profile_summary(schedule: Schedule) -> dict:
    """A compact numeric summary of a schedule's profile."""
    prof = schedule.profile
    return {
        "name": schedule.name,
        "dag": schedule.dag.name,
        "steps": len(prof) - 1,
        "peak": max(prof),
        "area": profile_area(prof),
        "time_to_peak": prof.index(max(prof)),
    }
