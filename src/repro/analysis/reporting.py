"""Plain-text rendering of experiment tables and series.

The benchmark harness prints, for every figure/claim of the paper, the
regenerated rows in a uniform ASCII format so EXPERIMENTS.md entries
can be pasted straight from bench output.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_series", "render_kv"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """A fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(r) for r in cells[1:])
    return "\n".join(lines)


def render_series(
    name: str, series: Sequence, max_items: int = 40
) -> str:
    """One labelled series line, elided in the middle when long."""
    vals = [str(v) for v in series]
    if len(vals) > max_items:
        half = max_items // 2
        vals = vals[:half] + ["..."] + vals[-half:]
    return f"{name}: [{', '.join(vals)}]"


def render_kv(pairs: dict, title: str | None = None) -> str:
    """Key/value block."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{str(k).ljust(width)} : {v}" for k, v in pairs.items())
    return "\n".join(lines)
