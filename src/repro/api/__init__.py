"""``repro.api`` — the stable v1 facade.

One import surface for everything the library *does*, with one calling
convention: the target (a dag, a composition chain, or a pair of dags)
is positional, every option is keyword-only, and every verb returns a
frozen result dataclass (:mod:`repro.api.results`).  The HTTP service
(:mod:`repro.service`) and the CLI call only this module; the
underlying entry points (``core.schedule_dag``, ``sim.simulate*``,
``granularity.*``) remain importable but are no longer the public
contract — see ``docs/API_MIGRATION.md`` for the mapping from legacy
call forms.

Verbs
-----
:func:`schedule`
    Schedule a dag or composition chain with the strongest available
    IC-optimality certificate.
:func:`verify`
    Schedule, then exhaustively check the result against the
    max-eligibility ceiling.
:func:`simulate`
    Run the IC server/client simulation — self-scheduled (default),
    under a named baseline policy, under a caller-supplied schedule,
    or in the batched regimen of [20] (``batches=``).
:func:`compare`
    Run every baseline policy plus IC-OPT on identical clients/seeds
    and tabulate the quality gap.
:func:`coarsen`
    Cluster a fine-grained dag into coarse tasks and account the
    computation/communication trade.
:func:`batch`
    Compare the batch schedulers (levels / Hu / Coffman–Graham) at a
    capacity.
:func:`priority`
    Test the ▷ relation between two dags, both directions.

Wire formats (``dag_to_dict`` and friends) are re-exported verbatim:
they are already versioned (``format: 1``) and are the service's
request/response vocabulary.

Quick start::

    from repro import api, families

    mesh = families.mesh.out_mesh_chain(6)
    result = api.schedule(mesh)
    assert result.ic_optimal
    print(result.certificate, result.profile)
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from ..core.batched import (
    BatchSchedule,
    coffman_graham_batches,
    hu_batches,
    level_batches,
    min_rounds_lower_bound,
)
from ..core.composition import CompositionChain
from ..core.dag import ComputationDag, Node
from ..core.io import (
    dag_from_dict,
    dag_from_json,
    dag_to_dict,
    dag_to_json,
    schedule_from_dict,
    schedule_to_dict,
)
from ..core.priority import has_priority
from ..core.profile_cache import ProfileCache, global_profile_cache
from ..core.quality import quality_report
from ..core.schedule import Schedule
from ..core.scheduler import schedule_dag as _schedule_dag
from ..granularity.clustering import clustering_report
from .specs import MachineSpec, parse_machine
from .results import (
    BatchResult,
    CoarsenResult,
    CompareResult,
    PriorityResult,
    ScheduleResult,
    SimulateResult,
    VerifyResult,
)

__all__ = [
    "API_VERSION",
    "BatchResult",
    "ClientSpec",
    "FaultPlan",
    "MachineReport",
    "MachineSpec",
    "ServerPolicy",
    "CoarsenResult",
    "CompareResult",
    "PriorityResult",
    "ScheduleResult",
    "SimulateResult",
    "VerifyResult",
    "batch",
    "compare",
    "coarsen",
    "dag_from_dict",
    "dag_from_json",
    "dag_to_dict",
    "dag_to_json",
    "parse_machine",
    "priority",
    "schedule",
    "schedule_from_dict",
    "schedule_to_dict",
    "simulate",
    "verify",
]

#: the facade's compatibility version; bumped only on breaking change.
API_VERSION = 1

#: input-builder types re-exported lazily (PEP 562) from the
#: simulation layer, so facade callers never import ``repro.sim``:
#: client populations, chaos scripts, fault-tolerance policies, and
#: machine-model reports are *inputs to / outputs of*
#: :func:`simulate` / :func:`compare`.  (:class:`MachineSpec` itself
#: lives in :mod:`repro.api.specs` and is re-exported eagerly above.)
_LAZY_SIM_TYPES = ("ClientSpec", "FaultPlan", "MachineReport", "ServerPolicy")


def __getattr__(name: str):
    if name in _LAZY_SIM_TYPES:
        from .. import sim

        return getattr(sim, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def _as_dag(target) -> ComputationDag:
    """The bare dag behind a facade target (chains carry ``.dag``)."""
    return target.dag if isinstance(target, CompositionChain) else target


def schedule(
    target,
    *,
    strategy: str = "auto",
    budget: int | None = None,
    exhaustive_limit: int = 24,
    state_budget: int = 500_000,
    parallel: bool = False,
    workers: int | None = None,
    cache: ProfileCache | bool = True,
) -> ScheduleResult:
    """Schedule ``target`` with the strongest available certificate.

    Parameters
    ----------
    target:
        A :class:`~repro.core.dag.ComputationDag` or a
        :class:`~repro.core.composition.CompositionChain` (preferred —
        carries its own decomposition certificate).
    strategy:
        Certification strategy (``docs/CERTIFICATION.md``): ``"auto"``
        (decomposition first, exhaustive on residuals, then anytime /
        heuristic — the default), ``"compositional"`` (decomposition
        only; raises when it fails), ``"exhaustive"``, ``"anytime"``,
        or ``"heuristic"``.
    budget:
        Anytime state budget: when auto certification cannot finish,
        return the best schedule found with certified eligibility-loss
        bounds (certificate ``"anytime"``) instead of an unlabeled
        heuristic.  ``None`` (default) disables the anytime fallback.
    exhaustive_limit:
        Maximum number of nonsinks for which exhaustive search is
        attempted on undecomposable dags; ``0`` disables the
        exhaustive residual path.
    state_budget:
        Ideal-state cap for the exhaustive search; exceeding it falls
        back (anytime under a ``budget``, else the stamped heuristic).
    parallel / workers:
        Fan the exhaustive search over a process pool (same result,
        faster arrival; see ``docs/PERFORMANCE.md``).
    cache:
        ``True`` (default) memoizes in the process-wide certification
        cache; a :class:`~repro.core.profile_cache.ProfileCache` uses
        a private one; ``False`` searches from scratch.
    """
    res = _schedule_dag(
        target,
        strategy=strategy,
        budget=budget,
        exhaustive_limit=exhaustive_limit,
        state_budget=state_budget,
        parallel=parallel,
        workers=workers,
        cache=cache,
    )
    return ScheduleResult(
        fingerprint=_as_dag(target).fingerprint(),
        certificate=res.certificate.value,
        ic_optimal=res.ic_optimal,
        profile=tuple(res.schedule.profile),
        schedule=res.schedule,
        kind=res.kind,
        strategy=res.strategy,
        bounds=res.bounds,
        provenance=tuple(
            (p.block, p.fingerprint, p.source) for p in res.provenance
        ),
    )


def verify(
    target,
    *,
    strategy: str = "auto",
    budget: int | None = None,
    exhaustive_limit: int = 24,
    state_budget: int = 500_000,
    parallel: bool = False,
    workers: int | None = None,
    cache: ProfileCache | bool = True,
) -> VerifyResult:
    """Schedule ``target``, then exhaustively check the result against
    the max-eligibility ceiling ``M(t)``.

    The certificate reports what the *scheduler* could prove; the
    ratio/deficit/area fields report what the exhaustive check
    *measured* — ``ic_optimal`` is True exactly when the schedule's
    profile meets the ceiling at every step, independent of the
    certificate (an ``"anytime"`` or ``"heuristic"`` schedule can
    still verify clean).
    """
    sched = schedule(
        target,
        strategy=strategy,
        budget=budget,
        exhaustive_limit=exhaustive_limit,
        state_budget=state_budget,
        parallel=parallel,
        workers=workers,
        cache=cache,
    )
    dag = sched.schedule.dag
    if cache is True:
        cache = global_profile_cache()
    if isinstance(cache, ProfileCache):
        ceiling = cache.max_profile(
            dag, state_budget, parallel=parallel, workers=workers
        )
    else:
        from ..core.optimality import max_eligibility_profile

        ceiling = max_eligibility_profile(
            dag, state_budget, parallel=parallel, workers=workers
        )
    rep = quality_report(sched.schedule, max_profile=ceiling)
    return VerifyResult(
        fingerprint=sched.fingerprint,
        certificate=sched.certificate,
        ic_optimal=rep.ic_optimal,
        ratio=rep.ratio,
        deficit=rep.deficit,
        area=rep.area,
        schedule=sched.schedule,
        kind=sched.kind,
        strategy=sched.strategy,
        bounds=sched.bounds,
        provenance=sched.provenance,
    )


def simulate(
    target,
    *,
    policy: str = "IC-OPT",
    schedule_order: Schedule | None = None,
    batches: BatchSchedule | None = None,
    clients=4,
    work: Callable[[Node], float] | float = 1.0,
    seed: int = 0,
    comm_per_input: float = 0.0,
    record_trace: bool = False,
    server_policy=None,
    fault_plan=None,
    machine: str | MachineSpec = "ideal",
    strategy: str = "auto",
    budget: int | None = None,
    exhaustive_limit: int = 24,
    state_budget: int = 500_000,
    parallel: bool = False,
    workers: int | None = None,
    cache: ProfileCache | bool = True,
) -> SimulateResult:
    """Run the IC server/client simulation on ``target``.

    Four regimes, selected by the keyword options:

    * default (``policy="IC-OPT"``) — schedule the dag through the
      certification path (so repeated calls for the same structure
      reuse the cached search) and simulate under the resulting
      priority order; this replaces ``sim.simulate_scheduled``;
    * ``policy="FIFO" | "LIFO" | "RANDOM" | "MAXOUT" | "CRITPATH"`` —
      simulate under a baseline heuristic, no scheduling;
    * ``schedule_order=`` — simulate under a caller-supplied
      :class:`~repro.core.schedule.Schedule` (policy ``IC-OPT``
      semantics, no certification run);
    * ``batches=`` — the batched regimen of [20] (one batch per
      period, a barrier per round); this replaces
      ``sim.simulate_batched``.

    ``clients``, ``work``, ``seed``, ``comm_per_input``,
    ``record_trace``, ``server_policy``, and ``fault_plan`` pass
    through to the event loop (see :func:`repro.sim.server.simulate`);
    ``machine`` selects the machine model the clients run on — a spec
    string such as ``"bsp:g=1,L=2"`` or a :class:`MachineSpec`
    (``"ideal"``, the default, is the free-communication model and
    leaves the run bit-for-bit identical to earlier releases); the
    remaining options tune the certification path of the default
    regime.
    """
    from ..exceptions import SimulationError
    from ..sim.heuristics import make_policy
    from ..sim.server import _simulate_batched_impl, simulate as _simulate

    spec = parse_machine(machine) if isinstance(machine, str) else machine
    model = None if spec.kind == "ideal" else spec
    dag = _as_dag(target)
    fingerprint = dag.fingerprint()
    if batches is not None:
        if model is not None:
            raise SimulationError(
                "the batched regimen supports only the ideal machine; "
                f"got machine={str(spec)!r}"
            )
        res = _simulate_batched_impl(
            dag, batches, clients, work, seed, comm_per_input
        )
        return _wrap_simulation(fingerprint, res, None, None, machine=spec)
    if schedule_order is not None:
        res = _simulate(
            dag, make_policy("IC-OPT", schedule_order), clients, work,
            seed, comm_per_input, record_trace,
            server_policy=server_policy, fault_plan=fault_plan,
            machine=model,
        )
        return _wrap_simulation(
            fingerprint, res, None, schedule_order, machine=spec
        )
    if policy == "IC-OPT":
        scheduled = schedule(
            target,
            strategy=strategy,
            budget=budget,
            exhaustive_limit=exhaustive_limit,
            state_budget=state_budget,
            parallel=parallel,
            workers=workers,
            cache=cache,
        )
        from ..obs.observatory import global_frame_store

        frame_store = global_frame_store()
        if frame_store.enabled:
            # observatory frames compare achieved eligibility against
            # this certified ceiling M(t)
            frame_store.set_profile(dag, scheduled.profile)
        res = _simulate(
            dag, make_policy("IC-OPT", scheduled.schedule), clients,
            work, seed, comm_per_input, record_trace,
            server_policy=server_policy, fault_plan=fault_plan,
            machine=model,
        )
        return _wrap_simulation(
            fingerprint, res, scheduled.certificate, scheduled.schedule,
            kind=scheduled.kind, machine=spec,
        )
    res = _simulate(
        dag, make_policy(policy), clients, work, seed, comm_per_input,
        record_trace, server_policy=server_policy, fault_plan=fault_plan,
        machine=model,
    )
    return _wrap_simulation(fingerprint, res, None, None, machine=spec)


def _wrap_simulation(
    fingerprint: str, res, certificate: str | None,
    schedule_order: Schedule | None, kind: str | None = None,
    machine: MachineSpec | None = None,
) -> SimulateResult:
    return SimulateResult(
        fingerprint=fingerprint,
        policy=res.policy,
        certificate=certificate,
        makespan=res.makespan,
        utilization=res.utilization,
        starvation_events=res.starvation_events,
        idle_time=res.idle_time,
        completed=res.completed,
        lost_allocations=res.lost_allocations,
        mean_headroom=res.mean_headroom,
        result=res,
        schedule=schedule_order,
        kind=kind,
        machine="ideal" if machine is None else str(machine),
        machine_report=getattr(res, "machine_report", None),
    )


def compare(
    target,
    *,
    clients=4,
    policies: Sequence[str] = (
        "FIFO", "LIFO", "RANDOM", "MAXOUT", "CRITPATH",
    ),
    work=1.0,
    seed: int = 0,
    comm_per_input: float = 0.0,
    server_policy=None,
    fault_plan=None,
    machine: str | MachineSpec = "ideal",
    include_ic_optimal: bool = True,
    strategy: str = "auto",
    budget: int | None = None,
    exhaustive_limit: int = 24,
    state_budget: int = 500_000,
    parallel: bool = False,
    workers: int | None = None,
    cache: ProfileCache | bool = True,
) -> CompareResult:
    """Run every baseline policy — plus IC-OPT, scheduled through the
    certification path, unless ``include_ic_optimal=False`` — on
    identical clients, seeds, identical machine model (``machine=``,
    spec string or :class:`MachineSpec`), and (when given) an
    identical chaos script, and tabulate the quality gap."""
    from ..sim.metrics import compare_policies

    spec = parse_machine(machine) if isinstance(machine, str) else machine
    dag = _as_dag(target)
    certificate = None
    ic_schedule = None
    if include_ic_optimal:
        scheduled = schedule(
            target,
            strategy=strategy,
            budget=budget,
            exhaustive_limit=exhaustive_limit,
            state_budget=state_budget,
            parallel=parallel,
            workers=workers,
            cache=cache,
        )
        certificate = scheduled.certificate
        ic_schedule = scheduled.schedule
    cmp = compare_policies(
        dag, ic_schedule, clients=clients, policies=tuple(policies),
        work=work, seed=seed, comm_per_input=comm_per_input,
        server_policy=server_policy, fault_plan=fault_plan,
        machine=None if spec.kind == "ideal" else spec,
    )
    return CompareResult(
        fingerprint=dag.fingerprint(),
        dag_name=cmp.dag_name,
        n_clients=cmp.n_clients,
        policies=tuple(cmp.results),
        rows=tuple(cmp.table_rows()),
        best_policy=cmp.best_by("makespan"),
        certificate=certificate,
        comparison=cmp,
        machine=str(spec),
    )


def coarsen(
    target,
    cluster_map: Mapping[Node, Node],
    *,
    name: str | None = None,
) -> CoarsenResult:
    """Cluster the fine-grained ``target`` into coarse tasks.

    ``cluster_map`` maps every fine node to a cluster id; the quotient
    must be acyclic (raises
    :class:`~repro.exceptions.ClusteringError` otherwise).  The result
    accounts the granularity trade: coarse task count and work spread
    versus the fine arcs cut (Internet traffic) and kept internal.
    """
    dag = _as_dag(target)
    rep = clustering_report(dag, cluster_map)
    if name is not None:
        rep.quotient.name = name
    return CoarsenResult(
        fingerprint=dag.fingerprint(),
        coarse_fingerprint=rep.quotient.fingerprint(),
        tasks=len(rep.work),
        cut_arcs=rep.cut_arcs,
        internal_arcs=rep.internal_arcs,
        communication_fraction=rep.communication_fraction,
        max_work=rep.max_work,
        dag=rep.quotient,
        report=rep,
    )


def batch(target, *, capacity: int = 4) -> BatchResult:
    """Compare the batch schedulers of the batched regimen [20] —
    unlimited-capacity levels, Hu, and Coffman–Graham — on ``target``
    at the given per-round ``capacity``."""
    dag = _as_dag(target)
    levels = level_batches(dag)
    hu = hu_batches(dag, capacity)
    cg = coffman_graham_batches(dag, capacity)
    return BatchResult(
        fingerprint=dag.fingerprint(),
        dag_name=dag.name,
        capacity=capacity,
        lower_bound=min_rounds_lower_bound(dag, capacity),
        rows=(
            ("levels", levels.rounds, levels.utilization),
            ("hu", hu.rounds, hu.utilization),
            ("coffman-graham", cg.rounds, cg.utilization),
        ),
    )


def priority(
    left,
    right,
    *,
    left_schedule: Schedule | None = None,
    right_schedule: Schedule | None = None,
) -> PriorityResult:
    """Test the ▷ relation between two dags, both directions.

    Known IC-optimal schedules may be supplied to skip the exhaustive
    searches; raises :class:`~repro.exceptions.PriorityError` when a
    dag admits no IC-optimal schedule.
    """
    g1, g2 = _as_dag(left), _as_dag(right)
    return PriorityResult(
        left=g1.name,
        right=g2.name,
        forward=has_priority(g1, g2, left_schedule, right_schedule),
        backward=has_priority(g2, g1, right_schedule, left_schedule),
    )
