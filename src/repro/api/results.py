"""Frozen result types of the :mod:`repro.api` v1 facade.

Every facade verb returns one of these immutable dataclasses.  They
are the *stability contract* of the v1 API:

* **frozen** — results are values; nothing downstream can mutate a
  certificate after the fact;
* **flat** — the headline numbers (certificate, makespan, ratio, ...)
  are plain fields of JSON-native types, so serializing a result for
  a wire or a log never needs to understand library internals;
* **picklable** — results cross process boundaries intact (worker
  pools, result caches), pinned by ``tests/test_api.py``;
* **self-describing** — each carries the content-addressed
  ``fingerprint`` of the dag it talks about, the same identity the
  certification cache and the service's
  :class:`~repro.service.registry.DagRegistry` key by.

The rich library objects (``Schedule``, ``SimulationResult``, ...)
remain available as trailing ``repr=False`` fields for callers that
need full detail; only the flat fields are covered by the v1
compatibility promise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.dag import ComputationDag
from ..core.schedule import Schedule
from ..granularity.clustering import ClusteringReport
from ..sim.machines import MachineReport
from ..sim.metrics import PolicyComparison
from ..sim.server import SimulationResult

__all__ = [
    "BatchResult",
    "CoarsenResult",
    "CompareResult",
    "PriorityResult",
    "ScheduleResult",
    "SimulateResult",
    "VerifyResult",
]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of :func:`repro.api.schedule`."""

    #: content-addressed identity of the scheduled dag
    fingerprint: str
    #: certificate granted (``"composition"``, ``"segmented"``,
    #: ``"exhaustive"``, ``"none-exists"``, ``"anytime"``, or
    #: ``"heuristic"``)
    certificate: str
    #: True when the certificate proves IC-optimality
    ic_optimal: bool
    #: the schedule's eligibility profile ``E(0..n)``
    profile: tuple[int, ...]
    #: the full validated schedule (execution order + dag)
    schedule: Schedule = field(repr=False)
    #: coarse certificate kind: ``"exact"`` / ``"composed"`` /
    #: ``"anytime"`` / ``"heuristic"`` (``docs/CERTIFICATION.md``)
    kind: str = "exact"
    #: certification strategy that produced the result
    strategy: str = "auto"
    #: certified ``(lower, upper)`` bounds on the schedule's
    #: eligibility loss; ``(0, 0)`` for certified IC-optimal results,
    #: a genuine interval on the anytime path, ``None`` when nothing
    #: was measured (heuristic)
    bounds: tuple[int, int] | None = None
    #: per-block certificate provenance of a composed schedule:
    #: ``(block_name, block_fingerprint, source)`` triples, empty for
    #: monolithic certifications
    provenance: tuple[tuple[str, str, str], ...] = ()


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of :func:`repro.api.verify`."""

    #: content-addressed identity of the verified dag
    fingerprint: str
    #: certificate the scheduler granted before the exhaustive check
    certificate: str
    #: True when the schedule matches the exhaustive ceiling everywhere
    ic_optimal: bool
    #: ``min_t E(t) / M(t)`` over nonzero ceiling steps
    ratio: float
    #: number of steps where the profile falls below the ceiling
    deficit: int
    #: profile area / ceiling area
    area: float
    #: the schedule that was verified
    schedule: Schedule = field(repr=False)
    #: coarse certificate kind the scheduler stamped
    kind: str = "exact"
    #: certification strategy the scheduling pass used
    strategy: str = "auto"
    #: the scheduler's certified loss bounds (see
    #: :class:`ScheduleResult.bounds`); the *measured* loss is
    #: ``deficit``
    bounds: tuple[int, int] | None = None
    #: per-block certificate provenance of a composed schedule
    provenance: tuple[tuple[str, str, str], ...] = ()


@dataclass(frozen=True)
class SimulateResult:
    """Outcome of :func:`repro.api.simulate`."""

    #: content-addressed identity of the simulated dag
    fingerprint: str
    #: allocation policy the run used (``IC-OPT``, a baseline name, or
    #: ``BATCHED(...)``)
    policy: str
    #: scheduling certificate when the facade scheduled the dag itself;
    #: ``None`` when a caller-supplied schedule/batches drove the run
    certificate: str | None
    makespan: float
    utilization: float
    starvation_events: int
    idle_time: float
    completed: int
    lost_allocations: int
    #: time-averaged allocatable-task count
    mean_headroom: float
    #: the full simulation record (headroom series, trace, faults)
    result: SimulationResult = field(repr=False)
    #: the schedule driving an ``IC-OPT`` run, when one exists
    schedule: Schedule | None = field(repr=False, default=None)
    #: coarse certificate kind backing ``certificate`` (``None`` when
    #: the facade did not schedule the dag itself)
    kind: str | None = None
    #: canonical spec string of the machine model the run used
    #: (``"ideal"`` for the free-communication default)
    machine: str = "ideal"
    #: per-model accounting (supersteps, spills, duration factors);
    #: ``None`` on the ideal path
    machine_report: MachineReport | None = field(repr=False, default=None)


@dataclass(frozen=True)
class CompareResult:
    """Outcome of :func:`repro.api.compare`."""

    #: content-addressed identity of the compared dag
    fingerprint: str
    dag_name: str
    n_clients: int
    #: policies in run order (``IC-OPT`` first when scheduled)
    policies: tuple[str, ...]
    #: rows ``(policy, makespan, starvation, idle, utilization,
    #: mean_headroom, seed)`` — the standard report table; the trailing
    #: seed column records the rng seed each policy's run used
    rows: tuple[tuple, ...]
    #: policy with the smallest makespan
    best_policy: str
    #: scheduling certificate backing the ``IC-OPT`` entry (``None``
    #: when the comparison ran baselines only)
    certificate: str | None
    #: per-policy :class:`~repro.sim.server.SimulationResult` details
    comparison: PolicyComparison = field(repr=False)
    #: canonical spec string of the machine model every policy ran on
    machine: str = "ideal"


@dataclass(frozen=True)
class CoarsenResult:
    """Outcome of :func:`repro.api.coarsen`."""

    #: content-addressed identity of the *fine* input dag
    fingerprint: str
    #: content-addressed identity of the coarse quotient dag
    coarse_fingerprint: str
    #: number of coarse tasks (clusters)
    tasks: int
    #: fine arcs crossing clusters (Internet traffic after coarsening)
    cut_arcs: int
    #: fine arcs kept inside clusters (local traffic)
    internal_arcs: int
    #: share of fine arcs that cross clusters (1.0 = no locality win)
    communication_fraction: float
    #: largest cluster's fine-node count (work of the heaviest task)
    max_work: int
    #: the quotient dag, schedulable as coarse tasks
    dag: ComputationDag = field(repr=False)
    #: full work/communication accounting
    report: ClusteringReport = field(repr=False)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of :func:`repro.api.batch`."""

    #: content-addressed identity of the batched dag
    fingerprint: str
    dag_name: str
    capacity: int
    #: ``max(ceil(n/cap), critical-path length)`` round floor
    lower_bound: int
    #: rows ``(batcher, rounds, utilization)`` for the level / Hu /
    #: Coffman–Graham batchers under the capacity
    rows: tuple[tuple, ...]


@dataclass(frozen=True)
class PriorityResult:
    """Outcome of :func:`repro.api.priority` — the ▷ relation, both
    directions."""

    left: str
    right: str
    #: ``left ▷ right``
    forward: bool
    #: ``right ▷ left``
    backward: bool
