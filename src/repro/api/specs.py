"""The unified spec-string grammar of the ``repro`` surfaces.

Three CLI/service surfaces accept compact spec strings: ``--faults``
(a chaos script), ``--server-policy`` (fault-tolerance machinery), and
``--machine`` (a machine model).  Historically each grammar lived next
to its dataclass with its own ad-hoc tokenizer; this module is the one
shared parser behind all three, with

* **uniform error messages** — every parse failure raises the
  surface's :class:`~repro.exceptions.SimulationError` subclass with a
  ``bad <what> <text>`` message built by the same helpers;
* **round-trip ``str()`` forms** — :func:`fault_plan_str`,
  :func:`server_policy_str`, and ``str(MachineSpec)`` render a spec
  string that parses back to an equivalent object, so a sweep row can
  always name the exact configuration that produced it.

The legacy entry points (``FaultPlan.parse``, ``ServerPolicy.parse``)
remain supported and delegate here; the module-level helpers they used
to share inside :mod:`repro.sim.faults` are deprecated shims now.

This module deliberately imports nothing from :mod:`repro.sim` at
module level (the simulation layer imports *it* for
:class:`MachineSpec`), so it stays cycle-free; the fault/server-policy
parsers import their target dataclasses lazily.

Machine spec grammar (``docs/MACHINES.md``)::

    KIND                   ideal | bsp | memcap | hetero
    KIND:key=val,key=val   keyword parameters, per kind:
      bsp      g=0.5,L=1.0       per-unit comm cost g, barrier latency L
      memcap   cap=3,spill=2.0   per-client memory slots, forced-spill cost
      hetero   spread=0.5,seed=0 duration jitter fraction, draw seed

Examples: ``bsp``, ``bsp:g=1.0,L=2.0``, ``memcap:cap=2``,
``hetero:spread=0.3,seed=7``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import FaultPlanError, MachineSpecError, ServerPolicyError

__all__ = [
    "MACHINE_KINDS",
    "MachineSpec",
    "fault_plan_str",
    "parse_fault_plan",
    "parse_machine",
    "parse_server_policy",
    "server_policy_str",
]


# ----------------------------------------------------------------------
# shared scalar helpers (uniform error messages)
# ----------------------------------------------------------------------


def _parse_float(text: str, what: str, error=FaultPlanError) -> float:
    try:
        return float(text)
    except ValueError:
        raise error(f"bad {what} {text!r}") from None


def _parse_int(text: str, what: str, error=FaultPlanError) -> int:
    try:
        return int(text)
    except ValueError:
        raise error(f"bad {what} {text!r}") from None


def _parse_at(text: str, what: str,
              error=FaultPlanError) -> tuple[int, str]:
    cid, sep, t = text.partition("@")
    if not sep:
        raise error(f"{what} token needs CID@TIME, got {text!r}")
    return _parse_int(cid, f"{what} client", error), t


def _parse_x(text: str, token: str, default: float | None = None,
             error=FaultPlanError):
    """Split ``AxB`` into floats; ``A`` alone uses ``default`` for B."""
    a, sep, b = text.partition("x")
    t = _parse_float(a, f"time in {token!r}", error)
    if sep:
        return t, _parse_float(b, f"value in {token!r}", error)
    if default is None:
        raise error(f"token {token!r} needs TIMExVALUE")
    return t, default


def _num(x: float) -> str:
    """Render a float minimally but round-trippably (``2`` not ``2.0``
    when integral, full ``repr`` otherwise)."""
    x = float(x)
    return str(int(x)) if x.is_integer() else repr(x)


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------


def parse_fault_plan(spec: str, n_clients: int = 4):
    """Parse a ``--faults`` spec into a
    :class:`~repro.sim.faults.FaultPlan`.

    Either a scenario name with optional seed — ``churn`` /
    ``churn:seed=3`` — or a comma-separated event list::

        crash:CID@T          client CID dies at time T
        stall:CID@TxDUR      client CID stalls for DUR at time T
        join@T  join@TxSPD   a client (speed SPD) joins at time T
        corrupt=RATE         corrupt each result with prob. RATE
        seed=N               the plan's private random seed

    Example: ``crash:0@2,stall:1@1.5x4,join@5x2.0,corrupt=0.1``.
    """
    from ..sim.faults import FAULT_SCENARIOS, FaultEvent, FaultPlan
    from ..sim.server import ClientSpec

    spec = spec.strip()
    if not spec:
        raise FaultPlanError("empty fault spec")
    head, _, tail = spec.partition(":")
    if head in FAULT_SCENARIOS:
        seed = 0
        if tail:
            key, _, val = tail.partition("=")
            if key != "seed":
                raise FaultPlanError(
                    f"scenario option must be seed=N, got {tail!r}"
                )
            seed = _parse_int(val, "scenario seed")
        return FaultPlan.scenario(head, n_clients=n_clients, seed=seed)
    events: list = []
    corrupt = 0.0
    seed = 0
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token.startswith("corrupt="):
            corrupt = _parse_float(token[8:], "corrupt rate")
        elif token.startswith("seed="):
            seed = _parse_int(token[5:], "plan seed")
        elif token.startswith("crash:"):
            cid, t = _parse_at(token[6:], "crash")
            events.append(FaultEvent(
                time=_parse_float(t, "crash time"), kind="crash",
                client=cid))
        elif token.startswith("stall:"):
            cid, t = _parse_at(token[6:], "stall")
            t, dur = _parse_x(t, token)
            events.append(FaultEvent(time=t, kind="stall",
                                     client=int(cid), duration=dur))
        elif token.startswith("join@"):
            t, speed = _parse_x(token[5:], token, default=1.0)
            events.append(FaultEvent(
                time=t, kind="join", spec=ClientSpec(speed=speed)))
        else:
            raise FaultPlanError(
                f"bad fault token {token!r} (try crash:0@2, "
                "stall:1@1.5x4, join@5, corrupt=0.1, seed=7, or a "
                f"scenario name: {sorted(FAULT_SCENARIOS)})"
            )
    return FaultPlan(events=tuple(events), corrupt_rate=corrupt,
                     seed=seed, name="custom")


def fault_plan_str(plan) -> str:
    """Render a :class:`~repro.sim.faults.FaultPlan` as a spec string
    :func:`parse_fault_plan` accepts.

    Round trip: the parsed plan has identical ``events``,
    ``corrupt_rate``, and ``seed``; the presentation ``name`` of
    scenario-built plans normalizes to ``"custom"`` (the event list,
    not the label, is the behavior).  Joined clients render only their
    speed — the grammar's expressiveness — which covers every plan the
    grammar itself can build.
    """
    tokens: list[str] = []
    for ev in plan.events:
        if ev.kind == "crash":
            tokens.append(f"crash:{ev.client}@{_num(ev.time)}")
        elif ev.kind == "stall":
            tokens.append(
                f"stall:{ev.client}@{_num(ev.time)}x{_num(ev.duration)}"
            )
        elif ev.kind == "join":
            speed = ev.spec.speed if ev.spec is not None else 1.0
            tokens.append(f"join@{_num(ev.time)}x{_num(speed)}")
    if plan.corrupt_rate:
        tokens.append(f"corrupt={_num(plan.corrupt_rate)}")
    if plan.seed:
        tokens.append(f"seed={plan.seed}")
    return ",".join(tokens) if tokens else "seed=0"


# ----------------------------------------------------------------------
# server policies
# ----------------------------------------------------------------------


def parse_server_policy(spec: str):
    """Parse a ``--server-policy`` spec into a
    :class:`~repro.sim.faults.ServerPolicy`: comma-separated
    ``key=value`` with keys ``timeout``, ``retries``, ``backoff``,
    ``jitter``, ``speculate`` (a factor, or ``off``), ``replicas``,
    ``critical``, ``quarantine``.  An empty spec is the default
    policy.  Example: ``timeout=4,retries=3,speculate=off``.
    """
    from ..sim.faults import ServerPolicy

    kwargs: dict = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        key, sep, val = token.partition("=")
        if not sep or key not in ServerPolicy._PARSE_KEYS:
            raise ServerPolicyError(
                f"bad server-policy token {token!r}; known keys: "
                f"{sorted(ServerPolicy._PARSE_KEYS)}"
            )
        field_name, conv = ServerPolicy._PARSE_KEYS[key]
        if key == "speculate" and val.lower() in ("off", "none"):
            kwargs[field_name] = None
            continue
        try:
            kwargs[field_name] = conv(val)
        except ValueError:
            raise ServerPolicyError(
                f"bad value {val!r} for server-policy key {key!r}"
            ) from None
    return ServerPolicy(**kwargs)


def server_policy_str(policy) -> str:
    """Render a :class:`~repro.sim.faults.ServerPolicy` as a spec
    string; ``parse_server_policy(server_policy_str(p)) == p``."""
    from ..sim.faults import ServerPolicy

    tokens = []
    for key, (field_name, _conv) in ServerPolicy._PARSE_KEYS.items():
        val = getattr(policy, field_name)
        tokens.append(
            f"{key}=off" if val is None else f"{key}={_num(val)}"
        )
    return ",".join(tokens)


# ----------------------------------------------------------------------
# machine specs
# ----------------------------------------------------------------------

#: machine kinds and their parameter schema: kind -> {key: default}.
#: ``seed`` is carried as a float here (one uniform scalar type for
#: the grammar) and converted to ``int`` when the model is built.
MACHINE_KINDS: dict[str, dict[str, float]] = {
    "ideal": {},
    "bsp": {"g": 0.5, "L": 1.0},
    "memcap": {"cap": 3.0, "spill": 2.0},
    "hetero": {"spread": 0.5, "seed": 0.0},
}


@dataclass(frozen=True)
class MachineSpec:
    """A parsed, validated machine-model configuration.

    The value half of the pluggable machine layer
    (``docs/MACHINES.md``): a ``kind`` from :data:`MACHINE_KINDS` plus
    normalized ``(key, value)`` parameter pairs.  Hashable and frozen,
    with a round-trip ``str()`` form — ``MachineSpec.parse(str(s)) ==
    s`` — so results can carry the exact machine they ran under as a
    plain string.  :meth:`build` constructs the runtime
    :class:`~repro.sim.machines.MachineModel`.
    """

    kind: str = "ideal"
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in MACHINE_KINDS:
            raise MachineSpecError(
                f"unknown machine kind {self.kind!r}; known: "
                f"{sorted(MACHINE_KINDS)}"
            )
        allowed = MACHINE_KINDS[self.kind]
        seen: set[str] = set()
        norm: list[tuple[str, float]] = []
        for key, val in self.params:
            if key not in allowed:
                raise MachineSpecError(
                    f"unknown key {key!r} for machine {self.kind!r}; "
                    f"known: {sorted(allowed) if allowed else '(none)'}"
                )
            if key in seen:
                raise MachineSpecError(
                    f"duplicate key {key!r} in machine spec"
                )
            seen.add(key)
            norm.append((key, float(val)))
        object.__setattr__(self, "params", tuple(sorted(norm)))
        self._validate()

    def _validate(self) -> None:
        if self.kind == "bsp":
            if self.get("g") < 0 or self.get("L") < 0:
                raise MachineSpecError(
                    "bsp g and L must be >= 0, got "
                    f"g={self.get('g')}, L={self.get('L')}"
                )
        elif self.kind == "memcap":
            if self.get("cap") < 1:
                raise MachineSpecError(
                    "memcap cap must be >= 1 (a client needs one slot "
                    f"to run anything), got {self.get('cap')}"
                )
            if not self.get("spill") > 0:
                raise MachineSpecError(
                    "memcap spill cost must be > 0 (the forced-spill "
                    "valve must consume time so runs stay "
                    f"well-ordered), got {self.get('spill')}"
                )
        elif self.kind == "hetero":
            if not 0.0 <= self.get("spread") < 1.0:
                raise MachineSpecError(
                    "hetero spread must be in [0, 1) so durations stay "
                    f"positive, got {self.get('spread')}"
                )
            if not float(self.get("seed")).is_integer():
                raise MachineSpecError(
                    f"hetero seed must be an integer, got "
                    f"{self.get('seed')}"
                )

    def get(self, key: str) -> float:
        """A parameter value, falling back to the kind's default."""
        defaults = MACHINE_KINDS[self.kind]
        if key not in defaults:
            raise MachineSpecError(
                f"machine {self.kind!r} has no key {key!r}; known: "
                f"{sorted(defaults) if defaults else '(none)'}"
            )
        return dict(self.params).get(key, defaults[key])

    @classmethod
    def parse(cls, spec: str) -> "MachineSpec":
        """Parse a ``--machine`` spec: ``KIND`` or
        ``KIND:key=val,key=val`` (see the module docstring for the
        per-kind schema)."""
        spec = spec.strip()
        if not spec:
            raise MachineSpecError("empty machine spec")
        head, _, tail = spec.partition(":")
        params: list[tuple[str, float]] = []
        for token in tail.split(",") if tail else ():
            token = token.strip()
            if not token:
                continue
            key, sep, val = token.partition("=")
            if not sep:
                raise MachineSpecError(
                    f"bad machine token {token!r}; expected key=value"
                )
            params.append((
                key.strip(),
                _parse_float(val.strip(), f"machine key {key.strip()!r}",
                             MachineSpecError),
            ))
        return cls(kind=head, params=tuple(params))

    def __str__(self) -> str:
        if not self.params:
            return self.kind
        body = ",".join(f"{k}={_num(v)}" for k, v in self.params)
        return f"{self.kind}:{body}"

    def build(self):
        """Construct the runtime
        :class:`~repro.sim.machines.MachineModel` for this spec (a
        fresh, unattached instance per call — models are stateful
        within a run)."""
        from ..sim.machines import build_machine

        return build_machine(self)


def parse_machine(spec: str) -> MachineSpec:
    """Functional alias of :meth:`MachineSpec.parse` (the shared-
    grammar entry point, mirroring :func:`parse_fault_plan` and
    :func:`parse_server_policy`)."""
    return MachineSpec.parse(spec)
