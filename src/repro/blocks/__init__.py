"""Building-block dags of IC-Scheduling Theory with their catalogued
IC-optimal schedules: Vee/Lambda (Fig. 1, Fig. 14), W-/M-dags
(Section 4), N-dags (Section 6.1), bipartite cycle-dags (Section 7),
and the butterfly block (Fig. 8)."""

from .butterfly import (
    bsnk,
    bsrc,
    butterfly_block,
    butterfly_block_schedule,
)
from .catalog import BLOCK_KINDS, PAPER_PRIORITY_FACTS, block
from .clique import clique_dag, clique_schedule, qsnk, qsrc
from .cycle import csnk, csrc, cycle_dag, cycle_schedule
from .n_dag import anchor, n_dag, n_schedule, nsnk, nsrc
from .vee_lambda import (
    ROOT,
    SINK,
    lambda_dag,
    lambda_schedule,
    leaf,
    source,
    vee_dag,
    vee_schedule,
)
from .w_m import m_dag, m_schedule, w_dag, w_schedule, wsnk, wsrc

__all__ = [
    "BLOCK_KINDS",
    "PAPER_PRIORITY_FACTS",
    "ROOT",
    "SINK",
    "anchor",
    "block",
    "bsnk",
    "bsrc",
    "butterfly_block",
    "butterfly_block_schedule",
    "csnk",
    "csrc",
    "clique_dag",
    "clique_schedule",
    "cycle_dag",
    "cycle_schedule",
    "lambda_dag",
    "lambda_schedule",
    "leaf",
    "m_dag",
    "m_schedule",
    "n_dag",
    "n_schedule",
    "nsnk",
    "nsrc",
    "qsnk",
    "qsrc",
    "source",
    "vee_dag",
    "vee_schedule",
    "w_dag",
    "w_schedule",
    "wsnk",
    "wsrc",
]
