"""The butterfly building block B (Fig. 8).

``B`` has two sources and two sinks wired completely (each source feeds
both sinks): it computes ``(y₀, y₁)`` from ``(x₀, x₁)``.  Iterated
compositions of ``B`` yield the d-dimensional butterfly networks of
Section 5, whose instantiations include comparator sorting networks
(transformation 5.1) and the FFT (transformation 5.2).

``B ▷ B`` (verified in tests), so every iterated composition of B is
▷-linear; the schedule characterization ("IC-optimal iff the two
sources of each copy of B execute consecutively", from [23]) is
verified exhaustively for B₂ and B₃.
"""

from __future__ import annotations

from ..core.dag import ComputationDag
from ..core.schedule import Schedule

__all__ = ["butterfly_block", "butterfly_block_schedule", "bsrc", "bsnk"]


def bsrc(i: int):
    """Label of source *i* (0 or 1) of the butterfly block."""
    return ("src", i)


def bsnk(j: int):
    """Label of sink *j* (0 or 1) of the butterfly block."""
    return ("snk", j)


def butterfly_block() -> ComputationDag:
    """The butterfly building block ``B = B₁``: K_{2,2} oriented
    sources-to-sinks."""
    d = ComputationDag(name="B")
    for i in range(2):
        for j in range(2):
            d.add_arc(bsrc(i), bsnk(j))
    return d


def butterfly_block_schedule(dag: ComputationDag) -> Schedule:
    """IC-optimal schedule of B: both sources (consecutively — they are
    the only nonsinks), then both sinks."""
    return Schedule(
        dag, [bsrc(0), bsrc(1), bsnk(0), bsnk(1)], name=f"opt({dag.name})"
    )
