"""A registry of the paper's building blocks with their canonical
IC-optimal schedules.

:func:`block` returns a ``(dag, schedule)`` pair for a named block;
:data:`PAPER_PRIORITY_FACTS` lists every ▷ fact the paper asserts, in
machine-checkable form.  The test-suite re-derives each fact from
equation (2.1) and re-verifies each canonical schedule exhaustively —
the catalog is a convenience, not a source of truth.
"""

from __future__ import annotations

from ..core.dag import ComputationDag
from ..core.schedule import Schedule
from .butterfly import butterfly_block, butterfly_block_schedule
from .clique import clique_dag, clique_schedule
from .cycle import cycle_dag, cycle_schedule
from .n_dag import n_dag, n_schedule
from .vee_lambda import lambda_dag, lambda_schedule, vee_dag, vee_schedule
from .w_m import m_dag, m_schedule, w_dag, w_schedule

__all__ = ["block", "BLOCK_KINDS", "PAPER_PRIORITY_FACTS"]

#: kinds accepted by :func:`block` and the parameter each takes.
BLOCK_KINDS = {
    "V": "degree (default 2)",
    "Λ": "degree (default 2)",
    "W": "number of sources",
    "M": "number of sinks",
    "N": "number of sources",
    "C": "number of sources (>= 2)",
    "B": "no parameter",
    "Q": "side size s (builds the square clique Q_{s,s})",
}

_FACTORIES = {
    "V": (vee_dag, vee_schedule),
    "Λ": (lambda_dag, lambda_schedule),
    "W": (w_dag, w_schedule),
    "M": (m_dag, m_schedule),
    "N": (n_dag, n_schedule),
    "C": (cycle_dag, cycle_schedule),
    "B": (lambda: butterfly_block(), butterfly_block_schedule),
    "Q": (lambda s=2: clique_dag(s, s), clique_schedule),
}

# ASCII aliases for keyboards without Λ.
_ALIASES = {"L": "Λ", "lambda": "Λ", "vee": "V", "butterfly": "B"}


def block(kind: str, param: int | None = None) -> tuple[ComputationDag, Schedule]:
    """Build the named block and its canonical IC-optimal schedule.

    ``kind`` is one of ``V``, ``Λ`` (alias ``L``/``lambda``), ``W``,
    ``M``, ``N``, ``C``, ``B``; ``param`` is the size parameter listed
    in :data:`BLOCK_KINDS` (ignored for ``B``).
    """
    kind = _ALIASES.get(kind, kind)
    if kind not in _FACTORIES:
        raise KeyError(
            f"unknown block kind {kind!r}; known: {sorted(_FACTORIES)}"
        )
    make, sched = _FACTORIES[kind]
    if kind == "B":
        dag = make()
    elif param is None:
        dag = make()  # V/Λ default to degree 2
    else:
        dag = make(param)
    return dag, sched(dag)


#: Every priority fact asserted in the paper, as
#: ``(lhs_spec, rhs_spec, holds)`` with specs ``(kind, param)``.
#: The negative entry ¬(Λ ▷ V) is from Section 3.1 ("the converse does
#: not hold").
PAPER_PRIORITY_FACTS: list[tuple[tuple[str, int | None], tuple[str, int | None], bool]] = [
    (("V", 2), ("V", 2), True),      # §3.1: V ▷ V
    (("V", 2), ("Λ", 2), True),      # §3.1: V ▷ Λ
    (("Λ", 2), ("Λ", 2), True),      # §6.2.1 fact (3): Λ ▷ Λ
    (("Λ", 2), ("V", 2), False),     # §3.1: the converse does not hold
    (("B", None), ("B", None), True),  # §5.1: B ▷ B
    (("W", 1), ("W", 2), True),      # §4: smaller W-dags ▷ larger
    (("W", 2), ("W", 3), True),
    (("W", 2), ("W", 5), True),
    (("W", 3), ("W", 3), True),
    (("N", 2), ("N", 4), True),      # §6.1 fact: N_s ▷ N_t for all s, t
    (("N", 4), ("N", 2), True),
    (("N", 8), ("N", 8), True),
    (("N", 3), ("Λ", 2), True),      # §6.2.1 fact (2): N_s ▷ Λ
    (("N", 8), ("Λ", 2), True),
    (("V", 3), ("V", 3), True),      # §6.2.1 chain V₃ ▷ V₃ ▷ Λ ▷ Λ
    (("V", 3), ("Λ", 2), True),
    (("C", 4), ("C", 4), True),      # §7 chain C₄ ▷ C₄ ▷ Λ ▷ Λ
    (("C", 4), ("Λ", 2), True),
]
