"""Bipartite clique blocks Q_{s,t}.

The complete bipartite dag — every one of ``s`` sources feeding every
one of ``t`` sinks — rounds out the block repertoire of [21]: the
butterfly block is ``Q_{2,2}``, the Vee is ``Q_{1,d}`` and the Lambda
``Q_{d,1}``.  No sink becomes ELIGIBLE before the last source executes,
so every schedule of a clique has the same profile
``s, s-1, ..., 1, t, t-1, ..., 0`` — all of them IC-optimal.
"""

from __future__ import annotations

from ..exceptions import DagStructureError
from ..core.dag import ComputationDag
from ..core.schedule import Schedule

__all__ = ["clique_dag", "clique_schedule", "qsrc", "qsnk"]


def qsrc(i: int):
    """Label of the *i*-th source of a clique block."""
    return ("src", i)


def qsnk(j: int):
    """Label of the *j*-th sink of a clique block."""
    return ("snk", j)


def clique_dag(s: int, t: int) -> ComputationDag:
    """The (s, t)-bipartite clique ``Q_{s,t}`` (``s·t`` arcs)."""
    if s < 1 or t < 1:
        raise DagStructureError(
            f"clique needs >= 1 source and sink, got ({s}, {t})"
        )
    d = ComputationDag(name=f"Q{s},{t}")
    for i in range(s):
        for j in range(t):
            d.add_arc(qsrc(i), qsnk(j))
    return d


def clique_schedule(dag: ComputationDag) -> Schedule:
    """The canonical (every-schedule-is-optimal) clique schedule:
    sources then sinks, each in index order."""
    srcs = sorted((v for v in dag.nodes if v[0] == "src"), key=lambda v: v[1])
    snks = sorted((v for v in dag.nodes if v[0] == "snk"), key=lambda v: v[1])
    return Schedule(dag, srcs + snks, name=f"opt({dag.name})")
