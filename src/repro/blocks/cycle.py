"""Bipartite cycle-dags (Section 7).

For ``s > 1`` the *s-source (bipartite) cycle-dag* ``C_s`` is the N-dag
``N_s`` with one extra arc from the rightmost source to the leftmost
sink, so each source *v* feeds sinks *v* and *(v+1) mod s*.

The matrix-multiplication dag M of Fig. 17 is composite of type
``C₄ ⇑ C₄ ⇑ Λ ⇑ Λ ⇑ Λ ⇑ Λ``; the paper (citing [21]) uses
``C₄ ▷ C₄ ▷ Λ ▷ Λ``, re-verified in the tests.
"""

from __future__ import annotations

from ..exceptions import DagStructureError
from ..core.dag import ComputationDag
from ..core.schedule import Schedule

__all__ = ["cycle_dag", "cycle_schedule", "csrc", "csnk"]


def csrc(i: int):
    """Label of the *i*-th source of a cycle-dag."""
    return ("src", i)


def csnk(j: int):
    """Label of the *j*-th sink of a cycle-dag."""
    return ("snk", j)


def cycle_dag(s: int) -> ComputationDag:
    """The s-source bipartite cycle-dag ``C_s`` (0-based):
    ``src_i -> snk_i, snk_{(i+1) mod s}``."""
    if s < 2:
        raise DagStructureError(f"cycle-dag needs >= 2 sources, got {s}")
    d = ComputationDag(name=f"C{s}")
    for i in range(s):
        d.add_arc(csrc(i), csnk(i))
        d.add_arc(csrc(i), csnk((i + 1) % s))
    return d


def cycle_schedule(dag: ComputationDag) -> Schedule:
    """IC-optimal cycle-dag schedule: sources sequentially around the
    cycle, then sinks.

    Sink *v* needs sources *v-1 mod s* and *v*; a consecutive run of
    ``x`` sources completes ``x - 1`` sinks, giving the profile
    ``s, s-1, ..., s-1, s`` which is the maximum at every step (every
    source "opens" the cycle equally; verified exhaustively in tests).
    """
    srcs = sorted((v for v in dag.nodes if v[0] == "src"), key=lambda v: v[1])
    snks = sorted((v for v in dag.nodes if v[0] == "snk"), key=lambda v: v[1])
    return Schedule(dag, srcs + snks, name=f"opt({dag.name})")
