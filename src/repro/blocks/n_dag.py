"""N-dags (Section 6.1).

For each integer ``s > 0`` the *s-source N-dag* ``N_s`` has ``s``
sources and ``s`` sinks; its ``2s - 1`` arcs connect source *v* to sink
*v*, and to sink *v+1* when that exists.  The leftmost source is the
dag's **anchor** — its child ``snk_0`` has no other parent.

Parallel-prefix dags are iterated compositions of N-dags (Fig. 12).
Facts from [21] verified in tests: executing the sources sequentially
starting with the anchor is IC-optimal, and ``N_s ▷ N_t`` for *all*
``s`` and ``t`` (also ``N_s ▷ Λ``).
"""

from __future__ import annotations

from ..exceptions import DagStructureError
from ..core.dag import ComputationDag
from ..core.schedule import Schedule

__all__ = ["n_dag", "n_schedule", "nsrc", "nsnk", "anchor"]


def nsrc(i: int):
    """Label of the *i*-th source of an N-dag."""
    return ("src", i)


def nsnk(j: int):
    """Label of the *j*-th sink of an N-dag."""
    return ("snk", j)


def anchor(dag: ComputationDag):
    """The anchor (leftmost source) of an N-dag built by :func:`n_dag`."""
    return nsrc(0)


def n_dag(s: int) -> ComputationDag:
    """The s-source N-dag ``N_s``.

    Arcs (0-based): ``src_i -> snk_i`` for all *i*, and
    ``src_i -> snk_{i+1}`` for ``i < s - 1`` — ``2s - 1`` arcs total.
    """
    if s < 1:
        raise DagStructureError(f"N-dag needs >= 1 source, got {s}")
    d = ComputationDag(name=f"N{s}")
    for i in range(s):
        d.add_arc(nsrc(i), nsnk(i))
        if i + 1 < s:
            d.add_arc(nsrc(i), nsnk(i + 1))
    return d


def n_schedule(dag: ComputationDag) -> Schedule:
    """IC-optimal N-dag schedule: sources sequentially from the anchor.

    After ``x`` sources the eligible count is ``(s-x) + x = s`` at
    every step — the maximum (sink *v* needs sources *v-1* and *v*, so
    a prefix of sources completes a prefix of sinks).
    """
    srcs = sorted((v for v in dag.nodes if v[0] == "src"), key=lambda v: v[1])
    snks = sorted((v for v in dag.nodes if v[0] == "snk"), key=lambda v: v[1])
    return Schedule(dag, srcs + snks, name=f"opt({dag.name})")
