"""The Vee dag V and the Lambda dag Λ (Fig. 1), plus their degree-d
generalizations (footnote 7: "any fixed degree works"; Section 6.2.1
uses the 3-prong Vee V₃ of Fig. 14).

* ``V_d`` — one source (the *root*) with ``d`` sink children; the
  building block of *expansive* computations (out-trees, the "divide"
  phase of divide-and-conquer).
* ``Λ_d`` — ``d`` sources feeding one sink; the building block of
  *reductive* computations (in-trees, the recombination phase).

The two are dual to one another.  Facts used by the paper and verified
in the test-suite: every schedule of ``V_d`` is IC-optimal; ``Λ``'s
IC-optimal schedules are those executing its sources consecutively;
``V ▷ V``, ``V ▷ Λ``, ``Λ ▷ Λ`` but not ``Λ ▷ V``;
``V₃ ▷ V₃ ▷ Λ ▷ Λ``.
"""

from __future__ import annotations

from ..exceptions import DagStructureError
from ..core.dag import ComputationDag
from ..core.schedule import Schedule

__all__ = [
    "ROOT",
    "vee_dag",
    "vee_schedule",
    "lambda_dag",
    "lambda_schedule",
    "leaf",
    "source",
    "SINK",
]

#: label of the unique source of a Vee dag.
ROOT = "root"
#: label of the unique sink of a Lambda dag.
SINK = "sink"


def leaf(i: int):
    """Label of the *i*-th sink of a Vee dag."""
    return ("leaf", i)


def source(i: int):
    """Label of the *i*-th source of a Lambda dag."""
    return ("src", i)


def vee_dag(degree: int = 2) -> ComputationDag:
    """The Vee dag ``V_degree``: ``root -> leaf_0..leaf_{d-1}``.

    ``degree=2`` is the paper's V (Fig. 1, left); ``degree=3`` is V₃
    (Fig. 14).
    """
    if degree < 1:
        raise DagStructureError(f"Vee degree must be >= 1, got {degree}")
    d = ComputationDag(name="V" if degree == 2 else f"V{degree}")
    d.add_node(ROOT)
    for i in range(degree):
        d.add_arc(ROOT, leaf(i))
    return d


def vee_schedule(dag: ComputationDag) -> Schedule:
    """The canonical IC-optimal schedule of a Vee dag.

    The root is the only nonsink, so *every* schedule of V is
    IC-optimal (Section 3.1); this one runs root, then leaves in index
    order.
    """
    order = [ROOT] + [v for v in dag.nodes if v != ROOT]
    return Schedule(dag, order, name=f"opt({dag.name})")


def lambda_dag(degree: int = 2) -> ComputationDag:
    """The Lambda dag ``Λ_degree``: ``src_0..src_{d-1} -> sink``.

    ``degree=2`` is the paper's Λ (Fig. 1, right).  Dual to ``V_d``.
    """
    if degree < 1:
        raise DagStructureError(f"Lambda degree must be >= 1, got {degree}")
    d = ComputationDag(name="Λ" if degree == 2 else f"Λ{degree}")
    for i in range(degree):
        d.add_arc(source(i), SINK)
    return d


def lambda_schedule(dag: ComputationDag) -> Schedule:
    """The canonical IC-optimal schedule of a Lambda dag: sources in
    index order (consecutively — the characterization from [23]), then
    the sink."""
    srcs = [v for v in dag.nodes if v != SINK]
    return Schedule(dag, srcs + [SINK], name=f"opt({dag.name})")
