"""W-dags and M-dags (Section 4, footnote 10).

The *s-source W-dag* ``W_s`` has sources ``src_0..src_{s-1}`` and sinks
``snk_0..snk_s``; source *i* feeds sinks *i* and *i+1*.  ``W_1`` is the
Vee dag.  Out-meshes are ▷-linear compositions of W-dags with
increasing numbers of sources (Fig. 6, left).

The *s-sink M-dag* ``M_s`` is the dual: sources ``src_0..src_s``, sinks
``snk_0..snk_{s-1}``, sink *i* fed by sources *i* and *i+1*.  ``M_1``
is the Lambda dag.  In-meshes decompose into M-dags.

Facts from [21] used by the paper and verified in tests: the schedule
executing a W-dag's sources consecutively (left to right) is
IC-optimal, and smaller W-dags have ▷-priority over larger ones
(``W_s ▷ W_t`` for ``s <= t``).
"""

from __future__ import annotations

from ..exceptions import DagStructureError
from ..core.dag import ComputationDag
from ..core.schedule import Schedule

__all__ = [
    "w_dag",
    "w_schedule",
    "m_dag",
    "m_schedule",
    "wsrc",
    "wsnk",
    "generalized_w_dag",
    "generalized_m_dag",
]


def wsrc(i: int):
    """Label of the *i*-th source of a W-dag / M-dag."""
    return ("src", i)


def wsnk(j: int):
    """Label of the *j*-th sink of a W-dag / M-dag."""
    return ("snk", j)


def w_dag(s: int) -> ComputationDag:
    """The s-source W-dag: ``src_i -> snk_i, snk_{i+1}``; s+1 sinks."""
    if s < 1:
        raise DagStructureError(f"W-dag needs >= 1 source, got {s}")
    d = ComputationDag(name=f"W{s}")
    for i in range(s):
        d.add_arc(wsrc(i), wsnk(i))
        d.add_arc(wsrc(i), wsnk(i + 1))
    return d


def w_schedule(dag: ComputationDag) -> Schedule:
    """IC-optimal W-dag schedule: sources left to right, then sinks.

    After executing sources ``0..x-1`` the eligible count is
    ``(s - x) + x = s`` for every ``x >= 1`` and ``s + 1`` at the end —
    the maximum at every step ([21]; re-verified exhaustively in the
    tests).
    """
    srcs = sorted(
        (v for v in dag.nodes if v[0] == "src"), key=lambda v: v[1]
    )
    snks = sorted(
        (v for v in dag.nodes if v[0] == "snk"), key=lambda v: v[1]
    )
    return Schedule(dag, srcs + snks, name=f"opt({dag.name})")


def m_dag(s: int) -> ComputationDag:
    """The s-sink M-dag (dual of ``W_s``): ``src_i, src_{i+1} -> snk_i``."""
    if s < 1:
        raise DagStructureError(f"M-dag needs >= 1 sink, got {s}")
    d = ComputationDag(name=f"M{s}")
    for i in range(s):
        d.add_arc(wsrc(i), wsnk(i))
        d.add_arc(wsrc(i + 1), wsnk(i))
    return d


def m_schedule(dag: ComputationDag) -> Schedule:
    """IC-optimal M-dag schedule: sources left to right (each pair of
    consecutive sources completes a sink), then sinks."""
    srcs = sorted(
        (v for v in dag.nodes if v[0] == "src"), key=lambda v: v[1]
    )
    snks = sorted(
        (v for v in dag.nodes if v[0] == "snk"), key=lambda v: v[1]
    )
    return Schedule(dag, srcs + snks, name=f"opt({dag.name})")


def generalized_w_dag(s: int, fan: int) -> ComputationDag:
    """The (fan, s)-W-dag: the d-ary analogue of ``W_s`` that
    footnote 7 / [21] allude to.

    ``s`` sources, each with ``fan`` sink children; consecutive
    sources' child runs overlap by one sink, giving
    ``s (fan - 1) + 1`` sinks: source *i* feeds sinks
    ``i (fan-1) .. i (fan-1) + fan - 1``.  ``fan = 2`` recovers the
    classic W-dag; ``s = 1`` recovers the ``fan``-ary Vee.  The
    left-to-right source schedule (:func:`w_schedule` works unchanged)
    is IC-optimal — verified exhaustively in the tests.
    """
    if s < 1:
        raise DagStructureError(f"W-dag needs >= 1 source, got {s}")
    if fan < 2:
        raise DagStructureError(f"fan must be >= 2, got {fan}")
    d = ComputationDag(name=f"W({fan},{s})")
    for i in range(s):
        base = i * (fan - 1)
        for j in range(fan):
            d.add_arc(wsrc(i), wsnk(base + j))
    return d


def generalized_m_dag(s: int, fan: int) -> ComputationDag:
    """The (fan, s)-M-dag: dual of :func:`generalized_w_dag` —
    ``s`` sinks each fed by ``fan`` sources with single-source
    overlaps; ``fan = 2`` recovers the classic M-dag."""
    if s < 1:
        raise DagStructureError(f"M-dag needs >= 1 sink, got {s}")
    if fan < 2:
        raise DagStructureError(f"fan must be >= 2, got {fan}")
    d = ComputationDag(name=f"M({fan},{s})")
    for i in range(s):
        base = i * (fan - 1)
        for j in range(fan):
            d.add_arc(wsrc(base + j), wsnk(i))
    return d
