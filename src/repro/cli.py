"""Command-line interface.

::

    python -m repro families
    python -m repro schedule mesh 6
    python -m repro schedule diamond 3 --show-dag
    python -m repro verify prefix 4
    python -m repro verify N8 --metrics json
    python -m repro simulate butterfly 4 --clients 8 --seed 1
    python -m repro simulate mesh 4 --trace /tmp/trace.jsonl
    python -m repro priority N4 L
    python -m repro batch mesh 4 --capacity 3
    python -m repro stats --format prom
    python -m repro serve --port 8080
    python -m repro serve --port 8080 --data-dir var/repro --fsync always
    python -m repro journal stat --data-dir var/repro
    python -m repro serve-metrics --port 9100
    python -m repro watch --url http://127.0.0.1:9100
    python -m repro observe --url http://127.0.0.1:8080
    python -m repro slo --url http://127.0.0.1:8080
    python -m repro debug dump --url http://127.0.0.1:8080
    python -m repro observe --snapshot docs/observatory.svg

Every operational verb goes through the stable :mod:`repro.api`
facade (``api.schedule`` / ``api.verify`` / ``api.compare`` /
``api.batch`` / ``api.priority``); the CLI adds only construction
(families, blocks), rendering, and the observability flags.  ``repro
serve`` runs the scheduling service of :mod:`repro.service`
(``docs/SERVICE.md``).

``schedule``, ``verify``, and ``simulate`` accept the observability
flags ``--metrics {json,prom}`` (dump the process metrics registry
after the command), ``--trace FILE`` (enable structured tracing and
export the JSONL trace to FILE), and ``--serve-metrics PORT`` (serve
the HTTP exposition endpoints for the duration of the command);
``repro stats`` prints the registry on its own, ``repro
serve-metrics`` runs the exposition service standalone, ``repro
watch`` renders a live dashboard from a served ``/stats`` endpoint,
and ``repro observe`` points a browser at a server's live
observatory page (``/ui``) — or, with ``--snapshot FILE``, dumps one
rendered SVG schedule frame headlessly (for CI and docs).  ``repro
slo`` evaluates a running server's service-level objectives
(``/v1/slo``; exit code doubles as a health gate) and ``repro debug
dump`` lists or fetches the degradation flight recorder's bundles
(``/v1/debug/dumps``).  See ``docs/OBSERVABILITY.md``.

Family names: ``diamond DEPTH``, ``mesh DEPTH``, ``in-mesh DEPTH``,
``butterfly DIM``, ``prefix WIDTH``, ``dlt WIDTH``, ``dlt-tree WIDTH``,
``matmul`` (no parameter), ``out-tree DEPTH``, ``in-tree DEPTH``,
``paths K``.  Block names for ``priority``: V, V3, L (Λ), W4, M3, N8,
C4, B, ...
"""

from __future__ import annotations

import argparse
import re
import sys
from collections.abc import Sequence

from . import api
from .analysis import render_series, render_table
from .analysis.ascii_dag import render_dag
from .blocks import block

__all__ = ["main", "build_family"]

FAMILY_HELP = {
    "diamond": "complete binary diamond of the given depth (Fig. 2)",
    "mesh": "out-mesh of the given depth (Fig. 5)",
    "in-mesh": "in-mesh / pyramid of the given depth (Fig. 5)",
    "butterfly": "butterfly network B_d (Figs. 8-10)",
    "prefix": "parallel-prefix dag P_n (Fig. 11)",
    "dlt": "DLT dag L_n = P_n ⇑ T_n (Fig. 13)",
    "dlt-tree": "ternary-tree DLT dag L'_n (Fig. 15)",
    "matmul": "matrix-multiplication dag M (Fig. 17; no parameter)",
    "out-tree": "complete binary out-tree of the given depth",
    "in-tree": "complete binary in-tree of the given depth",
    "paths": "graph-paths dag for K powers (Fig. 16)",
    "sorting": "bitonic sorting network on n wires (§5.2)",
}


def build_family(name: str, param: int | None):
    """Construct the named family chain (CLI surface of
    :mod:`repro.families`)."""
    from .families import (
        butterfly_net,
        diamond,
        dlt,
        matmul_dag,
        mesh,
        paths,
        prefix,
        trees,
    )
    from .compute.sorting import sorting_network_chain

    need_param = name != "matmul"
    if need_param and param is None:
        raise SystemExit(f"family {name!r} needs a size parameter")
    builders = {
        "diamond": lambda: diamond.complete_diamond(param),
        "mesh": lambda: mesh.out_mesh_chain(param),
        "in-mesh": lambda: mesh.in_mesh_chain(param),
        "butterfly": lambda: butterfly_net.butterfly_chain(param),
        "prefix": lambda: prefix.prefix_chain(param),
        "dlt": lambda: dlt.dlt_prefix_chain(param),
        "dlt-tree": lambda: dlt.dlt_tree_chain(param),
        "matmul": matmul_dag.matmul_chain,
        "out-tree": lambda: trees.complete_out_tree(param),
        "in-tree": lambda: trees.complete_in_tree(param),
        "paths": lambda: paths.graph_paths_chain(param),
        "sorting": lambda: sorting_network_chain(param),
    }
    if name not in builders:
        raise SystemExit(
            f"unknown family {name!r}; known: {', '.join(sorted(builders))}"
        )
    return builders[name]()


def _parse_block(spec: str):
    m = re.fullmatch(r"([A-Za-zΛ]+?)(\d+)?", spec)
    if not m:
        raise SystemExit(f"bad block spec {spec!r} (try V, L, W4, N8, C4, B)")
    kind, num = m.group(1), m.group(2)
    return block(kind, int(num) if num else None)


def cmd_families(_args) -> int:
    rows = sorted(FAMILY_HELP.items())
    print(render_table(["family", "description"], rows))
    return 0


def cmd_schedule(args) -> int:
    chain = build_family(args.family, args.param)
    result = api.schedule(
        chain, strategy=args.strategy, budget=args.budget,
        parallel=args.parallel, cache=not args.no_cache,
    )
    print(chain.dag.summary())
    print("composite type:", chain.type_string())
    print(f"certificate: {result.certificate} (kind={result.kind}, "
          f"strategy={result.strategy})")
    if result.bounds is not None:
        lo, hi = result.bounds
        print(f"loss bounds: [{lo}, {hi}]")
    for name, fingerprint, source in result.provenance:
        print(f"  block {name}: {source} ({fingerprint[:12]})")
    print(render_series("E(t)", result.profile, max_items=40))
    if args.show_dag:
        print(render_dag(chain.dag))
    return 0


def cmd_verify(args) -> int:
    target = _family_or_block(args.family, args.param)
    result = api.verify(
        target, strategy=args.strategy, budget=args.budget,
        parallel=args.parallel, cache=not args.no_cache,
    )
    print(f"certificate: {result.certificate} (kind={result.kind}, "
          f"strategy={result.strategy})")
    print(
        f"exhaustive check: ratio={result.ratio:.3f} "
        f"deficit={result.deficit} ic_optimal={result.ic_optimal}"
    )
    # process-lifetime search/cache totals, read from the metrics
    # registry (the library records them there; docs/OBSERVABILITY.md)
    from .obs import global_registry
    from .obs.exposition import snapshot_series, snapshot_value

    snap = global_registry().snapshot()
    print(
        f"search: states_expanded="
        f"{int(snapshot_value(snap, 'search_states_expanded_total'))} "
        f"frontier_peak="
        f"{int(snapshot_value(snap, 'search_frontier_peak'))}"
    )
    lookups = snapshot_series(snap, "profile_cache_lookups_total")
    hits = sum(v for k, v in lookups.items() if k[-1] == "hit")
    misses = sum(v for k, v in lookups.items() if k[-1] == "miss")
    total = hits + misses
    print(
        f"cache: hits={int(hits)} misses={int(misses)} "
        f"evictions="
        f"{int(snapshot_value(snap, 'profile_cache_evictions_total'))} "
        f"hit_rate={hits / total if total else 0.0:.3f}"
    )
    return 0 if result.ic_optimal else 1


def _family_or_block(name: str, param: int | None):
    """A family chain, or — when ``name`` is no known family but parses
    as a block spec (V, L, W4, N8, C4, B, ...) — the catalog block's
    dag, so ``repro verify N8`` certifies a single block."""
    if name in FAMILY_HELP:
        return build_family(name, param)
    try:
        dag, _sched = _parse_block(name)
    except (SystemExit, KeyError):
        raise SystemExit(
            f"unknown family or block {name!r}; "
            "try `repro families` or a block spec like N8"
        ) from None
    return dag


def cmd_simulate(args) -> int:
    from .exceptions import SimulationError

    chain = build_family(args.family, args.param)
    clients = [
        api.ClientSpec(speed=s, dropout=args.dropout)
        for s in ([1.0] * args.clients if not args.hetero else
                  [0.5, 1.0, 2.0, 4.0] * ((args.clients + 3) // 4))
    ][: args.clients]
    fault_plan = None
    server_policy = None
    machine = api.MachineSpec()
    try:
        if args.faults:
            fault_plan = api.FaultPlan.parse(args.faults,
                                             n_clients=args.clients)
        if args.server_policy is not None:
            server_policy = api.ServerPolicy.parse(args.server_policy)
        elif fault_plan is not None:
            server_policy = api.ServerPolicy()
        if args.machine is not None:
            machine = api.MachineSpec.parse(args.machine)
    except SimulationError as exc:
        raise SystemExit(f"error: {exc}") from None
    result = api.compare(
        chain, clients=clients, seed=args.seed,
        server_policy=server_policy, fault_plan=fault_plan,
        machine=machine,
    )
    title = f"{chain.dag.name}: {args.clients} clients (seed {args.seed})"
    if fault_plan is not None:
        title += f", faults: {fault_plan.name}"
    if machine.kind != "ideal":
        title += f", machine: {machine}"
    print(
        render_table(
            ["policy", "makespan", "starvation", "idle", "util",
             "headroom", "seed"],
            result.rows,
            title=title,
        )
    )
    if machine.kind != "ideal":
        rows = [
            (
                name,
                r.machine_report.supersteps,
                round(r.machine_report.barrier_cost, 3),
                r.machine_report.placement_stalls,
                r.machine_report.spills,
                r.machine_report.peak_memory,
                round(r.machine_report.duration_max_factor, 3),
            )
            for name, r in result.comparison.results.items()
            if r.machine_report is not None
        ]
        print()
        print(
            render_table(
                ["policy", "supersteps", "barrier-cost", "stalls",
                 "spills", "peak-mem", "max-slowdown"],
                rows,
                title=f"machine report ({machine})",
            )
        )
    if server_policy is not None:
        rows = [
            (
                name,
                r.fault_report.retries,
                r.fault_report.timeouts_fired,
                r.fault_report.speculative_wins,
                round(r.fault_report.wasted_replica_time, 3),
                len(r.fault_report.quarantined_clients),
                r.completed,
            )
            for name, r in result.comparison.results.items()
            if r.fault_report is not None
        ]
        print()
        print(
            render_table(
                ["policy", "retries", "timeouts", "spec-wins",
                 "replica-waste", "quarantined", "completed"],
                rows,
                title="fault report",
            )
        )
    return 0


def cmd_priority(args) -> int:
    g1, s1 = _parse_block(args.block1)
    g2, s2 = _parse_block(args.block2)
    rel = api.priority(g1, g2, left_schedule=s1, right_schedule=s2)
    print(f"{rel.left} ▷ {rel.right}: {rel.forward}")
    print(f"{rel.right} ▷ {rel.left}: {rel.backward}")
    return 0


def cmd_batch(args) -> int:
    chain = build_family(args.family, args.param)
    result = api.batch(chain, capacity=args.capacity)
    rows = []
    for name, rounds, util in result.rows:
        if name == "levels":
            rows.append(("levels (cap ∞)", rounds, "-"))
        else:
            rows.append((name, rounds, f"{util:.3f}"))
    print(
        render_table(
            ["batcher", "rounds", "utilization"],
            rows,
            title=f"{result.dag_name}, capacity {args.capacity} "
                  f"(lower bound {result.lower_bound})",
        )
    )
    return 0


def cmd_stats(args) -> int:
    from .obs import global_registry

    reg = global_registry()
    fmt = getattr(args, "format", "table")
    if fmt == "json":
        print(reg.to_json(indent=2))
    elif fmt == "prom":
        print(reg.to_prometheus(), end="")
    else:
        snap = reg.snapshot()
        if not snap:
            print("(no metrics recorded in this process yet)")
            return 0
        rows = []
        for name, m in snap.items():
            if "series" in m:
                for s in m["series"]:
                    labels = ",".join(
                        f"{k}={v}" for k, v in s["labels"].items()
                    )
                    rows.append((name, m["type"], labels,
                                 _stat_value(s["value"])))
            else:
                rows.append((name, m["type"], "-", _stat_value(m["value"])))
        print(render_table(["metric", "type", "labels", "value"], rows))
    if getattr(args, "reset", False):
        reg.reset()
    return 0


def _stat_value(v) -> str:
    """Render a snapshot value; histograms show count/mean."""
    if isinstance(v, dict):
        count = v.get("count", 0)
        mean = v.get("sum", 0.0) / count if count else 0.0
        return f"n={count} mean={mean:.6f}s"
    if isinstance(v, float):
        return f"{v:g}"
    return str(v)


def cmd_serve_metrics(args) -> int:
    import time

    from .obs import ObsServer

    with ObsServer(host=args.host, port=args.port) as srv:
        print(
            f"serving observability endpoints on {srv.url} "
            "(/metrics /stats /healthz /readyz /traces); Ctrl-C to stop",
            file=sys.stderr,
        )
        try:
            if args.duration is not None:
                time.sleep(args.duration)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            pass
    return 0


#: ``repro serve`` exit code when the listener cannot bind (port
#: already in use / permission denied) — distinct from crashes so
#: supervisors and the chaos harness can tell "misconfigured" apart
#: from "broken".
SERVE_EXIT_BIND = 2


def cmd_serve(args) -> int:
    import errno
    import signal
    import threading

    from .service import PipelineConfig, SchedulingService

    cfg = PipelineConfig(
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        workers=args.workers,
        exhaustive_limit=args.exhaustive_limit,
        state_budget=args.state_budget,
        parallel=args.parallel,
        strategy=args.strategy,
        budget=args.budget,
    )
    svc = SchedulingService(
        host=args.host, port=args.port, pipeline_config=cfg,
        frames=not args.no_frames,
        access_log=args.access_log,
        dump_dir=args.dump_dir,
        data_dir=args.data_dir,
        fsync=args.fsync,
        snapshot_every=args.snapshot_every,
    )
    try:
        svc.start()
    except OSError as exc:
        if exc.errno in (errno.EADDRINUSE, errno.EACCES):
            print(
                f"error: cannot listen on {args.host}:{args.port}: "
                f"{exc.strerror or exc} — is another service already "
                f"bound there?  (pick a different --port, or stop the "
                f"other process)",
                file=sys.stderr,
            )
            return SERVE_EXIT_BIND
        raise
    # drain-on-signal: SIGTERM (systemd/k8s stop) and SIGINT (Ctrl-C)
    # both finish in-flight requests, flush+snapshot the journal, and
    # exit 0 — a supervised restart must look like a clean deploy
    stop = threading.Event()

    def _drain(signum, _frame):
        print(f"repro serve: received "
              f"{signal.Signals(signum).name}, draining",
              file=sys.stderr)
        stop.set()

    previous = {
        sig: signal.signal(sig, _drain)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        banner = (
            f"scheduling service on {svc.url} "
            "(POST /v1/dags, GET /v1/schedules/{fp}, POST /v1/simulate, "
            "/healthz /readyz /metrics /stats); "
            f"live observatory at {svc.url}/ui; Ctrl-C to stop"
        )
        if svc.durability is not None and svc.recovery is not None:
            rec = svc.recovery
            banner += (
                f"\ndurable state in {args.data_dir} (fsync="
                f"{args.fsync}): recovered {rec.entries_restored} "
                f"entries ({rec.certified_restored} certified) in "
                f"{rec.seconds:.3f}s"
            )
            if rec.anomalies:
                banner += "; anomalies: " + "; ".join(rec.anomalies)
        print(banner, file=sys.stderr)
        stop.wait(args.duration)  # duration=None waits forever
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        svc.stop()
    return 0


def cmd_journal(args) -> int:
    """``repro journal {stat,verify,compact}``: offline tools for a
    service data dir (``docs/SERVICE.md``).

    ``stat`` summarizes the journal and snapshots read-only;
    ``verify`` replays everything through full validation (checksums,
    schedule re-execution, profile equality) without modifying disk —
    exit 1 when anything is corrupt; ``compact`` replays then writes
    a fresh snapshot and truncates the journal.
    """
    import os
    from collections import Counter

    from .service.durability import (
        JOURNAL_FILE,
        SNAPSHOT_FILE,
        SNAPSHOT_PREV_FILE,
        DurabilityManager,
        scan_journal,
    )

    data_dir = args.data_dir
    if not os.path.isdir(data_dir):
        raise SystemExit(f"no such data dir: {data_dir!r}")

    if args.action == "stat":
        scan = scan_journal(os.path.join(data_dir, JOURNAL_FILE))
        by_type = Counter(str(r.get("type", "?")) for r in scan.records)
        seqs = [r["seq"] for r in scan.records
                if isinstance(r.get("seq"), int)]
        rows = [
            ("journal records", str(len(scan.records))),
            ("journal bytes (valid prefix)", str(scan.good_bytes)),
            ("journal bytes (torn tail)", str(scan.torn_bytes)),
            ("seq range",
             f"{min(seqs)}..{max(seqs)}" if seqs else "-"),
        ]
        rows += [(f"records: {t}", str(n))
                 for t, n in sorted(by_type.items())]
        for fname in (SNAPSHOT_FILE, SNAPSHOT_PREV_FILE):
            path = os.path.join(data_dir, fname)
            rows.append((
                fname,
                f"{os.path.getsize(path)} bytes"
                if os.path.exists(path) else "absent",
            ))
        print(render_table(["journal", "value"], rows,
                           title=f"data dir: {data_dir}"))
        return 0

    mgr = DurabilityManager(data_dir)
    if args.action == "verify":
        report = mgr.recover(truncate=False)
        rows = [(k, str(v)) for k, v in report.to_dict().items()
                if k != "anomalies"]
        print(render_table(["recovery", "value"], rows,
                           title=f"data dir: {data_dir}"))
        if report.anomalies:
            for issue in report.anomalies:
                print(f"journal verify: {issue}", file=sys.stderr)
            return 1
        print("journal verify: clean")
        return 0

    # compact: replay (repairing any torn tail), snapshot, truncate
    report = mgr.recover()
    if not mgr.snapshot_now():
        print(f"journal compact failed: {mgr.last_error}",
              file=sys.stderr)
        return 1
    stats = mgr.stats()
    print(
        f"journal compact: {report.entries_restored} entries "
        f"({report.certified_restored} certified) -> "
        f"{stats['snapshot_bytes']} byte snapshot, journal reset to "
        f"{stats['journal_bytes']} bytes"
    )
    return 0


def cmd_watch(args) -> int:
    from .obs import watch

    return watch(
        args.url,
        interval=args.interval,
        count=args.count,
        clear=not args.no_clear,
    )


def _fetch_json(url: str, timeout: float = 10.0) -> dict:
    import json
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        raise SystemExit(f"{url}: HTTP {exc.code} {exc.reason}") from exc
    except urllib.error.URLError as exc:
        raise SystemExit(f"{url}: {exc.reason}") from exc


def cmd_slo(args) -> int:
    """``repro slo``: evaluate a server's service-level objectives.

    Fetches ``<url>/v1/slo`` and prints one row per objective.  Exit
    code 0 when every objective holds, 1 when any is violated — so
    the verb doubles as a scriptable health gate
    (``repro slo --url ... && deploy``).
    """
    payload = _fetch_json(args.url.rstrip("/") + "/v1/slo")
    rows = [
        (
            o["name"],
            "ok" if o["ok"] else "VIOLATED",
            f"{o['value']:.6g}",
            f"{o['threshold']:.6g}",
            o["detail"],
        )
        for o in payload.get("objectives", [])
    ]
    print(render_table(["slo", "state", "value", "budget", "detail"],
                       rows))
    ok = bool(payload.get("ok", False))
    if not ok:
        print("slo: VIOLATED", file=sys.stderr)
    return 0 if ok else 1


def cmd_debug(args) -> int:
    """``repro debug dump``: list or fetch flight-recorder bundles.

    Without ``--id``, prints the dump index of ``<url>/v1/debug/dumps``
    (one row per retained bundle).  With ``--id``, fetches the full
    bundle JSON and prints it (or writes it to ``--out FILE``).
    """
    import json

    base = args.url.rstrip("/")
    if args.id is None:
        payload = _fetch_json(base + "/v1/debug/dumps")
        dumps = payload.get("dumps", [])
        if not dumps:
            print("no flight-recorder dumps captured")
            return 0
        rows = [
            (
                d["id"],
                d["reason"],
                d.get("request_id") or "-",
                str(d.get("spans", 0)),
                str(d.get("faults", 0)),
                (d.get("detail") or "")[:60],
            )
            for d in dumps
        ]
        print(render_table(
            ["dump", "reason", "request", "spans", "faults", "detail"],
            rows,
        ))
        print(f"dump dir: {payload.get('dump_dir')}", file=sys.stderr)
        return 0
    bundle = _fetch_json(base + "/v1/debug/dumps/" + args.id)
    body = json.dumps(bundle, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(body + "\n")
        print(f"debug dump {args.id} -> {args.out}")
    else:
        print(body)
    return 0


def cmd_observe(args) -> int:
    if args.url is None:
        if not args.snapshot:
            raise SystemExit(
                "observe needs --url URL (point at a running repro "
                "server) or --snapshot FILE (headless local demo)"
            )
        return _observe_local_snapshot(args)
    base = args.url.rstrip("/")
    if args.snapshot:
        return _observe_remote_snapshot(base, args.snapshot)
    ui = base + "/ui"
    print(f"observatory: {ui}")
    if not args.no_browser:
        import webbrowser

        webbrowser.open(ui)
    return 0


def _write_snapshot(path: str, svg: str, name: str, n_frames: int) -> int:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)
    print(f"observatory snapshot: {name}, {n_frames} frames -> {path}")
    return 0


def _observe_local_snapshot(args) -> int:
    """Headless demo: certify + simulate a family locally with frame
    capture on, then render one mid-run frame as SVG."""
    from .obs.observatory import global_frame_store, render_frame_svg

    chain = build_family(args.family, args.param)
    sched = api.schedule(chain)
    store = global_frame_store()
    was_enabled = store.enabled
    store.enable()
    store.set_profile(chain.dag, sched.profile)
    try:
        api.simulate(chain, clients=args.clients, seed=args.seed)
    finally:
        store.enabled = was_enabled
    ch = store.get(chain.dag.fingerprint())
    if ch is None or not ch.frames:
        raise SystemExit("simulation recorded no frames")
    frames = list(ch.frames)
    achieved = [len(f.eligible) for f in frames]
    # the widest frontier is the frame worth looking at
    pick = max(frames, key=lambda f: len(f.eligible))
    svg = render_frame_svg(
        ch.graph,
        pick.to_payload(),
        achieved=achieved,
        profile=ch.profile,
        title=(
            f"{ch.name} — {args.clients} clients, step {pick.step}: "
            f"{len(pick.executed)}/{ch.graph['n']} executed, "
            f"{len(pick.eligible)} eligible"
        ),
    )
    return _write_snapshot(args.snapshot, svg, ch.name, len(frames))


def _observe_remote_snapshot(base: str, path: str) -> int:
    """Render the most recently active dag of a running server."""
    import json as _json
    import urllib.request

    from .obs.observatory import render_frame_svg

    def get(p: str) -> dict:
        with urllib.request.urlopen(base + p, timeout=5) as resp:
            return _json.loads(resp.read().decode("utf-8"))

    dags = get("/v1/frames").get("dags", {})
    active = {fp: d for fp, d in dags.items() if d.get("latest")}
    if not active:
        raise SystemExit(
            f"no frames recorded on {base} yet "
            "(POST /v1/simulate first, or check frame capture is on)"
        )
    fp = max(active, key=lambda k: active[k]["latest"])
    graph = get(f"/v1/dags/{fp}/graph")
    latest = get(f"/v1/dags/{fp}/frame")
    frames = get(f"/v1/dags/{fp}/frames")["frames"]
    achieved = [f["eligible_count"] for f in frames]
    svg = render_frame_svg(graph, latest["frame"], achieved=achieved)
    return _write_snapshot(path, svg, latest.get("name", fp[:12]),
                           len(frames))


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics",
        choices=("json", "prom"),
        help="after the command, dump the process metrics registry in "
        "the chosen exposition format (see docs/OBSERVABILITY.md)",
    )
    p.add_argument(
        "--trace",
        metavar="FILE",
        help="enable structured tracing and export the JSONL trace "
        "to FILE when the command finishes",
    )
    p.add_argument(
        "--serve-metrics",
        metavar="PORT",
        type=int,
        help="serve the HTTP observability endpoints (/metrics, "
        "/stats, ...) on this port for the duration of the command "
        "(0 = ephemeral; the bound URL is printed to stderr)",
    )


def _add_search_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--strategy",
        choices=("auto", "compositional", "exhaustive", "anytime",
                 "heuristic"),
        default="auto",
        help="certification strategy (docs/CERTIFICATION.md); "
        "default %(default)s",
    )
    p.add_argument(
        "--budget",
        type=int,
        metavar="STATES",
        help="anytime state budget: return the best schedule found "
        "within this many enumerated ideal states, with certified "
        "loss bounds",
    )
    p.add_argument(
        "--parallel",
        action="store_true",
        help="fan the exhaustive ideal-lattice search out over a "
        "process pool (same result, sized from os.cpu_count(); "
        "see docs/PERFORMANCE.md)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed certification cache",
    )


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IC-Scheduling Theory reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("families", help="list buildable dag families")

    p = sub.add_parser("schedule", help="build and schedule a family dag")
    p.add_argument("family")
    p.add_argument("param", nargs="?", type=int)
    p.add_argument("--show-dag", action="store_true")
    _add_search_flags(p)
    _add_obs_flags(p)

    p = sub.add_parser(
        "verify", help="exhaustively verify IC-optimality "
        "(family or catalog block spec)"
    )
    p.add_argument("family", help="family name or block spec (e.g. N8)")
    p.add_argument("param", nargs="?", type=int)
    _add_search_flags(p)
    _add_obs_flags(p)

    p = sub.add_parser("simulate", help="IC server policy comparison")
    p.add_argument("family")
    p.add_argument("param", nargs="?", type=int)
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dropout", type=float, default=0.0)
    p.add_argument("--hetero", action="store_true")
    p.add_argument(
        "--faults",
        metavar="SPEC",
        help="chaos script: a scenario name (churn, stragglers, flaky, "
        "blackout; optionally NAME:seed=N) or an event list like "
        "'crash:0@2,stall:1@1.5x4,join@5,corrupt=0.1' "
        "(see docs/ROBUSTNESS.md)",
    )
    p.add_argument(
        "--server-policy",
        metavar="SPEC",
        help="fault-tolerance policy as key=value pairs: timeout, "
        "retries, backoff, jitter, speculate (factor or 'off'), "
        "replicas, critical, quarantine; e.g. "
        "'timeout=4,retries=3,speculate=off' (implied default policy "
        "when --faults is given)",
    )
    p.add_argument(
        "--machine",
        metavar="SPEC",
        help="machine model: KIND[:key=val,...] with kinds ideal, "
        "bsp (g, L), memcap (cap, spill), hetero (spread, seed); "
        "e.g. 'bsp:g=1,L=2' or 'memcap:cap=3' "
        "(see docs/MACHINES.md)",
    )
    _add_obs_flags(p)

    p = sub.add_parser(
        "stats", help="print the process metrics registry"
    )
    p.add_argument(
        "--format", choices=("table", "json", "prom"), default="table"
    )
    p.add_argument(
        "--reset", action="store_true",
        help="zero every metric after printing",
    )

    p = sub.add_parser(
        "serve-metrics",
        help="serve the observability HTTP endpoints standalone",
    )
    p.add_argument("--port", type=int, default=9100)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--duration",
        type=float,
        help="serve for this many seconds then exit "
        "(default: until interrupted)",
    )

    p = sub.add_parser(
        "serve",
        help="run the scheduling service (HTTP JSON API over the "
        "dag registry and request pipeline; see docs/SERVICE.md)",
    )
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--duration",
        type=float,
        help="serve for this many seconds then exit "
        "(default: until interrupted)",
    )
    p.add_argument(
        "--workers", type=int, default=4,
        help="simulation worker threads (default %(default)s)",
    )
    p.add_argument(
        "--max-inflight", type=int, default=32,
        help="concurrent scheduling requests admitted before "
        "backpressure answers 429 (default %(default)s)",
    )
    p.add_argument(
        "--max-queue", type=int, default=64,
        help="queued simulation requests admitted before "
        "backpressure answers 429 (default %(default)s)",
    )
    p.add_argument(
        "--exhaustive-limit", type=int, default=24,
        help="largest nonsink count certified exhaustively "
        "(default %(default)s)",
    )
    p.add_argument(
        "--state-budget", type=int, default=500_000,
        help="ideal-state cap per certification search "
        "(default %(default)s)",
    )
    p.add_argument(
        "--parallel", action="store_true",
        help="fan certification searches over a process pool",
    )
    p.add_argument(
        "--strategy",
        choices=("auto", "compositional", "exhaustive", "anytime",
                 "heuristic"),
        default="auto",
        help="certification strategy served by the pipeline "
        "(docs/CERTIFICATION.md); default %(default)s",
    )
    p.add_argument(
        "--budget",
        type=int,
        metavar="STATES",
        help="anytime state budget used when degrading "
        "(bounded-loss fallback instead of the bare heuristic)",
    )
    p.add_argument(
        "--no-frames",
        action="store_true",
        help="disable schedule-frame capture (the /ui observatory "
        "shows no live frames; zero per-step capture cost)",
    )
    p.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON line per request to stderr "
        "(request id, route, status, duration)",
    )
    p.add_argument(
        "--dump-dir",
        metavar="DIR",
        help="directory for flight-recorder dump bundles (default: a "
        "private temp dir, created lazily on first dump)",
    )
    p.add_argument(
        "--data-dir",
        metavar="DIR",
        help="durable state directory (write-ahead journal + "
        "snapshots): admitted dags and certified schedules survive "
        "crashes and replay on boot (docs/ROBUSTNESS.md); default: "
        "in-memory only",
    )
    p.add_argument(
        "--fsync",
        choices=("always", "interval", "never"),
        default="interval",
        help="journal fsync policy with --data-dir: 'always' = "
        "zero-loss, 'interval' = bounded loss on power failure "
        "(process kills lose nothing), 'never' = flush only "
        "(default %(default)s)",
    )
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=1024,
        metavar="N",
        help="journal appends between automatic snapshot+truncate "
        "cycles with --data-dir (0 disables; default %(default)s)",
    )

    p = sub.add_parser(
        "journal",
        help="offline tools for a --data-dir journal: stat, verify "
        "(deep validation, exit 1 on corruption), compact",
    )
    p.add_argument(
        "action", choices=("stat", "verify", "compact"),
        help="'stat': summarize read-only; 'verify': full replay "
        "validation without touching disk; 'compact': snapshot + "
        "truncate",
    )
    p.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="the service data directory to inspect",
    )

    p = sub.add_parser(
        "slo",
        help="evaluate a running server's service-level objectives "
        "(/v1/slo); exit 0 when all hold, 1 on violation",
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="root URL of a running repro server (default %(default)s)",
    )

    p = sub.add_parser(
        "debug",
        help="inspect the degradation flight recorder of a running "
        "server (/v1/debug/dumps)",
    )
    p.add_argument(
        "action", choices=("dump",),
        help="'dump': list retained bundles, or fetch one with --id",
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="root URL of a running repro server (default %(default)s)",
    )
    p.add_argument(
        "--id", help="fetch this bundle (full JSON) instead of listing"
    )
    p.add_argument(
        "--out", metavar="FILE",
        help="write the fetched bundle to FILE instead of stdout",
    )

    p = sub.add_parser(
        "watch",
        help="live in-terminal dashboard over a served /stats endpoint",
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:9100",
        help="root URL of a running exposition server "
        "(default %(default)s)",
    )
    p.add_argument("--interval", type=float, default=2.0)
    p.add_argument(
        "--count",
        type=int,
        help="render this many frames then exit "
        "(default: until interrupted)",
    )
    p.add_argument(
        "--no-clear",
        action="store_true",
        help="do not clear the screen between frames (for piped output)",
    )

    p = sub.add_parser(
        "observe",
        help="open the live observatory (/ui) of a running server, or "
        "dump one rendered SVG schedule frame headlessly (--snapshot)",
    )
    p.add_argument(
        "--url",
        help="root URL of a running repro server (repro serve or "
        "serve-metrics); omitted with --snapshot, a local demo "
        "simulation is captured instead",
    )
    p.add_argument(
        "--snapshot",
        metavar="FILE",
        help="write one rendered SVG frame to FILE and exit "
        "(headless; used for CI and docs/observatory.svg)",
    )
    p.add_argument(
        "--no-browser",
        action="store_true",
        help="print the /ui URL instead of opening a browser",
    )
    p.add_argument(
        "--family", default="mesh",
        help="demo family for local --snapshot mode "
        "(default %(default)s)",
    )
    p.add_argument(
        "--param", type=int, default=4,
        help="demo family size parameter (default %(default)s)",
    )
    p.add_argument(
        "--clients", type=int, default=3,
        help="demo simulation clients (default %(default)s)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="demo simulation seed (default %(default)s)",
    )

    p = sub.add_parser("priority", help="test the ▷ relation on blocks")
    p.add_argument("block1")
    p.add_argument("block2")

    p = sub.add_parser("batch", help="batched scheduling (cf. [20])")
    p.add_argument("family")
    p.add_argument("param", nargs="?", type=int)
    p.add_argument("--capacity", type=int, default=4)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    When the chosen subcommand carries the observability flags,
    ``--trace FILE`` enables the process tracer for the duration of
    the command and exports its JSONL records to FILE afterwards,
    ``--metrics {json,prom}`` dumps the metrics registry once the
    command finishes (even on a nonzero exit), and
    ``--serve-metrics PORT`` serves the HTTP exposition endpoints
    while the command runs (URL printed to stderr, so a concurrent
    ``repro watch`` or Prometheus scraper can observe it live).
    """
    args = make_parser().parse_args(argv)
    handlers = {
        "families": cmd_families,
        "schedule": cmd_schedule,
        "verify": cmd_verify,
        "simulate": cmd_simulate,
        "priority": cmd_priority,
        "batch": cmd_batch,
        "stats": cmd_stats,
        "serve": cmd_serve,
        "journal": cmd_journal,
        "serve-metrics": cmd_serve_metrics,
        "watch": cmd_watch,
        "observe": cmd_observe,
        "slo": cmd_slo,
        "debug": cmd_debug,
    }
    trace_file = getattr(args, "trace", None)
    metrics_fmt = getattr(args, "metrics", None)
    serve_port = getattr(args, "serve_metrics", None)
    if trace_file is None and metrics_fmt is None and serve_port is None:
        return handlers[args.command](args)

    from .obs import global_registry, global_tracer

    tracer = global_tracer()
    was_enabled = tracer.enabled
    if trace_file:
        tracer.enable()
    server = None
    if serve_port is not None:
        from .obs import ObsServer

        server = ObsServer(port=serve_port).start()
        print(f"metrics: serving on {server.url}", file=sys.stderr)
    try:
        rc = handlers[args.command](args)
    finally:
        if trace_file:
            tracer.enabled = was_enabled
            n = tracer.export_jsonl(trace_file)
            print(f"trace: {n} records -> {trace_file}", file=sys.stderr)
        if metrics_fmt == "json":
            print(global_registry().to_json(indent=2))
        elif metrics_fmt == "prom":
            print(global_registry().to_prometheus(), end="")
        if server is not None:
            server.stop()
    return rc


if __name__ == "__main__":
    sys.exit(main())
