"""Value-level task semantics for the paper's computations: adaptive
quadrature (§3.2), wavefront sweeps (§4), FFT / convolutions / sorting
(§5.2), scans (§6.1), the DLT (§6.2.1), graph paths (§6.2.2), and
matrix multiplication (§7) — all executed through the
:class:`~repro.compute.engine.TaskGraph` engine under the IC-optimal
schedules the theory derives."""

from . import (
    carry_lookahead,
    convolution,
    dlt,
    engine,
    fft,
    graph_paths,
    integral_image,
    integration,
    matmul,
    scan,
    sorting,
    strassen,
    wavefront,
)
from .engine import TaskGraph

__all__ = [
    "TaskGraph",
    "carry_lookahead",
    "integral_image",
    "strassen",
    "convolution",
    "dlt",
    "engine",
    "fft",
    "graph_paths",
    "integration",
    "matmul",
    "scan",
    "sorting",
    "wavefront",
]
