"""Carry-lookahead addition via the parallel-prefix operator.

Section 6.1 names carry-lookahead addition among the computations the
scan enables "automatically" (citing Blelloch [3] and Leighton [18]).
The classical construction: for bit position *i* with addend bits
``a_i, b_i`` define generate ``g_i = a_i AND b_i`` and propagate
``p_i = a_i XOR b_i``; carries satisfy ``c_{i+1} = g_i OR (p_i AND
c_i)``, which is the scan of the (g, p) pairs under the associative
(not commutative!) operator

    (g2, p2) * (g1, p1) = (g2 OR (p2 AND g1), p2 AND p1)

applied MSB-on-the-left — so the whole carry chain computes in the
log-depth prefix dag ``P_n`` under its IC-optimal schedule, and the sum
bits are ``s_i = p_i XOR c_i``.
"""

from __future__ import annotations

from ..exceptions import ComputeError
from .scan import parallel_scan

__all__ = ["gp_combine", "carry_lookahead_add", "add_bits"]

GP = tuple[bool, bool]


def gp_combine(left: GP, right: GP) -> GP:
    """The generate/propagate operator (associative, non-commutative).

    ``left`` is the (g, p) summary of the *more significant* span,
    ``right`` of the less significant one: the combined span generates
    a carry if the high part does, or if the high part propagates a
    carry the low part generates.
    """
    g2, p2 = left
    g1, p1 = right
    return (g2 or (p2 and g1), p2 and p1)


def carry_lookahead_add(
    a_bits: list[int], b_bits: list[int], carry_in: int = 0
) -> tuple[list[int], int]:
    """Add two little-endian bit vectors with the prefix-dag carry
    chain; returns ``(sum_bits, carry_out)``.

    The (g, p) scan runs on ``P_n`` via
    :func:`~repro.compute.scan.parallel_scan`; each scanned prefix
    ``y_i`` summarizes bit span ``0..i``, so
    ``c_{i+1} = g(y_i) OR (p(y_i) AND carry_in)``.
    """
    if len(a_bits) != len(b_bits) or not a_bits:
        raise ComputeError("addends must be equal-length, non-empty")
    if any(x not in (0, 1) for x in a_bits + b_bits):
        raise ComputeError("bit vectors must contain only 0/1")
    pairs: list[GP] = [
        (bool(x & y), bool(x ^ y)) for x, y in zip(a_bits, b_bits)
    ]
    # scan with the *new* element on the left (more significant side):
    # running * x_i  means  x_i combines above the running summary,
    # matching (6.3) read with our non-commutative operator
    spans = parallel_scan(pairs, lambda acc, x: gp_combine(x, acc))
    cin = bool(carry_in)
    carries = [cin] + [g or (p and cin) for g, p in spans]
    sum_bits = [
        int(p ^ c) for (_g, p), c in zip(pairs, carries[:-1])
    ]
    return sum_bits, int(carries[-1])


def add_bits(a: int, b: int, width: int = 32) -> int:
    """Integer addition through the carry-lookahead prefix dag
    (used by the tests to cross-check against Python's ``+``)."""
    if a < 0 or b < 0:
        raise ComputeError("non-negative integers only")
    if max(a, b) >= 1 << width:
        raise ComputeError(f"operands exceed width {width}")
    a_bits = [(a >> i) & 1 for i in range(width)]
    b_bits = [(b >> i) & 1 for i in range(width)]
    s_bits, carry = carry_lookahead_add(a_bits, b_bits)
    return sum(bit << i for i, bit in enumerate(s_bits)) + (carry << width)
