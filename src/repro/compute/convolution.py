"""Convolutions and polynomial multiplication (Section 5.2).

The product of degree-n polynomials f and g has coefficients
``A_k = Σ_i a_i b_{k-i}`` — convolutions.  Via the convolution theorem
these are computable in Θ(n log n) with three FFTs, each of which runs
IC-optimally on the butterfly network (Section 5.2's point).  A direct
O(n²) convolution is provided as the reference.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import ComputeError
from .fft import fft, inverse_fft

__all__ = ["direct_convolution", "fft_convolution", "polynomial_multiply"]


def direct_convolution(
    a: Sequence[complex], b: Sequence[complex]
) -> list[complex]:
    """The reference O(n²) convolution:
    ``out[k] = Σ_{i+j=k} a[i] b[j]`` with ``len(out) = len(a)+len(b)-1``.
    """
    if not a or not b:
        raise ComputeError("convolution operands must be non-empty")
    out = [0j] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            out[i + j] += complex(ai) * complex(bj)
    return out


def fft_convolution(
    a: Sequence[complex], b: Sequence[complex]
) -> list[complex]:
    """Convolution via the butterfly-network FFT.

    Operands are zero-padded to the next power of two at least
    ``len(a) + len(b) - 1``; the result is trimmed back to that length.
    """
    if not a or not b:
        raise ComputeError("convolution operands must be non-empty")
    out_len = len(a) + len(b) - 1
    size = 1
    while size < max(out_len, 2):
        size <<= 1
    fa = fft(list(a) + [0j] * (size - len(a)))
    fb = fft(list(b) + [0j] * (size - len(b)))
    prod = [x * y for x, y in zip(fa, fb)]
    return inverse_fft(prod)[:out_len]


def polynomial_multiply(
    a: Sequence[float], b: Sequence[float]
) -> list[float]:
    """Multiply real polynomials (coefficient lists, lowest degree
    first) via :func:`fft_convolution`, rounding away the imaginary
    residue."""
    return [c.real for c in fft_convolution(a, b)]
