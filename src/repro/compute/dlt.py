"""Discrete Laplace Transform execution (Section 6.2.1).

Computes ``y_k(ω) = Σ_{i=0}^{n-1} x_i ω^{ik}`` — equation (6.4) — by
executing the two DLT dags of the paper:

* :func:`dlt_via_prefix` runs ``L_n = P_n ⇑ T_n`` (Fig. 13): the
  prefix phase generates ``⟨ω^0, ω^k, ω^{2k}, ..., ω^{(n-1)k}⟩`` (we
  feed ``⟨1, ω^k, ω^k, ...⟩`` so the *inclusive* scan of (6.3) emits
  exponents 0..n-1), and the in-tree accumulates the x-weighted terms.
* :func:`dlt_via_tree` runs ``L'_n`` (Fig. 15): a ternary out-tree of
  ``V₃`` blocks generates the powers — each node covers a contiguous
  exponent range ``[lo, hi)``, carries ``ω^{lo·k}``, and each child
  edge multiplies by the constant ``ω^{(child_lo - lo)k}``.

Both weight the power by ``x_i`` inside the accumulation tree's
leaf-level Λ tasks ("each source begins by multiplying x_i times the
power of ω it has received").
"""

from __future__ import annotations

import cmath
from collections.abc import Sequence

from ..exceptions import ComputeError
from ..core.composition import linear_composition_schedule
from ..core.scheduler import schedule_dag
from ..families.dlt import dlt_prefix_chain, dlt_tree_chain
from ..families.prefix import prefix_levels, px_node
from .engine import TaskGraph

__all__ = [
    "dlt_direct",
    "dlt_via_prefix",
    "dlt_via_tree",
    "dlt_via_coarsened",
    "dlt_vector",
]


def dlt_direct(x: Sequence[complex], omega: complex, k: int) -> complex:
    """Reference evaluation of (6.4): ``Σ x_i ω^{ik}``."""
    return sum(complex(xi) * omega ** (i * k) for i, xi in enumerate(x))


def _accumulation_tasks(
    tg: TaskGraph, x: Sequence[complex], power_label, chain
) -> None:
    """Attach the in-tree tasks: leaf-level Λ nodes compute x-weighted
    sums of the powers their merged sources deliver; higher nodes add.

    ``power_label(i)`` is the composite node delivering ``ω^{ik}``.
    """
    dag = chain.dag
    power_index = {power_label(i): i for i in range(len(x))}
    for v in dag.nodes:
        if not (isinstance(v, tuple) and v and v[0] in ("acc", "grp")):
            continue
        parents = dag.parents(v)
        weights = []
        for p in parents:
            if p in power_index:
                weights.append(complex(x[power_index[p]]))
            else:
                weights.append(None)  # an interior child: already a sum

        def task(*vals, _w=tuple(weights)):
            acc = 0j
            for w, val in zip(_w, vals):
                acc += val if w is None else w * val
            return acc

        tg.set_task(v, task, parents=parents)


def dlt_via_prefix(
    x: Sequence[complex], omega: complex, k: int
) -> complex:
    """Evaluate ``y_k(ω)`` by executing ``L_n`` under its IC-optimal
    Theorem 2.1 schedule."""
    n = len(x)
    if n < 2:
        raise ComputeError("DLT dag needs n >= 2 inputs")
    chain = dlt_prefix_chain(n)
    tg = TaskGraph(chain.dag)
    wk = omega**k
    top = prefix_levels(n)
    # prefix inputs: ⟨1, ω^k, ω^k, ...⟩ -> scan emits ω^{0..(n-1)k}
    tg.set_constant(px_node(0, 0), 1 + 0j)
    for i in range(1, n):
        tg.set_constant(px_node(0, i), wk)
    for j in range(top):
        step = 1 << j
        for i in range(n):
            if i >= step:
                tg.set_task(
                    px_node(j + 1, i),
                    lambda a, b: a * b,
                    parents=[px_node(j, i - step), px_node(j, i)],
                )
            else:
                tg.set_task(px_node(j + 1, i), lambda a: a)
    _accumulation_tasks(tg, x, lambda i: px_node(top, i), chain)
    sched = linear_composition_schedule(chain)
    values = tg.run(sched)
    root = next(
        v for v in chain.dag.sinks
    )
    return values[root]


def dlt_via_coarsened(
    x: Sequence[complex], omega: complex, k: int, group: int = 2
) -> complex:
    """Evaluate ``y_k(ω)`` on the *coarsened* ``L_n`` of Fig. 13
    (right): the accumulation tree's leaf-level Λ tasks each absorb
    ``group`` prefix outputs — same answer, coarser tasks."""
    n = len(x)
    if n < 2:
        raise ComputeError("DLT dag needs n >= 2 inputs")
    from ..families.dlt import coarsened_dlt_chain

    chain = coarsened_dlt_chain(n, group)
    tg = TaskGraph(chain.dag)
    wk = omega**k
    top = prefix_levels(n)
    tg.set_constant(px_node(0, 0), 1 + 0j)
    for i in range(1, n):
        tg.set_constant(px_node(0, i), wk)
    for j in range(top):
        step = 1 << j
        for i in range(n):
            if i >= step:
                tg.set_task(
                    px_node(j + 1, i),
                    lambda a, b: a * b,
                    parents=[px_node(j, i - step), px_node(j, i)],
                )
            else:
                tg.set_task(px_node(j + 1, i), lambda a: a)
    _accumulation_tasks(tg, x, lambda i: px_node(top, i), chain)
    result = schedule_dag(chain)
    values = tg.run(result.schedule)
    return values[chain.dag.sinks[0]]


def dlt_via_tree(x: Sequence[complex], omega: complex, k: int) -> complex:
    """Evaluate ``y_k(ω)`` by executing the ternary-tree dag ``L'_n``
    under its (reordered) Theorem 2.1 schedule."""
    n = len(x)
    if n < 2:
        raise ComputeError("DLT dag needs n >= 2 inputs")
    chain = dlt_tree_chain(n)
    tg = TaskGraph(chain.dag)
    wk = omega**k
    dag = chain.dag
    for v in dag.nodes:
        if isinstance(v, tuple) and v and v[0] == "pow":
            _tag, lo, _hi = v
            parents = dag.parents(v)
            if not parents:  # the root carries ω^{lo·k} = ω^0
                tg.set_constant(v, wk**lo)
            else:
                # parent covers [plo, ...): multiply by ω^{(lo-plo)k}
                plo = parents[0][1]
                tg.set_task(
                    v, lambda a, _m=wk ** (lo - plo): a * _m
                )
        elif isinstance(v, tuple) and v and v[0] == "w":
            parents = dag.parents(v)
            i = v[1]
            if not parents:  # n == 2 edge case: leaf directly at root
                tg.set_constant(v, wk**i)
            else:
                plo = parents[0][1]
                tg.set_task(v, lambda a, _m=wk ** (i - plo): a * _m)
    _accumulation_tasks(tg, x, lambda i: ("w", i), chain)
    result = schedule_dag(chain)
    values = tg.run(result.schedule)
    return values[dag.sinks[0]]


def dlt_vector(
    x: Sequence[complex], omega: complex, m: int, method: str = "prefix"
) -> list[complex]:
    """The m-dimensional DLT output ``⟨y_0(ω), ..., y_{m-1}(ω)⟩``
    (one dag execution per k, as the paper's per-``y_k`` dags imply).
    """
    fn = {"prefix": dlt_via_prefix, "tree": dlt_via_tree}.get(method)
    if fn is None:
        raise ComputeError(f"unknown DLT method {method!r}")
    return [fn(x, omega, k) for k in range(m)]
