"""Value-level execution of computation-dags.

The scheduling theory treats tasks abstractly; this engine attaches
*semantics*: each node gets a task function receiving the values of its
parents (in a declared order) and producing the node's value.  Running
a :class:`TaskGraph` under a schedule executes the real computation the
dag models — which is how the test-suite checks that the paper's
computations (quadrature, FFT, sorting, scans, DLT, matrix multiply,
...) produce correct *answers*, not just correct dag shapes, and that
the answer is invariant under every valid schedule.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from ..exceptions import ComputeError
from ..core.dag import ComputationDag, Node
from ..core.schedule import Schedule

__all__ = ["TaskGraph"]

TaskFn = Callable[..., Any]


class TaskGraph:
    """A computation-dag with an executable task per node.

    Parameters
    ----------
    dag:
        The dependency structure.  Every node must eventually receive a
        task via :meth:`set_task` (sources typically get zero-argument
        loaders) before :meth:`run`.
    """

    def __init__(self, dag: ComputationDag) -> None:
        self.dag = dag
        self._fns: dict[Node, TaskFn] = {}
        self._parent_order: dict[Node, tuple[Node, ...]] = {}

    def set_task(
        self,
        node: Node,
        fn: TaskFn,
        parents: Sequence[Node] | None = None,
    ) -> None:
        """Attach task ``fn`` to ``node``.

        ``fn`` is called with the parent values as positional arguments
        in the order given by ``parents`` (default: the dag's stored
        parent order).  ``parents`` must be a permutation of the node's
        actual parents — order matters for non-commutative tasks such
        as the convolution transformation (5.2).
        """
        if node not in self.dag:
            raise ComputeError(f"node {node!r} is not in dag {self.dag.name!r}")
        actual = self.dag.parents(node)
        order = tuple(parents) if parents is not None else tuple(actual)
        if sorted(map(repr, order)) != sorted(map(repr, actual)):
            raise ComputeError(
                f"declared parents of {node!r} do not match the dag: "
                f"{order!r} vs {tuple(actual)!r}"
            )
        self._fns[node] = fn
        self._parent_order[node] = order

    def set_constant(self, node: Node, value: Any) -> None:
        """Attach a task that ignores inputs and returns ``value``
        (convenience for source/loader nodes)."""
        self.set_task(node, lambda *_ignored, _v=value: _v)

    def missing_tasks(self) -> list[Node]:
        """Nodes that still lack a task function."""
        return [v for v in self.dag.nodes if v not in self._fns]

    def run(
        self,
        order: Schedule | Sequence[Node] | None = None,
    ) -> dict[Node, Any]:
        """Execute every task; return node -> value.

        ``order`` may be a :class:`Schedule`, an explicit node
        sequence, or ``None`` (a topological order is used).  The order
        must be a valid schedule of the dag; values are computed
        strictly in that order, so the result doubles as a check that
        the schedule respects the data dependencies.
        """
        missing = self.missing_tasks()
        if missing:
            raise ComputeError(
                f"{len(missing)} node(s) lack tasks, e.g. {missing[0]!r}"
            )
        if order is None:
            seq: Sequence[Node] = self.dag.topological_order()
        elif isinstance(order, Schedule):
            seq = order.order
        else:
            seq = list(order)
        values: dict[Node, Any] = {}
        for v in seq:
            args = []
            for p in self._parent_order[v]:
                if p not in values:
                    raise ComputeError(
                        f"order executes {v!r} before its parent {p!r}"
                    )
                args.append(values[p])
            values[v] = self._fns[v](*args)
        if len(values) != len(self.dag):
            raise ComputeError(
                f"order covered {len(values)} of {len(self.dag)} nodes"
            )
        return values
