"""The Fast Fourier Transform on the butterfly network (Section 5.2).

The d-dimensional FFT's data dependencies form exactly the butterfly
network ``B_d``; every butterfly block applies the convolution
transformation (5.2)

    y₀ = x₀ + ω x₁        y₁ = x₀ - ω x₁

with ω a block-specific power of the primitive 2^d-th root of unity.
This module builds the :class:`~repro.compute.engine.TaskGraph` over
:func:`~repro.families.butterfly_net.butterfly_dag` implementing the
iterative decimation-in-time FFT (inputs in bit-reversed order), and
executes it under the IC-optimal butterfly schedule.

The implementation is from scratch (no ``numpy.fft``); the tests
cross-check it against both a direct O(n²) DFT and numpy's FFT.
"""

from __future__ import annotations

import cmath
from collections.abc import Sequence

from ..exceptions import ComputeError
from ..core.composition import linear_composition_schedule
from ..families.butterfly_net import bf_node, butterfly_chain
from .engine import TaskGraph

__all__ = [
    "bit_reverse",
    "direct_dft",
    "fft_task_graph",
    "fft",
    "inverse_fft",
]


def bit_reverse(i: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``i``."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


def direct_dft(x: Sequence[complex], inverse: bool = False) -> list[complex]:
    """The O(n²) reference DFT: ``X_k = Σ_j x_j e^{∓2πi jk/n}``
    (unnormalized; the inverse variant flips the exponent sign and
    divides by n)."""
    n = len(x)
    sign = 1.0 if inverse else -1.0
    out = []
    for k in range(n):
        acc = 0j
        for j, xj in enumerate(x):
            acc += xj * cmath.exp(sign * 2j * cmath.pi * j * k / n)
        out.append(acc / n if inverse else acc)
    return out


def fft_task_graph(
    x: Sequence[complex], inverse: bool = False
) -> tuple[TaskGraph, int]:
    """The FFT of ``x`` (length ``2^d``, ``d >= 1``) as a task graph on
    ``B_d``.

    Returns ``(task_graph, d)``.  Level-0 node ``(0, r)`` loads
    ``x[bit_reverse(r, d)]`` (decimation in time); the level
    ``lv -> lv+1`` transition applies (5.2) on each pair
    ``{r, r | 2^lv}`` with ``ω = e^{∓2πi j / 2^{lv+1}}``,
    ``j = r mod 2^lv``.  Output ``X_k`` is the value of node ``(d, k)``.
    """
    n = len(x)
    d = n.bit_length() - 1
    if n < 2 or (1 << d) != n:
        raise ComputeError(f"FFT size must be a power of two >= 2, got {n}")
    chain = butterfly_chain(d)
    tg = TaskGraph(chain.dag)
    sign = 1j if inverse else -1j
    for r in range(n):
        tg.set_constant(bf_node(0, r), complex(x[bit_reverse(r, d)]))
    for lv in range(d):
        bit = 1 << lv
        for r in range(n):
            lo = r & ~bit
            j = r & (bit - 1)
            # W_{2·bit}^j = e^{∓πi j / bit}
            omega = cmath.exp(sign * cmath.pi * j / bit)
            parents = [bf_node(lv, lo), bf_node(lv, lo | bit)]
            if r & bit:
                tg.set_task(
                    bf_node(lv + 1, r),
                    lambda x0, x1, w=omega: x0 - w * x1,
                    parents=parents,
                )
            else:
                tg.set_task(
                    bf_node(lv + 1, r),
                    lambda x0, x1, w=omega: x0 + w * x1,
                    parents=parents,
                )
    return tg, d


def fft(x: Sequence[complex], inverse: bool = False) -> list[complex]:
    """Compute the (unnormalized forward / normalized inverse) DFT of
    ``x`` by executing the butterfly task graph under the IC-optimal
    Theorem 2.1 schedule of ``B_d``."""
    tg, d = fft_task_graph(x, inverse)
    chain = butterfly_chain(d)
    sched = linear_composition_schedule(chain)
    values = tg.run(sched.order)
    n = len(x)
    out = [values[bf_node(d, k)] for k in range(n)]
    if inverse:
        out = [v / n for v in out]
    return out


def inverse_fft(x: Sequence[complex]) -> list[complex]:
    """The inverse DFT (normalized by 1/n)."""
    return fft(x, inverse=True)
