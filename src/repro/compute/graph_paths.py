"""Computing all paths in a graph (Section 6.2.2, Fig. 16).

Given an N-node graph via its boolean adjacency matrix A, compute the
matrix M whose (i, j) entry is the vector
``⟨β^(1)_{ij}, ..., β^(K)_{ij}⟩``, where ``β^(k)_{ij} = 1`` iff a
length-k path joins i and j.

Structure (Fig. 16): a K-input parallel-prefix dag over ``⟨A, ..., A⟩``
with * = logical matrix multiplication yields all logical powers
``A^1..A^K``; an in-tree then accumulates the K power matrices into M.
Tasks here are *coarse* — each carries an N×N boolean matrix — which is
the multi-granularity point the paper makes with this example.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ComputeError
from ..core.composition import linear_composition_schedule
from ..families.paths import graph_paths_chain
from ..families.prefix import prefix_levels, px_node
from .engine import TaskGraph
from .scan import bool_matmul

__all__ = ["all_paths_reference", "paths_matrix", "paths_task_graph"]


def all_paths_reference(adjacency: np.ndarray, k_powers: int) -> np.ndarray:
    """Reference: M as an (N, N, K) boolean array via iterated logical
    matrix multiplication."""
    a = np.asarray(adjacency, dtype=bool)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ComputeError(f"adjacency must be square, got {a.shape}")
    out = np.zeros((a.shape[0], a.shape[1], k_powers), dtype=bool)
    power = a.copy()
    out[:, :, 0] = power
    for k in range(1, k_powers):
        power = bool_matmul(power, a)
        out[:, :, k] = power
    return out


def paths_task_graph(
    adjacency: np.ndarray, k_powers: int
) -> tuple[TaskGraph, object]:
    """The Fig. 16 task graph: prefix inputs load copies of A, compute
    nodes apply logical matmul, and the accumulation in-tree stacks the
    power matrices into partial ``{k: A^{k+1}}`` dictionaries (the root
    holds all K).

    Returns ``(task_graph, chain)``.
    """
    a = np.asarray(adjacency, dtype=bool)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ComputeError(f"adjacency must be square, got {a.shape}")
    if k_powers < 2:
        raise ComputeError("need at least 2 powers for the prefix dag")
    chain = graph_paths_chain(k_powers)
    tg = TaskGraph(chain.dag)
    top = prefix_levels(k_powers)
    for i in range(k_powers):
        tg.set_constant(px_node(0, i), a)
    for j in range(top):
        step = 1 << j
        for i in range(k_powers):
            if i >= step:
                tg.set_task(
                    px_node(j + 1, i),
                    bool_matmul,
                    parents=[px_node(j, i - step), px_node(j, i)],
                )
            else:
                tg.set_task(px_node(j + 1, i), lambda m: m)
    # Accumulation: top-level prefix output i is A^{i+1}; tag it into a
    # dict at the leaf-absorbing Λ level, merge dicts above.
    power_index = {px_node(top, i): i for i in range(k_powers)}
    for v in chain.dag.nodes:
        if not (isinstance(v, tuple) and v and v[0] == "acc"):
            continue
        parents = chain.dag.parents(v)
        tags = tuple(power_index.get(p) for p in parents)

        def task(*vals, _tags=tags):
            merged: dict[int, np.ndarray] = {}
            for tag, val in zip(_tags, vals):
                if tag is None:
                    merged.update(val)
                else:
                    merged[tag] = val
            return merged

        tg.set_task(v, task, parents=parents)
    return tg, chain


def paths_matrix(adjacency: np.ndarray, k_powers: int) -> np.ndarray:
    """Execute the Fig. 16 dag under its Theorem 2.1 schedule and
    assemble M as an (N, N, K) boolean array."""
    tg, chain = paths_task_graph(adjacency, k_powers)
    sched = linear_composition_schedule(chain)
    values = tg.run(sched)
    root_val = values[chain.dag.sinks[0]]
    n = np.asarray(adjacency).shape[0]
    out = np.zeros((n, n, k_powers), dtype=bool)
    for k, matrix in root_val.items():
        out[:, :, k] = matrix
    return out
