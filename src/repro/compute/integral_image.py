"""Summed-area tables (integral images) via row/column scans.

Section 4 motivates mesh-like wavefronts with "the arrays that arise in
computer vision"; the summed-area table is the canonical such array:
``S[i, j] = Σ_{p<=i, q<=j} img[p, q]``, after which any rectangle sum
is four lookups.  It factors into a +-scan along every row followed by
a +-scan along every column — two rounds of the §6.1 parallel-prefix
operator, each running IC-optimally on ``P_n``.
"""

from __future__ import annotations

import operator

import numpy as np

from ..exceptions import ComputeError
from .scan import parallel_scan

__all__ = ["summed_area_table", "rectangle_sum"]


def summed_area_table(image: np.ndarray) -> np.ndarray:
    """The summed-area table of a 2-d array, computed by prefix-dag
    scans over rows then columns."""
    img = np.asarray(image, dtype=float)
    if img.ndim != 2 or img.size == 0:
        raise ComputeError(f"need a non-empty 2-d image, got shape {img.shape}")
    rows = np.array(
        [parallel_scan(list(row), operator.add) for row in img]
    )
    cols = np.array(
        [parallel_scan(list(col), operator.add) for col in rows.T]
    ).T
    return cols


def rectangle_sum(
    table: np.ndarray, top: int, left: int, bottom: int, right: int
) -> float:
    """Sum of ``img[top:bottom+1, left:right+1]`` from its summed-area
    table in O(1) — the computer-vision payoff."""
    if not (0 <= top <= bottom < table.shape[0]):
        raise ComputeError("bad row range")
    if not (0 <= left <= right < table.shape[1]):
        raise ComputeError("bad column range")
    total = table[bottom, right]
    if top > 0:
        total -= table[top - 1, right]
    if left > 0:
        total -= table[bottom, left - 1]
    if top > 0 and left > 0:
        total += table[top - 1, left - 1]
    return float(total)
