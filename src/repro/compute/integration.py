"""Adaptive-quadrature numerical integration (Section 3.2).

The paper's exemplar expansion-reduction computation: an interval task
compares the one-panel approximation ``A₀ = A(a, b)`` with the split
approximation ``A₁ = A(a, m) + A(m, b)`` (``m`` the midpoint).  If
``|A₀ - A₁|`` is within tolerance the task is a leaf contributing its
panel area; otherwise it spawns two child tasks for the half
intervals.  The resulting (possibly quite irregular) binary out-tree is
then composed with its dual in-tree, which accumulates the panel areas
— a diamond dag, scheduled IC-optimally by Theorem 2.1.

Both the Trapezoid Rule (linear panels) and Simpson's Rule (quadratic
panels) are provided.  Tolerances are split across children, so the
total error is bounded by the requested tolerance in the usual adaptive
fashion.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..exceptions import ComputeError
from ..core.composition import CompositionChain
from ..families.diamond import diamond_chain
from .engine import TaskGraph

__all__ = [
    "panel_area",
    "build_quadrature_tree",
    "quadrature_diamond",
    "integrate",
    "QuadratureResult",
]

Fn = Callable[[float], float]


def panel_area(f: Fn, a: float, b: float, rule: str) -> float:
    """The one-panel approximation ``A(a, b)`` under the given rule.

    ``"trapezoid"``: ``(f(a) + f(b)) (b - a) / 2``;
    ``"simpson"``: the quadratic three-point rule.
    """
    if rule == "trapezoid":
        return 0.5 * (f(a) + f(b)) * (b - a)
    if rule == "simpson":
        m = 0.5 * (a + b)
        return (f(a) + 4.0 * f(m) + f(b)) * (b - a) / 6.0
    raise ComputeError(f"unknown quadrature rule {rule!r}")


def build_quadrature_tree(
    f: Fn,
    a: float,
    b: float,
    tol: float = 1e-8,
    rule: str = "trapezoid",
    max_depth: int = 40,
) -> tuple[dict, tuple, dict]:
    """Run the adaptive refinement and return the out-tree it induces.

    Returns ``(children, root, leaf_area)``: the tree spec over
    interval nodes ``("iv", a, b)``, its root, and the accepted panel
    area per leaf.  The tree shape is data-dependent — exactly the
    irregular out-tree of Section 3.2.
    """
    if not b > a:
        raise ComputeError(f"empty interval [{a}, {b}]")
    if tol <= 0:
        raise ComputeError(f"tolerance must be positive, got {tol}")
    children: dict = {}
    leaf_area: dict = {}

    def refine(lo: float, hi: float, budget: float, depth: int):
        node = ("iv", lo, hi)
        mid = 0.5 * (lo + hi)
        a0 = panel_area(f, lo, hi, rule)
        a1 = panel_area(f, lo, mid, rule) + panel_area(f, mid, hi, rule)
        if abs(a0 - a1) <= budget or depth >= max_depth:
            leaf_area[node] = a1  # the refined value is the better one
            return node
        left = refine(lo, mid, budget / 2.0, depth + 1)
        right = refine(mid, hi, budget / 2.0, depth + 1)
        children[node] = [left, right]
        return node

    root = refine(a, b, tol, 0)
    return children, root, leaf_area


@dataclass
class QuadratureResult:
    """Outcome of :func:`integrate`."""

    value: float
    chain: CompositionChain | None
    task_graph: TaskGraph | None
    panels: int


def quadrature_diamond(
    f: Fn,
    a: float,
    b: float,
    tol: float = 1e-8,
    rule: str = "trapezoid",
    max_depth: int = 40,
) -> tuple[CompositionChain, TaskGraph]:
    """The diamond dag of the adaptive integration plus its tasks.

    The out-tree nodes carry their interval (the if-then prescription
    of Section 3.2); the in-tree is the out-tree's dual (the Fig. 3
    simplification), with its leaf-level nodes computing panel areas
    and interior nodes summing (the Λ prescription ``z = y₀ + y₁``).
    The value at the in-tree root ``("acc", root)`` is the integral.
    """
    children, root, leaf_area = build_quadrature_tree(
        f, a, b, tol, rule, max_depth
    )
    return _diamond_tasks(children, root, leaf_area, f"quadrature[{a},{b}]")


def _diamond_tasks(
    children: dict, root: tuple, leaf_area: dict, name: str
) -> tuple[CompositionChain, TaskGraph]:
    if not children:
        raise ComputeError(
            "integration converged on the whole interval; no tree to "
            "build — tighten tol to exercise the diamond"
        )
    chain = diamond_chain(children, root, name=name)
    tg = TaskGraph(chain.dag)
    internal = set(children)
    for v in chain.dag.nodes:
        if v in internal:
            # expansive phase: pass the interval down
            tg.set_task(v, lambda *ivs, _v=v: _v[1:])
        elif isinstance(v, tuple) and v and v[0] == "iv":
            # a leaf: merged out-tree sink / in-tree source; its task
            # evaluates the accepted panel area
            tg.set_task(v, lambda *ivs, _a=leaf_area[v]: _a)
        else:
            # ("acc", node): reductive phase sums child areas
            tg.set_task(v, lambda *areas: sum(areas))
    return chain, tg


def integrate(
    f: Fn,
    a: float,
    b: float,
    tol: float = 1e-8,
    rule: str = "trapezoid",
    max_depth: int = 40,
) -> QuadratureResult:
    """Adaptively integrate ``f`` over ``[a, b]`` by executing the
    Section 3.2 diamond dag under its Theorem 2.1 schedule.

    Falls back to the single accepted panel when the tolerance is met
    without refinement (no dag needed).
    """
    children, root, leaf_area = build_quadrature_tree(
        f, a, b, tol, rule, max_depth
    )
    if not children:
        return QuadratureResult(
            value=leaf_area[root], chain=None, task_graph=None, panels=1
        )
    chain, tg = _diamond_tasks(
        children, root, leaf_area, f"quadrature[{a},{b}]"
    )
    from ..core.composition import linear_composition_schedule

    sched = linear_composition_schedule(chain)
    values = tg.run(sched)
    return QuadratureResult(
        value=values[("acc", root)],
        chain=chain,
        task_graph=tg,
        panels=len(leaf_area),
    )
