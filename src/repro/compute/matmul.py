"""Matrix multiplication via the Section 7 dags.

* :func:`multiply_blocks_2x2` executes the 20-node dag M of Fig. 17 on
  2×2 *block* operands (anything numpy can multiply — scalars or
  matrices; identity (7.1) never commutes factors, so blocks are fine).
* :func:`recursive_multiply` executes the full scalar-granularity dag
  of :func:`~repro.families.matmul_dag.recursive_matmul_dag`,
  recursively applying (7.1) down to scalars.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ComputeError
from ..families.matmul_dag import (
    OPERANDS,
    SUMS,
    matmul_chain,
    paper_schedule,
    recursive_matmul_dag,
)
from .engine import TaskGraph

__all__ = ["multiply_blocks_2x2", "recursive_multiply"]

#: which operand quadrant each load letter names: (matrix, row, col)
_QUADRANT = {
    "A": ("a", 0, 0),
    "B": ("a", 0, 1),
    "C": ("a", 1, 0),
    "D": ("a", 1, 1),
    "E": ("b", 0, 0),
    "F": ("b", 0, 1),
    "G": ("b", 1, 0),
    "H": ("b", 1, 1),
}


def multiply_blocks_2x2(a_blocks, b_blocks):
    """Multiply 2×2 block matrices by executing the Fig. 17 dag under
    the §7 IC-optimal schedule.

    ``a_blocks``/``b_blocks`` are 2×2 nested sequences of blocks
    (numbers or numpy arrays).  Returns the 2×2 nested list of result
    blocks ``[[AE+BG, AF+BH], [CE+DG, CF+DH]]``.
    """
    operands = {}
    for letter, (which, i, j) in _QUADRANT.items():
        src = a_blocks if which == "a" else b_blocks
        operands[letter] = src[i][j]
    chain = matmul_chain()
    dag = chain.dag
    tg = TaskGraph(dag)
    for ops in OPERANDS:
        for letter in ops:
            tg.set_constant(letter, operands[letter])
    for prods in (("AE", "CE", "CF", "AF"), ("BG", "DG", "DH", "BH")):
        for prod in prods:
            left, right = prod[0], prod[1]
            tg.set_task(
                prod,
                lambda lv, rv: np.dot(lv, rv)
                if isinstance(lv, np.ndarray)
                else lv * rv,
                parents=[left, right],
            )
    for entry, (p, q) in SUMS.items():
        tg.set_task(entry, lambda pv, qv: pv + qv, parents=[p, q])
    values = tg.run(paper_schedule(dag))
    return [
        [values["r00"], values["r01"]],
        [values["r10"], values["r11"]],
    ]


def recursive_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply n×n matrices (n a power of two) by executing the
    scalar-granularity recursive dag of Section 7.1.

    The dag is scheduled greedily (the full recursion is not a single
    ▷-linear composition — each *level* is; see Section 7.2), executed
    by the task engine, and the result assembled from the final
    addition (or multiplication, for n = 1 ... n = 2⁰ is rejected,
    use ``a * b``) layer.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ComputeError(f"need equal square operands, got {a.shape}, {b.shape}")
    n = a.shape[0]
    k = n.bit_length() - 1
    if 1 << k != n or k < 1:
        raise ComputeError(f"size must be a power of two >= 2, got {n}")
    dag = recursive_matmul_dag(k)
    tg = TaskGraph(dag)
    for v in dag.nodes:
        kind = v[0]
        if kind == "a":
            tg.set_constant(v, float(a[v[1], v[2]]))
        elif kind == "b":
            tg.set_constant(v, float(b[v[1], v[2]]))
        elif kind == "mul":
            tg.set_task(v, lambda x, y: x * y)
        else:  # ("add", depth, seq, i, j)
            tg.set_task(v, lambda x, y: x + y)
    values = tg.run()
    # The final (depth-0) addition layer holds the result entries.  Its
    # nodes are ("add", 0, seq, i, j) with seq enumerating quadrants in
    # creation order; recover positions from the handle the builder
    # returns instead: the top-level entries are exactly the sinks.
    out = np.zeros((n, n))
    sink_vals = _assemble_from_sinks(dag, values, n)
    out[:, :] = sink_vals
    return out


def _assemble_from_sinks(dag, values, n: int) -> np.ndarray:
    """Map the dag's sinks back to matrix positions.

    Top-level sinks are ``("add", 0, seq, i, j)`` nodes (or the single
    ``("mul", ...)`` for n = 1); quadrant position is recovered from
    the creation order: the builder emits quadrants in the fixed order
    (0,0), (0,1), (1,0), (1,1), each as an h×h row-major sweep.
    """
    sinks = [v for v in dag.nodes if dag.is_sink(v)]
    sinks.sort(key=lambda v: v[2])  # creation sequence
    h = n // 2
    out = np.zeros((n, n))
    per_quad = h * h
    quads = [(0, 0), (0, 1), (1, 0), (1, 1)]
    for idx, v in enumerate(sinks):
        qi, qj = quads[idx // per_quad]
        i, j = v[3], v[4]
        out[qi * h + i, qj * h + j] = values[v]
    return out
