"""Parallel-prefix (scan) execution (Section 6.1).

The scan operator works for *any* associative binary operation — the
paper's examples range from integer multiplication (powers of N)
through complex multiplication (powers of ω) to logical matrix
multiplication (path computation), illustrating the operator's
multi-granular nature.  This module executes the log-depth prefix dag
``P_n`` of Fig. 11 with an arbitrary operation and checks out against
the sequential reference scan.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from ..exceptions import ComputeError
from ..core.composition import linear_composition_schedule
from ..families.prefix import prefix_chain, prefix_dag, prefix_levels, px_node
from .engine import TaskGraph

__all__ = [
    "sequential_scan",
    "scan_task_graph",
    "parallel_scan",
    "powers",
    "bool_matmul",
]

Op = Callable[[Any, Any], Any]


def sequential_scan(values: Sequence[Any], op: Op) -> list[Any]:
    """The reference scan (6.3): ``y_i = x_0 * x_1 * ... * x_i``."""
    if not values:
        return []
    out = [values[0]]
    for v in values[1:]:
        out.append(op(out[-1], v))
    return out


def scan_task_graph(values: Sequence[Any], op: Op) -> tuple[TaskGraph, int]:
    """The task graph computing the scan of ``values`` on ``P_n``.

    Level-0 node ``(0, i)`` loads ``x_i``; compute node ``(ℓ+1, i)``
    applies ``x_i <- x_{i-2^ℓ} * x_i`` when ``i >= 2^ℓ`` and copies
    otherwise (the pass-through tasks visible in Fig. 11).  After
    running, output ``y_i`` is the value of node ``(L, i)``.
    """
    n = len(values)
    if n < 2:
        raise ComputeError("scan dag needs at least 2 inputs")
    dag = prefix_dag(n)
    tg = TaskGraph(dag)
    for i, v in enumerate(values):
        tg.set_constant(px_node(0, i), v)
    levels = prefix_levels(n)
    for j in range(levels):
        step = 1 << j
        for i in range(n):
            if i >= step:
                tg.set_task(
                    px_node(j + 1, i),
                    lambda a, b, _op=op: _op(a, b),
                    parents=[px_node(j, i - step), px_node(j, i)],
                )
            else:
                tg.set_task(px_node(j + 1, i), lambda a: a)
    return tg, levels


def parallel_scan(values: Sequence[Any], op: Op) -> list[Any]:
    """Scan ``values`` by executing ``P_n`` under its IC-optimal
    N-dag-composition schedule (falls back to the trivial answer for
    fewer than two inputs)."""
    if len(values) < 2:
        return list(values)
    tg, levels = scan_task_graph(values, op)
    chain = prefix_chain(len(values))
    sched = linear_composition_schedule(chain)
    out = tg.run(sched)
    return [out[px_node(levels, i)] for i in range(len(values))]


def powers(x: Any, n: int, op: Op) -> list[Any]:
    """The first ``n`` powers ``x, x², ..., xⁿ`` via the scan of
    ``⟨x, x, ..., x⟩`` (the paper's §6.1 examples: integer powers,
    complex powers, logical matrix powers)."""
    if n < 1:
        raise ComputeError(f"need n >= 1 powers, got {n}")
    return parallel_scan([x] * n, op)


def bool_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Logical matrix multiplication: OR-of-ANDs (the paper's
    substitute for +/× when computing paths)."""
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    if a.shape[1] != b.shape[0]:
        raise ComputeError(
            f"incompatible shapes {a.shape} x {b.shape}"
        )
    return (a.astype(np.uint8) @ b.astype(np.uint8)) > 0
