"""Comparator-network sorting (Section 5.2).

Each comparator is a butterfly building block with the comparator
transformation (5.1): ``y₀ = min(x₀, x₁)``, ``y₁ = max(x₀, x₁)``
(descending comparators swap the roles).  Batcher's bitonic network —
an iterated composition of butterfly blocks, hence IC-optimally
schedulable — sorts any key sequence presented at its sources.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from ..exceptions import ComputeError
from ..core.composition import CompositionChain, linear_composition_schedule
from ..families.butterfly_net import (
    bitonic_stages,
    comparator_network_chain,
    odd_even_merge_stages,
)
from .engine import TaskGraph

__all__ = [
    "bitonic_comparators",
    "sorting_network_chain",
    "sorting_task_graph",
    "bitonic_sort",
    "odd_even_merge_sort",
]


def bitonic_comparators(n: int) -> list[list[tuple[int, int, bool]]]:
    """The bitonic network's comparators with directions.

    Stage list parallel to
    :func:`~repro.families.butterfly_net.bitonic_stages`; each entry is
    ``(lo, hi, ascending)`` where ``ascending`` means the smaller key
    exits on wire ``lo``.  Phase ``p`` (block size ``2^p``) sorts
    ascending exactly when bit ``p`` of ``lo`` is 0.
    """
    k = n.bit_length() - 1
    if 1 << k != n or k < 1:
        raise ComputeError(f"bitonic sort needs a power-of-two size, got {n}")
    out: list[list[tuple[int, int, bool]]] = []
    for p in range(1, k + 1):
        for j in range(p - 1, -1, -1):
            bit = 1 << j
            stage = []
            for lo in range(n):
                if lo & bit:
                    continue
                ascending = (lo >> p) & 1 == 0
                stage.append((lo, lo | bit, ascending))
            out.append(stage)
    return out


def sorting_network_chain(n: int) -> CompositionChain:
    """The bitonic sorting network on ``n`` wires as a ▷-linear
    iterated composition of butterfly blocks."""
    return comparator_network_chain(
        n, bitonic_stages(n), name=f"bitonic_{n}"
    )


def sorting_task_graph(keys: Sequence[Any]) -> tuple[TaskGraph, CompositionChain, int]:
    """The task graph sorting ``keys`` on the bitonic network.

    Returns ``(task_graph, chain, n_stages)``; after running, the
    sorted keys are the values of nodes ``(n_stages, wire)`` for wires
    ``0..n-1``.
    """
    n = len(keys)
    chain = sorting_network_chain(n)
    comparators = bitonic_comparators(n)
    tg = TaskGraph(chain.dag)
    for w, key in enumerate(keys):
        tg.set_constant((0, w), key)
    # Wire values thread through stages; a wire's input at stage s is
    # the node where it was last written.
    current = {w: (0, w) for w in range(n)}
    for s, stage in enumerate(comparators):
        for lo, hi, ascending in stage:
            parents = [current[lo], current[hi]]
            if ascending:
                tg.set_task(
                    (s + 1, lo), lambda a, b: min(a, b), parents=parents
                )
                tg.set_task(
                    (s + 1, hi), lambda a, b: max(a, b), parents=parents
                )
            else:
                tg.set_task(
                    (s + 1, lo), lambda a, b: max(a, b), parents=parents
                )
                tg.set_task(
                    (s + 1, hi), lambda a, b: min(a, b), parents=parents
                )
            current[lo] = (s + 1, lo)
            current[hi] = (s + 1, hi)
    return tg, chain, len(comparators)


def bitonic_sort(keys: Sequence[Any]) -> list[Any]:
    """Sort ``keys`` (length a power of two) by executing the bitonic
    network under its IC-optimal Theorem 2.1 schedule."""
    n = len(keys)
    if n <= 1:
        return list(keys)
    tg, chain, n_stages = sorting_task_graph(keys)
    sched = linear_composition_schedule(chain)
    values = tg.run(sched)
    return [values[(n_stages, w)] for w in range(n)]


def odd_even_merge_sort(keys: Sequence[Any]) -> list[Any]:
    """Sort via Batcher's odd-even merge network — the §5.2 remark that
    *any* comparator-based network works; this one uses fewer
    comparators than the bitonic network and only ascending
    comparators, yet is scheduled by exactly the same ▷-linear
    butterfly-block machinery."""
    n = len(keys)
    if n <= 1:
        return list(keys)
    stages = odd_even_merge_stages(n)
    chain = comparator_network_chain(n, stages, name=f"oem_{n}")
    tg = TaskGraph(chain.dag)
    for w, key in enumerate(keys):
        tg.set_constant((0, w), key)
    current = {w: (0, w) for w in range(n)}
    for s, stage in enumerate(stages):
        for lo, hi in stage:
            parents = [current[lo], current[hi]]
            tg.set_task((s + 1, lo), lambda a, b: min(a, b), parents=parents)
            tg.set_task((s + 1, hi), lambda a, b: max(a, b), parents=parents)
            current[lo] = (s + 1, lo)
            current[hi] = (s + 1, hi)
    sched = linear_composition_schedule(chain)
    values = tg.run(sched)
    return [values[current[w]] for w in range(n)]
