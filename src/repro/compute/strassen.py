"""Strassen matrix multiplication executed on its computation-dag.

The value-level counterpart of
:func:`repro.families.matmul_dag.strassen_dag`: operand-combination
tasks compute the signed sums, product tasks multiply (scalars or
blocks — Strassen's identities, like (7.1), never commute factors),
and output tasks accumulate the signed product combinations.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ComputeError
from ..families.matmul_dag import (
    STRASSEN_OUTPUTS,
    STRASSEN_PRODUCTS,
    strassen_dag,
)
from .engine import TaskGraph

__all__ = ["strassen_multiply_2x2", "strassen_multiply"]

_QUADRANT = {
    "A": ("a", 0, 0),
    "B": ("a", 0, 1),
    "C": ("a", 1, 0),
    "D": ("a", 1, 1),
    "E": ("b", 0, 0),
    "F": ("b", 0, 1),
    "G": ("b", 1, 0),
    "H": ("b", 1, 1),
}


def _signed_sum(args, signs):
    acc = None
    for val, sign in zip(args, signs):
        term = val if sign > 0 else -val
        acc = term if acc is None else acc + term
    return acc


def strassen_multiply_2x2(a_blocks, b_blocks):
    """Multiply 2×2 block matrices by executing the Strassen dag.

    Returns the 2×2 nested list of result blocks; blocks may be
    numbers or numpy arrays.
    """
    operands = {}
    for letter, (which, i, j) in _QUADRANT.items():
        src = a_blocks if which == "a" else b_blocks
        operands[letter] = np.asarray(src[i][j], dtype=float)
    dag = strassen_dag()
    tg = TaskGraph(dag)
    for letter in "ABCDEFGH":
        tg.set_constant(letter, operands[letter])
    for pname, (left, right) in STRASSEN_PRODUCTS.items():
        parents = []
        for side, combo in (("L", left), ("R", right)):
            if len(combo) == 1:
                parents.append(combo[0][0])
            else:
                lin = ("lin", pname, side)
                letters = [c[0] for c in combo]
                signs = [c[1] for c in combo]
                tg.set_task(
                    lin,
                    lambda *vals, _s=tuple(signs): _signed_sum(vals, _s),
                    parents=letters,
                )
                parents.append(lin)
        tg.set_task(
            pname,
            lambda lv, rv: lv @ rv if lv.ndim == 2 else lv * rv,
            parents=parents,
        )
    for out, combo in STRASSEN_OUTPUTS.items():
        pnames = [c[0] for c in combo]
        signs = [c[1] for c in combo]
        tg.set_task(
            out,
            lambda *vals, _s=tuple(signs): _signed_sum(vals, _s),
            parents=pnames,
        )
    values = tg.run()
    return [
        [values["r00"], values["r01"]],
        [values["r10"], values["r11"]],
    ]


def strassen_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply n×n matrices (n a power of two >= 2) by recursive
    Strassen block decomposition, with each level executed on the
    Strassen dag."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ComputeError(
            f"need equal square operands, got {a.shape}, {b.shape}"
        )
    n = a.shape[0]
    if n & (n - 1) or n < 2:
        raise ComputeError(f"size must be a power of two >= 2, got {n}")
    if n == 2:
        blocks = strassen_multiply_2x2(a.tolist(), b.tolist())
        return np.array(blocks, dtype=float)
    h = n // 2

    def quad(m):
        return [[m[:h, :h], m[:h, h:]], [m[h:, :h], m[h:, h:]]]

    # recursion: the 7 products are themselves Strassen multiplies; the
    # combination/accumulation layers run on the dag per level
    qa, qb = quad(a), quad(b)
    letters = {
        "A": qa[0][0], "B": qa[0][1], "C": qa[1][0], "D": qa[1][1],
        "E": qb[0][0], "F": qb[0][1], "G": qb[1][0], "H": qb[1][1],
    }
    products = {}
    for pname, (left, right) in STRASSEN_PRODUCTS.items():
        lv = _signed_sum([letters[c] for c, _s in left], [s for _c, s in left])
        rv = _signed_sum([letters[c] for c, _s in right], [s for _c, s in right])
        products[pname] = strassen_multiply(lv, rv)
    out = np.zeros((n, n))
    slices = {
        "r00": (slice(0, h), slice(0, h)),
        "r01": (slice(0, h), slice(h, n)),
        "r10": (slice(h, n), slice(0, h)),
        "r11": (slice(h, n), slice(h, n)),
    }
    for name, combo in STRASSEN_OUTPUTS.items():
        out[slices[name]] = _signed_sum(
            [products[c] for c, _s in combo], [s for _c, s in combo]
        )
    return out
