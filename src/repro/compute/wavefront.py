"""Wavefront computations on mesh dags (Section 4).

Two exemplars of the out-mesh's "each interior node combines its two
level-(k-1) neighbours" dependency pattern:

* :func:`pascal_triangle` — the binomial-coefficient table: node
  ``(k, m)`` holds C(k, m) = C(k-1, m-1) + C(k-1, m); the canonical
  fine-grained wavefront.
* :func:`wavefront_relaxation` — a finite-element-flavoured sweep:
  each node averages its available upstream neighbours and adds a
  source term (any 2-point stencil works; the dag, and hence the
  IC-optimal by-diagonal schedule, is identical).

Both run on :func:`~repro.families.mesh.out_mesh_dag` under the
IC-optimal :func:`~repro.families.mesh.diagonal_schedule`.
"""

from __future__ import annotations

from collections.abc import Callable

from ..exceptions import ComputeError
from ..families.mesh import diagonal_schedule, mesh_node, out_mesh_dag
from .engine import TaskGraph

__all__ = ["pascal_triangle", "wavefront_relaxation", "mesh_task_graph"]


def mesh_task_graph(
    depth: int,
    apex_value: float,
    combine: Callable[[int, int, float, float], float],
    edge: Callable[[int, int, float], float],
) -> TaskGraph:
    """A task graph on the depth-``d`` out-mesh.

    ``combine(k, m, left, right)`` computes interior node ``(k, m)``
    from its two parents (``left`` is ``(k-1, m-1)``, ``right`` is
    ``(k-1, m)``); ``edge(k, m, parent)`` computes the border nodes
    (``m == 0`` or ``m == k``), which have a single parent.
    """
    dag = out_mesh_dag(depth)
    tg = TaskGraph(dag)
    tg.set_constant(mesh_node(0, 0), apex_value)
    for k in range(1, depth + 1):
        for m in range(k + 1):
            if m == 0:
                tg.set_task(
                    mesh_node(k, m),
                    lambda p, _k=k, _m=m, _e=edge: _e(_k, _m, p),
                    parents=[mesh_node(k - 1, 0)],
                )
            elif m == k:
                tg.set_task(
                    mesh_node(k, m),
                    lambda p, _k=k, _m=m, _e=edge: _e(_k, _m, p),
                    parents=[mesh_node(k - 1, k - 1)],
                )
            else:
                tg.set_task(
                    mesh_node(k, m),
                    lambda a, b, _k=k, _m=m, _c=combine: _c(_k, _m, a, b),
                    parents=[mesh_node(k - 1, m - 1), mesh_node(k - 1, m)],
                )
    return tg


def pascal_triangle(depth: int) -> list[list[int]]:
    """Rows 0..depth of Pascal's triangle, computed by executing the
    out-mesh under the IC-optimal by-diagonal schedule."""
    if depth < 1:
        raise ComputeError(f"depth must be >= 1, got {depth}")
    tg = mesh_task_graph(
        depth,
        apex_value=1,
        combine=lambda k, m, a, b: a + b,
        edge=lambda k, m, p: p,  # borders stay 1
    )
    sched = diagonal_schedule(tg.dag)
    values = tg.run(sched)
    return [
        [values[mesh_node(k, m)] for m in range(k + 1)]
        for k in range(depth + 1)
    ]


def wavefront_relaxation(
    depth: int,
    source: Callable[[int, int], float],
    apex_value: float = 0.0,
) -> dict:
    """A finite-element-style wavefront sweep: interior node value is
    the mean of its two upstream neighbours plus ``source(k, m)``;
    border nodes copy their single neighbour plus the source term.

    Returns the node -> value map.
    """
    if depth < 1:
        raise ComputeError(f"depth must be >= 1, got {depth}")
    tg = mesh_task_graph(
        depth,
        apex_value=apex_value,
        combine=lambda k, m, a, b: 0.5 * (a + b) + source(k, m),
        edge=lambda k, m, p: p + source(k, m),
    )
    sched = diagonal_schedule(tg.dag)
    return tg.run(sched)
