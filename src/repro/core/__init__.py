"""Core IC-Scheduling Theory: dags, execution, schedules, optimality,
the priority relation ▷, composition ⇑, and duality (Section 2 of the
paper)."""

from .batched import (
    BatchSchedule,
    coffman_graham_batches,
    hu_batches,
    level_batches,
    min_rounds_lower_bound,
    optimal_batches,
)
from .composition import (
    BlockRecord,
    CompositionChain,
    compose,
    linear_composition_schedule,
    sum_dags,
)
from .certify import (
    STRATEGIES,
    BlockCertificateLibrary,
    BlockProvenance,
    certify,
    global_block_library,
    set_global_block_library,
)
from .dag import Arc, ComputationDag, Node
from .duality import dual_dag, dual_schedule
from .io import (
    dag_from_dict,
    dag_from_json,
    dag_to_dict,
    dag_to_json,
    schedule_from_dict,
    schedule_to_dict,
)
from .execution import ExecutionState, eligibility_profile, run_order
from .optimality import (
    SearchStats,
    all_ic_optimal_nonsink_orders,
    eligibility_upper_bound,
    find_ic_optimal_schedule,
    ic_optimal_exists,
    is_ic_optimal,
    max_eligibility_profile,
    partial_max_eligibility_profile,
)
from .profile_cache import (
    CacheStats,
    ProfileCache,
    global_profile_cache,
    set_global_profile_cache,
)
from .priority import (
    has_priority,
    optimal_nonsink_profile,
    priority_chain_holds,
    priority_matrix,
    profiles_have_priority,
)
from .quality import (
    QualityReport,
    area_ratio,
    best_effort_schedule,
    quality_deficit,
    quality_ratio,
    quality_report,
)
from .recognition import recognize, recognize_mesh_coordinates
from .schedule import (
    Schedule,
    dominates,
    normalize_nonsinks_first,
    profiles_equal,
)
from .width import dag_width, hopcroft_karp, max_antichain, width_attained
from .scheduler import (
    Certificate,
    SchedulingResult,
    greedy_schedule,
    schedule_dag,
)

__all__ = [
    "Arc",
    "BatchSchedule",
    "QualityReport",
    "area_ratio",
    "best_effort_schedule",
    "coffman_graham_batches",
    "dag_from_dict",
    "dag_from_json",
    "dag_to_dict",
    "dag_to_json",
    "hu_batches",
    "level_batches",
    "min_rounds_lower_bound",
    "optimal_batches",
    "quality_deficit",
    "quality_ratio",
    "quality_report",
    "recognize",
    "recognize_mesh_coordinates",
    "schedule_from_dict",
    "schedule_to_dict",
    "dag_width",
    "hopcroft_karp",
    "max_antichain",
    "width_attained",
    "BlockCertificateLibrary",
    "BlockProvenance",
    "BlockRecord",
    "CacheStats",
    "Certificate",
    "CompositionChain",
    "STRATEGIES",
    "certify",
    "ComputationDag",
    "ExecutionState",
    "Node",
    "ProfileCache",
    "Schedule",
    "SchedulingResult",
    "SearchStats",
    "all_ic_optimal_nonsink_orders",
    "compose",
    "dominates",
    "dual_dag",
    "dual_schedule",
    "eligibility_profile",
    "eligibility_upper_bound",
    "find_ic_optimal_schedule",
    "global_block_library",
    "global_profile_cache",
    "greedy_schedule",
    "has_priority",
    "ic_optimal_exists",
    "is_ic_optimal",
    "linear_composition_schedule",
    "max_eligibility_profile",
    "normalize_nonsinks_first",
    "optimal_nonsink_profile",
    "partial_max_eligibility_profile",
    "priority_chain_holds",
    "priority_matrix",
    "profiles_equal",
    "profiles_have_priority",
    "run_order",
    "schedule_dag",
    "set_global_block_library",
    "set_global_profile_cache",
    "sum_dags",
]
