"""Batched scheduling — the companion regimen of [20]
(Malewicz–Rosenberg, Euro-Par 2005), discussed in the paper's related
work: the server allocates *batches* of tasks periodically instead of
individual tasks as they become eligible.  Within this framework an
optimal schedule always exists, "but achieving it may entail a
prohibitively complex computation" — with a per-batch capacity ``c``
the problem is exactly unit-time precedence-constrained multiprocessor
scheduling (NP-hard in general), which this module makes concrete:

* :func:`level_batches` — unlimited capacity: allocate every ELIGIBLE
  task each round; always round-optimal (rounds = depth + 1);
* :func:`hu_batches` — Hu's critical-path (level) algorithm; provably
  round-optimal on in-/out-forests, a strong heuristic elsewhere;
* :func:`coffman_graham_batches` — the Coffman–Graham labeling;
  provably round-optimal for capacity 2;
* :func:`optimal_batches` — exact branch-and-bound for small dags (the
  "prohibitively complex computation" made runnable);
* :class:`BatchSchedule` — the validated batch sequence with its
  round count and utilization metrics.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import OptimalityError, ScheduleError
from .dag import ComputationDag, Node

__all__ = [
    "BatchSchedule",
    "level_batches",
    "hu_batches",
    "coffman_graham_batches",
    "optimal_batches",
    "min_rounds_lower_bound",
]


@dataclass
class BatchSchedule:
    """A sequence of task batches executed round by round.

    Validated on construction: every node exactly once; every batch
    only contains tasks whose parents lie in strictly earlier batches;
    no batch exceeds ``capacity`` (if given).
    """

    dag: ComputationDag
    batches: list[list[Node]]
    capacity: int | None = None
    name: str = "batched"

    def __post_init__(self) -> None:
        seen: set[Node] = set()
        for i, batch in enumerate(self.batches):
            if not batch:
                raise ScheduleError(f"batch {i} is empty")
            if self.capacity is not None and len(batch) > self.capacity:
                raise ScheduleError(
                    f"batch {i} has {len(batch)} tasks > capacity "
                    f"{self.capacity}"
                )
            for v in batch:
                if v in seen:
                    raise ScheduleError(f"node {v!r} scheduled twice")
                for p in self.dag.parents(v):
                    if p not in seen:
                        raise ScheduleError(
                            f"batch {i} runs {v!r} before parent {p!r}"
                        )
            seen.update(batch)
        if len(seen) != len(self.dag):
            raise ScheduleError(
                f"batches cover {len(seen)} of {len(self.dag)} nodes"
            )

    @property
    def rounds(self) -> int:
        """Number of allocation periods."""
        return len(self.batches)

    @property
    def utilization(self) -> float:
        """Mean batch fill fraction (1.0 = every batch at capacity;
        undefined capacity counts the largest batch as full)."""
        cap = self.capacity or max(len(b) for b in self.batches)
        return sum(len(b) for b in self.batches) / (cap * self.rounds)

    def flat_order(self) -> list[Node]:
        """The induced sequential order (batches concatenated)."""
        return [v for batch in self.batches for v in batch]

    def __repr__(self) -> str:
        return (
            f"BatchSchedule(name={self.name!r}, rounds={self.rounds}, "
            f"capacity={self.capacity})"
        )


def level_batches(dag: ComputationDag, name: str = "levels") -> BatchSchedule:
    """Unlimited-capacity batching: every ELIGIBLE task, every round.

    Round-optimal among all batched schedules (each round can only
    advance the longest path by one), with rounds = depth + 1.
    """
    dag.validate()
    levels: dict[int, list[Node]] = {}
    for v, lv in dag.node_levels().items():
        levels.setdefault(lv, []).append(v)
    batches = [levels[k] for k in sorted(levels)]
    return BatchSchedule(dag, batches, capacity=None, name=name)


def _height_map(dag: ComputationDag) -> dict[Node, int]:
    height: dict[Node, int] = {}
    for v in reversed(dag.topological_order()):
        height[v] = 1 + max((height[c] for c in dag.children(v)), default=-1)
    return height


def hu_batches(
    dag: ComputationDag, capacity: int, name: str = "hu"
) -> BatchSchedule:
    """Hu's algorithm: each round, run the ``capacity`` eligible tasks
    of greatest height (longest path to a sink), ties by insertion
    order.  Round-optimal when the precedence graph is an in-forest or
    out-forest; a classic heuristic otherwise.
    """
    if capacity < 1:
        raise ScheduleError(f"capacity must be >= 1, got {capacity}")
    dag.validate()
    height = _height_map(dag)
    index = {v: i for i, v in enumerate(dag.nodes)}
    pending = {v: dag.indegree(v) for v in dag.nodes}
    eligible = [v for v in dag.nodes if pending[v] == 0]
    batches: list[list[Node]] = []
    done = 0
    while done < len(dag):
        eligible.sort(key=lambda v: (-height[v], index[v]))
        batch = eligible[:capacity]
        eligible = eligible[capacity:]
        for v in batch:
            for c in dag.children(v):
                pending[c] -= 1
                if pending[c] == 0:
                    eligible.append(c)
        batches.append(batch)
        done += len(batch)
    return BatchSchedule(dag, batches, capacity=capacity, name=name)


def coffman_graham_batches(
    dag: ComputationDag, capacity: int, name: str = "coffman-graham"
) -> BatchSchedule:
    """Coffman–Graham list scheduling.

    Labels nodes 1..n bottom-up: next label goes to the unlabeled node
    whose children are all labeled and whose descending sequence of
    child labels is lexicographically smallest; the descending-label
    list order then feeds a greedy batcher.  Round-optimal for
    ``capacity == 2``.
    """
    if capacity < 1:
        raise ScheduleError(f"capacity must be >= 1, got {capacity}")
    dag.validate()
    index = {v: i for i, v in enumerate(dag.nodes)}
    label: dict[Node, int] = {}
    unlabeled = set(dag.nodes)
    for next_label in range(1, len(dag) + 1):
        ready = [
            v
            for v in unlabeled
            if all(c in label for c in dag.children(v))
        ]
        ready.sort(
            key=lambda v: (
                sorted((label[c] for c in dag.children(v)), reverse=True),
                index[v],
            )
        )
        pick = ready[0]
        label[pick] = next_label
        unlabeled.discard(pick)

    # list-schedule by decreasing label
    priority = sorted(dag.nodes, key=lambda v: -label[v])
    rank = {v: i for i, v in enumerate(priority)}
    pending = {v: dag.indegree(v) for v in dag.nodes}
    eligible = [v for v in dag.nodes if pending[v] == 0]
    batches: list[list[Node]] = []
    done = 0
    while done < len(dag):
        eligible.sort(key=rank.__getitem__)
        batch = eligible[:capacity]
        eligible = eligible[capacity:]
        for v in batch:
            for c in dag.children(v):
                pending[c] -= 1
                if pending[c] == 0:
                    eligible.append(c)
        batches.append(batch)
        done += len(batch)
    return BatchSchedule(dag, batches, capacity=capacity, name=name)


def min_rounds_lower_bound(dag: ComputationDag, capacity: int) -> int:
    """A cheap lower bound on the optimal round count:
    ``max(depth + 1, ceil(|N| / c))`` refined by the level-suffix
    bound: a task at level L has L ancestors on some path, so tasks at
    levels >= L can only run from round L + 1 onward; with R rounds
    total they get ``(R - L) * c`` slots, hence
    ``R >= L + ceil(m_L / c)`` where ``m_L`` counts them."""
    n = len(dag)
    depth = dag.depth()
    bound = max(depth + 1, -(-n // capacity))
    levels: dict[int, int] = {}
    for _v, lv in dag.node_levels().items():
        levels[lv] = levels.get(lv, 0) + 1
    suffix = 0
    for lv in sorted(levels, reverse=True):
        suffix += levels[lv]
        bound = max(bound, lv + -(-suffix // capacity))
    return bound


def optimal_batches(
    dag: ComputationDag,
    capacity: int,
    node_limit: int = 16,
    name: str = "optimal-batched",
) -> BatchSchedule:
    """Exact minimum-round batching by memoized branch-and-bound.

    Exhaustive over antichains of eligible tasks per round (capped by
    ``capacity``), memoizing executed sets; exact but exponential —
    refused above ``node_limit`` nodes (that is the point the paper's
    related-work discussion makes about the batched framework).
    """
    if len(dag) > node_limit:
        raise OptimalityError(
            f"exact batched optimization limited to {node_limit} nodes; "
            f"dag has {len(dag)} (use hu_batches/coffman_graham_batches)"
        )
    dag.validate()
    lower = min_rounds_lower_bound(dag, capacity)
    # iterative deepening on round budget
    nodes = dag.nodes
    full = frozenset(nodes)

    def eligible_of(executed: frozenset) -> list[Node]:
        return [
            v
            for v in nodes
            if v not in executed
            and all(p in executed for p in dag.parents(v))
        ]

    for budget in range(lower, len(dag) + 1):
        seen: set[tuple[frozenset, int]] = set()
        batches: list[list[Node]] = []

        def dfs(executed: frozenset, rounds_left: int) -> bool:
            if executed == full:
                return True
            if rounds_left == 0:
                return False
            key = (executed, rounds_left)
            if key in seen:
                return False
            elig = eligible_of(executed)
            take = min(capacity, len(elig))
            # never helps to run fewer than min(c, |eligible|) tasks
            for combo in itertools.combinations(elig, take):
                batches.append(list(combo))
                if dfs(executed | frozenset(combo), rounds_left - 1):
                    return True
                batches.pop()
            seen.add(key)
            return False

        if dfs(frozenset(), budget):
            return BatchSchedule(dag, batches, capacity=capacity, name=name)
    raise OptimalityError("unreachable: |N| rounds always suffice")
