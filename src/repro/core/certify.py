"""Decomposition-first certification: the strategy engine behind
:func:`~repro.core.scheduler.schedule_dag`.

The exhaustive ideal-lattice search of :mod:`repro.core.optimality` is
exact but exponential (``B_3`` already expands ~6.7k states), while
Theorem 2.1 assembles IC-optimal schedules for ⇑-compositions from
their blocks in linear time.  This module puts the theorem first
(``docs/CERTIFICATION.md`` is the playbook):

1. **decompose** — a :class:`~repro.core.composition.CompositionChain`
   is certified directly; a bare dag is factored by
   :func:`~repro.core.recognition.recognize` (or split into weakly
   connected components composed as sum steps);
2. **certify blocks** — each block's IC-optimal schedule comes from the
   content-addressed :class:`BlockCertificateLibrary` (attached
   schedules are *verified* against the library ceiling, never
   trusted), so repeated blocks cost one lattice search per structure
   per process lifetime — or one ever, with a persisted library;
3. **assemble** — the existing Theorem 2.1 machinery
   (:func:`~repro.core.composition.linear_composition_schedule` plus
   the ▷-linear / reordered / segmented checks) builds the composite
   schedule; the per-block provenance is recorded on the result;
4. **residuals** — only dags that resist decomposition fall back to
   the exhaustive lattice search, and only within
   ``exhaustive_limit``/``state_budget``;
5. **anytime** — when a ``budget`` is given and certification cannot
   finish inside it, the result is the best (greedy) schedule found
   together with *sound* lower/upper bounds on its eligibility loss
   (exact ceiling prefix from
   :func:`~repro.core.optimality.partial_max_eligibility_profile`,
   structural tail from
   :func:`~repro.core.optimality.eligibility_upper_bound`);
6. **heuristic** — the unbounded greedy fallback still exists, but it
   is *stamped*: every result carries its certificate kind
   (``exact`` / ``composed`` / ``anytime`` / ``heuristic``), and every
   request increments ``search_strategy_total{strategy,certificate}``.

Nothing here changes *what* a certificate means — a composed
certificate's eligibility profile is byte-identical to the exhaustive
search's (both attain ``M(t)`` pointwise; only the witness order may
differ).  What changes is the cost of producing it.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import OptimalityError, ScheduleError
from ..fsio import atomic_write_json
from ..obs import global_registry, span
from .composition import BlockRecord, CompositionChain, linear_composition_schedule
from .dag import ComputationDag
from .optimality import (
    eligibility_upper_bound,
    find_ic_optimal_schedule,
    max_eligibility_profile,
    partial_max_eligibility_profile,
)
from .profile_cache import ProfileCache, global_profile_cache
from .recognition import recognize
from .schedule import Schedule
from .scheduler import Certificate, SchedulingResult, greedy_schedule

__all__ = [
    "STRATEGIES",
    "BlockProvenance",
    "BlockCertificateLibrary",
    "global_block_library",
    "set_global_block_library",
    "certify",
]

#: the recognized certification strategies, in fallback order.
STRATEGIES = ("auto", "compositional", "exhaustive", "anytime", "heuristic")

#: library file format version (bumped on incompatible change).
_LIBRARY_VERSION = 1


@dataclass(frozen=True)
class BlockProvenance:
    """How one block of a composed certificate was certified.

    Attributes
    ----------
    block:
        The block dag's name (``V_2``, ``W_3``, a component label...).
    fingerprint:
        The block's content-addressed structure fingerprint
        (:meth:`~repro.core.dag.ComputationDag.fingerprint`).
    source:
        * ``"attached-verified"`` — the chain carried a block schedule
          and it was verified against the certified ceiling;
        * ``"cache-hit"`` — rebuilt from the block-certificate library;
        * ``"searched"`` — certified by a fresh lattice search;
        * ``"composed"`` — the block is itself a composed component
          (component-split path).
    """

    block: str
    fingerprint: str
    source: str


def _lookup_counter():
    return global_registry().counter(
        "certify_block_cache_lookups_total",
        "block-certificate library lookups", ("result",),
    )


def _load_skip_counter():
    return global_registry().counter(
        "certify_block_cache_load_skipped_total",
        "corrupt or malformed block-certificate library files/entries "
        "discarded on load",
    )


def _size_gauge():
    return global_registry().gauge(
        "certify_block_cache_size",
        "entries held by the block-certificate library",
    )


def _canonical_nodes(block: ComputationDag) -> list | None:
    """The library's canonical node order: sorted by ``repr`` — stable
    across processes (unlike ``hash``) and exactly the order the
    fingerprint hashes.  ``None`` when reprs collide (the encoding
    would be ambiguous; such blocks bypass the library)."""
    nodes = sorted(block.nodes, key=repr)
    if len({repr(v) for v in nodes}) != len(nodes):
        return None
    return nodes


class BlockCertificateLibrary:
    """Content-addressed memo of *block* certificates, optionally
    persisted to disk.

    Where :class:`~repro.core.profile_cache.ProfileCache` memoizes
    whole-dag search results within a process, this library memoizes
    the building blocks of composed certificates — keyed by the same
    structure fingerprint — and can round-trip them through a JSON
    file, so block certification is deterministic *across* processes.

    Each entry stores the block's max-eligibility profile and the node
    order of its IC-optimal schedule (or the fact that none exists),
    with nodes encoded as indices into the canonical sorted-by-``repr``
    node order — process-stable and JSON-safe regardless of label
    types.  A hit *re-validates*: the order is replayed against the
    requesting block instance and its profile checked against the
    stored ceiling, so a stale or corrupted file degrades to a fresh
    search, never to a wrong certificate.

    Parameters
    ----------
    path:
        Optional JSON file.  Loaded (tolerantly) on construction when
        it exists; every new entry is written through.
    maxsize:
        LRU bound on in-memory entries.
    """

    def __init__(self, path: str | Path | None = None,
                 maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.path = Path(path) if path is not None else None
        self.maxsize = maxsize
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        if self.path is not None and self.path.exists():
            self.load()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the counters (the backing file,
        if any, is left untouched until the next write-through)."""
        self._entries.clear()
        self.hits = self.misses = self.bypasses = 0
        _size_gauge().set(0)

    # -- persistence ---------------------------------------------------
    def load(self) -> int:
        """(Re)load entries from :attr:`path`; returns how many were
        accepted.  Malformed files or entries are skipped and counted
        (``certify_block_cache_load_skipped_total``), never raised —
        the library is a cache, correctness never depends on it."""
        if self.path is None:
            return 0
        skipped = 0
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            _load_skip_counter().inc()
            return 0
        if not isinstance(data, dict) or \
                data.get("version") != _LIBRARY_VERSION:
            _load_skip_counter().inc()
            return 0
        loaded = 0
        for fp, entry in data.get("blocks", {}).items():
            if not isinstance(entry, dict):
                skipped += 1
                continue
            profile = entry.get("profile")
            order = entry.get("order")
            if not isinstance(profile, list) or \
                    not all(isinstance(x, int) for x in profile):
                skipped += 1
                continue
            if order is not None and (
                not isinstance(order, list)
                or not all(isinstance(x, int) for x in order)
            ):
                skipped += 1
                continue
            self._entries[str(fp)] = {
                "name": str(entry.get("name", "")),
                "profile": profile,
                "order": order,
            }
            loaded += 1
        if skipped:
            _load_skip_counter().inc(skipped)
        _size_gauge().set(len(self._entries))
        return loaded

    def save(self) -> None:
        """Write every entry to :attr:`path` (power-loss-safe atomic
        replace: temp → fsync → rename → fsync-dir, via
        :func:`repro.fsio.atomic_write_json`)."""
        if self.path is None:
            return
        payload = {
            "version": _LIBRARY_VERSION,
            "blocks": dict(self._entries),
        }
        atomic_write_json(str(self.path), payload, indent=1)

    def _put(self, fingerprint: str, entry: dict) -> None:
        self._entries[fingerprint] = entry
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        _size_gauge().set(len(self._entries))
        self.save()

    # ------------------------------------------------------------------
    def certify_block(
        self,
        block: ComputationDag,
        attached: Schedule | None = None,
        state_budget: int = 500_000,
    ) -> tuple[Schedule | None, str]:
        """The block's IC-optimal schedule plus its provenance source.

        Returns ``(schedule, source)`` with ``source`` one of the
        :class:`BlockProvenance` values (``"bypass"`` never escapes —
        repr-colliding blocks are certified directly and reported as
        ``"attached-verified"`` / ``"searched"``).  ``schedule`` is
        ``None`` when the block provably admits no IC-optimal schedule
        (a cachable fact).

        ``attached`` is a *claimed* IC-optimal schedule (e.g. carried
        by a family-built chain): it is returned only after its profile
        matches the certified ceiling, so an invalid claim costs a
        search instead of poisoning the composite certificate.
        """
        canonical = _canonical_nodes(block)
        if canonical is None:
            self.bypasses += 1
            _lookup_counter().labels("bypass").inc()
            return self._certify_direct(block, attached, state_budget)
        fp = block.fingerprint()
        entry = self._entries.get(fp)
        if entry is not None:
            rebuilt = self._from_entry(block, canonical, entry, attached)
            if rebuilt is not None:
                self.hits += 1
                self._entries.move_to_end(fp)
                _lookup_counter().labels("hit").inc()
                return rebuilt
            # stored entry does not replay on this block (corrupt or
            # colliding file): recompute and overwrite.
        self.misses += 1
        _lookup_counter().labels("miss").inc()
        sched, source, profile = self._certify_with_profile(
            block, attached, state_budget
        )
        index = {v: i for i, v in enumerate(canonical)}
        self._put(fp, {
            "name": block.name,
            "profile": [int(x) for x in profile],
            "order": None if sched is None
            else [index[v] for v in sched.order],
        })
        return sched, source

    # ------------------------------------------------------------------
    def _from_entry(self, block, canonical, entry, attached):
        profile = entry["profile"]
        if len(profile) != len(block) + 1:
            return None
        if attached is not None and list(attached.profile) == profile:
            return attached, "attached-verified"
        if entry["order"] is None:
            return None, "cache-hit"
        order_idx = entry["order"]
        if len(order_idx) != len(canonical) or \
                any(not (0 <= i < len(canonical)) for i in order_idx):
            return None
        try:
            sched = Schedule(
                block, [canonical[i] for i in order_idx],
                name=f"lib({block.name})",
            )
        except ScheduleError:
            return None
        if list(sched.profile) != profile:
            return None
        return sched, "cache-hit"

    @staticmethod
    def _certify_with_profile(block, attached, state_budget):
        profile = max_eligibility_profile(block, state_budget)
        if attached is not None and \
                list(attached.profile) == list(profile):
            return attached, "attached-verified", profile
        sched = find_ic_optimal_schedule(
            block, state_budget, name=f"lib({block.name})",
            max_profile=profile,
        )
        return sched, "searched", profile

    def _certify_direct(self, block, attached, state_budget):
        sched, source, _profile = self._certify_with_profile(
            block, attached, state_budget
        )
        return sched, source


#: process-wide default library used by ``certify`` unless a caller
#: supplies (or disables) its own.  In-memory by default; install a
#: path-backed one with :func:`set_global_block_library` to persist
#: block certificates across processes.
_GLOBAL_LIBRARY = BlockCertificateLibrary()


def global_block_library() -> BlockCertificateLibrary:
    """The process-wide default :class:`BlockCertificateLibrary`."""
    return _GLOBAL_LIBRARY


def set_global_block_library(
    library: BlockCertificateLibrary,
) -> BlockCertificateLibrary:
    """Replace the process-wide default library; returns the old one."""
    global _GLOBAL_LIBRARY
    old = _GLOBAL_LIBRARY
    _GLOBAL_LIBRARY = library
    return old


# ----------------------------------------------------------------------
# strategy engine
# ----------------------------------------------------------------------


def certify(
    target: ComputationDag | CompositionChain,
    *,
    strategy: str = "auto",
    budget: int | None = None,
    exhaustive_limit: int = 24,
    state_budget: int = 500_000,
    parallel: bool = False,
    workers: int | None = None,
    cache: ProfileCache | bool = True,
    library: BlockCertificateLibrary | bool = True,
) -> SchedulingResult:
    """Certify a schedule for ``target`` under the chosen strategy.

    This is the engine behind
    :func:`~repro.core.scheduler.schedule_dag` (which documents every
    option); call it directly to pass a private
    :class:`BlockCertificateLibrary`.  Strategies:

    * ``"auto"`` — decomposition first (chain / recognized family /
      component split), exhaustive on residuals within
      ``exhaustive_limit``/``state_budget``, then anytime when a
      ``budget`` was given, else the stamped greedy heuristic;
    * ``"compositional"`` — decomposition only; raises
      :class:`~repro.exceptions.OptimalityError` when ``target`` does
      not decompose into certified blocks;
    * ``"exhaustive"`` — monolithic lattice search regardless of
      ``exhaustive_limit`` (``state_budget`` still applies and
      overruns raise);
    * ``"anytime"`` — budgeted certification: always returns a
      schedule with sound eligibility-loss bounds (uses ``budget``,
      falling back to ``state_budget`` when ``None``);
    * ``"heuristic"`` — the greedy schedule, stamped as such.

    Every call increments
    ``search_strategy_total{strategy,certificate}``.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    cache_ = global_profile_cache() if cache is True else (
        cache if isinstance(cache, ProfileCache) else None
    )
    lib = global_block_library() if library is True else (
        library if isinstance(library, BlockCertificateLibrary) else None
    )
    chain = target if isinstance(target, CompositionChain) else None
    dag = target.dag if chain is not None else target
    with span("certify", dag=dag.name, strategy=strategy):
        result = _dispatch(
            strategy, chain, dag, budget, exhaustive_limit,
            state_budget, parallel, workers, cache_, lib,
        )
    result.strategy = strategy
    global_registry().counter(
        "search_strategy_total",
        "certification requests by strategy and certificate granted",
        ("strategy", "certificate"),
    ).labels(strategy, result.certificate.value).inc()
    return result


def _dispatch(strategy, chain, dag, budget, exhaustive_limit,
              state_budget, parallel, workers, cache, lib):
    if strategy == "heuristic":
        return _heuristic(dag)
    if strategy == "anytime":
        return _anytime(
            dag, budget if budget is not None else state_budget
        )
    if strategy == "exhaustive":
        return _exhaustive(dag, state_budget, parallel, workers, cache)
    if strategy == "compositional":
        res = _decompose(chain, dag, lib, exhaustive_limit,
                         state_budget, parallel, workers, cache)
        if res is None:
            raise OptimalityError(
                f"dag {dag.name!r} does not decompose into certified "
                "blocks (no ▷-chain found); use strategy='auto' to "
                "fall back to exhaustive search"
            )
        return res

    # auto: decompose, then exhaustive residual, then anytime/greedy.
    res = _decompose(chain, dag, lib, exhaustive_limit, state_budget,
                     parallel, workers, cache)
    if res is not None:
        return res
    if _nonsinks(dag) <= exhaustive_limit:
        try:
            return _exhaustive(dag, state_budget, parallel, workers,
                               cache)
        except OptimalityError:
            pass
    if budget is not None:
        return _anytime(dag, budget)
    return _heuristic(dag)


def _nonsinks(dag: ComputationDag) -> int:
    return sum(1 for v in dag.nodes if not dag.is_sink(v))


# -- decomposition -----------------------------------------------------


def _decompose(chain, dag, lib, exhaustive_limit, state_budget,
               parallel, workers, cache):
    """The compositional certification attempt: explicit chain, then
    family recognition, then component split.  ``None`` when no
    decomposition certifies."""
    if chain is not None:
        res = _try_chain(chain, lib, state_budget)
        if res is not None:
            return res
    recognized = recognize(dag)
    if recognized is not None and (chain is None
                                   or recognized is not chain):
        res = _try_chain(recognized, lib, state_budget)
        if res is not None:
            return res
    return _component_split(dag, lib, exhaustive_limit, state_budget,
                            parallel, workers, cache)


def _resolve_chain(chain, lib, state_budget):
    """Certify every block of ``chain`` (through the library when one
    is installed); returns ``(resolved_chain, provenance)`` or
    ``(None, ())`` when some block admits no IC-optimal schedule."""
    records: list[BlockRecord] = []
    provenance: list[BlockProvenance] = []
    for rec in chain.blocks:
        if lib is not None:
            sched, source = lib.certify_block(
                rec.block, rec.schedule, state_budget
            )
        else:
            sched, source, _profile = \
                BlockCertificateLibrary._certify_with_profile(
                    rec.block, rec.schedule, state_budget
                )
        if sched is None:
            return None, ()
        records.append(BlockRecord(
            block=rec.block, schedule=sched, node_map=rec.node_map,
        ))
        provenance.append(BlockProvenance(
            block=rec.block.name,
            fingerprint=rec.block.fingerprint(),
            source=source,
        ))
    resolved = object.__new__(CompositionChain)
    resolved.name = chain.name
    resolved.dag = chain.dag
    resolved.blocks = records
    return resolved, tuple(provenance)


def _try_chain(chain, lib, state_budget, provenance=None):
    """Certify a chain via Theorem 2.1 at the strongest level that
    holds: ▷-linear, ▷-linear after priority reordering, segmented,
    reordered segmented.  ``None`` when none does.

    When ``provenance`` is ``None`` the blocks are first resolved
    through the library; otherwise the chain's attached schedules are
    taken as already certified (component-split path)."""
    if provenance is None:
        chain, provenance = _resolve_chain(chain, lib, state_budget)
        if chain is None:
            return None
    # each certification level is checked once; the builder is then
    # invoked unchecked to avoid recomputing block profiles.
    candidates = (chain, chain.priority_reordered())
    for cand in candidates:
        if cand.is_priority_linear():
            sched = linear_composition_schedule(
                cand, require_priority_chain=False
            )
            return SchedulingResult(
                sched, Certificate.COMPOSITION, bounds=(0, 0),
                provenance=provenance,
            )
    for cand in candidates:
        if cand.segmented_priority_linear():
            sched = linear_composition_schedule(
                cand, require_priority_chain=False
            )
            return SchedulingResult(
                sched, Certificate.SEGMENTED, bounds=(0, 0),
                provenance=provenance,
            )
    return None


def _component_split(dag, lib, exhaustive_limit, state_budget,
                     parallel, workers, cache):
    """Certify a disconnected dag as the ⇑-sum of its weakly connected
    components (Section 2.3.1 allows an empty merge set), each
    component certified recursively (recognition, then exhaustive).

    The ▷-chain over components is checked by the ordinary chain
    machinery — an order-free certificate does not exist for sums (the
    7-node none-exists example *is* such a sum), so failure here
    correctly falls through to the monolithic search."""
    comps = dag.connected_components()
    if len(comps) < 2:
        return None
    blocks = []
    for i, comp in enumerate(comps):
        sub = dag.induced_subdag(comp, name=f"{dag.name}/c{i}")
        res = _certify_component(sub, lib, exhaustive_limit,
                                 state_budget, parallel, workers, cache)
        if res is None or not res.ic_optimal:
            return None
        blocks.append((sub, res))
    first_sub, first_res = blocks[0]
    chain = CompositionChain(
        first_sub, first_res.schedule,
        name=f"{dag.name}:components",
        labels={v: v for v in first_sub.nodes},
    )
    for sub, res in blocks[1:]:
        chain.compose_with(
            sub, res.schedule, merge_pairs=[],
            labels={v: v for v in sub.nodes},
        )
    provenance = tuple(
        BlockProvenance(
            block=sub.name,
            fingerprint=sub.fingerprint(),
            source="composed" if res.kind == "composed" else "searched",
        )
        for sub, res in blocks
    )
    res = _try_chain(chain, lib, state_budget, provenance=provenance)
    if res is None:
        return None
    # the component schedules certify the *composite* dag: rebuild the
    # order against it so downstream consumers see one dag instance.
    order = [v for v in res.schedule.order]
    sched = Schedule(dag, order, name=f"thm2.1({dag.name})")
    return SchedulingResult(
        sched, res.certificate, bounds=(0, 0),
        provenance=res.provenance,
    )


def _certify_component(sub, lib, exhaustive_limit, state_budget,
                       parallel, workers, cache):
    """One component's certification: recognition, then exhaustive —
    no further component split (components are connected) and no
    unbounded fallbacks (a block must be certified or the split
    fails)."""
    recognized = recognize(sub)
    if recognized is not None:
        res = _try_chain(recognized, lib, state_budget)
        if res is not None:
            return res
    if _nonsinks(sub) <= exhaustive_limit:
        try:
            return _exhaustive(sub, state_budget, parallel, workers,
                               cache)
        except OptimalityError:
            return None
    return None


# -- monolithic strategies ---------------------------------------------


def _exhaustive(dag, state_budget, parallel, workers, cache):
    """The classic path: exact ceiling + lattice search.  Returns
    ``EXHAUSTIVE`` (IC-optimal) or ``NONE_EXISTS`` (greedy schedule
    with its *exact* loss as a degenerate bounds interval); raises
    :class:`OptimalityError` past ``state_budget``."""
    if cache is not None:
        profile = cache.max_profile(
            dag, state_budget, parallel=parallel, workers=workers
        )
        sched = cache.find_schedule(
            dag, state_budget, parallel=parallel, workers=workers
        )
    else:
        profile = max_eligibility_profile(
            dag, state_budget, parallel=parallel, workers=workers
        )
        sched = find_ic_optimal_schedule(
            dag, state_budget, parallel=parallel, workers=workers,
            max_profile=profile,
        )
    if sched is not None:
        return SchedulingResult(
            sched, Certificate.EXHAUSTIVE, bounds=(0, 0)
        )
    fallback = greedy_schedule(dag)
    loss = max(m - e for e, m in zip(fallback.profile, profile))
    return SchedulingResult(
        fallback, Certificate.NONE_EXISTS, bounds=(loss, loss)
    )


def _anytime(dag, anytime_budget):
    """Budgeted certification with sound loss bounds.

    The returned greedy schedule's true eligibility loss
    ``L = max_t (M(t) - E(t))`` is bracketed by

    * *lower*: the max over the exactly enumerated ceiling prefix
      (level-synchronous BFS: completed levels are exact);
    * *upper*: the max against the structural pointwise bound
      ``U(t) >= M(t)`` beyond the prefix.

    When the whole lattice fits in the budget the interval collapses
    to the exact loss — ``(0, 0)`` then certifies IC-optimality (see
    :attr:`~repro.core.scheduler.SchedulingResult.ic_optimal`)."""
    if anytime_budget < 1:
        raise ValueError(
            f"anytime budget must be >= 1, got {anytime_budget}"
        )
    prefix, complete = partial_max_eligibility_profile(
        dag, anytime_budget
    )
    sched = greedy_schedule(dag, name="anytime")
    prof = sched.profile
    if complete:
        loss = max(m - e for e, m in zip(prof, prefix))
        bounds = (loss, loss)
    else:
        lower = max(
            (m - e for e, m in zip(prof, prefix)), default=0
        )
        lower = max(0, lower)
        estimate = list(prefix) + \
            eligibility_upper_bound(dag)[len(prefix):]
        upper = max(m - e for e, m in zip(prof, estimate))
        bounds = (lower, max(lower, upper))
    return SchedulingResult(sched, Certificate.ANYTIME, bounds=bounds)


def _heuristic(dag):
    """The greedy fallback — stamped, never silent."""
    return SchedulingResult(
        greedy_schedule(dag), Certificate.HEURISTIC, bounds=None
    )
