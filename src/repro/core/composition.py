"""Dag sum, the composition operator ⇑, and Theorem 2.1 scheduling.

Section 2.3.1 defines *composition*: given dags ``G1`` and ``G2``
(disjoint, renaming if needed), pick an equal-size set of **sinks of
G1** and **sources of G2** and pairwise merge them; the result is the
composite ``G1 ⇑ G2``.

A dag is a **▷-linear composition** of ``G1, ..., Gk`` when it is
composite of type ``G1 ⇑ ... ⇑ Gk`` and ``Gi ▷ Gi+1`` for every
consecutive pair.  Theorem 2.1 then yields an IC-optimal schedule: run
the (images of the) nonsinks of each ``Gi`` in turn, each block under
its own IC-optimal schedule, and finish with the composite's sinks.

:class:`CompositionChain` records the build history — constituent
blocks, their IC-optimal schedules, and the node maps into the
composite — which is exactly the information Theorem 2.1 consumes.
Every dag family in the paper (diamonds, meshes, butterflies,
parallel-prefix, DLT, matrix-multiply) is constructed through this
class, so each family dag arrives with a machine-checkable
decomposition certificate.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..exceptions import CompositionError
from .dag import ComputationDag, Node
from .priority import optimal_nonsink_profile, profiles_have_priority
from .schedule import Schedule

__all__ = [
    "sum_dags",
    "compose",
    "BlockRecord",
    "CompositionChain",
    "linear_composition_schedule",
]


def sum_dags(
    g1: ComputationDag, g2: ComputationDag, name: str | None = None
) -> ComputationDag:
    """The sum ``G1 + G2`` (footnote 4): disjoint union.

    Raises :class:`CompositionError` if the node sets intersect; use
    :meth:`ComputationDag.prefixed` to rename first.
    """
    overlap = set(g1.nodes) & set(g2.nodes)
    if overlap:
        raise CompositionError(
            f"dags are not disjoint; {len(overlap)} shared node(s), "
            f"e.g. {next(iter(overlap))!r}"
        )
    out = ComputationDag(name=name or f"{g1.name}+{g2.name}")
    for v in g1.nodes:
        out.add_node(v)
    for v in g2.nodes:
        out.add_node(v)
    out.add_arcs(g1.arcs)
    out.add_arcs(g2.arcs)
    return out


def compose(
    g1: ComputationDag,
    g2: ComputationDag,
    merge_pairs: Sequence[tuple[Node, Node]] | None = None,
    name: str | None = None,
) -> tuple[ComputationDag, dict[Node, Node], dict[Node, Node]]:
    """The composite ``G1 ⇑ G2``.

    Parameters
    ----------
    merge_pairs:
        Pairs ``(sink_of_g1, source_of_g2)`` to identify.  Defaults to
        zipping ``g1.sinks`` with ``g2.sources`` up to the shorter
        length (at least one pair is required — otherwise the result
        would be a mere sum).
    name:
        Name of the composite.

    Returns
    -------
    (composite, map1, map2):
        ``map1``/``map2`` send each node of ``g1``/``g2`` to its node
        in the composite.  Merged nodes keep the ``g1`` label; other
        labels survive unchanged (operands must therefore be disjoint
        apart from nothing at all — rename with
        :meth:`ComputationDag.prefixed` first when needed).
    """
    if merge_pairs is None:
        sinks = g1.sinks
        sources = g2.sources
        k = min(len(sinks), len(sources))
        merge_pairs = list(zip(sinks[:k], sources[:k]))
    if not merge_pairs:
        raise CompositionError("composition requires at least one merge pair")

    sinks1 = set(g1.sinks)
    sources2 = set(g2.sources)
    used_sinks: set[Node] = set()
    used_sources: set[Node] = set()
    for s1, s2 in merge_pairs:
        if s1 not in sinks1:
            raise CompositionError(f"{s1!r} is not a sink of {g1.name!r}")
        if s2 not in sources2:
            raise CompositionError(f"{s2!r} is not a source of {g2.name!r}")
        if s1 in used_sinks or s2 in used_sources:
            raise CompositionError("merge pairs must be pairwise distinct")
        used_sinks.add(s1)
        used_sources.add(s2)

    merged = {s2: s1 for s1, s2 in merge_pairs}
    overlap = set(g1.nodes) & set(g2.nodes)
    if overlap:
        raise CompositionError(
            f"operands share {len(overlap)} node label(s); rename first "
            f"(e.g. {next(iter(overlap))!r})"
        )

    out = ComputationDag(name=name or f"{g1.name}⇑{g2.name}")
    map1 = {v: v for v in g1.nodes}
    map2 = {v: merged.get(v, v) for v in g2.nodes}
    for v in g1.nodes:
        out.add_node(v)
    for v in g2.nodes:
        out.add_node(map2[v])
    for u, v in g1.arcs:
        out.add_arc(u, v)
    for u, v in g2.arcs:
        out.add_arc(map2[u], map2[v])
    out.validate()
    return out, map1, map2


@dataclass
class BlockRecord:
    """One constituent of a composition chain.

    Attributes
    ----------
    block:
        The building-block dag in its own label space.
    schedule:
        An IC-optimal schedule *of the block* (``None`` means "resolve
        later"; Theorem 2.1 needs it).
    node_map:
        Block label -> composite label.
    """

    block: ComputationDag
    schedule: Schedule | None
    node_map: dict[Node, Node] = field(default_factory=dict)


class CompositionChain:
    """An iterated composition ``G1 ⇑ G2 ⇑ ... ⇑ Gk`` with its history.

    Start from a first block, then repeatedly :meth:`compose_with` the
    next one.  Blocks may reuse labels freely — each block's nodes are
    relabeled ``(block_index, label)`` inside the composite, except for
    merged sources which adopt the label of the composite sink they
    merge into.
    """

    def __init__(
        self,
        first_block: ComputationDag,
        schedule: Schedule | None = None,
        name: str = "composite",
        labels: dict[Node, Node] | None = None,
    ) -> None:
        self.name = name
        node_map = self._fresh_labels(first_block, 0, labels, set())
        self.dag = ComputationDag(name=name)
        for v in first_block.nodes:
            self.dag.add_node(node_map[v])
        for u, v in first_block.arcs:
            self.dag.add_arc(node_map[u], node_map[v])
        self.blocks: list[BlockRecord] = [
            BlockRecord(block=first_block, schedule=schedule, node_map=node_map)
        ]

    @staticmethod
    def _fresh_labels(
        block: ComputationDag,
        idx: int,
        labels: dict[Node, Node] | None,
        taken: set[Node],
    ) -> dict[Node, Node]:
        """Resolve composite labels for a block's unmerged nodes.

        ``labels`` (block label -> composite label) lets callers give
        family dags meaningful node names; unnamed nodes default to
        ``(block_index, block_label)``.  Labels must be fresh in the
        composite.
        """
        out: dict[Node, Node] = {}
        for v in block.nodes:
            lbl = labels[v] if labels and v in labels else (idx, v)
            if lbl in taken or lbl in out.values():
                raise CompositionError(
                    f"composite label {lbl!r} for block node {v!r} is "
                    "already in use"
                )
            out[v] = lbl
        return out

    def __len__(self) -> int:
        return len(self.blocks)

    def compose_with(
        self,
        block: ComputationDag,
        schedule: Schedule | None = None,
        merge_pairs: Sequence[tuple[Node, Node]] | None = None,
        labels: dict[Node, Node] | None = None,
    ) -> "CompositionChain":
        """Attach ``block`` via ⇑ and record it; returns ``self``.

        ``merge_pairs`` pairs *composite* sink labels with *block*
        source labels; by default composite sinks are zipped with block
        sources (shorter list wins).  An explicit empty list performs
        the *sum* step ``G + block`` (Section 2.3.1 allows the merged
        set to be empty; iterated compositions such as
        ``Λ ⇑ Λ ⇑ Λ`` for in-trees need it, since leaf-level blocks are
        mutually disconnected until a downstream block joins them).

        ``labels`` optionally names the block's unmerged nodes in the
        composite (block label -> composite label); merged sources
        always adopt the composite sink's label.
        """
        idx = len(self.blocks)
        if merge_pairs is None:
            sinks = self.dag.sinks
            sources = block.sources
            k = min(len(sinks), len(sources))
            if k == 0:
                raise CompositionError(
                    "no composite sinks / block sources to merge; pass "
                    "merge_pairs=[] explicitly for a sum step"
                )
            merge_pairs = list(zip(sinks[:k], sources[:k]))
        block_sources = set(block.sources)
        node_map: dict[Node, Node] = {}
        for cs, bs in merge_pairs:
            if cs not in self.dag or self.dag.outdegree(cs) != 0:
                raise CompositionError(
                    f"{cs!r} is not a sink of the composite {self.name!r}"
                )
            if bs not in block_sources:
                raise CompositionError(
                    f"{bs!r} is not a source of block {block.name!r}"
                )
            if bs in node_map:
                raise CompositionError(
                    f"block source {bs!r} appears in two merge pairs"
                )
            if cs in node_map.values():
                raise CompositionError(
                    f"composite sink {cs!r} appears in two merge pairs"
                )
            node_map[bs] = cs
        for v in block.nodes:
            if v in node_map:
                continue
            lbl = labels[v] if labels and v in labels else (idx, v)
            if lbl in self.dag or lbl in node_map.values():
                raise CompositionError(
                    f"composite label {lbl!r} for block node {v!r} is "
                    "already in use"
                )
            node_map[v] = lbl
        for v in block.nodes:
            self.dag.add_node(node_map[v])
        for u, v in block.arcs:
            self.dag.add_arc(node_map[u], node_map[v])
        # No acyclicity re-validation needed: merge targets are sinks
        # of the current composite (no outgoing arcs), block sources
        # have no incoming block arcs, and every other endpoint is a
        # fresh node — so each new arc flows from {sink, fresh} into
        # fresh and can close no cycle.
        self.blocks.append(
            BlockRecord(block=block, schedule=schedule, node_map=node_map)
        )
        return self

    # ------------------------------------------------------------------
    def block_dags(self) -> list[ComputationDag]:
        return [rec.block for rec in self.blocks]

    def block_schedules(self) -> list[Schedule | None]:
        return [rec.schedule for rec in self.blocks]

    def is_priority_linear(self) -> bool:
        """Check requirement (b): ``Gi ▷ Gi+1`` along the chain."""
        profiles = [
            optimal_nonsink_profile(rec.block, rec.schedule)
            for rec in self.blocks
        ]
        return all(
            profiles_have_priority(profiles[i], profiles[i + 1])
            for i in range(len(profiles) - 1)
        )

    def segment_boundaries(self) -> list[int]:
        """Block indices where a *topological cut* splits the chain.

        Index ``k`` is a boundary when (a) the composite built from
        blocks ``[0, k)`` has exactly one sink, and (b) every block
        from ``k`` on attaches with *all* of its sources merged into
        previously existing composite nodes.  Then every node
        downstream of the cut is a descendant of that single sink, so
        — as Section 3.1 argues for ``T' ⇑ T`` — *every* schedule is
        forced to execute all upstream nonsinks before any downstream
        node becomes ELIGIBLE.  IC-optimality therefore decomposes
        segment by segment (see :func:`segmented_priority_linear`).

        Returns the boundary indices in increasing order; 0 and
        ``len(blocks)`` are implicit and not included.
        """
        # images_before[k] = composite nodes contributed by blocks < k.
        images: set[Node] = set()
        images_before: list[set[Node]] = []
        for rec in self.blocks:
            images_before.append(set(images))
            images.update(rec.node_map.values())

        # fully_attached[k]: every source of block k merged on attach.
        fully_attached = [
            all(
                rec.node_map[s] in images_before[k]
                for s in rec.block.sources
            )
            for k, rec in enumerate(self.blocks)
        ]
        # suffix_attached[k]: blocks k.. are all fully attached.
        suffix_attached = [False] * (len(self.blocks) + 1)
        suffix_attached[len(self.blocks)] = True
        for k in range(len(self.blocks) - 1, -1, -1):
            suffix_attached[k] = fully_attached[k] and suffix_attached[k + 1]

        boundaries: list[int] = []
        for k in range(1, len(self.blocks)):
            if not suffix_attached[k]:
                continue
            prefix_nodes = images_before[k]
            prefix_sinks = [
                v
                for v in prefix_nodes
                if all(c not in prefix_nodes for c in self.dag.children(v))
            ]
            if len(prefix_sinks) == 1:
                boundaries.append(k)
        return boundaries

    def segmented_priority_linear(self) -> bool:
        """True when the chain splits at topological cuts into segments
        that are each ▷-linear.

        This certifies IC-optimality of the block-order schedule for
        the alternating expansion-reduction compositions of Table 1
        (where the full chain fails ▷-linearity at each Λ -> V seam but
        single-sink cuts force the phase ordering anyway).
        """
        profiles = [
            optimal_nonsink_profile(rec.block, rec.schedule)
            for rec in self.blocks
        ]
        cuts = [0] + self.segment_boundaries() + [len(self.blocks)]
        for a, b in zip(cuts, cuts[1:]):
            for i in range(a, b - 1):
                if not profiles_have_priority(profiles[i], profiles[i + 1]):
                    return False
        return True

    def block_dependencies(self) -> list[set[int]]:
        """For each block, the indices of earlier blocks it merges into.

        Block *j* depends on block *i* when some source of *j* was
        merged onto a node contributed by *i*.  Any linear extension of
        this partial order describes the same composite dag (the ⇑
        operator is associative, and same-level blocks commute).
        """
        contributed: dict[Node, int] = {}
        deps: list[set[int]] = []
        for k, rec in enumerate(self.blocks):
            dep: set[int] = set()
            for s in rec.block.sources:
                target = rec.node_map[s]
                if target in contributed:
                    dep.add(contributed[target])
            deps.append(dep)
            for v in rec.node_map.values():
                contributed.setdefault(v, k)
        return deps

    def priority_reordered(self) -> "CompositionChain":
        """A copy of this chain with blocks permuted (topology
        permitting) so the ▷-chain is more likely to hold.

        Greedy rule: among blocks whose dependencies are satisfied,
        pick one that has ▷-priority over *every* other remaining
        block; fall back to the first available when no such block
        exists.  Useful e.g. for mixed-degree out-trees, where
        ``V₃ ▷ V₂`` holds but ``V₂ ▷ V₃`` does not, so all ``V₃``
        blocks should precede all ``V₂`` blocks regardless of tree
        depth.  The underlying dag is shared, only the block order (and
        hence the certificate and the Theorem 2.1 order) changes.
        """
        profiles = [
            optimal_nonsink_profile(rec.block, rec.schedule)
            for rec in self.blocks
        ]
        deps = self.block_dependencies()
        n = len(self.blocks)
        remaining = set(range(n))
        placed: set[int] = set()
        order: list[int] = []
        while remaining:
            ready = sorted(
                k for k in remaining if deps[k] <= placed
            )
            pick = None
            for k in ready:
                if all(
                    profiles_have_priority(profiles[k], profiles[j])
                    for j in remaining
                    if j != k
                ):
                    pick = k
                    break
            if pick is None:
                pick = ready[0]
            order.append(pick)
            placed.add(pick)
            remaining.discard(pick)
        clone = object.__new__(CompositionChain)
        clone.name = self.name
        clone.dag = self.dag
        clone.blocks = [self.blocks[k] for k in order]
        return clone

    def type_string(self) -> str:
        """Human-readable composite type, e.g. ``V ⇑ V ⇑ Λ ⇑ Λ``."""
        return " ⇑ ".join(rec.block.name for rec in self.blocks)

    def __repr__(self) -> str:
        return (
            f"CompositionChain(name={self.name!r}, blocks={len(self.blocks)},"
            f" nodes={len(self.dag)})"
        )


def linear_composition_schedule(
    chain: CompositionChain,
    require_priority_chain: bool | str = True,
    name: str | None = None,
) -> Schedule:
    """The Theorem 2.1 schedule for a ▷-linear composition.

    For ``i = 1..k`` in turn, executes the composite images of the
    nonsinks of block ``Gi`` in the order of ``Gi``'s IC-optimal
    schedule; finally executes all sinks of the composite (in insertion
    order — Theorem 2.1 allows any order).

    ``require_priority_chain`` selects the certification level:

    * ``True`` / ``"linear"`` — verify ``Gi ▷ Gi+1`` along the whole
      chain (Theorem 2.1 as stated);
    * ``"segmented"`` — verify ▷-linearity within topological-cut
      segments (:meth:`CompositionChain.segmented_priority_linear`),
      which certifies the alternating Table 1 compositions;
    * ``False`` — build the order unchecked (it is still a *valid*
      schedule, just without an optimality certificate).

    Raises :class:`CompositionError` when the requested certification
    fails.
    """
    if require_priority_chain in (True, "linear"):
        if not chain.is_priority_linear():
            raise CompositionError(
                f"composition {chain.type_string()} is not ▷-linear; "
                "Theorem 2.1 does not apply (try "
                "require_priority_chain='segmented', or False to build "
                "the order anyway)"
            )
    elif require_priority_chain == "segmented":
        if not chain.segmented_priority_linear():
            raise CompositionError(
                f"composition {chain.type_string()} is not ▷-linear even "
                "within topological-cut segments"
            )
    elif require_priority_chain is not False:
        raise CompositionError(
            f"unknown certification level {require_priority_chain!r}"
        )
    order: list[Node] = []
    scheduled: set[Node] = set()
    for i, rec in enumerate(chain.blocks):
        if rec.schedule is None:
            raise CompositionError(
                f"block {i} ({rec.block.name!r}) has no schedule attached"
            )
        for v in rec.schedule.nonsink_order():
            mapped = rec.node_map[v]
            if mapped in scheduled:
                raise CompositionError(
                    f"node {mapped!r} is a nonsink of two blocks; "
                    "merge structure is not a composition in the paper's "
                    "sense"
                )
            scheduled.add(mapped)
            order.append(mapped)
    remaining = [v for v in chain.dag.nodes if v not in scheduled]
    for v in remaining:
        if not chain.dag.is_sink(v):
            raise CompositionError(
                f"node {v!r} was not covered by any block's nonsinks but "
                "is not a sink of the composite"
            )
    order.extend(remaining)
    return Schedule(
        chain.dag, order, name=name or f"thm2.1({chain.name})"
    )
