"""The computation-dag substrate.

A *computation-dag* (Section 2.1 of the paper) is a directed acyclic
graph in which each node represents a task and each arc ``(u -> v)``
records that task ``v`` cannot be executed before task ``u``.

:class:`ComputationDag` is the single graph type used throughout the
library.  It is deliberately small and deterministic:

* nodes are arbitrary hashable labels;
* parent/child sets preserve insertion order (Python dicts), so every
  derived iteration order — sources, sinks, topological orders,
  schedules — is reproducible run to run;
* all mutation goes through :meth:`add_node` / :meth:`add_arc`, which
  maintain the parent/child indices and reject cycles lazily via
  :meth:`validate`.

``networkx`` is intentionally *not* the backing store; it is available
through :meth:`to_networkx` / :meth:`from_networkx` for interop and for
independent cross-checks in the test-suite.
"""

from __future__ import annotations

import hashlib
from collections import deque
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Callable

import networkx as nx

from ..exceptions import CycleError, DagStructureError

__all__ = ["Node", "Arc", "ComputationDag"]

Node = Hashable
Arc = tuple[Node, Node]


class ComputationDag:
    """A directed acyclic graph modelling a computation.

    Parameters
    ----------
    nodes:
        Optional iterable of initial node labels.
    arcs:
        Optional iterable of ``(parent, child)`` pairs.  Endpoints not
        already present are added automatically.
    name:
        Human-readable identifier used in ``repr`` and reports.

    Notes
    -----
    Acyclicity is enforced by :meth:`validate`, which is invoked by the
    scheduling layers before any execution-order computation.  Callers
    building dags incrementally may insert arcs freely and validate
    once at the end.
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        arcs: Iterable[Arc] = (),
        name: str = "dag",
    ) -> None:
        self.name = name
        # node -> insertion-ordered dict-as-set of children / parents.
        self._children: dict[Node, dict[Node, None]] = {}
        self._parents: dict[Node, dict[Node, None]] = {}
        # mutation counter; invalidates the memoized fingerprint.
        self._version: int = 0
        self._fp_cache: tuple[int, str] | None = None
        for v in nodes:
            self.add_node(v)
        for u, v in arcs:
            self.add_arc(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> Node:
        """Insert node ``v``; inserting an existing node is a no-op."""
        if v not in self._children:
            self._children[v] = {}
            self._parents[v] = {}
            self._version += 1
        return v

    def add_arc(self, u: Node, v: Node) -> Arc:
        """Insert arc ``(u -> v)``, adding endpoints as needed.

        Self-loops are rejected immediately (they are 1-cycles); longer
        cycles are caught by :meth:`validate`.
        """
        if u == v:
            raise CycleError(f"self-loop on node {u!r} is not acyclic")
        self.add_node(u)
        self.add_node(v)
        self._children[u][v] = None
        self._parents[v][u] = None
        self._version += 1
        return (u, v)

    def add_arcs(self, arcs: Iterable[Arc]) -> None:
        """Insert every arc in ``arcs``."""
        for u, v in arcs:
            self.add_arc(u, v)

    def remove_node(self, v: Node) -> None:
        """Remove node ``v`` and every arc incident to it."""
        self._require(v)
        for c in list(self._children[v]):
            del self._parents[c][v]
        for p in list(self._parents[v]):
            del self._children[p][v]
        del self._children[v]
        del self._parents[v]
        self._version += 1

    def remove_arc(self, u: Node, v: Node) -> None:
        """Remove arc ``(u -> v)``; it must exist."""
        self._require(u)
        self._require(v)
        if v not in self._children[u]:
            raise DagStructureError(f"arc ({u!r} -> {v!r}) does not exist")
        del self._children[u][v]
        del self._parents[v][u]
        self._version += 1

    def _require(self, v: Node) -> None:
        if v not in self._children:
            raise DagStructureError(f"node {v!r} is not in dag {self.name!r}")

    # ------------------------------------------------------------------
    # basic queries (Section 2.1 vocabulary)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._children)

    @property
    def arcs(self) -> list[Arc]:
        """All arcs ``(parent, child)``, in insertion order."""
        return [(u, v) for u, cs in self._children.items() for v in cs]

    def __len__(self) -> int:
        return len(self._children)

    def __contains__(self, v: object) -> bool:
        return v in self._children

    def __iter__(self) -> Iterator[Node]:
        return iter(self._children)

    def has_arc(self, u: Node, v: Node) -> bool:
        """True iff arc ``(u -> v)`` is present."""
        return u in self._children and v in self._children[u]

    def parents(self, v: Node) -> list[Node]:
        """The parents of ``v`` (tasks ``v`` depends on)."""
        self._require(v)
        return list(self._parents[v])

    def children(self, v: Node) -> list[Node]:
        """The children of ``v`` (tasks depending on ``v``)."""
        self._require(v)
        return list(self._children[v])

    def indegree(self, v: Node) -> int:
        """Number of parents of ``v``."""
        self._require(v)
        return len(self._parents[v])

    def outdegree(self, v: Node) -> int:
        """Number of children of ``v``."""
        self._require(v)
        return len(self._children[v])

    @property
    def sources(self) -> list[Node]:
        """Parentless nodes.  Sources are always ELIGIBLE."""
        return [v for v, ps in self._parents.items() if not ps]

    @property
    def sinks(self) -> list[Node]:
        """Childless nodes."""
        return [v for v, cs in self._children.items() if not cs]

    @property
    def nonsinks(self) -> list[Node]:
        """Nodes with at least one child; the ones whose execution can
        render other nodes ELIGIBLE."""
        return [v for v, cs in self._children.items() if cs]

    @property
    def nonsources(self) -> list[Node]:
        """Nodes with at least one parent."""
        return [v for v, ps in self._parents.items() if ps]

    def is_source(self, v: Node) -> bool:
        self._require(v)
        return not self._parents[v]

    def is_sink(self, v: Node) -> bool:
        self._require(v)
        return not self._children[v]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`CycleError` unless the graph is acyclic.

        Uses Kahn's algorithm; cost ``O(|N| + |A|)``.
        """
        indeg = {v: len(ps) for v, ps in self._parents.items()}
        queue = deque(v for v, d in indeg.items() if d == 0)
        seen = 0
        while queue:
            v = queue.popleft()
            seen += 1
            for c in self._children[v]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    queue.append(c)
        if seen != len(self._children):
            raise CycleError(
                f"dag {self.name!r} contains a cycle "
                f"({len(self._children) - seen} nodes lie on cycles)"
            )

    def is_acyclic(self) -> bool:
        """True iff the graph has no directed cycle."""
        try:
            self.validate()
        except CycleError:
            return False
        return True

    def topological_order(self) -> list[Node]:
        """One topological order (deterministic: Kahn with FIFO ties)."""
        indeg = {v: len(ps) for v, ps in self._parents.items()}
        queue = deque(v for v, d in indeg.items() if d == 0)
        order: list[Node] = []
        while queue:
            v = queue.popleft()
            order.append(v)
            for c in self._children[v]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    queue.append(c)
        if len(order) != len(self._children):
            raise CycleError(f"dag {self.name!r} contains a cycle")
        return order

    def is_connected(self) -> bool:
        """Connectivity ignoring arc orientation (Section 2.1).

        The empty dag is vacuously connected.
        """
        if not self._children:
            return True
        start = next(iter(self._children))
        seen = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for w in list(self._children[v]) + list(self._parents[v]):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == len(self._children)

    def connected_components(self) -> list[list[Node]]:
        """Weakly connected components, each in insertion order."""
        seen: set[Node] = set()
        comps: list[list[Node]] = []
        for v in self._children:
            if v in seen:
                continue
            comp = [v]
            seen.add(v)
            stack = [v]
            while stack:
                x = stack.pop()
                for w in list(self._children[x]) + list(self._parents[x]):
                    if w not in seen:
                        seen.add(w)
                        comp.append(w)
                        stack.append(w)
            comps.append(comp)
        return comps

    def descendants(self, v: Node) -> set[Node]:
        """All nodes reachable from ``v`` by directed paths (excl. ``v``)."""
        self._require(v)
        out: set[Node] = set()
        stack = list(self._children[v])
        while stack:
            x = stack.pop()
            if x not in out:
                out.add(x)
                stack.extend(self._children[x])
        return out

    def ancestors(self, v: Node) -> set[Node]:
        """All nodes from which ``v`` is reachable (excl. ``v``)."""
        self._require(v)
        out: set[Node] = set()
        stack = list(self._parents[v])
        while stack:
            x = stack.pop()
            if x not in out:
                out.add(x)
                stack.extend(self._parents[x])
        return out

    def depth(self) -> int:
        """Length (in arcs) of the longest directed path; 0 if arcless."""
        depth = 0
        level: dict[Node, int] = {}
        for v in self.topological_order():
            lv = max((level[p] + 1 for p in self._parents[v]), default=0)
            level[v] = lv
            depth = max(depth, lv)
        return depth

    def node_levels(self) -> dict[Node, int]:
        """Map each node to the length of the longest path reaching it."""
        level: dict[Node, int] = {}
        for v in self.topological_order():
            level[v] = max((level[p] + 1 for p in self._parents[v]), default=0)
        return level

    # ------------------------------------------------------------------
    # derived dags
    # ------------------------------------------------------------------
    def dual(self, name: str | None = None) -> "ComputationDag":
        """The dual dag: every arc reversed (Section 2.3.2).

        Sources and sinks swap roles.  ``dual(dual(G))`` equals ``G``
        node-for-node and arc-for-arc.
        """
        d = ComputationDag(name=name or f"dual({self.name})")
        for v in self._children:
            d.add_node(v)
        for u, v in self.arcs:
            d.add_arc(v, u)
        return d

    def copy(self, name: str | None = None) -> "ComputationDag":
        """An independent structural copy (labels shared, indices new)."""
        c = ComputationDag(name=name or self.name)
        for v in self._children:
            c.add_node(v)
        for u, v in self.arcs:
            c.add_arc(u, v)
        return c

    def relabel(
        self,
        mapping: Mapping[Node, Node] | Callable[[Node], Node],
        name: str | None = None,
    ) -> "ComputationDag":
        """A copy with node labels rewritten.

        ``mapping`` may be a dict (missing labels pass through
        unchanged) or a callable.  The rewrite must be injective on the
        node set.
        """
        if callable(mapping):
            fn = mapping
        else:
            fn = lambda v: mapping.get(v, v)  # noqa: E731
        new_labels = {v: fn(v) for v in self._children}
        if len(set(new_labels.values())) != len(new_labels):
            raise DagStructureError("relabeling is not injective")
        out = ComputationDag(name=name or self.name)
        for v in self._children:
            out.add_node(new_labels[v])
        for u, v in self.arcs:
            out.add_arc(new_labels[u], new_labels[v])
        return out

    def prefixed(self, prefix: str, name: str | None = None) -> "ComputationDag":
        """A copy with every label wrapped as ``(prefix, label)``.

        Used to force disjointness before summing/composing dags built
        from the same template (footnote 4 of the paper: composition
        operands may be "the same dag with nodes renamed").
        """
        return self.relabel(lambda v: (prefix, v), name=name)

    def induced_subdag(self, keep: Iterable[Node], name: str | None = None) -> "ComputationDag":
        """The subdag induced by node set ``keep`` (arcs with both ends kept)."""
        keep_set = set(keep)
        missing = keep_set - set(self._children)
        if missing:
            raise DagStructureError(f"nodes not in dag: {sorted(map(repr, missing))}")
        out = ComputationDag(name=name or f"{self.name}[sub]")
        for v in self._children:
            if v in keep_set:
                out.add_node(v)
        for u, v in self.arcs:
            if u in keep_set and v in keep_set:
                out.add_arc(u, v)
        return out

    # ------------------------------------------------------------------
    # comparison / interop
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A content-addressed identity for the dag's *structure*.

        SHA-256 over the canonically ordered node and arc label reprs —
        independent of insertion order, the ``name``, and the process
        (unlike ``hash()``, which is salted per interpreter), so two
        dags built separately from the same family/size fingerprint
        identically.  This is the cache key used by
        :mod:`repro.core.profile_cache` to reuse eligibility ceilings
        and certificates across repeated certifications.

        The value is memoized and invalidated on any mutation, so
        repeated calls on an unchanged dag are O(1).
        """
        if self._fp_cache is not None and self._fp_cache[0] == self._version:
            return self._fp_cache[1]
        h = hashlib.sha256()
        for line in sorted(f"n:{v!r}" for v in self._children):
            h.update(line.encode())
            h.update(b"\x00")
        for line in sorted(f"a:{u!r}\x01{v!r}" for u, v in self.arcs):
            h.update(line.encode())
            h.update(b"\x00")
        fp = h.hexdigest()
        self._fp_cache = (self._version, fp)
        return fp

    def same_structure(self, other: "ComputationDag") -> bool:
        """True iff node sets and arc sets coincide (labels compared)."""
        return set(self.nodes) == set(other.nodes) and set(self.arcs) == set(other.arcs)

    def is_isomorphic_to(self, other: "ComputationDag") -> bool:
        """Digraph isomorphism test (delegates to networkx VF2)."""
        return nx.is_isomorphic(self.to_networkx(), other.to_networkx())

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` (labels preserved)."""
        g = nx.DiGraph(name=self.name)
        g.add_nodes_from(self._children)
        g.add_edges_from(self.arcs)
        return g

    @classmethod
    def from_networkx(cls, g: nx.DiGraph, name: str | None = None) -> "ComputationDag":
        """Import from a :class:`networkx.DiGraph`."""
        dag = cls(name=name or (g.name or "dag"))
        for v in g.nodes:
            dag.add_node(v)
        for u, v in g.edges:
            dag.add_arc(u, v)
        return dag

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComputationDag):
            return NotImplemented
        return self.same_structure(other)

    def __hash__(self) -> int:  # structural hash; order-insensitive
        return hash((frozenset(map(self._freeze, self.nodes)), frozenset(self.arcs)))

    @staticmethod
    def _freeze(v: Node) -> Node:
        return v

    def __repr__(self) -> str:
        return (
            f"ComputationDag(name={self.name!r}, nodes={len(self)}, "
            f"arcs={sum(len(c) for c in self._children.values())})"
        )

    def summary(self) -> str:
        """A one-line structural summary used in reports."""
        return (
            f"{self.name}: {len(self)} nodes, {len(self.arcs)} arcs, "
            f"{len(self.sources)} sources, {len(self.sinks)} sinks, "
            f"depth {self.depth()}"
        )
