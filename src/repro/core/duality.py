"""Duality-based scheduling tools (Section 2.3.2).

The *dual* of a dag ``G`` reverses every arc, interchanging sources and
sinks.  Two theorems let us transfer results across duality:

* **Theorem 2.2** — if Σ is IC-optimal for ``G``, then any schedule of
  the dual that executes Σ's eligibility "packets" in reverse order
  (arbitrary order within a packet) is IC-optimal for the dual.
* **Theorem 2.3** — ``G1 ▷ G2`` iff ``dual(G2) ▷ dual(G1)``.

This is how the paper derives in-tree schedules from out-tree
schedules and in-mesh schedules from out-mesh schedules.
"""

from __future__ import annotations

from ..exceptions import ScheduleError
from .dag import ComputationDag
from .schedule import Schedule

__all__ = ["dual_dag", "dual_schedule"]


def dual_dag(dag: ComputationDag, name: str | None = None) -> ComputationDag:
    """The dual of ``dag`` (all arcs reversed); labels are preserved."""
    return dag.dual(name=name)


def dual_schedule(
    schedule: Schedule,
    dual: ComputationDag | None = None,
    name: str | None = None,
) -> Schedule:
    """A schedule for the dual dag that is *dual to* ``schedule``.

    Construction (Section 2.3.2): let Σ execute the nonsinks of ``G``
    in some order; the *j*-th execution renders ELIGIBLE a packet
    ``P_j`` of nonsources of ``G``.  The nonsources of ``G`` are the
    nonsinks of the dual, and the dual schedule executes them packet by
    packet in reverse order ``P_n, ..., P_1`` (within a packet, in the
    recorded order), then the dual's sinks (= ``G``'s sources), in
    Σ's reverse nonsink order so the result is deterministic.

    By Theorem 2.2, if ``schedule`` is IC-optimal for ``G``, the result
    is IC-optimal for the dual.  The result is validated structurally
    on construction either way.
    """
    g = schedule.dag
    d = dual if dual is not None else g.dual()
    if set(d.nodes) != set(g.nodes):
        raise ScheduleError(
            "provided dual dag does not share the node set of the "
            "schedule's dag"
        )
    packets = schedule.packets()
    order = [v for packet in reversed(packets) for v in packet]
    # Sinks of the dual are the sources of G.  Any order is allowed;
    # reversing Σ's order keeps dual(dual(Σ)) well-behaved.
    g_sources = [v for v in reversed(schedule.order) if g.is_source(v)]
    order.extend(g_sources)
    return Schedule(d, order, name=name or f"dual({schedule.name})")
