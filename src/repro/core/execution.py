"""The event-driven execution model and ELIGIBLE-node tracking.

Section 2.2 of the paper defines the quality model:

* a node is **ELIGIBLE** once all of its parents have been executed
  (sources are ELIGIBLE from the start);
* executing a node removes its ELIGIBLE status permanently (no
  recomputation) and may render children ELIGIBLE;
* time is event-driven — step *t* means *t* nodes have been executed;
* the quality of an execution at step *t* is ``E(t)``, the number of
  ELIGIBLE unexecuted nodes after the *t*-th execution.

:class:`ExecutionState` is the incremental engine used by schedules,
the optimality search, the priority relation and the server simulator.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..exceptions import ScheduleError
from .dag import ComputationDag, Node

__all__ = ["ExecutionState", "eligibility_profile", "run_order"]


class ExecutionState:
    """Mutable execution state of a dag.

    Tracks, per node, the number of unexecuted parents, and maintains
    the ELIGIBLE set incrementally: each :meth:`execute` call is
    ``O(out-degree)``, and so is each :meth:`undo` — backtracking
    searches (e.g. :func:`~repro.core.quality.best_effort_schedule`)
    walk the ideal lattice without ever copying the state.

    The state can also be :meth:`snapshot`-ed and :meth:`restore`-d for
    non-LIFO rollback.
    """

    def __init__(self, dag: ComputationDag) -> None:
        self.dag = dag
        self._pending_parents: dict[Node, int] = {
            v: dag.indegree(v) for v in dag.nodes
        }
        self._eligible: dict[Node, None] = {
            v: None for v in dag.nodes if dag.indegree(v) == 0
        }
        self._executed: dict[Node, None] = {}
        #: per-execute (node, newly-eligible) records driving undo().
        self._undo_log: list[tuple[Node, list[Node]]] = []
        #: eligibility profile so far; E(0) = number of sources.
        self.profile: list[int] = [len(self._eligible)]

    # ------------------------------------------------------------------
    @property
    def eligible(self) -> list[Node]:
        """Currently ELIGIBLE (unexecuted, all-parents-executed) nodes."""
        return list(self._eligible)

    @property
    def executed(self) -> list[Node]:
        """Nodes executed so far, in execution order."""
        return list(self._executed)

    @property
    def steps(self) -> int:
        """Number of nodes executed so far (event-driven clock)."""
        return len(self._executed)

    def is_eligible(self, v: Node) -> bool:
        return v in self._eligible

    def is_executed(self, v: Node) -> bool:
        return v in self._executed

    def is_finished(self) -> bool:
        """True when every node has been executed."""
        return len(self._executed) == len(self.dag)

    def eligible_count(self) -> int:
        return len(self._eligible)

    # ------------------------------------------------------------------
    def execute(self, v: Node) -> list[Node]:
        """Execute ELIGIBLE node ``v``; return newly ELIGIBLE children.

        Raises :class:`ScheduleError` if ``v`` is not currently
        ELIGIBLE (either unexecuted parents remain, or it was already
        executed — the model forbids recomputation).
        """
        if v not in self._eligible:
            if v in self._executed:
                raise ScheduleError(f"node {v!r} was already executed")
            raise ScheduleError(
                f"node {v!r} is not ELIGIBLE: "
                f"{self._pending_parents.get(v, '?')} parent(s) pending"
            )
        del self._eligible[v]
        self._executed[v] = None
        newly: list[Node] = []
        for c in self.dag.children(v):
            self._pending_parents[c] -= 1
            if self._pending_parents[c] == 0:
                self._eligible[c] = None
                newly.append(c)
        self._undo_log.append((v, newly))
        self.profile.append(len(self._eligible))
        return newly

    def execute_all(self, order: Iterable[Node]) -> None:
        """Execute each node of ``order`` in turn."""
        for v in order:
            self.execute(v)

    def undo(self) -> Node:
        """Revert the most recent :meth:`execute`; return its node.

        ``O(out-degree)`` — exactly inverts the bookkeeping of the
        undone step, so an ``execute``/``undo`` pair leaves the state
        semantically unchanged (the only visible difference is that the
        undone node moves to the *end* of the eligible iteration order;
        consumers needing a canonical order must sort).

        Raises :class:`ScheduleError` when no step remains to undo.
        """
        if not self._undo_log:
            raise ScheduleError("nothing to undo: no node has been executed")
        v, newly = self._undo_log.pop()
        for c in newly:
            del self._eligible[c]
        for c in self.dag.children(v):
            self._pending_parents[c] += 1
        del self._executed[v]
        self._eligible[v] = None
        self.profile.pop()
        return v

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        """An opaque, restorable copy of the current state."""
        return (
            dict(self._pending_parents),
            dict(self._eligible),
            dict(self._executed),
            list(self.profile),
            list(self._undo_log),
        )

    def restore(self, snap: tuple) -> None:
        """Restore a state previously captured by :meth:`snapshot`."""
        pending, eligible, executed, profile, undo_log = snap
        self._pending_parents = dict(pending)
        self._eligible = dict(eligible)
        self._executed = dict(executed)
        self.profile = list(profile)
        self._undo_log = list(undo_log)

    def executed_frozenset(self) -> frozenset:
        """The executed set as a hashable key (for memoized searches)."""
        return frozenset(self._executed)

    def __repr__(self) -> str:
        return (
            f"ExecutionState(dag={self.dag.name!r}, steps={self.steps}, "
            f"eligible={len(self._eligible)})"
        )


def eligibility_profile(dag: ComputationDag, order: Sequence[Node]) -> list[int]:
    """The eligibility profile ``[E(0), E(1), ..., E(len(order))]``.

    ``order`` must be a valid execution prefix (each node ELIGIBLE when
    executed); it need not cover the whole dag.
    """
    state = ExecutionState(dag)
    state.execute_all(order)
    return list(state.profile)


def run_order(dag: ComputationDag, order: Sequence[Node]) -> ExecutionState:
    """Execute ``order`` on a fresh state and return the final state."""
    state = ExecutionState(dag)
    state.execute_all(order)
    return state
