"""Serialization of dags, schedules, and composition chains.

Node labels throughout the library are arbitrary hashable Python
objects (tuples, strings, ints), so serialization is *index-based*:
nodes are numbered in insertion order, arcs/orders refer to indices,
and a human-readable ``repr`` legend travels alongside.  Round-tripping
through :func:`dag_from_dict` therefore yields a dag whose labels are
the integer indices (with the legend attached as ``label_reprs``) —
isomorphic and schedule-compatible, but not label-identical unless the
original labels already were JSON-native.
"""

from __future__ import annotations

import json
from typing import Any

from ..exceptions import DagStructureError
from .dag import ComputationDag
from .schedule import Schedule

__all__ = [
    "dag_to_dict",
    "dag_from_dict",
    "dag_to_json",
    "dag_from_json",
    "schedule_to_dict",
    "schedule_from_dict",
]

FORMAT_VERSION = 1


def dag_to_dict(dag: ComputationDag) -> dict[str, Any]:
    """A JSON-able description of ``dag`` (index-based; see module
    docstring).

    A dag that came out of :func:`dag_from_dict` carries the original
    labels' legend as ``dag.label_reprs``; re-serializing emits that
    legend instead of the integer indices' reprs, so the round-trip
    ``to -> from -> to`` is byte-stable (the durability journal and
    the crash harness rely on replayed schedules serializing
    identically to their pre-crash wire form).
    """
    index = {v: i for i, v in enumerate(dag.nodes)}
    legend = getattr(dag, "label_reprs", None)
    if not isinstance(legend, list) or len(legend) != len(dag):
        legend = [repr(v) for v in dag.nodes]
    return {
        "format": FORMAT_VERSION,
        "name": dag.name,
        "n": len(dag),
        "label_reprs": list(legend),
        "arcs": [[index[u], index[v]] for u, v in dag.arcs],
    }


def dag_from_dict(data: dict[str, Any]) -> ComputationDag:
    """Rebuild a dag from :func:`dag_to_dict` output.

    Node labels are the integer indices 0..n-1; the original labels'
    reprs are stored on the returned dag as ``label_reprs``.
    """
    if data.get("format") != FORMAT_VERSION:
        raise DagStructureError(
            f"unsupported dag format {data.get('format')!r}"
        )
    n = data["n"]
    dag = ComputationDag(nodes=range(n), name=data.get("name", "dag"))
    for u, v in data["arcs"]:
        if not (0 <= u < n and 0 <= v < n):
            raise DagStructureError(f"arc index out of range: ({u}, {v})")
        dag.add_arc(u, v)
    dag.validate()
    dag.label_reprs = list(data.get("label_reprs", []))  # type: ignore[attr-defined]
    return dag


def dag_to_json(dag: ComputationDag, indent: int | None = None) -> str:
    """JSON text for ``dag``."""
    return json.dumps(dag_to_dict(dag), indent=indent)


def dag_from_json(text: str) -> ComputationDag:
    """Rebuild a dag from :func:`dag_to_json` text."""
    return dag_from_dict(json.loads(text))


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """A JSON-able description of a schedule, bundling its dag."""
    index = {v: i for i, v in enumerate(schedule.dag.nodes)}
    return {
        "format": FORMAT_VERSION,
        "name": schedule.name,
        "dag": dag_to_dict(schedule.dag),
        "order": [index[v] for v in schedule.order],
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Rebuild (and re-validate) a schedule from
    :func:`schedule_to_dict` output; the dag comes back index-labeled."""
    if data.get("format") != FORMAT_VERSION:
        raise DagStructureError(
            f"unsupported schedule format {data.get('format')!r}"
        )
    dag = dag_from_dict(data["dag"])
    return Schedule(dag, data["order"], name=data.get("name", "schedule"))
