"""Exhaustive IC-optimality machinery.

Section 2.2: a schedule is **IC-optimal** when the number of ELIGIBLE
nodes after step *t* is the maximum achievable over *all* schedules,
simultaneously for every *t*.  Many dags admit no IC-optimal schedule,
so the theory needs three primitives, all provided here:

* :func:`max_eligibility_profile` — the pointwise ceiling
  ``M(t) = max over valid t-step execution prefixes of E(t)``;
* :func:`is_ic_optimal` — does a given schedule meet the ceiling at
  every step;
* :func:`find_ic_optimal_schedule` — search for a schedule meeting the
  ceiling everywhere, or report that none exists.

Complexity and the nonsink reduction
------------------------------------
A *t*-step execution prefix is exactly an order ideal (downset) of the
dag's precedence order, so ``M(t)`` maximizes over ideals of size *t* —
exponentially many in general.  Two standard reductions (both from the
development in [21], proved in the docstrings below) keep the search
tractable for the block/family sizes the paper works with:

1. **Sinks last.** Executing a sink never renders a node ELIGIBLE
   (sinks have no children) and removes an eligible node, so for every
   mixed ideal there is a nonsink-only ideal of the same size with at
   least as many eligible nodes (swap each executed sink for an
   eligible unexecuted nonsink; one always exists while nonsinks
   remain because every parent is a nonsink).  Hence for
   ``t <= n := #nonsinks``, ``M(t)`` is attained on ideals containing
   only nonsinks, and for ``t >= n``, ``M(t) = |N| - t`` exactly (all
   sinks are eligible once every nonsink is executed).

2. **Swap propagation.** If any IC-optimal schedule exists, a
   *nonsink-first* IC-optimal schedule exists: moving the first
   prematurely-executed sink to the position of a later-executed
   eligible nonsink (and vice versa) keeps the schedule valid and
   never lowers the profile.  The existence search therefore explores
   only nonsink-first orders.

The ideal enumeration is a level-synchronous BFS over executed-set
states with memoized eligible sets; a configurable state budget guards
against accidentally exploding dags.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import OptimalityError
from .dag import ComputationDag, Node
from .schedule import Schedule

__all__ = [
    "max_eligibility_profile",
    "is_ic_optimal",
    "find_ic_optimal_schedule",
    "ic_optimal_exists",
    "all_ic_optimal_nonsink_orders",
]

#: default cap on distinct ideal states explored per dag.
DEFAULT_STATE_BUDGET = 2_000_000


def max_eligibility_profile(
    dag: ComputationDag,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> list[int]:
    """Compute ``[M(0), M(1), ..., M(|N|)]`` for ``dag``.

    ``M(t)`` is the maximum, over all valid length-``t`` execution
    prefixes, of the number of ELIGIBLE unexecuted nodes.

    Raises
    ------
    OptimalityError
        If the BFS would exceed ``state_budget`` distinct states.
    """
    dag.validate()
    total = len(dag)
    nonsinks = [v for v in dag.nodes if not dag.is_sink(v)]
    n = len(nonsinks)
    nonsink_set = set(nonsinks)

    # Children restricted to the dag; parent counts for incremental
    # eligibility updates.
    parents_count = {v: dag.indegree(v) for v in dag.nodes}

    # State: executed frozenset (nonsinks only) -> eligible frozenset.
    init_eligible = frozenset(v for v in dag.nodes if parents_count[v] == 0)
    profile: list[int] = [len(init_eligible)]
    frontier: dict[frozenset, frozenset] = {frozenset(): init_eligible}
    states_seen = 1

    for _t in range(1, n + 1):
        nxt: dict[frozenset, frozenset] = {}
        for executed, eligible in frontier.items():
            for u in eligible:
                if u not in nonsink_set:
                    continue
                new_exec = executed | {u}
                if new_exec in nxt:
                    continue
                newly = [
                    c
                    for c in dag.children(u)
                    if all(p in new_exec for p in dag.parents(c))
                ]
                nxt[new_exec] = (eligible - {u}) | frozenset(newly)
                states_seen += 1
                if states_seen > state_budget:
                    raise OptimalityError(
                        f"ideal enumeration for dag {dag.name!r} exceeded "
                        f"state budget {state_budget}"
                    )
        if not nxt:
            # No eligible nonsink although nonsinks remain: impossible
            # in an acyclic dag (a minimal unexecuted nonsink is
            # eligible), so this is a defensive invariant check.
            raise OptimalityError(
                f"dag {dag.name!r}: no eligible nonsink at step {_t}"
            )
        profile.append(max(len(e) for e in nxt.values()))
        frontier = nxt

    # Once all nonsinks are executed, every remaining node is an
    # eligible sink; executing sinks decrements the count by one.
    for t in range(n + 1, total + 1):
        profile.append(total - t)
    return profile


def is_ic_optimal(
    schedule: Schedule,
    max_profile: Sequence[int] | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> bool:
    """True iff ``schedule`` attains the maximum eligible count at
    every step of the execution.

    ``max_profile`` may be passed to reuse a previously computed
    ceiling (it must come from the same dag).
    """
    ceiling = (
        list(max_profile)
        if max_profile is not None
        else max_eligibility_profile(schedule.dag, state_budget)
    )
    prof = schedule.profile
    if len(prof) != len(ceiling):
        raise OptimalityError(
            "max profile length does not match schedule profile length"
        )
    return all(e == m for e, m in zip(prof, ceiling))


def find_ic_optimal_schedule(
    dag: ComputationDag,
    state_budget: int = DEFAULT_STATE_BUDGET,
    name: str = "ic-optimal",
) -> Schedule | None:
    """Search for an IC-optimal schedule of ``dag``.

    Returns a nonsink-first IC-optimal :class:`Schedule`, or ``None``
    when the dag admits no IC-optimal schedule (by reduction 2 in the
    module docstring, searching nonsink-first orders is complete).

    The search is a DFS that only follows steps keeping the running
    profile equal to the ceiling ``M``; visited dead states are
    memoized so each ideal is expanded at most once.
    """
    ceiling = max_eligibility_profile(dag, state_budget)
    nonsinks = [v for v in dag.nodes if not dag.is_sink(v)]
    n = len(nonsinks)
    nonsink_set = set(nonsinks)

    index = {v: i for i, v in enumerate(dag.nodes)}
    dead: set[frozenset] = set()
    order: list[Node] = []

    def dfs(executed: frozenset, eligible: frozenset, t: int) -> bool:
        if t == n:
            return True
        if executed in dead:
            return False
        for u in sorted(eligible, key=index.__getitem__):
            if u not in nonsink_set:
                continue
            new_exec = executed | {u}
            newly = [
                c
                for c in dag.children(u)
                if all(p in new_exec for p in dag.parents(c))
            ]
            new_elig = (eligible - {u}) | frozenset(newly)
            if len(new_elig) != ceiling[t + 1]:
                continue
            order.append(u)
            if dfs(new_exec, new_elig, t + 1):
                return True
            order.pop()
        dead.add(executed)
        return False

    init_eligible = frozenset(v for v in dag.nodes if dag.indegree(v) == 0)
    if not dfs(frozenset(), init_eligible, 0):
        return None
    sinks = [v for v in dag.nodes if dag.is_sink(v)]
    return Schedule(dag, order + sinks, name=name)


def ic_optimal_exists(
    dag: ComputationDag, state_budget: int = DEFAULT_STATE_BUDGET
) -> bool:
    """Decide whether ``dag`` admits an IC-optimal schedule."""
    return find_ic_optimal_schedule(dag, state_budget) is not None


def all_ic_optimal_nonsink_orders(
    dag: ComputationDag,
    limit: int = 10_000,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> list[tuple[Node, ...]]:
    """Enumerate every nonsink order whose prefixes all meet ``M``.

    Intended for small dags in tests (e.g. verifying the paper's
    "optimal iff consecutive-source" characterizations for in-trees and
    butterflies).  Stops after ``limit`` orders.
    """
    ceiling = max_eligibility_profile(dag, state_budget)
    nonsinks = [v for v in dag.nodes if not dag.is_sink(v)]
    n = len(nonsinks)
    nonsink_set = set(nonsinks)
    index = {v: i for i, v in enumerate(dag.nodes)}
    out: list[tuple[Node, ...]] = []
    order: list[Node] = []

    def dfs(executed: frozenset, eligible: frozenset, t: int) -> None:
        if len(out) >= limit:
            return
        if t == n:
            out.append(tuple(order))
            return
        for u in sorted(eligible, key=index.__getitem__):
            if u not in nonsink_set:
                continue
            new_exec = executed | {u}
            newly = [
                c
                for c in dag.children(u)
                if all(p in new_exec for p in dag.parents(c))
            ]
            new_elig = (eligible - {u}) | frozenset(newly)
            if len(new_elig) != ceiling[t + 1]:
                continue
            order.append(u)
            dfs(new_exec, new_elig, t + 1)
            order.pop()

    init_eligible = frozenset(v for v in dag.nodes if dag.indegree(v) == 0)
    dfs(frozenset(), init_eligible, 0)
    return out
