"""Exhaustive IC-optimality machinery.

Section 2.2: a schedule is **IC-optimal** when the number of ELIGIBLE
nodes after step *t* is the maximum achievable over *all* schedules,
simultaneously for every *t*.  Many dags admit no IC-optimal schedule,
so the theory needs three primitives, all provided here:

* :func:`max_eligibility_profile` — the pointwise ceiling
  ``M(t) = max over valid t-step execution prefixes of E(t)``;
* :func:`is_ic_optimal` — does a given schedule meet the ceiling at
  every step;
* :func:`find_ic_optimal_schedule` — search for a schedule meeting the
  ceiling everywhere, or report that none exists.

Complexity and the nonsink reduction
------------------------------------
A *t*-step execution prefix is exactly an order ideal (downset) of the
dag's precedence order, so ``M(t)`` maximizes over ideals of size *t* —
exponentially many in general.  Two standard reductions (both from the
development in [21], proved in the docstrings below) keep the search
tractable for the block/family sizes the paper works with:

1. **Sinks last.** Executing a sink never renders a node ELIGIBLE
   (sinks have no children) and removes an eligible node, so for every
   mixed ideal there is a nonsink-only ideal of the same size with at
   least as many eligible nodes (swap each executed sink for an
   eligible unexecuted nonsink; one always exists while nonsinks
   remain because every parent is a nonsink).  Hence for
   ``t <= n := #nonsinks``, ``M(t)`` is attained on ideals containing
   only nonsinks, and for ``t >= n``, ``M(t) = |N| - t`` exactly (all
   sinks are eligible once every nonsink is executed).

2. **Swap propagation.** If any IC-optimal schedule exists, a
   *nonsink-first* IC-optimal schedule exists: moving the first
   prematurely-executed sink to the position of a later-executed
   eligible nonsink (and vice versa) keeps the schedule valid and
   never lowers the profile.  The existence search therefore explores
   only nonsink-first orders.

The performance model (see ``docs/PERFORMANCE.md``)
---------------------------------------------------
The enumeration is a level-synchronous BFS over ideal states.  Each
ideal is represented by its **canonical frontier key**: the executed
set encoded as an integer bitmask over the dag's node-index order.  An
ideal is uniquely determined by its executed set, so the bitmask is a
perfect canonicalization — visited-set dedup on it expands every
distinct ideal exactly once, and all per-step work (eligibility
updates on execute, membership, hashing) is machine-word integer
arithmetic instead of ``frozenset`` algebra.  Eligibility is
maintained incrementally: executing node *u* flips one bit out and
ORs in the children of *u* whose parents are all executed —
``O(out-degree)`` per transition.

``parallel=True`` fans the BFS out over the first-level branches (one
per initially eligible nonsink) to a ``multiprocessing`` pool sized
from ``os.cpu_count()``; the profile is the pointwise max of the
branch profiles, so the result is byte-identical to the sequential
path regardless of worker scheduling.  A configurable state budget
guards against accidentally exploding dags (applied per branch in
parallel mode, since branches cannot share a visited set).

Observability across the process boundary
-----------------------------------------
Each pool worker records its telemetry into a *private* registry and
tracer and ships ``(result, metrics_snapshot, trace_records)`` back
with its branch result; the coordinator folds every worker delta into
the process-wide registry (:meth:`MetricsRegistry.merge`) and tracer
(:meth:`Tracer.adopt`), so nothing recorded in a worker is lost.

The headline ``search_*`` totals are **identical between the parallel
and sequential paths** even though branches duplicate work.  The trick
is ownership accounting: every nonsink ideal's minimal elements are
sources (an ideal contains all predecessors of its members), so each
ideal contains at least one first-level move and is *owned* by the
smallest-indexed one.  A branch can test ownership locally in O(1)
(``lowest set bit of (state & first_moves_mask) == branch bit``), and
the owned-per-level counts summed across branches reproduce exactly
the deduplicated level sizes the sequential BFS sees — same
``search_states_expanded_total``, same ``search_frontier_peak``.  The
raw duplicated effort remains visible as ``search_branch_states_total``
(recorded worker-side, merged back).
"""

from __future__ import annotations

import logging
import os
import time
from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import OptimalityError
from ..obs import MetricsRegistry, Tracer, global_registry, global_tracer, span
from ..obs.context import (
    current_request_id,
    reset_request_id,
    set_request_id,
)
from .dag import ComputationDag, Node
from .schedule import Schedule

_LOG = logging.getLogger("repro.core.optimality")

__all__ = [
    "max_eligibility_profile",
    "partial_max_eligibility_profile",
    "eligibility_upper_bound",
    "is_ic_optimal",
    "find_ic_optimal_schedule",
    "ic_optimal_exists",
    "all_ic_optimal_nonsink_orders",
    "SearchStats",
]

#: default cap on distinct ideal states explored per dag.
DEFAULT_STATE_BUDGET = 2_000_000


@dataclass
class SearchStats:
    """Instrumentation of one ideal-lattice search.

    Filled in place when passed as the ``stats=`` argument of
    :func:`max_eligibility_profile`; consumed by
    ``benchmarks/bench_optimality_scale.py`` for the perf-regression
    record (``states_expanded`` is deterministic, so it doubles as a
    machine-independent regression signal).

    Every search *also* records the same numbers into the process-wide
    :class:`~repro.obs.MetricsRegistry` (metric names in
    ``docs/OBSERVABILITY.md``), so the per-call dataclass is one view
    and :meth:`from_registry` — the process-lifetime totals — is
    another.
    """

    #: distinct ideal states expanded (deduped; identical between the
    #: sequential and parallel paths — parallel branches report
    #: ownership-deduplicated counts, see the module docstring).
    states_expanded: int = 0
    #: largest BFS frontier encountered.
    frontier_peak: int = 0
    #: first-level branches fanned out (0 = sequential path taken).
    branches: int = 0
    #: pool size used (0 = sequential path taken).
    workers: int = 0

    @classmethod
    def from_registry(cls, registry=None) -> "SearchStats":
        """The process-lifetime totals as recorded in ``registry``
        (default: the global one) — a view over
        ``search_states_expanded_total`` / ``search_frontier_peak`` /
        ``search_branches_total`` / ``search_workers_peak``."""
        reg = registry if registry is not None else global_registry()
        return cls(
            states_expanded=int(reg.value("search_states_expanded_total")),
            frontier_peak=int(reg.value("search_frontier_peak")),
            branches=int(reg.value("search_branches_total")),
            workers=int(reg.value("search_workers_peak")),
        )


def _record_search(mode: str, states: int, peak: int, branches: int,
                   workers: int, seconds: float) -> None:
    """Aggregate one completed profile search into the global registry.

    Called once per :func:`max_eligibility_profile` call (never per
    state), so the cost is a handful of locked increments — the
    disabled-path overhead gate in ``bench_observability.py`` covers
    it.
    """
    reg = global_registry()
    reg.counter(
        "search_profile_total",
        "max-eligibility-profile searches completed", ("mode",),
    ).labels(mode).inc()
    reg.counter(
        "search_states_expanded_total",
        "distinct ideal states expanded by profile searches", ("mode",),
    ).labels(mode).inc(states)
    reg.gauge(
        "search_frontier_peak",
        "largest BFS frontier seen by any profile search",
    ).set_max(peak)
    if branches:
        reg.counter(
            "search_branches_total",
            "first-level branches fanned out to worker processes",
        ).inc(branches)
        reg.gauge(
            "search_workers_peak", "largest worker pool used"
        ).set_max(workers)
    reg.histogram(
        "search_profile_seconds",
        "wall-clock duration of profile searches", ("mode",),
    ).labels(mode).observe(seconds)


# ----------------------------------------------------------------------
# bitmask tables
# ----------------------------------------------------------------------


def _bit_tables(dag: ComputationDag):
    """Index the dag for the bitmask engine.

    Returns ``(nodes, children, parents_mask, nonsink_mask,
    init_eligible)`` where ``children[i]`` lists child indices of node
    *i*, ``parents_mask[i]`` is the bitmask of its parents, and masks
    are over the node-insertion-order indexing (the same order every
    other deterministic iteration in the library uses).
    """
    nodes = dag.nodes
    index = {v: i for i, v in enumerate(nodes)}
    children: list[list[int]] = []
    parents_mask: list[int] = []
    nonsink_mask = 0
    init_eligible = 0
    for i, v in enumerate(nodes):
        cs = [index[c] for c in dag.children(v)]
        children.append(cs)
        if cs:
            nonsink_mask |= 1 << i
        pm = 0
        for p in dag.parents(v):
            pm |= 1 << index[p]
        parents_mask.append(pm)
        if pm == 0:
            init_eligible |= 1 << i
    return nodes, children, parents_mask, nonsink_mask, init_eligible


def _level_bfs(
    children: list[list[int]],
    parents_mask: list[int],
    nonsink_mask: int,
    start_exec: int,
    start_elig: int,
    start_t: int,
    n: int,
    state_budget: int,
    name: str,
    own_bit: int = 0,
    own_mask: int = 0,
) -> tuple[list[int], int, int, list[int]]:
    """BFS the nonsink ideal lattice from one start state.

    Returns ``(maxima, states_seen, frontier_peak, owned_levels)`` with
    ``maxima[k]`` the max eligible count over ideals of size
    ``start_t + 1 + k``, up to size ``n``.

    When ``own_bit`` is nonzero (parallel branch workers), the search
    also counts, per level, the states this branch *owns*: those whose
    lowest set first-move bit (under ``own_mask``, the initially
    eligible nonsinks) equals ``own_bit``.  Every nonsink ideal is
    owned by exactly one branch, so owned counts summed across
    branches equal the deduplicated level sizes of the sequential
    BFS — the strategy-independent effort number the registry reports.
    """
    frontier: dict[int, int] = {start_exec: start_elig}
    maxima: list[int] = []
    owned_levels: list[int] = []
    states_seen = 1
    frontier_peak = 1
    for _t in range(start_t + 1, n + 1):
        nxt: dict[int, int] = {}
        owned = 0
        for executed, eligible in frontier.items():
            avail = eligible & nonsink_mask
            while avail:
                bit = avail & -avail
                avail ^= bit
                new_exec = executed | bit
                if new_exec in nxt:
                    continue
                newly = 0
                for c in children[bit.bit_length() - 1]:
                    if parents_mask[c] & ~new_exec == 0:
                        newly |= 1 << c
                nxt[new_exec] = (eligible ^ bit) | newly
                states_seen += 1
                if own_bit:
                    first_moves = new_exec & own_mask
                    if first_moves & -first_moves == own_bit:
                        owned += 1
                if states_seen > state_budget:
                    raise OptimalityError(
                        f"ideal enumeration for dag {name!r} exceeded "
                        f"state budget {state_budget}"
                    )
        if not nxt:
            # No eligible nonsink although nonsinks remain: impossible
            # in an acyclic dag (a minimal unexecuted nonsink is
            # eligible), so this is a defensive invariant check.
            raise OptimalityError(
                f"dag {name!r}: no eligible nonsink at step {_t}"
            )
        maxima.append(max(m.bit_count() for m in nxt.values()))
        owned_levels.append(owned)
        frontier = nxt
        frontier_peak = max(frontier_peak, len(frontier))
    return maxima, states_seen, frontier_peak, owned_levels


def _branch_worker(payload):
    """Pool worker: explore one first-level branch of the ideal BFS.

    ``payload`` carries the bitmask tables plus the index of the first
    executed nonsink; returns a fully observable result::

        (branch_profile, owned_levels, metrics_snapshot, trace_records)

    ``branch_profile`` is ``[E(1), max E(2), ..., max E(n)]`` over
    ideals containing the first node, and ``owned_levels[k]`` counts
    the ideals of size ``k + 1`` this branch owns (see
    :func:`_level_bfs`) — the start ideal ``{first}`` is always owned.

    The worker records its telemetry into a *private* registry and
    tracer (one per call, so reused pool processes never leak counts
    between branches) and ships the snapshot/records back for the
    coordinator to :meth:`~repro.obs.MetricsRegistry.merge` /
    :meth:`~repro.obs.Tracer.adopt` — worker-side observability would
    otherwise die with the process.  Module-level so it pickles under
    every multiprocessing start method.
    """
    (children, parents_mask, nonsink_mask, init_eligible, first, n,
     state_budget, name, first_mask, trace_enabled, request_id) = payload
    from ..obs.tracing import detach_current_span

    detach_current_span()  # forked workers inherit the fan-out span
    # adopt the originating request: the branch's spans get stamped
    # with the request that fanned it out, so ``/traces?request_id=``
    # shows the whole parallel search.  Set/reset (not bare set) —
    # the branch-retry fallback runs this function *in-process* on
    # the coordinator thread, and pool processes are reused.
    ctx_token = set_request_id(request_id)
    try:
        registry = MetricsRegistry()
        tracer = Tracer(enabled=trace_enabled)
        t0 = time.perf_counter()
        bit = 1 << first
        newly = 0
        for c in children[first]:
            if parents_mask[c] & ~bit == 0:
                newly |= 1 << c
        elig = (init_eligible ^ bit) | newly
        with tracer.span("optimality.branch", dag=name,
                         branch=first) as sp:
            maxima, states, peak, owned_levels = _level_bfs(
                children, parents_mask, nonsink_mask,
                bit, elig, 1, n, state_budget, name,
                own_bit=bit, own_mask=first_mask,
            )
            owned = [1] + owned_levels  # start ideal {first} is owned
            sp.set(states=states, owned=sum(owned), frontier_peak=peak)
        registry.counter(
            "search_branch_total",
            "parallel search branches explored by pool workers",
        ).inc()
        registry.counter(
            "search_branch_states_total",
            "raw states expanded by parallel branch workers "
            "(includes cross-branch duplicates)",
        ).inc(states)
        registry.histogram(
            "search_branch_seconds",
            "wall-clock duration of one branch exploration",
        ).observe(time.perf_counter() - t0)
        return ([elig.bit_count()] + maxima, owned,
                registry.snapshot(), tracer.records())
    finally:
        reset_request_id(ctx_token)


def _iter_bits(mask: int):
    """Yield set-bit indices of ``mask`` in ascending order."""
    while mask:
        bit = mask & -mask
        mask ^= bit
        yield bit.bit_length() - 1


def _resolve_workers(workers: int | None, branches: int) -> int:
    return max(1, min(workers or (os.cpu_count() or 1), branches))


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------


def max_eligibility_profile(
    dag: ComputationDag,
    state_budget: int = DEFAULT_STATE_BUDGET,
    *,
    parallel: bool = False,
    workers: int | None = None,
    stats: SearchStats | None = None,
) -> list[int]:
    """Compute ``[M(0), M(1), ..., M(|N|)]`` for ``dag``.

    ``M(t)`` is the maximum, over all valid length-``t`` execution
    prefixes, of the number of ELIGIBLE unexecuted nodes.

    Parameters
    ----------
    state_budget:
        Cap on distinct ideal states explored (per branch when
        parallel).
    parallel:
        Fan the search out over first-level branches on a
        ``multiprocessing`` pool.  The returned profile is
        byte-identical to the sequential result (pointwise max is
        order-insensitive), and so are the recorded ``search_*``
        totals (ownership accounting dedups effort numbers across
        branches; worker telemetry merges back into the process-wide
        registry/tracer).  The trade-off is the *raw* duplicated work
        — branches cannot share a visited set, visible as
        ``search_branch_states_total`` — see ``docs/PERFORMANCE.md``
        for when fan-out wins.
    workers:
        Pool size; defaults to ``os.cpu_count()`` clamped to the
        branch count.
    stats:
        Optional :class:`SearchStats` filled with instrumentation.

    Raises
    ------
    OptimalityError
        If the BFS would exceed ``state_budget`` distinct states.
    """
    t_start = time.perf_counter()
    dag.validate()
    total = len(dag)
    _nodes, children, parents_mask, nonsink_mask, init_eligible = (
        _bit_tables(dag)
    )
    n = nonsink_mask.bit_count()

    profile: list[int] = [init_eligible.bit_count()]
    first_moves = list(_iter_bits(init_eligible & nonsink_mask))

    if parallel and n > 1 and len(first_moves) > 1:
        n_workers = _resolve_workers(workers, len(first_moves))
        first_mask = init_eligible & nonsink_mask
        tracer = global_tracer()
        request_id = current_request_id()
        payloads = [
            (children, parents_mask, nonsink_mask, init_eligible,
             first, n, state_budget, dag.name, first_mask,
             tracer.enabled, request_id)
            for first in first_moves
        ]
        with span("optimality.max_profile", dag=dag.name, nodes=total,
                  mode="parallel"):
            t_fanout = tracer.now()
            results = _run_branches(payloads, n_workers)
            if results is not None:
                reg = global_registry()
                merged = [0] * n
                owned_per_level = [0] * n
                for (branch_profile, owned, snapshot,
                     trace_records) in results:
                    # fold the worker's process-local telemetry into
                    # the coordinator's registry/tracer: counters sum,
                    # histograms add, spans re-root under this one.
                    reg.merge(snapshot)
                    if trace_records:
                        tracer.adopt(trace_records, t_offset=t_fanout)
                    for k, m in enumerate(branch_profile):
                        if m > merged[k]:
                            merged[k] = m
                    for k, c in enumerate(owned):
                        owned_per_level[k] += c
                # ownership accounting: each nonsink ideal is owned by
                # exactly one branch, so these sums are the sequential
                # BFS's deduplicated level sizes — plus the empty
                # start ideal the sequential path also counts.
                states = 1 + sum(owned_per_level)
                peak = max([1] + owned_per_level)
        if results is not None:
            profile.extend(merged)
            for t in range(n + 1, total + 1):
                profile.append(total - t)
            if stats is not None:
                stats.states_expanded = states
                stats.frontier_peak = peak
                stats.branches = len(first_moves)
                stats.workers = n_workers
            _record_search("parallel", states, peak, len(first_moves),
                           n_workers, time.perf_counter() - t_start)
            return profile
        # pool unavailable in this environment: fall through to the
        # (byte-identical) sequential path.

    if n:
        with span("optimality.max_profile", dag=dag.name, nodes=total,
                  mode="sequential"):
            maxima, states, peak, _owned = _level_bfs(
                children, parents_mask, nonsink_mask,
                0, init_eligible, 0, n, state_budget, dag.name,
            )
        profile.extend(maxima)
    else:
        states, peak = 1, 1

    # Once all nonsinks are executed, every remaining node is an
    # eligible sink; executing sinks decrements the count by one.
    for t in range(n + 1, total + 1):
        profile.append(total - t)
    if stats is not None:
        stats.states_expanded = states
        stats.frontier_peak = peak
        stats.branches = 0
        stats.workers = 0
    _record_search("sequential", states, peak, 0, 0,
                   time.perf_counter() - t_start)
    return profile


def partial_max_eligibility_profile(
    dag: ComputationDag,
    state_budget: int,
    *,
    stats: SearchStats | None = None,
) -> tuple[list[int], bool]:
    """Compute as much of ``[M(0), M(1), ...]`` as ``state_budget``
    distinct ideal states allow.

    Returns ``(prefix, complete)``.  ``prefix`` holds *exact* ceiling
    values for every fully enumerated level — the BFS is
    level-synchronous, so once level *t* is exhausted ``M(t)`` is known
    even if the budget dies at level ``t + 1``; a partially enumerated
    level is discarded (its running maximum is only a lower bound).
    ``complete`` is True when the whole lattice fit in the budget, in
    which case ``prefix`` equals :func:`max_eligibility_profile`'s
    result exactly (including the deterministic sink tail).

    This is the exact half of the anytime certification mode
    (:mod:`repro.core.certify`): the certified *lower* bound on
    eligibility loss comes from the exact prefix, the *upper* bound
    from :func:`eligibility_upper_bound` beyond it.  Unlike
    :func:`max_eligibility_profile`, budget exhaustion here is an
    answer, not an error.
    """
    dag.validate()
    total = len(dag)
    _nodes, children, parents_mask, nonsink_mask, init_eligible = (
        _bit_tables(dag)
    )
    n = nonsink_mask.bit_count()
    prefix: list[int] = [init_eligible.bit_count()]
    states_seen = 1
    frontier_peak = 1
    complete = True
    frontier: dict[int, int] = {0: init_eligible}
    for _t in range(1, n + 1):
        nxt: dict[int, int] = {}
        exhausted = False
        for executed, eligible in frontier.items():
            avail = eligible & nonsink_mask
            while avail:
                bit = avail & -avail
                avail ^= bit
                new_exec = executed | bit
                if new_exec in nxt:
                    continue
                newly = 0
                for c in children[bit.bit_length() - 1]:
                    if parents_mask[c] & ~new_exec == 0:
                        newly |= 1 << c
                nxt[new_exec] = (eligible ^ bit) | newly
                states_seen += 1
                if states_seen > state_budget:
                    exhausted = True
                    break
            if exhausted:
                break
        if exhausted or not nxt:
            complete = False
            break
        prefix.append(max(m.bit_count() for m in nxt.values()))
        frontier = nxt
        frontier_peak = max(frontier_peak, len(frontier))
    else:
        # all nonsink levels enumerated: the sink tail is exact.
        for t in range(n + 1, total + 1):
            prefix.append(total - t)
    if stats is not None:
        stats.states_expanded = states_seen
        stats.frontier_peak = frontier_peak
        stats.branches = 0
        stats.workers = 0
    global_registry().counter(
        "search_partial_profile_total",
        "budgeted (anytime) profile searches", ("outcome",),
    ).labels("complete" if complete else "exhausted").inc()
    return prefix, complete


def eligibility_upper_bound(dag: ComputationDag) -> list[int]:
    """A cheap structural pointwise bound ``U(t) >= M(t)`` for every
    ``t``, computed without touching the ideal lattice.

    Two facts bound the eligible count after *t* executions:

    * at most ``|N| - t`` nodes remain unexecuted;
    * a node with *a* proper ancestors cannot be eligible (or
      executed) before step *a*, so at step *t* every eligible *and*
      every executed node lies in ``A(t) = {v : |ancestors(v)| <= t}``
      — and the *t* executed nodes themselves are in ``A(t)``, hence
      ``E(t) <= |A(t)| - t``.

    ``U(t) = max(0, min(|N| - t, |A(t)| - t))``.  The bound is exact
    on antichain-free extremes (paths) and within a small constant on
    the paper's families; its job is to make anytime loss intervals
    *sound*, not tight.  Cost: one bitmask ancestor sweep,
    ``O(|N|^2 / wordsize)``.
    """
    dag.validate()
    nodes = dag.nodes
    index = {v: i for i, v in enumerate(nodes)}
    anc_mask: list[int] = [0] * len(nodes)
    for v in dag.topological_order():
        i = index[v]
        m = 0
        for p in dag.parents(v):
            j = index[p]
            m |= anc_mask[j] | (1 << j)
        anc_mask[i] = m
    anc_counts = sorted(m.bit_count() for m in anc_mask)
    total = len(nodes)
    bound: list[int] = []
    k = 0
    for t in range(total + 1):
        while k < total and anc_counts[k] <= t:
            k += 1
        # k == |A(t)| since anc_counts is sorted ascending
        bound.append(max(0, min(total - t, k - t)))
    return bound


def _record_pool_fallback(reason: str, exc: BaseException,
                          branch: int | None = None) -> None:
    """Make a pool degradation observable: count it under
    ``search_pool_fallbacks_total{reason=...}`` and log it, instead of
    silently eating the failure."""
    global_registry().counter(
        "search_pool_fallbacks_total",
        "parallel-search pool failures absorbed by graceful "
        "degradation (in-process retry or sequential fallback)",
        ("reason",),
    ).labels(reason).inc()
    detail = "" if branch is None else f" (branch {branch})"
    _LOG.warning(
        "parallel search degraded [%s]%s: %s; continuing in-process "
        "(byte-identical result)", reason, detail, exc,
    )
    # the result is byte-identical, so nothing downstream will ever
    # flag this — capture the black box while the context is hot
    from ..obs.flightrecorder import global_flight_recorder
    global_flight_recorder().trigger(
        "pool-fallback",
        request_id=current_request_id(),
        detail=f"{reason}{detail}: {type(exc).__name__}: {exc}",
    )


def _run_branches(payloads, n_workers):
    """Map :func:`_branch_worker` over ``payloads`` on a process pool,
    degrading gracefully instead of failing or hiding failures:

    * pool *creation* fails (platforms that cannot start worker
      processes — restricted sandboxes) → a ``pool-unavailable``
      fallback is recorded and ``None`` returned; the caller takes the
      byte-identical sequential path;
    * one branch's pool *execution* dies of a transport-level error (a
      worker killed mid-flight, a broken pipe) → a ``branch-retry``
      fallback is recorded and that branch re-runs in-process — the
      worker is a pure function of its payload, so the retried result
      is byte-identical;
    * an error raised by the worker's own logic (an
      :class:`OptimalityError` over budget, a malformed payload)
      propagates — degradation must never mask real bugs.
    """
    import multiprocessing

    try:
        ctx = multiprocessing.get_context()
        pool = ctx.Pool(processes=n_workers)
    except (OSError, ValueError, ImportError) as exc:
        _record_pool_fallback("pool-unavailable", exc)
        return None
    results = []
    with pool:
        handles = [
            pool.apply_async(_branch_worker, (p,)) for p in payloads
        ]
        for payload, handle in zip(payloads, handles):
            try:
                results.append(handle.get())
            except OptimalityError:
                raise
            except (OSError, EOFError,
                    multiprocessing.ProcessError) as exc:
                _record_pool_fallback("branch-retry", exc,
                                      branch=payload[4])
                results.append(_branch_worker(payload))
    return results


def is_ic_optimal(
    schedule: Schedule,
    max_profile: Sequence[int] | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
    *,
    parallel: bool = False,
    workers: int | None = None,
) -> bool:
    """True iff ``schedule`` attains the maximum eligible count at
    every step of the execution.

    ``max_profile`` may be passed to reuse a previously computed
    ceiling (it must come from the same dag); otherwise the ceiling is
    computed here (``parallel=``/``workers=`` forwarded).
    """
    ceiling = (
        list(max_profile)
        if max_profile is not None
        else max_eligibility_profile(
            schedule.dag, state_budget, parallel=parallel, workers=workers
        )
    )
    prof = schedule.profile
    if len(prof) != len(ceiling):
        raise OptimalityError(
            "max profile length does not match schedule profile length"
        )
    return all(e == m for e, m in zip(prof, ceiling))


def find_ic_optimal_schedule(
    dag: ComputationDag,
    state_budget: int = DEFAULT_STATE_BUDGET,
    name: str = "ic-optimal",
    *,
    parallel: bool = False,
    workers: int | None = None,
    max_profile: Sequence[int] | None = None,
) -> Schedule | None:
    """Search for an IC-optimal schedule of ``dag``.

    Returns a nonsink-first IC-optimal :class:`Schedule`, or ``None``
    when the dag admits no IC-optimal schedule (by reduction 2 in the
    module docstring, searching nonsink-first orders is complete).

    The search is a DFS over bitmask states that only follows steps
    keeping the running profile equal to the ceiling ``M``; visited
    dead states are memoized by their canonical frontier key so each
    ideal is expanded at most once.  Candidate nodes are tried in
    ascending node-index (insertion) order, so the returned schedule
    is deterministic — ``parallel=`` only accelerates the ceiling
    computation and never changes the result.

    ``max_profile`` may supply a precomputed ceiling (e.g. from
    :mod:`repro.core.profile_cache`).
    """
    if max_profile is not None:
        ceiling = list(max_profile)
    else:
        ceiling = max_eligibility_profile(
            dag, state_budget, parallel=parallel, workers=workers
        )
    nodes, children, parents_mask, nonsink_mask, init_eligible = (
        _bit_tables(dag)
    )
    n = nonsink_mask.bit_count()

    dead: set[int] = set()
    order_idx: list[int] = []

    def dfs(executed: int, eligible: int, t: int) -> bool:
        if t == n:
            return True
        if executed in dead:
            return False
        avail = eligible & nonsink_mask
        while avail:
            bit = avail & -avail
            avail ^= bit
            new_exec = executed | bit
            newly = 0
            u = bit.bit_length() - 1
            for c in children[u]:
                if parents_mask[c] & ~new_exec == 0:
                    newly |= 1 << c
            new_elig = (eligible ^ bit) | newly
            if new_elig.bit_count() != ceiling[t + 1]:
                continue
            order_idx.append(u)
            if dfs(new_exec, new_elig, t + 1):
                return True
            order_idx.pop()
        dead.add(executed)
        return False

    with span("optimality.find_schedule", dag=dag.name, nodes=len(nodes)):
        found = dfs(0, init_eligible, 0)
    global_registry().counter(
        "search_schedule_total",
        "IC-optimal schedule existence searches", ("outcome",),
    ).labels("found" if found else "none").inc()
    if not found:
        return None
    order = [nodes[i] for i in order_idx]
    sinks = [v for v in nodes if dag.is_sink(v)]
    return Schedule(dag, order + sinks, name=name)


def ic_optimal_exists(
    dag: ComputationDag,
    state_budget: int = DEFAULT_STATE_BUDGET,
    *,
    parallel: bool = False,
    workers: int | None = None,
) -> bool:
    """Decide whether ``dag`` admits an IC-optimal schedule."""
    return (
        find_ic_optimal_schedule(
            dag, state_budget, parallel=parallel, workers=workers
        )
        is not None
    )


def all_ic_optimal_nonsink_orders(
    dag: ComputationDag,
    limit: int = 10_000,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> list[tuple[Node, ...]]:
    """Enumerate every nonsink order whose prefixes all meet ``M``.

    Intended for small dags in tests (e.g. verifying the paper's
    "optimal iff consecutive-source" characterizations for in-trees and
    butterflies).  Stops after ``limit`` orders.  Orders are emitted in
    lexicographic node-index order (deterministic).
    """
    ceiling = max_eligibility_profile(dag, state_budget)
    nodes, children, parents_mask, nonsink_mask, init_eligible = (
        _bit_tables(dag)
    )
    n = nonsink_mask.bit_count()
    out: list[tuple[Node, ...]] = []
    order_idx: list[int] = []

    def dfs(executed: int, eligible: int, t: int) -> None:
        if len(out) >= limit:
            return
        if t == n:
            out.append(tuple(nodes[i] for i in order_idx))
            return
        avail = eligible & nonsink_mask
        while avail:
            bit = avail & -avail
            avail ^= bit
            new_exec = executed | bit
            newly = 0
            u = bit.bit_length() - 1
            for c in children[u]:
                if parents_mask[c] & ~new_exec == 0:
                    newly |= 1 << c
            new_elig = (eligible ^ bit) | newly
            if new_elig.bit_count() != ceiling[t + 1]:
                continue
            order_idx.append(u)
            dfs(new_exec, new_elig, t + 1)
            order_idx.pop()

    dfs(0, init_eligible, 0)
    return out
