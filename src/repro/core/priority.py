"""The priority relation ▷ of Section 2.3.1 / equation (2.1).

For dags ``G1`` (n1 nonsinks, IC-optimal schedule Σ1) and ``G2``
(n2 nonsinks, Σ2), with ``E_i(x)`` the number of ELIGIBLE unexecuted
nodes of ``Gi`` after Σi has executed its first ``x`` nonsinks, ``G1``
has **priority** over ``G2`` — written ``G1 ▷ G2`` — when

    ∀ x ∈ [0, n1], y ∈ [0, n2]:
        E1(x) + E2(y)  <=  E1(x') + E2(y')
        where x' = min(n1, x + y)  and  y' = (x + y) - x'.

Informally: given a fixed total number of executed nonsinks split
between the two dags, shifting as many of them as possible onto ``G1``
never decreases the combined eligible count — "one never decreases IC
quality by executing a nonsink of G1 whenever possible".

The display equation is elided from the available text of the paper;
this is the definition from [21] (Malewicz–Rosenberg–Yurkewych, IEEE
Trans. Comput. 55(6), 2006), and the test-suite verifies that it
reproduces every priority fact the paper asserts (V ▷ V, V ▷ Λ,
¬(Λ ▷ V), B ▷ B, W_s ▷ W_t, N_s ▷ N_t, N_s ▷ Λ, C4 ▷ C4 ▷ Λ ▷ Λ, ...).

Since every IC-optimal schedule of a dag attains the same (maximal)
profile, ``E_i`` does not depend on the choice of Σi; callers may pass
a known IC-optimal schedule to avoid the exhaustive profile search.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import PriorityError
from .dag import ComputationDag
from .optimality import find_ic_optimal_schedule
from .schedule import Schedule

__all__ = [
    "optimal_nonsink_profile",
    "profiles_have_priority",
    "has_priority",
    "priority_chain_holds",
    "priority_matrix",
]


def optimal_nonsink_profile(
    dag: ComputationDag, schedule: Schedule | None = None
) -> list[int]:
    """``[E(0), ..., E(n)]`` under an IC-optimal schedule of ``dag``.

    If ``schedule`` is given it must be IC-optimal for ``dag`` (this is
    the caller's promise; catalogued block schedules satisfy it and the
    tests cross-check them).  Otherwise an IC-optimal schedule is
    searched for; if none exists the ▷ relation is undefined for the
    dag and :class:`PriorityError` is raised.
    """
    if schedule is None:
        schedule = find_ic_optimal_schedule(dag)
        if schedule is None:
            raise PriorityError(
                f"dag {dag.name!r} admits no IC-optimal schedule; "
                "the priority relation is undefined for it"
            )
    return schedule.nonsink_profile()


def profiles_have_priority(e1: Sequence[int], e2: Sequence[int]) -> bool:
    """Equation (2.1) on raw optimal nonsink profiles.

    ``e1``/``e2`` are the profiles ``[E(0), ..., E(n_i)]`` of the two
    dags under IC-optimal schedules.
    """
    n1 = len(e1) - 1
    n2 = len(e2) - 1
    for x in range(n1 + 1):
        for y in range(n2 + 1):
            xp = min(n1, x + y)
            yp = (x + y) - xp
            if e1[x] + e2[y] > e1[xp] + e2[yp]:
                return False
    return True


def has_priority(
    g1: ComputationDag,
    g2: ComputationDag,
    schedule1: Schedule | None = None,
    schedule2: Schedule | None = None,
) -> bool:
    """True iff ``g1 ▷ g2`` under equation (2.1).

    Known IC-optimal schedules may be supplied to skip the exhaustive
    search.  Raises :class:`PriorityError` when either dag admits no
    IC-optimal schedule.
    """
    e1 = optimal_nonsink_profile(g1, schedule1)
    e2 = optimal_nonsink_profile(g2, schedule2)
    return profiles_have_priority(e1, e2)


def priority_chain_holds(
    dags: Sequence[ComputationDag],
    schedules: Sequence[Schedule | None] | None = None,
) -> bool:
    """True iff ``dags[i] ▷ dags[i+1]`` for every consecutive pair.

    This is requirement (b) of a ▷-linear composition.
    """
    if schedules is None:
        schedules = [None] * len(dags)
    if len(schedules) != len(dags):
        raise PriorityError("schedules list must match dags list in length")
    profiles = [
        optimal_nonsink_profile(d, s) for d, s in zip(dags, schedules)
    ]
    return all(
        profiles_have_priority(profiles[i], profiles[i + 1])
        for i in range(len(profiles) - 1)
    )


def priority_matrix(
    dags: Sequence[ComputationDag],
    schedules: Sequence[Schedule | None] | None = None,
) -> list[list[bool]]:
    """Pairwise ▷ matrix: entry ``[i][j]`` is ``dags[i] ▷ dags[j]``.

    Diagonal entries test self-priority (e.g. ``V ▷ V``), which is what
    licenses iterated composition of a block with itself.
    """
    if schedules is None:
        schedules = [None] * len(dags)
    profiles = [
        optimal_nonsink_profile(d, s) for d, s in zip(dags, schedules)
    ]
    return [
        [profiles_have_priority(pi, pj) for pj in profiles] for pi in profiles
    ]
