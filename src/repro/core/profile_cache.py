"""Content-addressed memoization of eligibility ceilings and
IC-optimality certificates.

The exhaustive searches in :mod:`repro.core.optimality` are the
dominant cost of certification, yet the *same* dag structure is
certified over and over: every benchmark rebuilds the same
family/size, the sim server schedules the same workload dags per
policy, and tests re-verify catalog blocks.  Because
:meth:`~repro.core.dag.ComputationDag.fingerprint` is content-
addressed (structure only — not identity, name, or insertion order),
one bounded LRU map turns every repeat certification into an O(1)
lookup.

Two result kinds are cached per fingerprint:

* the **max-eligibility profile** ``[M(0), ..., M(|N|)]``;
* the **certificate**: the node order of the found IC-optimal
  schedule, or the fact that none exists.

Cached entries are exactly the sequential search's outputs, so cache
hits are byte-identical to cold runs.  A schedule is re-validated
against the *requesting* dag instance on every hit (``Schedule``
construction replays the order), so a fingerprint collision — or a
label set that coincides across semantically different uses — cannot
smuggle in an invalid order.

Entries record nothing about the ``state_budget`` they were computed
under: a search that *completed* within any budget is correct under
every budget, and failed searches are never cached.

The cache can optionally round-trip through a JSON file
(:meth:`ProfileCache.save` / :meth:`ProfileCache.load`, both built on
the power-loss-safe :func:`repro.fsio.atomic_write_json`), so a
service restart or deploy starts warm instead of re-running every
search.  Persistence is strictly best-effort: corrupt files or
entries are skipped and counted
(``profile_cache_load_skipped_total``), never raised, and a loaded
schedule order is still re-validated against the requesting dag on
every hit exactly like an in-process entry.  Only entries with
JSON-native node labels (ints/strings, e.g. every dag that arrived
over the service wire format) are persisted — exotic labels stay
in-memory-only rather than round-tripping lossily.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, replace

from ..fsio import atomic_write_json
from ..obs import global_registry
from .dag import ComputationDag, Node
from .optimality import DEFAULT_STATE_BUDGET, max_eligibility_profile
from .schedule import Schedule

__all__ = [
    "CacheStats",
    "ProfileCache",
    "global_profile_cache",
    "set_global_profile_cache",
]

#: sentinel distinguishing "no IC-optimal schedule exists" (a cachable
#: fact) from "not cached".
_NO_SCHEDULE = object()


def _lookup_counter():
    """The shared cache-lookup counter, resolved from the *current*
    global registry at call time (so benchmarks that install a fresh
    registry capture cache traffic too)."""
    return global_registry().counter(
        "profile_cache_lookups_total",
        "certification cache lookups", ("kind", "result"),
    )


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ProfileCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``; 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ProfileCache:
    """A bounded LRU cache of certification results, keyed by dag
    fingerprint.

    Parameters
    ----------
    maxsize:
        Maximum number of (fingerprint, kind) entries; least recently
        *used* entries are evicted first.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self._stats = CacheStats()

    # -- observability -------------------------------------------------
    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return self._stats.hits

    @property
    def misses(self) -> int:
        """Lookups that had to run the exhaustive search."""
        return self._stats.misses

    @property
    def evictions(self) -> int:
        """Entries dropped by the LRU bound."""
        return self._stats.evictions

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``; 0.0 before any lookup."""
        return self._stats.hit_rate

    def stats(self) -> CacheStats:
        """A point-in-time copy of the counters (safe to keep around;
        it does not track later lookups)."""
        return replace(self._stats)

    def _get(self, key: tuple[str, str]):
        kind = key[1]
        try:
            value = self._entries[key]
        except KeyError:
            self._stats.misses += 1
            _lookup_counter().labels(kind, "miss").inc()
            return None
        self._entries.move_to_end(key)
        self._stats.hits += 1
        _lookup_counter().labels(kind, "hit").inc()
        return value

    def _put(self, key: tuple[str, str], value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._stats.evictions += 1
            global_registry().counter(
                "profile_cache_evictions_total",
                "certification cache entries dropped by the LRU bound",
            ).inc()

    # -- persistence ---------------------------------------------------
    _FILE_VERSION = 1

    def save(self, path: str) -> int:
        """Persist every JSON-representable entry to ``path``
        (atomic, fsync'd); returns how many were written.

        Profile entries always persist; schedule entries persist only
        when every node label is an int or str (lossless round-trip).
        """
        entries = []
        for (fp, kind), value in self._entries.items():
            if value is _NO_SCHEDULE:
                entries.append({"fingerprint": fp, "kind": kind,
                                "none_exists": True})
                continue
            seq = list(value)  # tuple of ints (profile) or labels
            if kind == "schedule" and not all(
                isinstance(x, (int, str)) for x in seq
            ):
                continue
            entries.append({"fingerprint": fp, "kind": kind,
                            "value": seq})
        atomic_write_json(path, {
            "version": self._FILE_VERSION,
            "entries": entries,
        })
        return len(entries)

    def load(self, path: str) -> int:
        """Merge entries from ``path`` (written by :meth:`save`);
        returns how many were accepted.  Corrupt files and malformed
        entries are skipped and counted
        (``profile_cache_load_skipped_total``), never raised.
        """
        def skip(n: int = 1) -> None:
            global_registry().counter(
                "profile_cache_load_skipped_total",
                "corrupt or malformed profile-cache files/entries "
                "discarded on load",
            ).inc(n)

        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            skip()
            return 0
        if not isinstance(data, dict) or \
                data.get("version") != self._FILE_VERSION:
            skip()
            return 0
        loaded = skipped = 0
        for entry in data.get("entries", ()):
            if not isinstance(entry, dict):
                skipped += 1
                continue
            fp = entry.get("fingerprint")
            kind = entry.get("kind")
            if not isinstance(fp, str) or kind not in ("profile",
                                                       "schedule"):
                skipped += 1
                continue
            if entry.get("none_exists"):
                if kind != "schedule":
                    skipped += 1
                    continue
                self._put((fp, kind), _NO_SCHEDULE)
                loaded += 1
                continue
            value = entry.get("value")
            if not isinstance(value, list):
                skipped += 1
                continue
            if kind == "profile" and not all(
                isinstance(x, int) and not isinstance(x, bool)
                for x in value
            ):
                skipped += 1
                continue
            if kind == "schedule" and not all(
                isinstance(x, (int, str)) for x in value
            ):
                skipped += 1
                continue
            self._put((fp, kind), tuple(value))
            loaded += 1
        if skipped:
            skip(skipped)
        return loaded

    # ------------------------------------------------------------------
    def max_profile(
        self,
        dag: ComputationDag,
        state_budget: int = DEFAULT_STATE_BUDGET,
        *,
        parallel: bool = False,
        workers: int | None = None,
    ) -> list[int]:
        """``max_eligibility_profile(dag, ...)``, memoized.

        A hit returns a copy of the stored profile (callers may mutate
        their list freely).  On a miss the profile is computed with the
        given search options and stored; the stored value never depends
        on ``parallel`` (both paths produce identical profiles).
        """
        key = (dag.fingerprint(), "profile")
        cached = self._get(key)
        if cached is not None:
            return list(cached)
        profile = max_eligibility_profile(
            dag, state_budget, parallel=parallel, workers=workers
        )
        self._put(key, tuple(profile))
        return profile

    def find_schedule(
        self,
        dag: ComputationDag,
        state_budget: int = DEFAULT_STATE_BUDGET,
        name: str = "ic-optimal",
        *,
        parallel: bool = False,
        workers: int | None = None,
    ) -> Schedule | None:
        """``find_ic_optimal_schedule(dag, ...)``, memoized.

        The cached value is the node *order* (plus the none-exists
        fact); a hit rebuilds — and thereby re-validates — a
        :class:`Schedule` against the requesting dag instance.
        """
        from .optimality import find_ic_optimal_schedule

        key = (dag.fingerprint(), "schedule")
        cached = self._get(key)
        if cached is _NO_SCHEDULE:
            return None
        if cached is not None:
            order: tuple[Node, ...] = cached  # type: ignore[assignment]
            return Schedule(dag, order, name=name)
        sched = find_ic_optimal_schedule(
            dag,
            state_budget,
            name,
            parallel=parallel,
            workers=workers,
            max_profile=self.max_profile(
                dag, state_budget, parallel=parallel, workers=workers
            ),
        )
        self._put(key, _NO_SCHEDULE if sched is None else tuple(sched.order))
        return sched


#: process-wide default cache used by ``schedule_dag`` and the sim
#: server unless a caller supplies (or disables) its own.
_GLOBAL_CACHE = ProfileCache()


def global_profile_cache() -> ProfileCache:
    """The process-wide default :class:`ProfileCache`."""
    return _GLOBAL_CACHE


def set_global_profile_cache(cache: ProfileCache) -> ProfileCache:
    """Replace the process-wide default cache; returns the old one.

    Useful for isolating measurements (benchmarks install a fresh
    cache so hit rates describe only their own workload).
    """
    global _GLOBAL_CACHE
    old = _GLOBAL_CACHE
    _GLOBAL_CACHE = cache
    return old
