"""Almost-optimal scheduling quality (future thrust 2 of Section 8).

IC-optimality is demanding — many dags admit no IC-optimal schedule
([21]; see ``tests/test_optimality.py`` for a 7-node example) — so the
paper's research agenda calls for "rigorous notions of 'almost'
optimal scheduling that apply to *all* dags".  This module provides
the natural candidates and an optimizer for them:

* :func:`quality_ratio` — ``R(Σ) = min_t E_Σ(t) / M(t)``, the worst
  per-step fraction of the ceiling achieved (1.0 iff IC-optimal);
* :func:`quality_deficit` — ``max_t (M(t) - E_Σ(t))``, the worst
  absolute shortfall;
* :func:`area_ratio` — ``Σ_t E_Σ(t) / Σ_t M(t)``, the aggregate
  headroom fraction;
* :func:`best_effort_schedule` — exhaustive search for the schedule
  minimizing the lexicographic (deficit, -area) objective, feasible at
  the sizes where :mod:`repro.core.optimality` is; falls back to the
  greedy schedule above that size.

These reduce to IC-optimality when it is attainable: a schedule has
deficit 0 / ratio 1.0 iff it is IC-optimal.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import OptimalityError
from .dag import ComputationDag, Node
from .optimality import DEFAULT_STATE_BUDGET, max_eligibility_profile
from .schedule import Schedule
from .scheduler import greedy_schedule

__all__ = [
    "quality_ratio",
    "quality_deficit",
    "area_ratio",
    "QualityReport",
    "quality_report",
    "best_effort_schedule",
]


def _ceiling(
    schedule: Schedule, max_profile: Sequence[int] | None, budget: int
) -> list[int]:
    if max_profile is not None:
        ceiling = list(max_profile)
        if len(ceiling) != len(schedule.profile):
            raise OptimalityError("max profile length mismatch")
        return ceiling
    return max_eligibility_profile(schedule.dag, budget)


def quality_ratio(
    schedule: Schedule,
    max_profile: Sequence[int] | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> float:
    """``min_t E(t) / M(t)`` over steps with ``M(t) > 0``.

    1.0 iff the schedule is IC-optimal; the guaranteed fraction of the
    best possible eligibility headroom at the schedule's worst moment.
    """
    ceiling = _ceiling(schedule, max_profile, state_budget)
    ratios = [
        e / m for e, m in zip(schedule.profile, ceiling) if m > 0
    ]
    return min(ratios) if ratios else 1.0


def quality_deficit(
    schedule: Schedule,
    max_profile: Sequence[int] | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> int:
    """``max_t (M(t) - E(t))`` — worst absolute eligibility shortfall.

    0 iff the schedule is IC-optimal.
    """
    ceiling = _ceiling(schedule, max_profile, state_budget)
    return max(m - e for e, m in zip(schedule.profile, ceiling))


def area_ratio(
    schedule: Schedule,
    max_profile: Sequence[int] | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> float:
    """Aggregate headroom fraction ``Σ E(t) / Σ M(t)``.

    Note the denominator is itself an upper bound: no schedule need
    attain ``M(t)`` at every ``t`` simultaneously, so 1.0 is attained
    exactly by IC-optimal schedules.
    """
    ceiling = _ceiling(schedule, max_profile, state_budget)
    total = sum(ceiling)
    return sum(schedule.profile) / total if total else 1.0


@dataclass
class QualityReport:
    """All almost-optimality metrics for one schedule."""

    schedule_name: str
    ratio: float
    deficit: int
    area: float
    ic_optimal: bool

    def __repr__(self) -> str:
        return (
            f"QualityReport({self.schedule_name!r}: ratio={self.ratio:.3f}, "
            f"deficit={self.deficit}, area={self.area:.3f}, "
            f"ic_optimal={self.ic_optimal})"
        )


def quality_report(
    schedule: Schedule,
    max_profile: Sequence[int] | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> QualityReport:
    """Compute every metric (sharing one ceiling computation)."""
    ceiling = _ceiling(schedule, max_profile, state_budget)
    return QualityReport(
        schedule_name=schedule.name,
        ratio=quality_ratio(schedule, ceiling),
        deficit=quality_deficit(schedule, ceiling),
        area=area_ratio(schedule, ceiling),
        ic_optimal=quality_deficit(schedule, ceiling) == 0,
    )


def best_effort_schedule(
    dag: ComputationDag,
    exhaustive_limit: int = 18,
    state_budget: int = 500_000,
    name: str = "best-effort",
) -> Schedule:
    """The schedule minimizing (deficit, -profile area) — an "almost
    optimal" schedule that exists for *every* dag.

    Exhaustive branch-and-bound over nonsink-first orders when the dag
    has at most ``exhaustive_limit`` nonsinks (memoized per executed
    set on the best achievable suffix, pruned against the incumbent);
    greedy otherwise.  When an IC-optimal schedule exists, the result
    is IC-optimal (deficit 0 is then attainable and area is maximal at
    the ceiling).
    """
    nonsinks = [v for v in dag.nodes if not dag.is_sink(v)]
    n = len(nonsinks)
    if n > exhaustive_limit:
        return greedy_schedule(dag, name=name)
    try:
        ceiling = max_eligibility_profile(dag, state_budget)
    except OptimalityError:
        return greedy_schedule(dag, name=name)

    nonsink_set = set(nonsinks)
    index = {v: i for i, v in enumerate(dag.nodes)}
    best: dict = {"order": None, "key": None}

    # Prefix statistics are path-dependent, so only an incumbent prune
    # on the running deficit keeps the branch-and-bound tractable at
    # the supported sizes.  The single ExecutionState backtracks via
    # execute()/undo() — O(out-degree) per step, no state copying.
    from .execution import ExecutionState

    state = ExecutionState(dag)
    order: list[Node] = []

    def dfs(t: int, deficit: int, area: int) -> None:
        if best["key"] is not None and deficit > best["key"][0]:
            return  # cannot improve the incumbent's deficit
        if t == n:
            # sinks drain deterministically: E = |N| - t thereafter,
            # equal to the ceiling, so no further deficit accrues.
            tail = sum(len(dag) - s for s in range(n + 1, len(dag) + 1))
            key = (deficit, -(area + tail))
            if best["key"] is None or key < best["key"]:
                best["key"] = key
                best["order"] = list(order)
            return
        for u in sorted(
            (v for v in state.eligible if v in nonsink_set),
            key=index.__getitem__,
        ):
            state.execute(u)
            e = state.eligible_count()
            order.append(u)
            dfs(t + 1, max(deficit, ceiling[t + 1] - e), area + e)
            order.pop()
            state.undo()

    dfs(0, 0, state.eligible_count())
    assert best["order"] is not None
    sinks = [v for v in dag.nodes if dag.is_sink(v)]
    return Schedule(dag, best["order"] + sinks, name=name)
