"""Structure recognition for bare dags.

The families in :mod:`repro.families` carry their composition
certificates because we built them; a dag that arrives from elsewhere
(a workflow file, a trace, ``networkx``) is just nodes and arcs.  This
module recovers the certificate: :func:`recognize` identifies a bare
dag as one of the paper's families and returns an equivalent
:class:`~repro.core.composition.CompositionChain` over the dag's *own*
labels, ready for Theorem 2.1 — or ``None`` when no family matches.

Trees and meshes are recognized structurally at any size; butterfly
and parallel-prefix dags are matched via graph isomorphism against the
canonical construction (sizes are prefiltered, so the check only runs
when the node/arc counts already fit).
"""

from __future__ import annotations

import networkx as nx

from .composition import CompositionChain
from .dag import ComputationDag, Node

__all__ = ["recognize", "recognize_mesh_coordinates"]


def _tree_children(dag: ComputationDag) -> tuple[dict, Node]:
    root = dag.sources[0]
    children = {v: dag.children(v) for v in dag.nodes if dag.children(v)}
    return children, root


def recognize_mesh_coordinates(
    dag: ComputationDag,
) -> dict[Node, tuple[int, int]] | None:
    """If ``dag`` is an out-mesh (any labels), return the canonical
    ``(level, index)`` coordinate of every node; else ``None``.

    Reconstruction: levels are longest-path depths; level ``k`` must
    hold ``k + 1`` nodes; within a level, indices follow the unique
    walk from the node whose parent set is a prefix of the previous
    level (out-mesh node ``(k, 0)`` has the single parent
    ``(k-1, 0)``), with adjacent nodes sharing one parent.
    """
    if len(dag.sources) != 1 or not dag.is_acyclic():
        return None
    levels: dict[int, list[Node]] = {}
    for v, lv in dag.node_levels().items():
        levels.setdefault(lv, []).append(v)
    depth = max(levels)
    coord: dict[Node, tuple[int, int]] = {dag.sources[0]: (0, 0)}
    if levels[0] != [dag.sources[0]]:
        return None
    prev = [dag.sources[0]]
    for k in range(1, depth + 1):
        members = levels.get(k, [])
        if len(members) != k + 1:
            return None
        by_parents = {v: set(dag.parents(v)) for v in members}
        # walk the level: position m has parents {prev[m-1], prev[m]}
        ordered: list[Node] = []
        for m in range(k + 1):
            expected = set()
            if m > 0:
                expected.add(prev[m - 1])
            if m < k:
                expected.add(prev[m])
            matches = [
                v
                for v in members
                if by_parents[v] == expected and v not in ordered
            ]
            if not matches:
                return None
            # level 1 is reflection-symmetric (both nodes have the
            # apex as sole parent); either choice extends to a full
            # labeling because reflection is a mesh automorphism
            ordered.append(matches[0])
        for m, v in enumerate(ordered):
            coord[v] = (k, m)
        prev = ordered
    # verify arcs are exactly the mesh arcs
    expected_arcs = set()
    for v, (k, m) in coord.items():
        if k < depth:
            expected_arcs.add((v, prev_lookup(coord, k + 1, m)))
            expected_arcs.add((v, prev_lookup(coord, k + 1, m + 1)))
    if set(dag.arcs) != expected_arcs:
        return None
    return coord


def prev_lookup(coord: dict, k: int, m: int) -> Node:
    """Inverse coordinate lookup (helper for mesh verification)."""
    for v, c in coord.items():
        if c == (k, m):
            return v
    raise KeyError((k, m))


def _recognize_out_mesh(dag: ComputationDag) -> CompositionChain | None:
    if dag.depth() < 1:
        return None
    coord = recognize_mesh_coordinates(dag)
    if coord is None:
        return None
    from ..families.mesh import out_mesh_chain

    canonical = out_mesh_chain(dag.depth())
    inverse = {c: v for v, c in coord.items()}
    return _relabel_chain(canonical, inverse, name=f"{dag.name}:out-mesh")


def _relabel_chain(
    chain: CompositionChain, mapping: dict, name: str
) -> CompositionChain:
    """Rewrite a chain's composite labels through ``mapping`` (the
    blocks and block schedules are label-spaces of their own and stay
    untouched; only node_maps and the composite dag change)."""
    clone = object.__new__(CompositionChain)
    clone.name = name
    clone.dag = chain.dag.relabel(lambda v: mapping[v], name=name)
    from .composition import BlockRecord

    clone.blocks = [
        BlockRecord(
            block=rec.block,
            schedule=rec.schedule,
            node_map={bv: mapping[cv] for bv, cv in rec.node_map.items()},
        )
        for rec in chain.blocks
    ]
    return clone


def _recognize_tree(dag: ComputationDag) -> CompositionChain | None:
    from ..families.trees import in_tree_chain, is_in_tree, is_out_tree, out_tree_chain

    if len(dag) < 2:
        return None
    if is_out_tree(dag):
        children, root = _tree_children(dag)
        return out_tree_chain(children, root, name=f"{dag.name}:out-tree")
    if is_in_tree(dag):
        dual = dag.dual()
        children = {v: dual.children(v) for v in dual.nodes if dual.children(v)}
        root = dual.sources[0]
        return in_tree_chain(children, root, name=f"{dag.name}:in-tree")
    return None


def _recognize_by_isomorphism(
    dag: ComputationDag, canonical: CompositionChain, label: str
) -> CompositionChain | None:
    if len(dag) != len(canonical.dag) or len(dag.arcs) != len(
        canonical.dag.arcs
    ):
        return None
    matcher = nx.algorithms.isomorphism.DiGraphMatcher(
        canonical.dag.to_networkx(), dag.to_networkx()
    )
    if not matcher.is_isomorphic():
        return None
    return _relabel_chain(
        canonical, matcher.mapping, name=f"{dag.name}:{label}"
    )


def _recognize_butterfly(dag: ComputationDag) -> CompositionChain | None:
    from ..families.butterfly_net import butterfly_chain

    n = len(dag)
    # B_d has (d+1)·2^d nodes
    for d in range(1, 8):
        if n == (d + 1) << d:
            return _recognize_by_isomorphism(
                dag, butterfly_chain(d), f"B_{d}"
            )
    return None


def _recognize_prefix(dag: ComputationDag) -> CompositionChain | None:
    from ..families.prefix import prefix_chain, prefix_levels

    n_nodes = len(dag)
    for width in range(2, 257):
        if n_nodes == (prefix_levels(width) + 1) * width:
            chain = prefix_chain(width)
            if len(chain.dag.arcs) != len(dag.arcs):
                continue
            found = _recognize_by_isomorphism(dag, chain, f"P_{width}")
            if found is not None:
                return found
    return None


def _recognize_in_mesh(dag: ComputationDag) -> CompositionChain | None:
    """In-meshes are recognized through their dual: coordinates come
    from the dual out-mesh, the chain from
    :func:`~repro.families.mesh.in_mesh_chain`."""
    if dag.depth() < 1:
        return None
    coord = recognize_mesh_coordinates(dag.dual())
    if coord is None:
        return None
    from ..families.mesh import in_mesh_chain

    canonical = in_mesh_chain(dag.depth())
    inverse = {c: v for v, c in coord.items()}
    return _relabel_chain(canonical, inverse, name=f"{dag.name}:in-mesh")


def _recognize_diamond(dag: ComputationDag) -> CompositionChain | None:
    """Recognize an expansion-reduction diamond: an out-tree whose
    leaves feed an in-tree (Fig. 2 shape, trees of any arities).

    The expansive part is the set of nodes all of whose ancestors
    (including themselves) have indegree <= 1; it must form an
    out-tree whose leaves each feed the reductive remainder, which —
    with the leaves re-attached as its sources — must form an in-tree.
    """
    if len(dag.sources) != 1 or len(dag.sinks) != 1 or len(dag) < 3:
        return None
    # expansive part: indegree <= 1 transitively from the source
    expansive: set[Node] = set()
    stack = [dag.sources[0]]
    while stack:
        v = stack.pop()
        if v in expansive:
            continue
        expansive.add(v)
        for c in dag.children(v):
            if dag.indegree(c) <= 1:
                stack.append(c)
    out_part = dag.induced_subdag(expansive)
    from ..families.trees import is_in_tree, is_out_tree

    if not is_out_tree(out_part):
        return None
    leaves = [v for v in expansive if all(c not in expansive for c in dag.children(v))]
    reductive = (set(dag.nodes) - expansive) | set(leaves)
    in_part = dag.induced_subdag(reductive)
    if not is_in_tree(in_part) or set(in_part.sources) != set(leaves):
        return None
    # cross-check: together the parts cover every arc exactly once
    if len(out_part.arcs) + len(in_part.arcs) != len(dag.arcs):
        return None
    from ..families.trees import attach_in_tree, attach_out_tree

    out_children = {
        v: out_part.children(v) for v in out_part.nodes if out_part.children(v)
    }
    dual = in_part.dual()
    in_children = {
        v: dual.children(v) for v in dual.nodes if dual.children(v)
    }
    name = f"{dag.name}:diamond"
    chain = attach_out_tree(None, out_children, dag.sources[0], name=name)
    # merged nodes carry the same label on both sides, so the leaf
    # merge is the identity pairing
    return attach_in_tree(
        chain,
        in_children,
        dag.sinks[0],
        leaf_merge={v: v for v in leaves},
        name=name,
    )


def recognize(dag: ComputationDag) -> CompositionChain | None:
    """Identify ``dag`` as a paper family and return its composition
    chain over the dag's own labels (``None`` if unrecognized).

    Tried in order: out-/in-tree (any size), expansion-reduction
    diamond, out-mesh (any size, structural), butterfly network,
    parallel-prefix dag (the last two via isomorphism after size
    prefilters).  The returned chain satisfies
    ``chain.dag.same_structure(dag)`` and is directly schedulable by
    :func:`~repro.core.scheduler.schedule_dag`.
    """
    dag.validate()
    for attempt in (
        _recognize_tree,
        _recognize_diamond,
        _recognize_out_mesh,
        _recognize_in_mesh,
        _recognize_butterfly,
        _recognize_prefix,
    ):
        chain = attempt(dag)
        if chain is not None:
            return chain
    return None
