"""Schedules and their quality profiles.

A *schedule* for a dag is a rule that picks which ELIGIBLE node to
execute at each step; concretely we represent it as the full execution
order it produces (the papers' schedules are deterministic orders).

Two profile notions are used throughout the theory:

* the **(full) eligibility profile** ``E(t)`` for ``t = 0..|N|`` —
  eligible unexecuted nodes after each execution;
* the **nonsink profile** ``E(x)`` for ``x = 0..n`` (n = #nonsinks) —
  the profile of the *nonsink-normalized* schedule after executing its
  first ``x`` nonsinks.  Equation (2.1) (the ▷ relation) is stated in
  terms of this profile.

Executing a sink can never render a node ELIGIBLE and strictly lowers
the eligible count, so any schedule can be improved (weakly, at every
step) by deferring sinks; :func:`normalize_nonsinks_first` performs
that rewriting while preserving validity.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import ScheduleError
from .dag import ComputationDag, Node
from .execution import ExecutionState

__all__ = [
    "Schedule",
    "normalize_nonsinks_first",
    "dominates",
    "profiles_equal",
]


class Schedule:
    """An execution order for every node of a dag.

    Instances are validated on construction: the order must contain
    every node exactly once and respect all precedence arcs.  The
    eligibility profile is computed during validation and cached.
    """

    __slots__ = ("dag", "order", "name", "_profile")

    def __init__(
        self,
        dag: ComputationDag,
        order: Sequence[Node],
        name: str = "schedule",
    ) -> None:
        self.dag = dag
        self.order: tuple[Node, ...] = tuple(order)
        self.name = name
        if len(self.order) != len(dag):
            raise ScheduleError(
                f"schedule covers {len(self.order)} nodes but dag "
                f"{dag.name!r} has {len(dag)}"
            )
        if len(set(self.order)) != len(self.order):
            raise ScheduleError("schedule repeats a node")
        # Executing the order checks eligibility step by step and
        # simultaneously caches the profile.
        state = ExecutionState(dag)
        state.execute_all(self.order)
        self._profile: list[int] = list(state.profile)

    # ------------------------------------------------------------------
    @property
    def profile(self) -> list[int]:
        """Full eligibility profile ``[E(0), ..., E(|N|)]``."""
        return list(self._profile)

    def nonsink_order(self) -> list[Node]:
        """The nonsinks of the dag in the order this schedule runs them."""
        return [v for v in self.order if not self.dag.is_sink(v)]

    def nonsink_profile(self) -> list[int]:
        """``[E(0), ..., E(n)]`` of the nonsink-normalized schedule.

        This is the quantity equation (2.1) quantifies over: the
        eligible count after executing the first ``x`` nonsinks (all
        sinks deferred).  Index ``x`` runs from 0 to the number of
        nonsinks.
        """
        state = ExecutionState(self.dag)
        out = [state.eligible_count()]
        for v in self.nonsink_order():
            state.execute(v)
            out.append(state.eligible_count())
        return out

    def eligible_after(self, t: int) -> int:
        """``E(t)`` from the full profile."""
        return self._profile[t]

    def packets(self) -> list[list[Node]]:
        """The nonsource "packets" of Section 2.3.2.

        Packet ``P_j`` lists the nonsources rendered ELIGIBLE by the
        *j*-th nonsink execution of the (nonsink-normalized) schedule.
        Packets may be empty.  Used to build dual schedules
        (Theorem 2.2).
        """
        state = ExecutionState(self.dag)
        out: list[list[Node]] = []
        for v in self.nonsink_order():
            newly = state.execute(v)
            out.append([w for w in newly if not self.dag.is_source(w)])
        return out

    def __len__(self) -> int:
        return len(self.order)

    def __iter__(self):
        return iter(self.order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.dag.same_structure(other.dag) and self.order == other.order

    def __hash__(self) -> int:
        return hash(self.order)

    def __repr__(self) -> str:
        return (
            f"Schedule(name={self.name!r}, dag={self.dag.name!r}, "
            f"steps={len(self.order)})"
        )


def normalize_nonsinks_first(schedule: Schedule) -> Schedule:
    """Rewrite ``schedule`` to run all nonsinks first, sinks last.

    The relative order of nonsinks (and of sinks) is preserved.  The
    result is always a valid schedule: delaying a sink cannot violate
    precedence (sinks have no children), and advancing a nonsink over a
    sink cannot either (a sink is nobody's parent... by definition it
    has no children, so nothing waits on it).  The resulting profile
    weakly dominates the original at every step.
    """
    nonsinks = [v for v in schedule.order if not schedule.dag.is_sink(v)]
    sinks = [v for v in schedule.order if schedule.dag.is_sink(v)]
    return Schedule(
        schedule.dag, nonsinks + sinks, name=f"{schedule.name}[nonsink-first]"
    )


def dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """True iff profile ``a`` is pointwise >= profile ``b``.

    Profiles must have equal length (same dag, same step count).
    """
    if len(a) != len(b):
        raise ScheduleError(
            f"cannot compare profiles of lengths {len(a)} and {len(b)}"
        )
    return all(x >= y for x, y in zip(a, b))


def profiles_equal(a: Sequence[int], b: Sequence[int]) -> bool:
    """True iff the two profiles coincide pointwise."""
    return len(a) == len(b) and all(x == y for x, y in zip(a, b))
