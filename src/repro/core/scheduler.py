"""High-level scheduling front end.

:func:`schedule_dag` is the library's main entry point: it produces the
best schedule it can certify for the input —

1. a :class:`~repro.core.composition.CompositionChain` with a valid
   ▷-chain is scheduled by Theorem 2.1 (certified IC-optimal);
2. a bare dag small enough for exhaustive search is scheduled by
   :func:`~repro.core.optimality.find_ic_optimal_schedule` (certified
   IC-optimal, or certified *non-existent*);
3. otherwise a greedy heuristic is used (no certificate).

The returned :class:`SchedulingResult` says which path was taken, so
callers (benchmarks, the simulator) can report certification status.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from enum import Enum

from ..exceptions import OptimalityError
from ..obs import global_registry, span
from .composition import CompositionChain, linear_composition_schedule
from .dag import ComputationDag, Node
from .execution import ExecutionState
from .profile_cache import ProfileCache, global_profile_cache
from .schedule import Schedule

__all__ = ["Certificate", "SchedulingResult", "schedule_dag", "greedy_schedule"]


class Certificate(Enum):
    """How the returned schedule's quality is certified."""

    #: IC-optimal by Theorem 2.1 applied to a ▷-linear composition.
    COMPOSITION = "composition"
    #: IC-optimal by Theorem 2.1 within topological-cut segments (the
    #: Table 1 alternating compositions).
    SEGMENTED = "segmented"
    #: IC-optimal by exhaustive search against the max profile.
    EXHAUSTIVE = "exhaustive"
    #: Exhaustive search proved no IC-optimal schedule exists; the
    #: returned schedule is the greedy one.
    NONE_EXISTS = "none-exists"
    #: Dag too large for exhaustive search; greedy heuristic, no claim.
    HEURISTIC = "heuristic"


@dataclass
class SchedulingResult:
    """A schedule together with its optimality certificate."""

    schedule: Schedule
    certificate: Certificate

    @property
    def ic_optimal(self) -> bool:
        """True when the schedule is certified IC-optimal."""
        return self.certificate in (
            Certificate.COMPOSITION,
            Certificate.SEGMENTED,
            Certificate.EXHAUSTIVE,
        )


def greedy_schedule(dag: ComputationDag, name: str = "greedy") -> Schedule:
    """A deterministic greedy schedule: at each step execute the
    eligible node that renders the most new nodes ELIGIBLE, breaking
    ties by larger out-degree, then by insertion order.

    Runs nonsinks first (sinks can never help), so its profile weakly
    dominates naive orders; it carries no optimality certificate.
    """
    index = {v: i for i, v in enumerate(dag.nodes)}
    state = ExecutionState(dag)
    order: list[Node] = []
    remaining_nonsinks = sum(1 for v in dag.nodes if not dag.is_sink(v))
    while remaining_nonsinks:
        best: Node | None = None
        best_key: tuple[int, int, int] | None = None
        for v in state.eligible:
            if dag.is_sink(v):
                continue
            newly = sum(
                1
                for c in dag.children(v)
                if all(p == v or state.is_executed(p) for p in dag.parents(c))
            )
            key = (-newly, -dag.outdegree(v), index[v])
            if best_key is None or key < best_key:
                best_key = key
                best = v
        assert best is not None, "acyclic dag always has an eligible nonsink"
        state.execute(best)
        order.append(best)
        remaining_nonsinks -= 1
    order.extend(v for v in dag.nodes if dag.is_sink(v))
    return Schedule(dag, order, name=name)


def schedule_dag(
    target: ComputationDag | CompositionChain,
    *args,
    exhaustive_limit: int = 24,
    state_budget: int = 500_000,
    parallel: bool = False,
    workers: int | None = None,
    cache: ProfileCache | bool = True,
) -> SchedulingResult:
    """Schedule ``target`` with the strongest available certificate.

    The stable entry point for this operation is
    :func:`repro.api.schedule`; ``schedule_dag`` remains supported,
    but its tuning options are keyword-only — the historical
    positional forms ``schedule_dag(dag, limit)`` and
    ``schedule_dag(dag, limit, budget)`` still work and emit a
    :class:`DeprecationWarning` (see ``docs/API_MIGRATION.md``).

    Parameters
    ----------
    target:
        Either a :class:`CompositionChain` (preferred — carries its own
        decomposition certificate) or a bare :class:`ComputationDag`.
    exhaustive_limit:
        Maximum number of nonsinks for which exhaustive search is
        attempted on bare dags.
    state_budget:
        Ideal-state cap for the exhaustive search; if exceeded the
        greedy fallback is used.
    parallel:
        Fan the exhaustive ceiling computation out over a process pool
        (see :func:`~repro.core.optimality.max_eligibility_profile`).
        Never changes the result — only how fast it arrives.
    workers:
        Pool size for ``parallel=True``; defaults to ``os.cpu_count()``.
    cache:
        ``True`` (default) memoizes exhaustive results in the
        process-wide :func:`~repro.core.profile_cache
        .global_profile_cache`; pass a :class:`ProfileCache` to use a
        private one, or ``False`` to search from scratch.

    Every request increments ``scheduler_requests_total`` (labeled by
    the certificate granted) in the process-wide metrics registry and
    opens a ``scheduler.schedule_dag`` span when tracing is enabled.
    """
    if args:
        warnings.warn(
            "passing exhaustive_limit/state_budget to schedule_dag "
            "positionally is deprecated; pass them as keywords (or "
            "use repro.api.schedule) — see docs/API_MIGRATION.md",
            DeprecationWarning,
            stacklevel=2,
        )
        if len(args) > 2:
            raise TypeError(
                f"schedule_dag takes at most 3 positional arguments "
                f"({1 + len(args)} given)"
            )
        exhaustive_limit = args[0]
        if len(args) == 2:
            state_budget = args[1]
    name = target.dag.name if isinstance(target, CompositionChain) \
        else target.name
    with span("scheduler.schedule_dag", dag=name) as sp:
        result = _schedule_dag(
            target, exhaustive_limit, state_budget,
            parallel=parallel, workers=workers, cache=cache,
        )
        sp.set(certificate=result.certificate.value)
    global_registry().counter(
        "scheduler_requests_total",
        "schedule_dag requests by certificate granted", ("certificate",),
    ).labels(result.certificate.value).inc()
    return result


def _schedule_dag(
    target: ComputationDag | CompositionChain,
    exhaustive_limit: int,
    state_budget: int,
    *,
    parallel: bool,
    workers: int | None,
    cache: ProfileCache | bool,
) -> SchedulingResult:
    if isinstance(target, CompositionChain):
        # each certification level is checked once; the builder is then
        # invoked unchecked to avoid recomputing block profiles
        if target.is_priority_linear():
            sched = linear_composition_schedule(
                target, require_priority_chain=False
            )
            return SchedulingResult(sched, Certificate.COMPOSITION)
        reordered = target.priority_reordered()
        if reordered.is_priority_linear():
            sched = linear_composition_schedule(
                reordered, require_priority_chain=False
            )
            return SchedulingResult(sched, Certificate.COMPOSITION)
        if target.segmented_priority_linear():
            sched = linear_composition_schedule(
                target, require_priority_chain=False
            )
            return SchedulingResult(sched, Certificate.SEGMENTED)
        if reordered.segmented_priority_linear():
            sched = linear_composition_schedule(
                reordered, require_priority_chain=False
            )
            return SchedulingResult(sched, Certificate.SEGMENTED)
        # Chain fails ▷-linearity even segment-wise: fall through to
        # treating the composite dag directly.
        target = target.dag

    dag = target
    n_nonsinks = sum(1 for v in dag.nodes if not dag.is_sink(v))
    if n_nonsinks <= exhaustive_limit:
        if cache is True:
            cache = global_profile_cache()
        try:
            if isinstance(cache, ProfileCache):
                sched = cache.find_schedule(
                    dag, state_budget, parallel=parallel, workers=workers
                )
            else:
                from .optimality import find_ic_optimal_schedule

                sched = find_ic_optimal_schedule(
                    dag,
                    state_budget=state_budget,
                    parallel=parallel,
                    workers=workers,
                )
        except OptimalityError:
            sched = None
        else:
            if sched is not None:
                return SchedulingResult(sched, Certificate.EXHAUSTIVE)
            return SchedulingResult(
                greedy_schedule(dag), Certificate.NONE_EXISTS
            )
    return SchedulingResult(greedy_schedule(dag), Certificate.HEURISTIC)
