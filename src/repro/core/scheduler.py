"""High-level scheduling front end.

:func:`schedule_dag` is the library's main entry point: it produces
the best schedule it can certify for the input, via the
decomposition-first strategy engine of :mod:`repro.core.certify`
(``docs/CERTIFICATION.md``):

1. a :class:`~repro.core.composition.CompositionChain` with a valid
   ▷-chain is scheduled by Theorem 2.1 (certified IC-optimal);
2. a bare dag is *factored*: :func:`~repro.core.recognition.recognize`
   (or a connected-component split) recovers a composition chain whose
   blocks are certified from the memoized block-certificate library,
   and Theorem 2.1 assembles the composite schedule;
3. an unrecognized dag small enough for exhaustive search is scheduled
   by :func:`~repro.core.optimality.find_ic_optimal_schedule`
   (certified IC-optimal, or certified *non-existent*);
4. otherwise: with a ``budget=``, the *anytime* path returns the best
   schedule found plus certified eligibility-loss bounds; without one,
   a greedy heuristic — in both cases the certificate *says so*
   (nothing is ever returned unlabeled).

The returned :class:`SchedulingResult` records which path was taken
(:class:`Certificate` and its coarse :attr:`Certificate.kind`), the
per-block certificate provenance, and the anytime bounds, so callers
(benchmarks, the simulator, the service) can report certification
status precisely.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from enum import Enum

from ..obs import global_registry, span
from .composition import CompositionChain
from .dag import ComputationDag, Node
from .execution import ExecutionState
from .profile_cache import ProfileCache
from .schedule import Schedule

__all__ = ["Certificate", "SchedulingResult", "schedule_dag", "greedy_schedule"]


class Certificate(Enum):
    """How the returned schedule's quality is certified."""

    #: IC-optimal by Theorem 2.1 applied to a ▷-linear composition.
    COMPOSITION = "composition"
    #: IC-optimal by Theorem 2.1 within topological-cut segments (the
    #: Table 1 alternating compositions).
    SEGMENTED = "segmented"
    #: IC-optimal by exhaustive search against the max profile.
    EXHAUSTIVE = "exhaustive"
    #: Exhaustive search proved no IC-optimal schedule exists; the
    #: returned schedule is the greedy one (its exact loss is recorded
    #: in :attr:`SchedulingResult.bounds`).
    NONE_EXISTS = "none-exists"
    #: Budget ran out mid-search; the returned schedule carries sound
    #: lower/upper bounds on its eligibility loss.
    ANYTIME = "anytime"
    #: Greedy heuristic, no optimality claim.
    HEURISTIC = "heuristic"

    @property
    def kind(self) -> str:
        """The coarse certificate kind every result/metric is stamped
        with: ``"exact"`` (exhaustively settled — optimal found or
        proven non-existent), ``"composed"`` (Theorem 2.1 assembly),
        ``"anytime"`` (bounded), or ``"heuristic"`` (no claim)."""
        return _KINDS[self]


_KINDS = {
    Certificate.COMPOSITION: "composed",
    Certificate.SEGMENTED: "composed",
    Certificate.EXHAUSTIVE: "exact",
    Certificate.NONE_EXISTS: "exact",
    Certificate.ANYTIME: "anytime",
    Certificate.HEURISTIC: "heuristic",
}


@dataclass
class SchedulingResult:
    """A schedule together with its optimality certificate."""

    schedule: Schedule
    certificate: Certificate
    #: strategy that produced the result (``"auto"``,
    #: ``"compositional"``, ``"exhaustive"``, ``"anytime"``,
    #: ``"heuristic"``)
    strategy: str = "auto"
    #: certified ``(lower, upper)`` bounds on the schedule's
    #: eligibility loss ``max_t (M(t) - E(t))``; ``(0, 0)`` for every
    #: certified IC-optimal schedule, a genuine interval on the
    #: anytime path, ``None`` when nothing was measured (heuristic)
    bounds: tuple[int, int] | None = None
    #: per-block certificate provenance of a composed schedule (see
    #: :class:`~repro.core.certify.BlockProvenance`); empty for
    #: monolithic certifications
    provenance: tuple = ()

    @property
    def kind(self) -> str:
        """Coarse certificate kind (see :attr:`Certificate.kind`)."""
        return self.certificate.kind

    @property
    def ic_optimal(self) -> bool:
        """True when the schedule is certified IC-optimal."""
        if self.certificate in (
            Certificate.COMPOSITION,
            Certificate.SEGMENTED,
            Certificate.EXHAUSTIVE,
        ):
            return True
        # an anytime interval that closed at zero loss is a proof too
        return self.certificate is Certificate.ANYTIME and \
            self.bounds == (0, 0)


def greedy_schedule(dag: ComputationDag, name: str = "greedy") -> Schedule:
    """A deterministic greedy schedule: at each step execute the
    eligible node that renders the most new nodes ELIGIBLE, breaking
    ties by larger out-degree, then by insertion order.

    Runs nonsinks first (sinks can never help), so its profile weakly
    dominates naive orders; it carries no optimality certificate.
    """
    index = {v: i for i, v in enumerate(dag.nodes)}
    state = ExecutionState(dag)
    order: list[Node] = []
    remaining_nonsinks = sum(1 for v in dag.nodes if not dag.is_sink(v))
    while remaining_nonsinks:
        best: Node | None = None
        best_key: tuple[int, int, int] | None = None
        for v in state.eligible:
            if dag.is_sink(v):
                continue
            newly = sum(
                1
                for c in dag.children(v)
                if all(p == v or state.is_executed(p) for p in dag.parents(c))
            )
            key = (-newly, -dag.outdegree(v), index[v])
            if best_key is None or key < best_key:
                best_key = key
                best = v
        assert best is not None, "acyclic dag always has an eligible nonsink"
        state.execute(best)
        order.append(best)
        remaining_nonsinks -= 1
    order.extend(v for v in dag.nodes if dag.is_sink(v))
    return Schedule(dag, order, name=name)


def schedule_dag(
    target: ComputationDag | CompositionChain,
    *args,
    strategy: str = "auto",
    budget: int | None = None,
    exhaustive_limit: int = 24,
    state_budget: int = 500_000,
    parallel: bool = False,
    workers: int | None = None,
    cache: ProfileCache | bool = True,
    library=True,
) -> SchedulingResult:
    """Schedule ``target`` with the strongest available certificate.

    The stable entry point for this operation is
    :func:`repro.api.schedule`; ``schedule_dag`` remains supported,
    but its tuning options are keyword-only — the historical
    positional forms ``schedule_dag(dag, limit)`` and
    ``schedule_dag(dag, limit, budget)`` still work and emit a
    :class:`DeprecationWarning` (see ``docs/API_MIGRATION.md``).

    Parameters
    ----------
    target:
        Either a :class:`CompositionChain` (preferred — carries its own
        decomposition certificate) or a bare :class:`ComputationDag`.
    strategy:
        Certification strategy (``docs/CERTIFICATION.md``): ``"auto"``
        (decomposition first, then exhaustive, then anytime/heuristic —
        the default), ``"compositional"`` (decomposition only),
        ``"exhaustive"``, ``"anytime"``, or ``"heuristic"``.
    budget:
        Anytime state budget: when certification cannot finish within
        it, the result is the best schedule found plus certified
        eligibility-loss bounds (certificate ``"anytime"``) instead of
        an unlabeled heuristic.  ``None`` (default) disables the
        anytime fallback of ``"auto"``.
    exhaustive_limit:
        Maximum number of nonsinks for which exhaustive search is
        attempted on undecomposable dags.
    state_budget:
        Ideal-state cap for the exhaustive search; if exceeded the
        strategy falls back (anytime under a ``budget``, else greedy).
    parallel:
        Fan the exhaustive ceiling computation out over a process pool
        (see :func:`~repro.core.optimality.max_eligibility_profile`).
        Never changes the result — only how fast it arrives.
    workers:
        Pool size for ``parallel=True``; defaults to ``os.cpu_count()``.
    cache:
        ``True`` (default) memoizes exhaustive results in the
        process-wide :func:`~repro.core.profile_cache
        .global_profile_cache`; pass a :class:`ProfileCache` to use a
        private one, or ``False`` to search from scratch.
    library:
        ``True`` (default) certifies composition blocks through the
        process-wide :func:`~repro.core.certify.global_block_library`;
        pass a :class:`~repro.core.certify.BlockCertificateLibrary`
        (possibly disk-persisted) to use a private one, or ``False``
        to certify blocks from scratch.

    Every request increments ``scheduler_requests_total`` (labeled by
    the certificate granted) in the process-wide metrics registry and
    opens a ``scheduler.schedule_dag`` span when tracing is enabled.
    """
    if args:
        warnings.warn(
            "passing exhaustive_limit/state_budget to schedule_dag "
            "positionally is deprecated; pass them as keywords (or "
            "use repro.api.schedule) — see docs/API_MIGRATION.md",
            DeprecationWarning,
            stacklevel=2,
        )
        if len(args) > 2:
            raise TypeError(
                f"schedule_dag takes at most 3 positional arguments "
                f"({1 + len(args)} given)"
            )
        exhaustive_limit = args[0]
        if len(args) == 2:
            state_budget = args[1]
    from .certify import certify

    name = target.dag.name if isinstance(target, CompositionChain) \
        else target.name
    with span("scheduler.schedule_dag", dag=name) as sp:
        result = certify(
            target,
            strategy=strategy,
            budget=budget,
            exhaustive_limit=exhaustive_limit,
            state_budget=state_budget,
            parallel=parallel,
            workers=workers,
            cache=cache,
            library=library,
        )
        sp.set(certificate=result.certificate.value, kind=result.kind)
    global_registry().counter(
        "scheduler_requests_total",
        "schedule_dag requests by certificate granted", ("certificate",),
    ).labels(result.certificate.value).inc()
    return result
