"""Dag width: the structural ceiling on eligibility.

The ELIGIBLE set at any moment is an antichain of the precedence order
(two eligible nodes are never comparable: an eligible node's ancestors
are all executed).  Hence no schedule — IC-optimal or otherwise — can
ever have more than ``width(G)`` eligible nodes, where the *width* is
the maximum antichain size.  By Dilworth's theorem the width equals the
minimum number of chains covering the dag, computed here via minimum
path cover on the transitive closure: ``width = |N| - |max matching|``
in the split bipartite graph.

The matching is our own Hopcroft–Karp (no networkx in the
implementation path, per the project's from-scratch rule); the tests
cross-check against independent antichain enumeration on small dags
and against the eligibility ceilings of the paper families (the
out-mesh and prefix dags *attain* their width; others stay below).
"""

from __future__ import annotations

from collections import deque

from .dag import ComputationDag, Node
from .optimality import max_eligibility_profile

__all__ = ["hopcroft_karp", "dag_width", "max_antichain", "width_attained"]

INF = float("inf")


def hopcroft_karp(
    left: list[Node], adjacency: dict[Node, list[Node]]
) -> dict[Node, Node]:
    """Maximum bipartite matching via Hopcroft-Karp.

    ``adjacency`` maps each left vertex to its right neighbours.
    Returns the matching as a left -> right map.
    """
    match_l: dict[Node, Node] = {}
    match_r: dict[Node, Node] = {}
    dist: dict[Node, float] = {}

    def bfs() -> bool:
        queue: deque[Node] = deque()
        for u in left:
            if u not in match_l:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INF
        reachable_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency.get(u, ()):
                w = match_r.get(v)
                if w is None:
                    reachable_free = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return reachable_free

    def dfs(u: Node) -> bool:
        for v in adjacency.get(u, ()):
            w = match_r.get(v)
            if w is None or (dist[w] == dist[u] + 1 and dfs(w)):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = INF
        return False

    while bfs():
        for u in left:
            if u not in match_l:
                dfs(u)
    return match_l


def _closure_adjacency(dag: ComputationDag) -> dict[Node, list[Node]]:
    """Transitive-closure successor lists (reverse-topological DP)."""
    succ: dict[Node, set[Node]] = {}
    for v in reversed(dag.topological_order()):
        acc: set[Node] = set()
        for c in dag.children(v):
            acc.add(c)
            acc |= succ[c]
        succ[v] = acc
    return {v: sorted(s, key=repr) for v, s in succ.items()}


def dag_width(dag: ComputationDag) -> int:
    """The maximum antichain size of ``dag`` (Dilworth via min path
    cover on the transitive closure)."""
    if len(dag) == 0:
        return 0
    dag.validate()
    adjacency = _closure_adjacency(dag)
    matching = hopcroft_karp(dag.nodes, adjacency)
    return len(dag) - len(matching)


def max_antichain(dag: ComputationDag) -> list[Node]:
    """One maximum antichain, extracted from the König vertex cover of
    the closure matching (the uncovered vertices form the antichain)."""
    if len(dag) == 0:
        return []
    adjacency = _closure_adjacency(dag)
    match_l = hopcroft_karp(dag.nodes, adjacency)
    match_r = {v: u for u, v in match_l.items()}
    # König: alternating reachability from unmatched left vertices
    visited_l: set[Node] = set()
    visited_r: set[Node] = set()
    queue = deque(u for u in dag.nodes if u not in match_l)
    visited_l.update(queue)
    while queue:
        u = queue.popleft()
        for v in adjacency.get(u, ()):
            if v in visited_r:
                continue
            visited_r.add(v)
            w = match_r.get(v)
            if w is not None and w not in visited_l:
                visited_l.add(w)
                queue.append(w)
    # minimum vertex cover = (L - visited_l) ∪ (R ∩ visited_r); a
    # vertex is "covered" if its left copy is in the cover or its right
    # copy is; uncovered vertices form a maximum antichain.
    cover = {u for u in dag.nodes if u not in visited_l} | visited_r
    antichain = [v for v in dag.nodes if v not in cover]
    return antichain


def width_attained(dag: ComputationDag, **kwargs) -> bool:
    """Check that ``max_t M(t) == width(G)`` on ``dag``.

    This is in fact a small theorem, so the function always returns
    True and serves as a cross-check between the two engines: for a
    maximum antichain ``A``, the union of its members' ancestors is a
    valid execution ideal disjoint from ``A`` (an ancestor of an
    antichain member cannot itself lie in ``A``), after which every
    member of ``A`` is simultaneously ELIGIBLE — so the eligibility
    ceiling reaches the width, and it can never exceed it because
    eligible sets are antichains.  (Empirically confirmed over
    thousands of random dags; asserted in the tests.)  Uses the
    exhaustive ceiling, so small dags only.
    """
    ceiling = max_eligibility_profile(dag, **kwargs)
    return max(ceiling) == dag_width(dag)
