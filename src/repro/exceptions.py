"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking unrelated bugs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DagStructureError",
    "CycleError",
    "ScheduleError",
    "CompositionError",
    "PriorityError",
    "OptimalityError",
    "ClusteringError",
    "SimulationError",
    "FaultPlanError",
    "MachineSpecError",
    "ServerPolicyError",
    "ComputeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DagStructureError(ReproError):
    """A dag operation received structurally invalid input.

    Examples: adding an arc whose endpoint is not a node, referencing a
    node that does not exist, or building a dag from inconsistent data.
    """


class CycleError(DagStructureError):
    """An operation would create (or detected) a directed cycle.

    Computation-dags must be acyclic; a cycle means no valid execution
    order exists.
    """


class ScheduleError(ReproError):
    """A schedule is invalid for its dag.

    Raised when a schedule repeats or omits nodes, or executes a node
    before all of its parents.
    """


class CompositionError(ReproError):
    """A dag composition request is malformed.

    Examples: mismatched sink/source set sizes, merging nodes that are
    not sinks/sources of the respective operands, or requesting a
    Theorem 2.1 schedule for a composition whose priority chain fails.
    """


class PriorityError(ReproError):
    """A priority (▷) query received invalid input.

    Raised for example when a dag involved in the query does not admit
    an IC-optimal schedule, so eq. (2.1) is undefined for it.
    """


class OptimalityError(ReproError):
    """An optimality computation cannot be carried out.

    Raised for instance when exhaustive search is requested on a dag
    too large for the configured state budget.
    """


class ClusteringError(ReproError):
    """A task-clustering (granularity) request is invalid.

    Examples: cluster maps that do not cover the dag, clusters that
    would make the quotient graph cyclic, or coarsening factors that do
    not divide the structure.
    """


class SimulationError(ReproError):
    """The IC server/client simulation received invalid configuration."""


class FaultPlanError(SimulationError):
    """A fault-injection plan is malformed.

    Examples: an unknown fault kind, a negative injection time, a stall
    without a positive duration, or a corruption rate outside [0, 1).
    """


class ServerPolicyError(SimulationError):
    """A fault-tolerance server policy is malformed.

    Examples: a loss-detection timeout factor below 1 (the server would
    write off tasks before they can nominally finish), a non-finite
    timeout (permanently lost tasks could never be detected, breaking
    the completion guarantee), or a replication degree below 1.
    """


class MachineSpecError(SimulationError):
    """A machine-model spec is malformed.

    Examples: an unknown machine kind, a parameter key the kind does
    not accept, a memory cap below one slot (no task could ever be
    placed), or a heterogeneity spread outside [0, 1).
    """


class ComputeError(ReproError):
    """A value-level dag execution failed.

    Raised when task semantics are inconsistent with the dag structure
    (e.g. a node function receives the wrong number of inputs).
    """
