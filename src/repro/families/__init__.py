"""The paper's dag families: trees and diamonds (Section 3), meshes
(Section 4), butterfly networks (Section 5), parallel-prefix
(Section 6.1), DLT dags (Section 6.2.1), graph-paths (Section 6.2.2),
and the matrix-multiply dag (Section 7)."""

from . import (
    butterfly_net,
    diamond,
    dlt,
    matmul_dag,
    mesh,
    paths,
    prefix,
    trees,
)

__all__ = [
    "butterfly_net",
    "diamond",
    "dlt",
    "matmul_dag",
    "mesh",
    "paths",
    "prefix",
    "trees",
]
