"""Butterfly-structured dags (Section 5, Figs. 8–10).

The *d-dimensional butterfly network* ``B_d`` has ``d + 1`` levels of
``2^d`` nodes; node ``(level, r)`` feeds ``(level+1, r)`` and
``(level+1, r XOR 2^level)``.  ``B_1`` is the butterfly building block
``B`` itself, and ``B_d`` is an iterated composition of copies of ``B``
(Fig. 10) — one copy per pair ``{r, r XOR 2^level}`` per level
transition.  Since ``B ▷ B``, every such composition is ▷-linear and
admits an IC-optimal schedule; per [23] a schedule is IC-optimal *iff*
it executes the two sources of each copy of ``B`` consecutively.

:func:`comparator_network_chain` generalizes the construction to any
multi-stage network of 2-input/2-output blocks over ``n`` wires — this
covers the comparator sorting networks of Section 5.2 (each stage is a
perfect or partial matching of the wires), including the bitonic
sorter of :func:`bitonic_stages`.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import DagStructureError
from ..core.composition import CompositionChain
from ..core.dag import ComputationDag, Node
from ..core.schedule import Schedule
from ..blocks.butterfly import (
    bsnk,
    bsrc,
    butterfly_block,
    butterfly_block_schedule,
)

__all__ = [
    "bf_node",
    "butterfly_dag",
    "butterfly_chain",
    "comparator_network_chain",
    "bitonic_stages",
    "odd_even_merge_stages",
    "paired_schedule_orders",
]


def bf_node(level: int, row: int) -> Node:
    """Label of the butterfly-network node at ``(level, row)``."""
    return (level, row)


def butterfly_dag(d: int) -> ComputationDag:
    """The d-dimensional butterfly network ``B_d`` as a bare dag."""
    if d < 1:
        raise DagStructureError(f"butterfly dimension must be >= 1, got {d}")
    g = ComputationDag(name=f"B_{d}")
    n = 1 << d
    for lv in range(d):
        bit = 1 << lv
        for r in range(n):
            g.add_arc(bf_node(lv, r), bf_node(lv + 1, r))
            g.add_arc(bf_node(lv, r), bf_node(lv + 1, r ^ bit))
    return g


def comparator_network_chain(
    n_wires: int,
    stages: Sequence[Sequence[tuple[int, int]]],
    name: str = "network",
) -> CompositionChain:
    """A multi-stage network of butterfly blocks over ``n_wires`` wires.

    ``stages[s]`` lists the wire pairs ``(i, j)`` (``i != j``) coupled
    by a 2-input block at stage ``s``; each wire may appear in at most
    one pair per stage.  Wires not mentioned in a stage pass through
    *implicitly* — the resulting dag has a node per (level, wire) only
    where a block touches the wire, and a wire's value node is simply
    reused by the next block that reads it.

    Blocks are attached level by level (same-level blocks via sum steps
    when disjoint from everything built so far).  Node labels are
    ``(level, wire)`` with ``level = s + 1`` for outputs of stage ``s``
    and ``(0, wire)`` for primal inputs.
    """
    if n_wires < 2:
        raise DagStructureError("a network needs at least 2 wires")
    # current producer label per wire
    current: dict[int, Node] = {}
    chain: CompositionChain | None = None
    for s, stage in enumerate(stages):
        used: set[int] = set()
        for i, j in stage:
            if i == j or not (0 <= i < n_wires and 0 <= j < n_wires):
                raise DagStructureError(f"bad wire pair ({i}, {j})")
            if i in used or j in used:
                raise DagStructureError(
                    f"wire used twice in stage {s}: ({i}, {j})"
                )
            used.update((i, j))
            block = butterfly_block()
            sched = butterfly_block_schedule(block)
            merge: list[tuple[Node, Node]] = []
            labels: dict[Node, Node] = {
                bsnk(0): (s + 1, i),
                bsnk(1): (s + 1, j),
            }
            for src, wire in ((bsrc(0), i), (bsrc(1), j)):
                if wire in current:
                    merge.append((current[wire], src))
                else:
                    labels[src] = (0, wire)
            if chain is None:
                chain = CompositionChain(
                    block, sched, name=name, labels=labels
                )
            else:
                chain.compose_with(
                    block, sched, merge_pairs=merge, labels=labels
                )
            current[i] = (s + 1, i)
            current[j] = (s + 1, j)
    if chain is None:
        raise DagStructureError("network has no blocks")
    return chain


def butterfly_chain(d: int) -> CompositionChain:
    """``B_d`` as the iterated ▷-linear composition of butterfly
    blocks of Fig. 10 (node labels match :func:`butterfly_dag`)."""
    if d < 1:
        raise DagStructureError(f"butterfly dimension must be >= 1, got {d}")
    n = 1 << d
    stages = [
        [(r, r | (1 << lv)) for r in range(n) if not r & (1 << lv)]
        for lv in range(d)
    ]
    return comparator_network_chain(n, stages, name=f"B_{d}")


def bitonic_stages(n_wires: int) -> list[list[tuple[int, int]]]:
    """The comparator stages of Batcher's bitonic sorting network on
    ``n_wires = 2^k`` wires.

    Phase ``p = 1..k`` contains sub-stages with comparators joining
    wires that differ in bit ``j`` for ``j = p-1 .. 0``; the sort
    direction per comparator is a property of the *transformation*
    (see :mod:`repro.compute.sorting`), not of the dag structure
    returned here.
    """
    k = n_wires.bit_length() - 1
    if 1 << k != n_wires or k < 1:
        raise DagStructureError(
            f"bitonic network needs a power-of-two wire count, got {n_wires}"
        )
    stages: list[list[tuple[int, int]]] = []
    for p in range(1, k + 1):
        for j in range(p - 1, -1, -1):
            bit = 1 << j
            stages.append(
                [(r, r | bit) for r in range(n_wires) if not r & bit]
            )
    return stages


def odd_even_merge_stages(n_wires: int) -> list[list[tuple[int, int]]]:
    """Comparator stages of Batcher's odd-even merge sort on
    ``n_wires = 2^k`` wires — the second classic comparator network of
    §5.2's family (all ascending comparators, unlike the bitonic
    network's direction-alternating ones).

    Recursive structure: sort both halves, then odd-even merge; here
    flattened into stages of disjoint pairs so the network composes
    from butterfly blocks like any other.
    """
    k = n_wires.bit_length() - 1
    if 1 << k != n_wires or k < 1:
        raise DagStructureError(
            f"odd-even merge sort needs a power-of-two wire count, got {n_wires}"
        )
    stages: list[list[tuple[int, int]]] = []
    # Knuth's iterative formulation: each (p, k) pass touches every
    # wire at most once, so it is one network stage.
    p = 1
    while p < n_wires:
        k = p
        while k >= 1:
            stage: list[tuple[int, int]] = []
            for j in range(k % p, n_wires - k, 2 * k):
                for i in range(min(k, n_wires - j - k)):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        stage.append((i + j, i + j + k))
            if stage:
                stages.append(stage)
            k //= 2
        p *= 2
    return stages


def paired_schedule_orders(schedule: Schedule, chain: CompositionChain) -> bool:
    """True iff ``schedule`` executes the two sources of every butterfly
    block copy in ``chain`` in consecutive steps — the [23]
    characterization of IC-optimality for iterated compositions of B.

    Only block *nonsink* pairs are constrained (the final level's sinks
    are free).
    """
    position = {v: i for i, v in enumerate(schedule.order)}
    dag = schedule.dag
    for rec in chain.blocks:
        pair = [rec.node_map[bsrc(0)], rec.node_map[bsrc(1)]]
        if any(dag.is_sink(v) for v in pair):
            continue
        if abs(position[pair[0]] - position[pair[1]]) != 1:
            return False
    return True
