"""Diamond dags and alternating expansion-reduction compositions
(Section 3, Figs. 2–4, Table 1).

A *diamond dag* composes an out-tree T (the expansive phase) with an
in-tree T' (the reductive phase) by merging sinks of T with sources of
T' — Fig. 2.  Since ``V ▷ V``, ``V ▷ Λ`` and ``Λ ▷ Λ``, every diamond
is a ▷-linear composition of type ``V ⇑ ··· ⇑ V ⇑ Λ ⇑ ··· ⇑ Λ`` and
admits the Theorem 2.1 schedule: run the out-tree IC-optimally, then
the in-tree IC-optimally.

The broader family of Fig. 4 / Table 1 alternates out-trees and
in-trees; :class:`AlternatingBuilder` assembles any of the three
composition types in the table (and Fig. 4's unmatched-leaf-count
variants, since merges may cover only a subset of available leaves).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..exceptions import CompositionError, DagStructureError
from ..core.composition import CompositionChain
from ..core.dag import Node
from .trees import (
    attach_in_tree,
    attach_out_tree,
    complete_tree_children,
    validate_tree_spec,
)

__all__ = [
    "diamond_chain",
    "complete_diamond",
    "AlternatingBuilder",
    "table1_row1",
    "table1_row2",
    "table1_row3",
]


def _tree_leaves(
    children: Mapping[Node, Sequence[Node]], root: Node
) -> list[Node]:
    """Leaves of a tree spec, left to right."""
    internal = set(validate_tree_spec(children, root))
    out: list[Node] = []

    def walk(v: Node) -> None:
        kids = children.get(v, ())
        if v not in internal:
            out.append(v)
            return
        for c in kids:
            walk(c)

    walk(root)
    return out


def diamond_chain(
    out_children: Mapping[Node, Sequence[Node]],
    out_root: Node,
    in_children: Mapping[Node, Sequence[Node]] | None = None,
    in_root: Node | None = None,
    name: str = "diamond",
) -> CompositionChain:
    """Compose an out-tree with an in-tree into a diamond dag (Fig. 2).

    The out-tree's leaves are merged, left to right, with the
    in-tree's leaves.  When ``in_children`` is omitted the in-tree is
    the dual of the out-tree (the Fig. 3 simplification): each tree
    node ``v`` reappears as ``("acc", v)``.

    The leaf counts must match exactly; for partial merges use
    :class:`AlternatingBuilder`, which permits them.
    """
    out_leaves = _tree_leaves(out_children, out_root)
    if in_children is None:
        in_children = {
            ("acc", v): [("acc", c) for c in kids]
            for v, kids in out_children.items()
        }
        in_root = ("acc", out_root)
        in_leaves = [("acc", v) for v in out_leaves]
    else:
        if in_root is None:
            raise DagStructureError("in_root is required with in_children")
        in_leaves = _tree_leaves(in_children, in_root)
    if len(in_leaves) != len(out_leaves):
        raise CompositionError(
            f"diamond requires matching leaf counts; out-tree has "
            f"{len(out_leaves)}, in-tree has {len(in_leaves)}"
        )
    chain = attach_out_tree(None, out_children, out_root, name=name)
    leaf_merge = dict(zip(in_leaves, out_leaves))
    return attach_in_tree(chain, in_children, in_root, leaf_merge, name=name)


def complete_diamond(depth: int, arity: int = 2) -> CompositionChain:
    """The regular diamond of Fig. 2: complete ``arity``-ary out-tree
    of the given depth composed with its dual in-tree."""
    children, root = complete_tree_children(depth, arity)
    return diamond_chain(
        children, root, name=f"D(d={depth},a={arity})"
    )


class AlternatingBuilder:
    """Assemble the alternating expansion-reduction compositions of
    Fig. 4 / Table 1.

    Phases are appended left to right (upstream to downstream):

    * :meth:`expand` appends an out-tree whose root merges with one
      pending sink (or starts a fresh source);
    * :meth:`reduce` appends an in-tree whose leaves merge with pending
      sinks (leaf counts need not match — extra out-tree leaves stay
      sinks, extra in-tree leaves become fresh sources, as in the
      rightmost dag of Fig. 4).

    The pending-sink pool is consumed oldest-first.  ``build()``
    returns the accumulated :class:`CompositionChain`; since each phase
    contributes only V blocks then Λ blocks, and
    ``V ▷ V ▷ Λ ▷ Λ`` plus the topological forcing argument of
    Section 3.1 apply, the result admits an IC-optimal schedule —
    verified in the tests for all three Table 1 types.
    """

    def __init__(self, name: str = "alternating") -> None:
        self.name = name
        self._chain: CompositionChain | None = None
        self._phase = 0

    def _tag(self, spec: Mapping[Node, Sequence[Node]], root: Node):
        """Namespace a phase's tree labels as ``(phase_index, label)``."""
        tag = self._phase
        self._phase += 1
        children = {
            (tag, v): [(tag, c) for c in kids] for v, kids in spec.items()
        }
        return children, (tag, root), tag

    def expand(
        self,
        children: Mapping[Node, Sequence[Node]],
        root: Node,
    ) -> "AlternatingBuilder":
        """Append an out-tree phase (``T^(out)``)."""
        tagged, troot, _ = self._tag(children, root)
        if self._chain is None:
            self._chain = attach_out_tree(None, tagged, troot, name=self.name)
        else:
            sinks = self._chain.dag.sinks
            merge = sinks[0] if sinks else None
            self._chain = attach_out_tree(
                self._chain, tagged, troot, root_merge=merge, name=self.name
            )
        return self

    def reduce(
        self,
        children: Mapping[Node, Sequence[Node]],
        root: Node,
    ) -> "AlternatingBuilder":
        """Append an in-tree phase (``T^(in)``)."""
        tagged, troot, _ = self._tag(children, root)
        if self._chain is None:
            self._chain = attach_in_tree(None, tagged, troot, name=self.name)
            return self
        leaves = _tree_leaves(tagged, troot)
        pending = self._chain.dag.sinks
        leaf_merge = dict(zip(leaves, pending))
        self._chain = attach_in_tree(
            self._chain, tagged, troot, leaf_merge, name=self.name
        )
        return self

    def build(self) -> CompositionChain:
        """The accumulated composition chain."""
        if self._chain is None:
            raise CompositionError("no phases were added")
        return self._chain


def table1_row1(n: int, depth: int = 2, arity: int = 2) -> CompositionChain:
    """Table 1 row 1: ``D_0 ⇑ D_1 ⇑ ··· ⇑ D_n`` — a chain of ``n + 1``
    regular diamonds, each of the given depth/arity."""
    children, root = complete_tree_children(depth, arity)
    b = AlternatingBuilder(name=f"D^{n + 1}")
    for _ in range(n + 1):
        b.expand(children, root)
        b.reduce(children, root)
    return b.build()


def table1_row2(n: int, depth: int = 2, arity: int = 2) -> CompositionChain:
    """Table 1 row 2: ``T_0^(in) ⇑ D_1 ⇑ ··· ⇑ D_n`` — a leading
    in-tree (whose sink feeds the first diamond's source)."""
    children, root = complete_tree_children(depth, arity)
    b = AlternatingBuilder(name=f"Tin⇑D^{n}")
    b.reduce(children, root)
    for _ in range(n):
        b.expand(children, root)
        b.reduce(children, root)
    return b.build()


def table1_row3(n: int, depth: int = 2, arity: int = 2) -> CompositionChain:
    """Table 1 row 3: ``D_1 ⇑ ··· ⇑ D_n ⇑ T_0^(out)`` — a trailing
    out-tree hanging off the last diamond's sink."""
    children, root = complete_tree_children(depth, arity)
    b = AlternatingBuilder(name=f"D^{n}⇑Tout")
    for _ in range(n):
        b.expand(children, root)
        b.reduce(children, root)
    b.expand(children, root)
    return b.build()
