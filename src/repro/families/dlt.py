"""Discrete Laplace Transform dags (Section 6.2.1, Figs. 13–15).

The n-dimensional DLT evaluates ``y_k(ω) = Σ_i x_i ω^{ik}``.  Both
algorithms in the paper accumulate the terms with an n-source binary
in-tree; they differ in how the powers ``ω^{ik}`` are generated:

* ``L_n`` (Fig. 13 left) generates ``⟨1, ω^k, ..., ω^{(n-1)k}⟩`` with
  an n-input parallel-prefix dag: ``L_n = P_n ⇑ T_n``.  Facts
  ``N_s ▷ N_t``, ``N_s ▷ Λ`` and ``Λ ▷ Λ`` make the whole chain
  ▷-linear, so Theorem 2.1 gives: run ``P_n`` IC-optimally, then
  ``T_n`` IC-optimally.
* ``L'_n`` (Fig. 15) generates the powers with a ternary out-tree
  built from the 3-prong Vee dag ``V₃`` (Fig. 14): each tree node
  covers a contiguous index range and splits it in (up to) three.
  The chain validates ``V₃ ▷ V₃ ▷ Λ ▷ Λ``, so ``L'_n`` is ▷-linear
  as well.

The *coarsened* ``L_8`` of Fig. 13 (right) — prefix output feeding a
shallower in-tree whose sources each absorb a pair of terms — is
produced by :func:`coarsened_dlt_chain`.
"""

from __future__ import annotations

from ..exceptions import DagStructureError
from ..core.composition import CompositionChain
from ..core.dag import Node
from .prefix import prefix_chain, prefix_levels, px_node
from .trees import attach_in_tree, attach_out_tree

__all__ = [
    "balanced_tree_children",
    "dlt_prefix_chain",
    "dlt_tree_chain",
    "coarsened_dlt_chain",
]


def balanced_tree_children(
    n_leaves: int, arity: int, tag: str = "t"
) -> tuple[dict[Node, list[Node]], Node, list[Node]]:
    """A balanced ``arity``-ary tree over leaves ``0..n_leaves-1``.

    Internal nodes are labeled ``(tag, lo, hi)`` for the index range
    they cover; leaves are plain integers.  Returns
    ``(children, root, leaves)``.  Ranges are split into ``arity``
    near-equal parts (empty parts dropped), so every internal node has
    between 2 and ``arity`` children — except that a 1-leaf tree is a
    single leaf, which is rejected (no internal nodes).
    """
    if n_leaves < 2:
        raise DagStructureError("balanced tree needs >= 2 leaves")
    children: dict[Node, list[Node]] = {}

    def build(lo: int, hi: int) -> Node:
        if hi - lo == 1:
            return lo
        node = (tag, lo, hi)
        width = hi - lo
        parts = min(arity, width)
        kids: list[Node] = []
        for p in range(parts):
            a = lo + (width * p) // parts
            b = lo + (width * (p + 1)) // parts
            if b > a:
                kids.append(build(a, b))
        children[node] = kids
        return node

    root = build(0, n_leaves)
    return children, root, list(range(n_leaves))


def dlt_prefix_chain(n: int, name: str | None = None) -> CompositionChain:
    """``L_n = P_n ⇑ T_n`` (Fig. 13, left).

    The prefix dag's level-``L`` outputs (columns ``0..n-1``) merge
    with the n sources of a balanced binary accumulation in-tree whose
    internal nodes are labeled ``("acc", lo, hi)``.
    """
    chain = prefix_chain(n)
    chain.name = name or f"L_{n}"
    top = prefix_levels(n)
    children, root, leaves = balanced_tree_children(n, 2, tag="acc")
    leaf_merge = {i: px_node(top, i) for i in leaves}
    return attach_in_tree(chain, children, root, leaf_merge, name=chain.name)


def dlt_tree_chain(n: int, name: str | None = None) -> CompositionChain:
    """``L'_n`` (Fig. 15): ternary power-generation out-tree (V₃
    blocks, Fig. 14) composed with a binary accumulation in-tree.

    The out-tree covers index range ``[0, n)`` with internal nodes
    ``("pow", lo, hi)`` and leaves ``("w", i)`` (the task that delivers
    ``ω^{ik}``); the in-tree's source *i* merges with leaf
    ``("w", i)``.
    """
    pow_children, pow_root, _ = balanced_tree_children(n, 3, tag="pow")
    # Rename integer leaves to ("w", i) so they cannot collide with the
    # in-tree's labels.
    pow_children = {
        v: [c if not isinstance(c, int) else ("w", c) for c in kids]
        for v, kids in pow_children.items()
    }
    chain = attach_out_tree(
        None, pow_children, pow_root, name=name or f"L'_{n}"
    )
    acc_children, acc_root, leaves = balanced_tree_children(n, 2, tag="acc")
    leaf_merge = {i: ("w", i) for i in leaves}
    return attach_in_tree(
        chain, acc_children, acc_root, leaf_merge, name=chain.name
    )


def coarsened_dlt_chain(
    n: int, group: int = 2, name: str | None = None
) -> CompositionChain:
    """The coarsened ``L_n`` of Fig. 13 (right): each in-tree source
    absorbs ``group`` consecutive prefix outputs, so the accumulation
    tree has ``n / group`` coarser sources.

    Concretely the in-tree is balanced binary over ``n // group``
    leaves, and leaf *g* is a ``Λ_group`` node merging prefix outputs
    ``g*group .. (g+1)*group - 1`` (for ``group == 2`` this is just the
    bottom in-tree level fused into its parents — same dag, coarser
    task reading).  Structurally we realize it as a balanced binary
    tree whose *leaf-level* nodes have ``group`` children each.
    """
    if group < 2 or n % group:
        raise DagStructureError(
            f"group must be >= 2 and divide n; got n={n}, group={group}"
        )
    chain = prefix_chain(n)
    chain.name = name or f"L_{n}/coarse{group}"
    top = prefix_levels(n)
    n_coarse = n // group
    if n_coarse == 1:
        # Single Λ_group absorbing every output.
        children: dict[Node, list[Node]] = {
            ("acc", 0, n): [("col", i) for i in range(n)]
        }
        root: Node = ("acc", 0, n)
    else:
        children, root, coarse_leaves = balanced_tree_children(
            n_coarse, 2, tag="acc"
        )
        # Replace each coarse leaf g by a Λ_group node over its member
        # columns (labels kept disjoint from the coarse-leaf integers).
        rename = {g: ("grp", g) for g in coarse_leaves}
        children = {
            p: [rename.get(k, k) for k in kids]
            for p, kids in children.items()
        }
        for g in coarse_leaves:
            children[("grp", g)] = [
                ("col", i) for i in range(g * group, (g + 1) * group)
            ]
    leaf_merge = {("col", i): px_node(top, i) for i in range(n)}
    return attach_in_tree(chain, children, root, leaf_merge, name=chain.name)
