"""The matrix-multiplication dag M (Section 7, Fig. 17).

Multiplying 2×2 (block) matrices

    ( A B )   ( E F )     ( AE+BG  AF+BH )
    ( C D ) x ( G H )  =  ( CE+DG  CF+DH )

yields a dag with 8 operand-load sources, 8 product tasks and 4 sum
tasks.  The products split into two bipartite cycle-dags ``C₄`` — one
over operands {A, E, C, F} producing AE, CE, CF, AF and one over
{B, G, D, H} producing BG, DG, DH, BH — composed with four Λ blocks
for the sums: ``M = C₄ ⇑ C₄ ⇑ Λ ⇑ Λ ⇑ Λ ⇑ Λ``.  With
``C₄ ▷ C₄ ▷ Λ ▷ Λ`` the chain is ▷-linear.

**On the §7 boxed schedule.**  The box says: "compute the eight
products in the order AE, CE, CF, AF, BG, DG, DH, BH, then the four
sums in any order".  Reproduction finding (see EXPERIMENTS.md, E-F17):
executing the *product tasks* in that verbatim order is **not**
IC-optimal under the paper's own quality model — pairing products by
their sums (AE, BG, CE, DG, ...) pointwise-dominates it, as Theorem 2.1
prescribes.  The stated order is, however, exactly the order in which
the products are *rendered ELIGIBLE* when the operand loads run in the
cycle orders A, E, C, F and B, G, D, H.  :func:`paper_schedule` returns
the Theorem 2.1-consistent schedule whose load phase renders products
eligible in the paper's stated order; :func:`verbatim_box_schedule`
returns the literal reading so the discrepancy can be measured.
(The paper's displayed product matrix also contains the typo
``CF + BH`` for the bottom-right entry; the dag uses the correct
``CF + DH``.)

Because identity (7.1) never commutes multiplications, it holds for
block matrices, giving the recursive n×n algorithm;
:func:`recursive_matmul_dag` expands the recursion to scalar
granularity (the value-level executor is
:mod:`repro.compute.matmul`).
"""

from __future__ import annotations

from ..exceptions import DagStructureError
from ..core.composition import CompositionChain
from ..core.dag import ComputationDag, Node
from ..core.schedule import Schedule
from ..blocks.cycle import csnk, csrc, cycle_dag, cycle_schedule
from ..blocks.vee_lambda import SINK, lambda_dag, lambda_schedule, source

__all__ = [
    "OPERANDS",
    "PRODUCTS",
    "SUMS",
    "LOAD_ORDER",
    "matmul_chain",
    "paper_schedule",
    "verbatim_box_schedule",
    "recursive_matmul_dag",
    "STRASSEN_PRODUCTS",
    "STRASSEN_OUTPUTS",
    "strassen_dag",
]

#: operand loads, in the cycle orders used by the two C₄ blocks.
OPERANDS = (("E", "C", "F", "A"), ("G", "D", "H", "B"))
#: product tasks as completed by the cycle orders above.
PRODUCTS = (("AE", "CE", "CF", "AF"), ("BG", "DG", "DH", "BH"))
#: sum tasks: result entry -> its two product parents.
SUMS = {
    "r00": ("AE", "BG"),
    "r10": ("CE", "DG"),
    "r11": ("CF", "DH"),
    "r01": ("AF", "BH"),
}


def matmul_chain() -> CompositionChain:
    """The 20-node dag M as the ▷-linear chain
    ``C₄ ⇑ C₄ ⇑ Λ ⇑ Λ ⇑ Λ ⇑ Λ``.

    Cycle block wiring: with sources in cycle order ``E, C, F, A``,
    sink *j* has parents ``src_j`` and ``src_{j-1 mod 4}``, so the
    sinks are exactly ``AE, CE, CF, AF`` (and symmetrically for the
    second block).
    """
    chain: CompositionChain | None = None
    for ops, prods in zip(OPERANDS, PRODUCTS):
        block = cycle_dag(4)
        sched = cycle_schedule(block)
        labels: dict[Node, Node] = {}
        for i, op in enumerate(ops):
            labels[csrc(i)] = op
        # sink j's parents are src_{j-1}, src_j: product of those operands
        for j, prod in enumerate(prods):
            labels[csnk(j)] = prod
        if chain is None:
            chain = CompositionChain(block, sched, name="M", labels=labels)
        else:
            chain.compose_with(block, sched, merge_pairs=[], labels=labels)
    assert chain is not None
    for entry, (p, q) in SUMS.items():
        block = lambda_dag(2)
        sched = lambda_schedule(block)
        chain.compose_with(
            block,
            sched,
            merge_pairs=[(p, source(0)), (q, source(1))],
            labels={SINK: entry},
        )
    return chain


#: load order that renders products ELIGIBLE in the §7 box's order.
LOAD_ORDER = ("A", "E", "C", "F", "B", "G", "D", "H")


def paper_schedule(dag: ComputationDag) -> Schedule:
    """The IC-optimal schedule consistent with the §7 box.

    Loads run in the cycle orders A, E, C, F and B, G, D, H — rendering
    the products ELIGIBLE in exactly the box's order AE, CE, CF, AF,
    BG, DG, DH, BH — then the products run paired by their sums
    (the Theorem 2.1 Λ-phase order), then the sums.
    """
    order: list[Node] = list(LOAD_ORDER)
    for p, q in SUMS.values():
        order.extend((p, q))
    order.extend(SUMS)
    return Schedule(dag, order, name="paper-§7")


def verbatim_box_schedule(dag: ComputationDag) -> Schedule:
    """The literal reading of the §7 box: loads, then the product
    *tasks executed* in the order AE, CE, CF, AF, BG, DG, DH, BH, then
    the sums.  Benchmarked in E-F17: its eligibility profile is
    pointwise dominated by :func:`paper_schedule`'s at steps 10-14 —
    i.e. the verbatim reading is not IC-optimal."""
    order: list[Node] = list(LOAD_ORDER)
    for prods in PRODUCTS:
        order.extend(prods)
    order.extend(SUMS)
    return Schedule(dag, order, name="§7-verbatim")


def recursive_matmul_dag(k: int) -> ComputationDag:
    """The full scalar-granularity dag of the recursive n×n algorithm
    (``n = 2^k``) of Section 7.1.

    Nodes:

    * ``("a", i, j)`` / ``("b", i, j)`` — operand-entry loads;
    * ``("mul", path, i, j)`` — the scalar product reached through the
      recursion path ``path`` (a string over the 8 quadrant-product
      symbols per level);
    * ``("add", depth, seq, i, j)`` — the entry-wise additions
      combining quadrant-product pairs at each recursion level.

    Node/arc counts: ``n³`` multiplications, ``n³ - n²`` additions,
    ``2n²`` loads.  For ``k = 0`` the dag is a single Λ-shaped product.
    """
    if k < 0:
        raise DagStructureError(f"k must be >= 0, got {k}")
    n = 1 << k
    dag = ComputationDag(name=f"MM(n={n})")
    a_handle = {}
    b_handle = {}
    for i in range(n):
        for j in range(n):
            a_handle[(i, j)] = dag.add_node(("a", i, j))
            b_handle[(i, j)] = dag.add_node(("b", i, j))

    add_seq = [0]

    def multiply(
        ah: dict, bh: dict, size: int, path: str
    ) -> dict:
        """Return handle: (i, j) -> node producing entry (i, j) of the
        product of the blocks described by ``ah`` and ``bh``."""
        if size == 1:
            node = ("mul", path, 0, 0)
            dag.add_arc(ah[(0, 0)], node)
            dag.add_arc(bh[(0, 0)], node)
            return {(0, 0): node}
        h = size // 2

        def quad(handle: dict, qi: int, qj: int) -> dict:
            return {
                (i, j): handle[(qi * h + i, qj * h + j)]
                for i in range(h)
                for j in range(h)
            }

        A, B = quad(ah, 0, 0), quad(ah, 0, 1)
        C, D = quad(ah, 1, 0), quad(ah, 1, 1)
        E, F = quad(bh, 0, 0), quad(bh, 0, 1)
        G, H = quad(bh, 1, 0), quad(bh, 1, 1)
        pairs = {
            (0, 0): (multiply(A, E, h, path + "1"), multiply(B, G, h, path + "2")),
            (0, 1): (multiply(A, F, h, path + "3"), multiply(B, H, h, path + "4")),
            (1, 0): (multiply(C, E, h, path + "5"), multiply(D, G, h, path + "6")),
            (1, 1): (multiply(C, F, h, path + "7"), multiply(D, H, h, path + "8")),
        }
        out: dict = {}
        depth = len(path)
        for (qi, qj), (p, q) in pairs.items():
            for i in range(h):
                for j in range(h):
                    node = ("add", depth, add_seq[0], i, j)
                    add_seq[0] += 1
                    dag.add_arc(p[(i, j)], node)
                    dag.add_arc(q[(i, j)], node)
                    out[(qi * h + i, qj * h + j)] = node
        return out

    multiply(a_handle, b_handle, n, "")
    return dag


#: Strassen's seven products over the quadrants of (7.1)'s operands:
#: name -> (left-combination, right-combination), each a tuple of
#: (letter, sign) addends.
STRASSEN_PRODUCTS = {
    "P1": ((("A", 1), ("D", 1)), (("E", 1), ("H", 1))),
    "P2": ((("C", 1), ("D", 1)), (("E", 1),)),
    "P3": ((("A", 1),), (("F", 1), ("H", -1))),
    "P4": ((("D", 1),), (("G", 1), ("E", -1))),
    "P5": ((("A", 1), ("B", 1)), (("H", 1),)),
    "P6": ((("C", 1), ("A", -1)), (("E", 1), ("F", 1))),
    "P7": ((("B", 1), ("D", -1)), (("G", 1), ("H", 1))),
}

#: result quadrants as signed sums of the seven products.
STRASSEN_OUTPUTS = {
    "r00": (("P1", 1), ("P4", 1), ("P5", -1), ("P7", 1)),
    "r01": (("P3", 1), ("P5", 1)),
    "r10": (("P2", 1), ("P4", 1)),
    "r11": (("P1", 1), ("P3", 1), ("P2", -1), ("P6", 1)),
}


def strassen_dag() -> ComputationDag:
    """One level of Strassen's algorithm as a computation-dag — the
    natural next step through the §7 "gateway to linear-algebraic
    computations": 8 operand loads, 10 operand-combination tasks, 7
    products, and 4 output-accumulation tasks (29 nodes vs. dag M's 20,
    but 7 multiplications instead of 8).

    Nodes: load letters ``A..H``; combination tasks ``("lin", P, side)``
    for products needing a sum/difference on that side; products
    ``P1..P7``; outputs ``r00, r01, r10, r11``.

    Unlike M, this dag is *not* a composition of the paper's catalogued
    blocks (the combination layer has irregular fan-out), so it is a
    test case for the exhaustive and best-effort schedulers rather than
    Theorem 2.1 — see ``tests/test_strassen.py`` for what is and is not
    achievable.
    """
    dag = ComputationDag(name="Strassen")
    for letter in "ABCDEFGH":
        dag.add_node(letter)
    for pname, (left, right) in STRASSEN_PRODUCTS.items():
        operand_nodes = []
        for side, combo in (("L", left), ("R", right)):
            if len(combo) == 1:
                operand_nodes.append(combo[0][0])
            else:
                lin = ("lin", pname, side)
                for letter, _sign in combo:
                    dag.add_arc(letter, lin)
                operand_nodes.append(lin)
        for node in operand_nodes:
            dag.add_arc(node, pname)
    for out, combo in STRASSEN_OUTPUTS.items():
        for pname, _sign in combo:
            dag.add_arc(pname, out)
    return dag
