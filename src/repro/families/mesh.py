"""Wavefront (mesh-like) dags (Section 4, Figs. 5–6).

The *out-mesh* of depth ``d`` is the 2-dimensional mesh truncated along
its diagonal: levels ``0..d`` where level ``k`` holds ``k + 1`` nodes,
and node ``m`` of level ``k`` feeds nodes ``m`` and ``m + 1`` of level
``k + 1``.  It models wavefront computations (finite elements, dynamic
programming, computer-vision arrays).  The *in-mesh* (a pyramid dag
[8]) is its dual.

Per Fig. 6, the out-mesh is a composition of W-dags with increasing
numbers of sources (``W_1 ⇑ W_2 ⇑ ··· ⇑ W_d``); since consecutive-
source execution is IC-optimal for each ``W_s`` and smaller W-dags
have ▷-priority over larger ones, the out-mesh is a ▷-linear
composition — its IC-optimal schedule sweeps anti-diagonals left to
right.  Dually, the in-mesh is ``M_d ⇑ M_{d-1} ⇑ ··· ⇑ M_1`` with
``M_t ▷ M_s`` for ``t >= s`` (Theorem 2.3 applied to the W-dag facts).

Node labels are ``(level, index)`` with ``0 <= index <= level``; in
matrix coordinates the node is row ``index``, column
``level - index``.
"""

from __future__ import annotations

from ..exceptions import DagStructureError
from ..core.composition import CompositionChain
from ..core.dag import ComputationDag, Node
from ..core.schedule import Schedule
from ..blocks.w_m import m_dag, m_schedule, w_dag, w_schedule, wsnk, wsrc

__all__ = [
    "mesh_node",
    "out_mesh_chain",
    "in_mesh_chain",
    "out_mesh_dag",
    "in_mesh_dag",
    "is_out_mesh",
    "diagonal_schedule",
    "mesh_levels",
]


def mesh_node(level: int, index: int) -> Node:
    """The label of mesh node ``index`` on anti-diagonal ``level``."""
    return (level, index)


def out_mesh_chain(depth: int) -> CompositionChain:
    """The depth-``d`` out-mesh as the ▷-linear chain
    ``W_1 ⇑ W_2 ⇑ ··· ⇑ W_d`` (Fig. 6, left).

    ``depth >= 1``; the result has ``(d+1)(d+2)/2`` nodes.
    """
    if depth < 1:
        raise DagStructureError(f"out-mesh depth must be >= 1, got {depth}")
    block = w_dag(1)
    labels = {
        wsrc(0): mesh_node(0, 0),
        wsnk(0): mesh_node(1, 0),
        wsnk(1): mesh_node(1, 1),
    }
    chain = CompositionChain(
        block, w_schedule(block), name=f"out-mesh(d={depth})", labels=labels
    )
    for k in range(2, depth + 1):
        block = w_dag(k)
        merge = [(mesh_node(k - 1, m), wsrc(m)) for m in range(k)]
        labels = {wsnk(j): mesh_node(k, j) for j in range(k + 1)}
        chain.compose_with(
            block, w_schedule(block), merge_pairs=merge, labels=labels
        )
    return chain


def in_mesh_chain(depth: int) -> CompositionChain:
    """The depth-``d`` in-mesh (pyramid) as the ▷-linear chain
    ``M_d ⇑ M_{d-1} ⇑ ··· ⇑ M_1`` (Fig. 6, right).

    Node ``(k, m)`` feeds ``(k-1, m-1)`` and ``(k-1, m)`` (where those
    exist); the apex ``(0, 0)`` is the unique sink.
    """
    if depth < 1:
        raise DagStructureError(f"in-mesh depth must be >= 1, got {depth}")
    block = m_dag(depth)
    labels: dict[Node, Node] = {
        wsrc(i): mesh_node(depth, i) for i in range(depth + 1)
    }
    labels.update({wsnk(j): mesh_node(depth - 1, j) for j in range(depth)})
    chain = CompositionChain(
        block, m_schedule(block), name=f"in-mesh(d={depth})", labels=labels
    )
    for k in range(depth - 1, 0, -1):
        block = m_dag(k)
        merge = [(mesh_node(k, i), wsrc(i)) for i in range(k + 1)]
        labels = {wsnk(j): mesh_node(k - 1, j) for j in range(k)}
        chain.compose_with(
            block, m_schedule(block), merge_pairs=merge, labels=labels
        )
    return chain


def out_mesh_dag(depth: int) -> ComputationDag:
    """The depth-``d`` out-mesh as a bare dag (no chain record)."""
    d = ComputationDag(name=f"out-mesh(d={depth})")
    d.add_node(mesh_node(0, 0))
    for k in range(depth):
        for m in range(k + 1):
            d.add_arc(mesh_node(k, m), mesh_node(k + 1, m))
            d.add_arc(mesh_node(k, m), mesh_node(k + 1, m + 1))
    return d


def in_mesh_dag(depth: int) -> ComputationDag:
    """The depth-``d`` in-mesh as a bare dag (dual of the out-mesh)."""
    return out_mesh_dag(depth).dual(name=f"in-mesh(d={depth})")


def mesh_levels(dag: ComputationDag) -> dict[int, list[Node]]:
    """Group a mesh dag's ``(level, index)`` labels by level."""
    out: dict[int, list[Node]] = {}
    for v in dag.nodes:
        out.setdefault(v[0], []).append(v)
    for lv in out:
        out[lv].sort(key=lambda v: v[1])
    return out


def is_out_mesh(dag: ComputationDag) -> bool:
    """Structural check that ``dag`` is exactly a depth-``d`` out-mesh
    with canonical ``(level, index)`` labels."""
    levels = {}
    for v in dag.nodes:
        if not (isinstance(v, tuple) and len(v) == 2):
            return False
        levels.setdefault(v[0], set()).add(v[1])
    depth = max(levels, default=-1)
    for k in range(depth + 1):
        if levels.get(k) != set(range(k + 1)):
            return False
    return dag.same_structure(out_mesh_dag(depth))


def diagonal_schedule(dag: ComputationDag, name: str = "by-diagonal") -> Schedule:
    """The IC-optimal out-mesh/in-mesh schedule: sweep levels in
    topological order, each anti-diagonal left to right.

    For the out-mesh this is exactly the Theorem 2.1 order of the
    ``W_1 ⇑ ··· ⇑ W_d`` chain; for the in-mesh, of the
    ``M_d ⇑ ··· ⇑ M_1`` chain.  Works on any dag labeled
    ``(level, index)`` whose arcs respect the level order (ascending or
    descending).
    """
    levels = mesh_levels(dag)
    keys = sorted(levels)
    # Orientation: out-mesh arcs go low -> high level, in-mesh high -> low.
    arcs = dag.arcs
    ascending = (not arcs) or arcs[0][1][0] > arcs[0][0][0]
    order: list[Node] = []
    for k in keys if ascending else reversed(keys):
        order.extend(levels[k])
    return Schedule(dag, order, name=name)
