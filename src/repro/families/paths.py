"""The graph-paths computation dag (Section 6.2.2, Fig. 16).

Given an N-node graph via its boolean adjacency matrix A, the
computation produces the matrix M whose (i, j) entry is the vector
``⟨β^(1)_{ij}, ..., β^(K)_{ij}⟩`` flagging, for each length
``k = 1..K``, whether a length-k path joins i and j.

Structure (Fig. 16): a K-input parallel-prefix dag over
``⟨A, A, ..., A⟩`` with * = boolean matrix product computes all logical
powers ``A^1..A^K``; an in-tree then accumulates the K power matrices
into the 2-d table of path vectors.  Structurally this is the same
``P_K ⇑ T_K`` shape as the DLT dag ``L_K`` — the tasks are just far
coarser (each node carries an N×N boolean matrix), which is exactly the
multi-granularity point of Section 6.1.

The value-level execution lives in :mod:`repro.compute.graph_paths`.
"""

from __future__ import annotations

from ..core.composition import CompositionChain
from .dlt import dlt_prefix_chain

__all__ = ["graph_paths_chain"]


def graph_paths_chain(k_powers: int) -> CompositionChain:
    """The Fig. 16 dag for accumulating ``k_powers`` logical powers:
    ``P_K ⇑ T_K`` with the prefix inputs all fed by copies of A."""
    return dlt_prefix_chain(k_powers, name=f"paths(K={k_powers})")
