"""Parallel-prefix (scan) dags (Section 6.1, Figs. 11–12).

The n-input parallel-prefix dag ``P_n`` implements, for an associative
operation ``*``, the log-depth algorithm

    for j = 0 .. floor(log2(n-1)):
        for i = 2^j .. n-1 in parallel:  x_i <- x_{i-2^j} * x_i

Nodes are ``(level, column)`` for ``level = 0..L`` (``L`` compute
levels plus the input level) and ``column = 0..n-1``; columns with
``column < 2^level`` hold pass-through (copy) tasks, exactly as drawn
in Fig. 11.

Per Fig. 12, each level transition ``j`` splits into ``2^j``
interleaved N-dags — one per residue class mod ``2^j`` — so ``P_n`` is
composite of type ``N ⇑ N ⇑ ···``; with ``N_s ▷ N_t`` for all ``s, t``
the chain is ▷-linear, and the paper's boxed claim holds: any schedule
executing the constituent N-dags in nonincreasing order of their
source counts is IC-optimal (our chain emits them level by level —
``N_n``, then two ``N_{n/2}``-sized classes, then four, ... — which is
nonincreasing).
"""

from __future__ import annotations

from ..exceptions import DagStructureError
from ..core.composition import CompositionChain
from ..core.dag import ComputationDag, Node
from ..blocks.n_dag import n_dag, n_schedule, nsnk, nsrc

__all__ = ["px_node", "prefix_levels", "prefix_dag", "prefix_chain", "prefix_ndag_sizes"]


def px_node(level: int, column: int) -> Node:
    """Label of the prefix-dag node at ``(level, column)``."""
    return (level, column)


def prefix_levels(n: int) -> int:
    """Number of compute levels of ``P_n``:
    ``floor(log2(n-1)) + 1`` (0 for ``n == 1``)."""
    if n < 1:
        raise DagStructureError(f"prefix width must be >= 1, got {n}")
    return (n - 1).bit_length()


def prefix_dag(n: int) -> ComputationDag:
    """The n-input parallel-prefix dag ``P_n`` as a bare dag."""
    levels = prefix_levels(n)
    if levels == 0:
        raise DagStructureError("P_1 has no arcs; need n >= 2")
    g = ComputationDag(name=f"P_{n}")
    for j in range(levels):
        step = 1 << j
        for i in range(n):
            g.add_arc(px_node(j, i), px_node(j + 1, i))
            if i >= step:
                g.add_arc(px_node(j, i - step), px_node(j + 1, i))
    return g


def prefix_ndag_sizes(n: int) -> list[int]:
    """Source counts of the constituent N-dags, in chain order.

    For ``n = 2^p`` this is ``[n, n/2, n/2, n/4, n/4, n/4, n/4, ...]``
    — e.g. ``P_8 = N_8 ⇑ N_4 ⇑ N_4 ⇑ N_2 ⇑ N_2 ⇑ N_2 ⇑ N_2`` exactly as
    in Section 6.2.1.
    """
    sizes: list[int] = []
    for j in range(prefix_levels(n)):
        step = 1 << j
        for r in range(step):
            cols = len(range(r, n, step))
            if cols:
                sizes.append(cols)
    return sizes


def prefix_chain(n: int) -> CompositionChain:
    """``P_n`` as the ▷-linear N-dag composition of Fig. 12.

    Level transition ``j`` contributes one N-dag per residue class
    ``r mod 2^j``: its sources are the level-``j`` nodes of columns
    ``r, r + 2^j, r + 2·2^j, ...`` (in increasing column order — the
    class's lowest column is the N-dag's *anchor*: its level-``j+1``
    node has no other parent) and its sinks the level-``j+1`` nodes of
    the same columns.  Node labels match :func:`prefix_dag`.
    """
    levels = prefix_levels(n)
    if levels == 0:
        raise DagStructureError("P_1 has no arcs; need n >= 2")
    chain: CompositionChain | None = None
    for j in range(levels):
        step = 1 << j
        for r in range(step):
            cols = list(range(r, n, step))
            block = n_dag(len(cols))
            sched = n_schedule(block)
            labels: dict[Node, Node] = {}
            merge: list[tuple[Node, Node]] = []
            for idx, c in enumerate(cols):
                src_label = px_node(j, c)
                if j == 0:
                    labels[nsrc(idx)] = src_label
                else:
                    merge.append((src_label, nsrc(idx)))
                labels[nsnk(idx)] = px_node(j + 1, c)
            if chain is None:
                chain = CompositionChain(
                    block, sched, name=f"P_{n}", labels=labels
                )
            else:
                chain.compose_with(
                    block, sched, merge_pairs=merge, labels=labels
                )
    assert chain is not None
    return chain
