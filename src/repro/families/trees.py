"""Out-trees and in-trees (Section 3.1).

An *out-tree* is an iterated composition of Vee dags — the skeleton of
an "expansive" computation (e.g. the divide phase of divide-and-
conquer).  An *in-tree* is its dual — the skeleton of a "reductive"
computation that accumulates results.

Trees are described by a ``children`` mapping (tree node -> ordered
list of tree children) plus the ``root``; internal nodes may have any
fixed or varying arity (footnote 7).  Builders return a
:class:`~repro.core.composition.CompositionChain` whose blocks are
``V_d`` (out-tree) or ``Λ_d`` (in-tree) copies — one per internal node
— so Theorem 2.1 applies directly:

* every *uniform-arity* out-tree is composite of type
  ``V_d ⇑ ... ⇑ V_d`` with ``V_d ▷ V_d``, hence ▷-linear; indeed every
  nonsink order of such a tree is IC-optimal (each execution adds
  ``d - 1`` eligible nodes no matter what);
* every in-tree is dual to an out-tree; for binary in-trees the
  IC-optimal schedules are exactly those executing the sources of each
  Λ copy consecutively ([23]; verified exhaustively in the tests).

A reproduction caveat (tests/test_trees.py): for *mixed-arity* trees
the order matters — ``V_3 ▷ V_2`` but not conversely — and some mixed
out-trees admit no IC-optimal schedule at all (maximizing E(t) at one
step can require executing a low-degree node whose high-degree
descendant another step needs).  ``schedule_dag`` reorders commuting
chain blocks to recover a Theorem 2.1 certificate whenever one exists.

The :func:`attach_out_tree` / :func:`attach_in_tree` primitives extend
an existing chain, which is how diamonds (Fig. 2) and the alternating
expansion-reduction compositions of Table 1 are assembled.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..exceptions import DagStructureError
from ..core.composition import CompositionChain
from ..core.dag import ComputationDag, Node
from ..core.schedule import Schedule
from ..blocks.vee_lambda import (
    ROOT,
    SINK,
    lambda_dag,
    lambda_schedule,
    leaf,
    source,
    vee_dag,
    vee_schedule,
)

__all__ = [
    "validate_tree_spec",
    "attach_out_tree",
    "attach_in_tree",
    "out_tree_chain",
    "in_tree_chain",
    "complete_tree_children",
    "complete_out_tree",
    "complete_in_tree",
    "is_out_tree",
    "is_in_tree",
    "out_tree_schedule",
    "in_tree_schedule",
]


def validate_tree_spec(
    children: Mapping[Node, Sequence[Node]], root: Node
) -> list[Node]:
    """Check that ``(children, root)`` describes a tree; return the
    internal nodes in BFS order (parents before children).

    Every node except the root must appear as a child of exactly one
    node; internal nodes may have any positive arity.
    """
    seen: set[Node] = {root}
    order: list[Node] = []
    frontier: list[Node] = [root]
    while frontier:
        nxt: list[Node] = []
        for v in frontier:
            kids = children.get(v, ())
            if kids:
                if len(set(kids)) != len(kids):
                    raise DagStructureError(
                        f"node {v!r} lists a repeated child"
                    )
                order.append(v)
            for c in kids:
                if c in seen:
                    raise DagStructureError(
                        f"node {c!r} has two parents (or is the root)"
                    )
                seen.add(c)
                nxt.append(c)
        frontier = nxt
    spec_internal = {v for v, kids in children.items() if kids}
    unreachable = spec_internal - set(order)
    if unreachable:
        raise DagStructureError(
            f"internal node(s) unreachable from root: "
            f"{sorted(map(repr, unreachable))}"
        )
    return order


def attach_out_tree(
    chain: CompositionChain | None,
    children: Mapping[Node, Sequence[Node]],
    root: Node,
    root_merge: Node | None = None,
    name: str = "out-tree",
) -> CompositionChain:
    """Append an out-tree (one ``V_d`` block per internal node, BFS
    order) to ``chain``; start a new chain when ``chain is None``.

    ``root_merge`` names the composite sink the tree root merges into
    (the "reductive computation feeds an expansive one" pattern of the
    leftmost dag in Fig. 4); when ``None`` the root becomes a fresh
    source (a sum step if the chain already exists).  Composite labels
    are the tree node labels.
    """
    internal = validate_tree_spec(children, root)
    if not internal:
        raise DagStructureError(
            "out-tree must have at least one internal node (the root)"
        )
    for v in internal:
        kids = list(children[v])
        block = vee_dag(len(kids))
        sched = vee_schedule(block)
        labels: dict[Node, Node] = {leaf(i): c for i, c in enumerate(kids)}
        if chain is None:
            labels[ROOT] = v
            chain = CompositionChain(block, sched, name=name, labels=labels)
        elif v == root and root_merge is not None:
            chain.compose_with(
                block, sched, merge_pairs=[(root_merge, ROOT)], labels=labels
            )
        elif v == root:
            labels[ROOT] = v
            chain.compose_with(block, sched, merge_pairs=[], labels=labels)
        else:
            chain.compose_with(
                block, sched, merge_pairs=[(v, ROOT)], labels=labels
            )
    return chain


def attach_in_tree(
    chain: CompositionChain | None,
    children: Mapping[Node, Sequence[Node]],
    root: Node,
    leaf_merge: Mapping[Node, Node] | None = None,
    name: str = "in-tree",
) -> CompositionChain:
    """Append an in-tree (arcs child -> parent; one ``Λ_d`` block per
    internal node, deepest-first) to ``chain``.

    ``leaf_merge`` maps tree-leaf labels to composite sinks they merge
    into — this is how a diamond joins its in-tree onto the out-tree's
    leaves.  Unmapped leaves become fresh sources.  Blocks over
    disjoint subtrees are joined by sum steps (empty merges), giving
    exactly the ``Λ ⇑ ··· ⇑ Λ`` composite type of Section 3.1.
    """
    internal = validate_tree_spec(children, root)
    if not internal:
        raise DagStructureError(
            "in-tree must have at least one internal node (the root)"
        )
    leaf_merge = dict(leaf_merge or {})
    internal_set = set(internal)
    # Reverse BFS: children's blocks are placed before their parent's,
    # so every internal feeder is already a composite sink when used.
    for v in reversed(internal):
        kids = list(children[v])
        block = lambda_dag(len(kids))
        sched = lambda_schedule(block)
        merge_pairs: list[tuple[Node, Node]] = []
        labels: dict[Node, Node] = {SINK: v}
        for i, c in enumerate(kids):
            if c in internal_set:
                merge_pairs.append((c, source(i)))
            elif c in leaf_merge:
                merge_pairs.append((leaf_merge[c], source(i)))
            else:
                labels[source(i)] = c
        if chain is None:
            if merge_pairs:
                raise DagStructureError(
                    "cannot merge into an empty chain; leaf_merge requires "
                    "an existing composite"
                )
            chain = CompositionChain(block, sched, name=name, labels=labels)
        else:
            chain.compose_with(
                block, sched, merge_pairs=merge_pairs, labels=labels
            )
    return chain


def out_tree_chain(
    children: Mapping[Node, Sequence[Node]],
    root: Node,
    name: str = "out-tree",
) -> CompositionChain:
    """An out-tree as a standalone ``V ⇑ ... ⇑ V`` composition chain."""
    return attach_out_tree(None, children, root, name=name)


def in_tree_chain(
    children: Mapping[Node, Sequence[Node]],
    root: Node,
    name: str = "in-tree",
) -> CompositionChain:
    """An in-tree as a standalone ``Λ ⇑ ... ⇑ Λ`` composition chain.

    The tree root is the unique sink; the leaves are the sources.
    """
    return attach_in_tree(None, children, root, name=name)


def complete_tree_children(
    depth: int, arity: int = 2
) -> tuple[dict[Node, list[Node]], Node]:
    """The ``children`` spec of the complete ``arity``-ary tree.

    Nodes are labeled ``(level, index)``; the root is ``(0, 0)`` and
    the leaves sit at ``level == depth``.
    """
    if depth < 0:
        raise DagStructureError(f"depth must be >= 0, got {depth}")
    if arity < 1:
        raise DagStructureError(f"arity must be >= 1, got {arity}")
    children: dict[Node, list[Node]] = {}
    for lv in range(depth):
        for i in range(arity**lv):
            children[(lv, i)] = [(lv + 1, arity * i + j) for j in range(arity)]
    return children, (0, 0)


def complete_out_tree(depth: int, arity: int = 2) -> CompositionChain:
    """The complete ``arity``-ary out-tree of the given depth
    (``depth >= 1``; a depth-0 tree has no arcs, hence no V blocks)."""
    if depth < 1:
        raise DagStructureError("complete out-tree needs depth >= 1")
    children, root = complete_tree_children(depth, arity)
    return out_tree_chain(children, root, name=f"T-out(d={depth},a={arity})")


def complete_in_tree(depth: int, arity: int = 2) -> CompositionChain:
    """The complete ``arity``-ary in-tree (accumulation tree) of the
    given depth; its ``arity**depth`` sources are the leaves."""
    if depth < 1:
        raise DagStructureError("complete in-tree needs depth >= 1")
    children, root = complete_tree_children(depth, arity)
    return in_tree_chain(children, root, name=f"T-in(d={depth},a={arity})")


def is_out_tree(dag: ComputationDag) -> bool:
    """True iff ``dag`` is a connected out-tree: one source, every
    other node with exactly one parent."""
    if len(dag) == 0 or not dag.is_acyclic() or not dag.is_connected():
        return False
    sources = dag.sources
    if len(sources) != 1:
        return False
    return all(dag.indegree(v) == 1 for v in dag.nodes if v != sources[0])


def is_in_tree(dag: ComputationDag) -> bool:
    """True iff ``dag`` is a connected in-tree (dual of an out-tree)."""
    return is_out_tree(dag.dual())


def out_tree_schedule(dag: ComputationDag, name: str = "by-degree") -> Schedule:
    """A canonical schedule for an out-tree: greedy highest-out-degree
    eligible node first (ties by insertion order), sinks last.

    For uniform-arity out-trees every nonsink order — this one included
    — is IC-optimal (Section 3.1).  For mixed arities the greedy order
    matches the ▷-respecting block order where one exists; certify via
    :func:`repro.core.schedule_dag` when it matters (see the module
    docstring caveat).
    """
    if not is_out_tree(dag):
        raise DagStructureError(f"dag {dag.name!r} is not an out-tree")
    index = {v: i for i, v in enumerate(dag.nodes)}
    order: list[Node] = []
    root = dag.sources[0]
    eligible = [root] if not dag.is_sink(root) else []
    while eligible:
        eligible.sort(key=lambda v: (-dag.outdegree(v), index[v]))
        v = eligible.pop(0)
        order.append(v)
        eligible.extend(c for c in dag.children(v) if not dag.is_sink(c))
    order.extend(v for v in dag.nodes if dag.is_sink(v))
    return Schedule(dag, order, name=name)


def in_tree_schedule(dag: ComputationDag, name: str = "paired") -> Schedule:
    """An IC-optimal schedule for an in-tree.

    Per [23] a schedule is IC-optimal for an in-tree iff it executes
    the sources of each Λ copy consecutively.  Construction: walk
    internal nodes of the in-tree deepest-first (reverse BFS from the
    root); for each, execute its not-yet-executed feeders as a
    consecutive group.  The root goes last.
    """
    if not is_in_tree(dag):
        raise DagStructureError(f"dag {dag.name!r} is not an in-tree")
    root = dag.sinks[0]
    bfs: list[Node] = [root]
    i = 0
    while i < len(bfs):
        bfs.extend(dag.parents(bfs[i]))
        i += 1
    internal = [v for v in bfs if dag.parents(v)]
    order: list[Node] = []
    placed: set[Node] = set()
    for v in reversed(internal):
        for u in dag.parents(v):
            if u not in placed:
                placed.add(u)
                order.append(u)
    for v in dag.nodes:  # remaining = the root (and nothing else)
        if v not in placed:
            order.append(v)
    return Schedule(dag, order, name=name)
