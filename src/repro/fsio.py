"""Crash-consistent filesystem primitives.

Every persistent artifact in the repository — the block-certificate
library, profile-cache spills, flight-recorder bundles, durability
snapshots — goes through :func:`atomic_write_json`, the one
write-temp → fsync → rename → fsync-directory sequence that survives
both a killed process and a power loss:

* the payload is written to a temp file *in the same directory* (so
  the final rename never crosses a filesystem boundary);
* the temp file is flushed and ``fsync``'d before the rename — a bare
  ``os.replace`` persists the *name* atomically but not necessarily
  the *bytes*, so rename-without-fsync can leave an empty or partial
  file under the final name after power loss;
* the containing directory is ``fsync``'d after the rename, so the
  new directory entry itself is durable.

Readers of these artifacts treat them as caches: a file that fails to
parse is discarded (and counted), never raised — correctness must
not depend on anything :mod:`repro.fsio` wrote.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_bytes", "atomic_write_json", "fsync_dir"]


def fsync_dir(path: str) -> None:
    """``fsync`` the directory ``path`` so a just-renamed entry in it
    is durable.  Best-effort: platforms/filesystems that refuse to
    open directories (or to fsync them) are tolerated silently."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, *,
                       fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (temp → rename).

    With ``fsync`` (the default) the temp file is fsync'd before the
    rename and the directory after it, making the write power-loss
    safe; ``fsync=False`` keeps the atomic-rename property only
    (enough against process kills, not against power loss).
    Raises ``OSError`` on failure; the destination is never left
    half-written.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(directory)


def atomic_write_json(path: str, payload, *, fsync: bool = True,
                      indent: int | None = None,
                      sort_keys: bool = True) -> None:
    """Serialize ``payload`` as JSON and write it atomically to
    ``path`` (see :func:`atomic_write_bytes` for the durability
    contract).  The encoding is canonical: sorted keys, UTF-8, one
    trailing newline."""
    body = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    atomic_write_bytes(path, (body + "\n").encode("utf-8"), fsync=fsync)
