"""Multi-granularity transforms: clustering fine-grained dags into
coarse tasks while preserving schedulable structure (the per-class
"rendering multi-granular" discussions of Sections 3-7)."""

from . import butterfly_coarsen, clustering, mesh_coarsen, tree_coarsen
from .clustering import ClusteringReport, clustering_report, quotient_dag

__all__ = [
    "ClusteringReport",
    "butterfly_coarsen",
    "clustering",
    "clustering_report",
    "mesh_coarsen",
    "quotient_dag",
    "tree_coarsen",
]
