"""Coarsening butterfly-structured computations (Section 5.1).

"Every (a+b)-dimensional butterfly network B_{a+b} is (isomorphic to) a
copy of B_a each of whose nodes is a copy of B_b" [1] — so task
granularity can be tuned while retaining butterfly-structured
dependencies.

Our clustering realizes the coarse view directly on the node set: the
first ``b`` level-transitions of ``B_{a+b}`` flip only the low ``b``
row bits, so levels ``0..b`` restricted to a fixed high-bit pattern
form a complete copy of ``B_b``; each such copy becomes the coarse
*input* supernode of its high-bit row.  Every later level
``b + s`` (``s >= 1``) flips bit ``b + s - 1``; grouping its ``2^b``
rows per high-bit pattern gives the remaining supernodes.  The
quotient is exactly ``B_a`` (verified structurally in the tests).
Because levels are shared between adjacent blocks in the classical
statement, the supernodes here are B_b copies at super-level 0 and
single-level row bundles afterwards — the clustering that makes the
quotient an exact ``B_a`` partition.
"""

from __future__ import annotations

from ..exceptions import ClusteringError
from ..core.dag import ComputationDag, Node
from ..families.butterfly_net import butterfly_dag
from .clustering import ClusteringReport, clustering_report, quotient_dag

__all__ = [
    "butterfly_cluster_map",
    "coarsened_butterfly",
    "butterfly_coarsening_accounting",
]


def butterfly_cluster_map(a: int, b: int) -> dict[Node, Node]:
    """Cluster ``B_{a+b}`` so the quotient is ``B_a``.

    Node ``(lv, r)`` maps to super-level ``max(0, lv - b)`` and
    super-row ``r >> b``.
    """
    if a < 1 or b < 1:
        raise ClusteringError(f"need a, b >= 1, got a={a}, b={b}")
    d = a + b
    n = 1 << d
    mapping: dict[Node, Node] = {}
    for lv in range(d + 1):
        for r in range(n):
            mapping[(lv, r)] = (max(0, lv - b), r >> b)
    return mapping


def coarsened_butterfly(a: int, b: int) -> ComputationDag:
    """The quotient of ``B_{a+b}`` under :func:`butterfly_cluster_map`
    — structurally identical to ``B_a`` (same node labels and arcs as
    :func:`~repro.families.butterfly_net.butterfly_dag`)."""
    return quotient_dag(butterfly_dag(a + b), butterfly_cluster_map(a, b))


def butterfly_coarsening_accounting(a: int, b: int) -> ClusteringReport:
    """Work/communication report for the ``B_a``-of-``B_b``
    coarsening: super-level-0 tasks carry ``(b+1)·2^b`` fine nodes
    (full B_b copies), later tasks ``2^b`` each; cut arcs are the
    ``2^{a+b+1}`` per coarse transition."""
    return clustering_report(
        butterfly_dag(a + b), butterfly_cluster_map(a, b)
    )
