"""Task clustering: quotient dags and the computation/communication
accounting that motivates multi-granularity (Sections 3-7, item 3 of
the paper's per-computation program).

A *clustering* maps each fine-grained node to a cluster id; the
*quotient dag* has one node per cluster and an arc between distinct
clusters wherever a fine arc crosses them.  Coarsening a computation
means allocating a whole cluster as a single task, so:

* the cluster's **work** is its node count (computation stays local);
* the clustering's **communication volume** is the number of fine arcs
  crossing clusters (those values travel over the Internet).

The quotient must be acyclic for the clusters to be schedulable as
tasks; :func:`quotient_dag` verifies this.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..exceptions import ClusteringError, CycleError
from ..core.dag import ComputationDag, Node

__all__ = ["ClusteringReport", "quotient_dag", "clustering_report"]


def quotient_dag(
    dag: ComputationDag,
    cluster_map: Mapping[Node, Node],
    name: str | None = None,
) -> ComputationDag:
    """The quotient of ``dag`` by ``cluster_map``.

    Every node of ``dag`` must be mapped.  Intra-cluster arcs vanish;
    inter-cluster arcs collapse to single quotient arcs.  Raises
    :class:`ClusteringError` when the map is incomplete or the quotient
    has a cycle (such a clustering cannot be executed as coarse tasks).
    """
    missing = [v for v in dag.nodes if v not in cluster_map]
    if missing:
        raise ClusteringError(
            f"cluster map misses {len(missing)} node(s), e.g. {missing[0]!r}"
        )
    q = ComputationDag(name=name or f"{dag.name}/clustered")
    for v in dag.nodes:
        q.add_node(cluster_map[v])
    for u, v in dag.arcs:
        cu, cv = cluster_map[u], cluster_map[v]
        if cu != cv and not q.has_arc(cu, cv):
            q.add_arc(cu, cv)
    try:
        q.validate()
    except CycleError as exc:
        raise ClusteringError(
            f"clustering of {dag.name!r} is cyclic: {exc}"
        ) from exc
    return q


@dataclass
class ClusteringReport:
    """Work/communication accounting for a clustering."""

    quotient: ComputationDag
    #: cluster -> number of fine nodes (local work)
    work: dict = field(default_factory=dict)
    #: number of fine arcs crossing clusters (Internet traffic)
    cut_arcs: int = 0
    #: number of fine arcs kept inside clusters (local traffic)
    internal_arcs: int = 0

    @property
    def total_work(self) -> int:
        return sum(self.work.values())

    @property
    def max_work(self) -> int:
        return max(self.work.values())

    @property
    def min_work(self) -> int:
        return min(self.work.values())

    @property
    def communication_fraction(self) -> float:
        """Share of fine arcs that cross clusters (1.0 = no locality
        win; the fine-grained dag itself scores 1.0)."""
        total = self.cut_arcs + self.internal_arcs
        return self.cut_arcs / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"ClusteringReport(clusters={len(self.work)}, "
            f"work {self.min_work}..{self.max_work}, "
            f"cut={self.cut_arcs}, internal={self.internal_arcs})"
        )


def clustering_report(
    dag: ComputationDag, cluster_map: Mapping[Node, Node]
) -> ClusteringReport:
    """Build the quotient and its work/communication accounting."""
    q = quotient_dag(dag, cluster_map)
    work: dict = {}
    for v in dag.nodes:
        work[cluster_map[v]] = work.get(cluster_map[v], 0) + 1
    cut = internal = 0
    for u, v in dag.arcs:
        if cluster_map[u] == cluster_map[v]:
            internal += 1
        else:
            cut += 1
    return ClusteringReport(
        quotient=q, work=work, cut_arcs=cut, internal_arcs=internal
    )
