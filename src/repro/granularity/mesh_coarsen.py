"""Coarsening wavefront computations (Section 4, Fig. 7).

Out-mesh node ``(level, index)`` sits at matrix coordinates
``(row, col) = (index, level - index)``.  Clustering by ``b×b``
coordinate blocks realizes the Fig. 7 scheme: blocks straddling the
diagonal are "triangles" (themselves small out-meshes), interior blocks
are "rectangles" (mesh compositions); either way the quotient is again
an out-mesh — when ``b`` divides ``depth + 1`` the coarsened mesh is
exactly the out-mesh of depth ``(depth + 1) / b - 1``, so it admits an
IC-optimal schedule (the paper's equal-granularity case).

The key quantitative point (end of Section 4): a coarse task's
computation grows *quadratically* with its side length while its
communication grows only *linearly* —
:func:`mesh_coarsening_accounting` measures exactly that.
"""

from __future__ import annotations

from ..exceptions import ClusteringError
from ..core.dag import ComputationDag, Node
from ..families.mesh import out_mesh_dag
from .clustering import ClusteringReport, clustering_report

__all__ = [
    "mesh_block_cluster_map",
    "coarsened_out_mesh",
    "mesh_coarsening_accounting",
]


def mesh_block_cluster_map(depth: int, b: int) -> dict[Node, Node]:
    """Cluster the depth-``d`` out-mesh by ``b×b`` coordinate blocks.

    Returns node -> ``("blk", row_block, col_block)``.
    """
    if b < 1:
        raise ClusteringError(f"block side must be >= 1, got {b}")
    mapping: dict[Node, Node] = {}
    for level in range(depth + 1):
        for index in range(level + 1):
            row, col = index, level - index
            mapping[(level, index)] = ("blk", row // b, col // b)
    return mapping


def coarsened_out_mesh(depth: int, b: int) -> ComputationDag:
    """The quotient of the depth-``d`` out-mesh under ``b×b`` blocking.

    When ``b`` divides ``depth + 1`` this is isomorphic to the
    out-mesh of depth ``(depth + 1) // b - 1`` (verified in tests).
    """
    dag = out_mesh_dag(depth)
    from .clustering import quotient_dag

    return quotient_dag(dag, mesh_block_cluster_map(depth, b))


def mesh_coarsening_accounting(depth: int, b: int) -> ClusteringReport:
    """Work/communication report for the Fig. 7 coarsening.

    For interior (full) blocks, work is ``b²`` (area) while the
    cross-cluster arcs per block scale with ``b`` (perimeter) — the
    quadratic-vs-linear trade the paper highlights.
    """
    dag = out_mesh_dag(depth)
    return clustering_report(dag, mesh_block_cluster_map(depth, b))
