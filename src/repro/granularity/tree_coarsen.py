"""Coarsening expansion-reduction computations (Section 3.1, Fig. 3).

A diamond dag is coarsened "by selectively truncating branches of the
out-tree, together with mated portions of the in-tree": the subtree
below a chosen out-tree node, plus the mirrored in-tree region, fuse
into one coarse task that performs that whole expand-and-reduce
locally.  The coarsened dag is again a diamond (of the truncated
tree), so it still admits an IC-optimal schedule.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..exceptions import ClusteringError
from ..core.composition import CompositionChain
from ..core.dag import Node
from ..families.diamond import diamond_chain
from ..families.trees import validate_tree_spec

__all__ = [
    "truncate_tree",
    "coarsened_diamond",
    "diamond_cluster_map",
]


def truncate_tree(
    children: Mapping[Node, Sequence[Node]],
    root: Node,
    truncate_at: Iterable[Node],
) -> dict[Node, list[Node]]:
    """Remove the subtrees below each node in ``truncate_at`` (the
    nodes themselves become leaves).

    Truncation points must be internal tree nodes; nested truncation
    points are allowed (the deeper one is vacuous).
    """
    validate_tree_spec(children, root)
    cut = set(truncate_at)
    internal = {v for v, kids in children.items() if kids}
    bad = cut - internal
    if bad:
        raise ClusteringError(
            f"truncation points must be internal nodes; bad: "
            f"{sorted(map(repr, bad))}"
        )
    out: dict[Node, list[Node]] = {}

    def walk(v: Node) -> None:
        if v in cut or v not in internal:
            return
        out[v] = list(children[v])
        for c in children[v]:
            walk(c)

    walk(root)
    if not out:
        raise ClusteringError("truncating the root leaves no tree")
    return out


def coarsened_diamond(
    children: Mapping[Node, Sequence[Node]],
    root: Node,
    truncate_at: Iterable[Node],
    name: str = "coarse-diamond",
) -> CompositionChain:
    """The Fig. 3 coarsened diamond: the diamond of the truncated tree
    (in-tree = dual of the truncated out-tree, as in the figure)."""
    truncated = truncate_tree(children, root, truncate_at)
    return diamond_chain(truncated, root, name=name)


def diamond_cluster_map(
    children: Mapping[Node, Sequence[Node]],
    root: Node,
    truncate_at: Iterable[Node],
) -> dict[Node, Node]:
    """The clustering of the *fine* diamond (out-tree + dual in-tree,
    labels ``v`` and ``("acc", v)``) realizing the Fig. 3 coarsening.

    Each fine node below (or mirrored below) a truncation point ``c``
    maps to the coarse merged leaf ``c``; all other out-tree nodes map
    to themselves and in-tree nodes to ``("acc", v)``.  Feeding this to
    :func:`~repro.granularity.clustering.quotient_dag` reproduces the
    coarsened diamond's structure, and the accounting shows the
    comp-grows-faster-than-comm effect.
    """
    validate_tree_spec(children, root)
    cut = set(truncate_at)
    mapping: dict[Node, Node] = {}

    def walk(v: Node, owner: Node | None) -> None:
        if owner is None and v in cut:
            owner = v
        target = owner if owner is not None else v
        mapping[v] = target
        # in-tree mirror: the merged diamond keeps out-tree labels for
        # leaves; internal in-tree nodes are ("acc", v)
        if children.get(v):
            mapping[("acc", v)] = target if owner is not None else ("acc", v)
        for c in children.get(v, ()):
            walk(c, owner)

    walk(root, None)
    return mapping
