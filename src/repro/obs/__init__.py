"""Unified observability: metrics registry, structured tracing,
profiling hooks.

Zero-dependency instrumentation shared by every hot layer of the
library (exhaustive search, certification cache, scheduler front end,
sim server) and exposed through the CLI (``repro stats``,
``--metrics``, ``--trace``).  See ``docs/OBSERVABILITY.md`` for the
metric catalog, the trace schema, and the measured overhead.

Three pieces:

* :class:`MetricsRegistry` — thread-safe counters / gauges /
  histograms with labels, snapshot/reset, and JSON + Prometheus text
  exposition (:mod:`repro.obs.metrics`);
* :class:`Tracer` — structured span/event records with contextvar
  nesting, a bounded ring buffer, JSONL export, and a no-op fast path
  when disabled (:mod:`repro.obs.tracing`);
* :func:`span` / :func:`profiled` — the single instrumentation API
  the rest of the library uses (:mod:`repro.obs.instrument`).
"""

from .instrument import profiled, span
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    set_global_registry,
)
from .tracing import (
    TraceEvent,
    Tracer,
    global_tracer,
    load_jsonl,
    set_global_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "global_registry",
    "global_tracer",
    "load_jsonl",
    "profiled",
    "set_global_registry",
    "set_global_tracer",
    "span",
]
