"""Unified observability: metrics registry, structured tracing,
profiling hooks, HTTP exposition.

Zero-dependency instrumentation shared by every hot layer of the
library (exhaustive search, certification cache, scheduler front end,
sim server) and exposed through the CLI (``repro stats``,
``--metrics``, ``--trace``, ``repro serve-metrics``, ``repro
watch``).  See ``docs/OBSERVABILITY.md`` for the metric catalog, the
trace schema, the cross-process merge semantics, the HTTP endpoints,
and the measured overhead.

Five pieces:

* :class:`MetricsRegistry` — thread-safe counters / gauges /
  histograms with labels, snapshot/reset/merge, and JSON + Prometheus
  text exposition (:mod:`repro.obs.metrics`);
* :class:`Tracer` — structured span/event records with contextvar
  nesting, a bounded ring buffer, JSONL export, cross-process
  adoption, and a no-op fast path when disabled
  (:mod:`repro.obs.tracing`);
* :func:`span` / :func:`profiled` — the single instrumentation API
  the rest of the library uses (:mod:`repro.obs.instrument`);
* :class:`ObsServer` — the thread-based HTTP exposition service
  (``/metrics``, ``/stats``, ``/healthz``, ``/readyz``, ``/traces``,
  plus the live observatory surface ``/ui`` / ``/v1/events`` /
  ``/v1/dags/{fp}/frame``; :mod:`repro.obs.server`, imported lazily);
* :func:`watch` / :func:`render_dashboard` — the live in-terminal
  dashboard over ``/stats`` (:mod:`repro.obs.dashboard`, imported
  lazily);
* :class:`FrameStore` / :func:`render_frame_svg` — the schedule-frame
  observatory: bounded per-dag ring buffers of executed / eligible /
  blocked frontier snapshots and the SVG frame renderer behind
  ``/ui`` and ``repro observe`` (:mod:`repro.obs.observatory`,
  imported lazily).
"""

from .context import (
    REQUEST_ID_HEADER,
    accept_request_id,
    current_request_id,
    new_request_id,
    request_scope,
    reset_request_id,
    set_request_id,
)
from .instrument import profiled, span
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    set_global_registry,
)
from .tracing import (
    TraceEvent,
    Tracer,
    global_tracer,
    load_jsonl,
    set_global_tracer,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "FrameStore",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsServer",
    "REQUEST_ID_HEADER",
    "SLObjective",
    "ScheduleFrame",
    "TraceEvent",
    "Tracer",
    "accept_request_id",
    "current_request_id",
    "evaluate_slos",
    "fetch_stats",
    "fetch_traces",
    "global_flight_recorder",
    "global_frame_store",
    "global_registry",
    "global_tracer",
    "load_jsonl",
    "new_request_id",
    "profiled",
    "render_dashboard",
    "render_frame_svg",
    "request_scope",
    "reset_request_id",
    "set_global_flight_recorder",
    "set_global_frame_store",
    "set_global_registry",
    "set_global_tracer",
    "set_request_id",
    "slo_payload",
    "span",
    "watch",
]

#: lazily imported attributes (PEP 562): the HTTP server and dashboard
#: pull in ``http.server`` / ``urllib``, which the hot instrumented
#: layers importing this package never need.
_LAZY = {
    "ObsServer": ("repro.obs.server", "ObsServer"),
    "fetch_stats": ("repro.obs.dashboard", "fetch_stats"),
    "fetch_traces": ("repro.obs.dashboard", "fetch_traces"),
    "render_dashboard": ("repro.obs.dashboard", "render_dashboard"),
    "watch": ("repro.obs.dashboard", "watch"),
    "FrameStore": ("repro.obs.observatory", "FrameStore"),
    "ScheduleFrame": ("repro.obs.observatory", "ScheduleFrame"),
    "global_frame_store": ("repro.obs.observatory", "global_frame_store"),
    "set_global_frame_store": (
        "repro.obs.observatory", "set_global_frame_store"),
    "render_frame_svg": ("repro.obs.observatory", "render_frame_svg"),
    "SLObjective": ("repro.obs.slo", "SLObjective"),
    "evaluate_slos": ("repro.obs.slo", "evaluate"),
    "slo_payload": ("repro.obs.slo", "slo_payload"),
    "FlightRecorder": ("repro.obs.flightrecorder", "FlightRecorder"),
    "global_flight_recorder": (
        "repro.obs.flightrecorder", "global_flight_recorder"),
    "set_global_flight_recorder": (
        "repro.obs.flightrecorder", "set_global_flight_recorder"),
}


def __getattr__(name: str):
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module), attr)
