"""Request-scoped correlation: the propagated request ID.

One request entering the HTTP layer gets exactly one ID — generated
at ingress, or accepted from the client's ``X-Repro-Request-Id``
header — and that ID follows the request through everything it
causally touches:

* every **trace span and event** recorded while the request is active
  carries ``attrs["request"]`` (stamped by :mod:`repro.obs.tracing`
  at append time, so adopted pool-worker records keep the stamp of
  the request that fanned them out);
* every **schedule frame** captured during the request's simulation
  carries ``request`` (:mod:`repro.obs.observatory`);
* **metric exemplars** on the request/phase histograms name the last
  request that observed into them (:mod:`repro.obs.metrics`);
* **flight-recorder dumps** triggered by the request record it as the
  correlation key (:mod:`repro.obs.flightrecorder`);
* the **response** echoes the ID back in ``X-Repro-Request-Id``.

Propagation uses one :class:`contextvars.ContextVar` — the same
mechanism the tracer uses for span nesting, so the ID is correct
across threads and async tasks without caller bookkeeping.  Two
boundaries need explicit hand-off, both handled by the layers that
cross them: the service pipeline captures the ID when a simulation
request is queued and re-binds it in the worker thread
(:mod:`repro.service.pipeline`), and the parallel search ships it
inside each branch payload so pool workers stamp their spans with
the originating request (:mod:`repro.core.optimality`).

The disabled-is-free contract holds trivially: code that never binds
a request ID never pays more than a default :meth:`ContextVar.get`
on the tracer's *enabled* path, and nothing at all on its disabled
path.
"""

from __future__ import annotations

import contextvars
import os
import re

__all__ = [
    "REQUEST_ID_HEADER",
    "accept_request_id",
    "current_request_id",
    "new_request_id",
    "request_scope",
    "reset_request_id",
    "set_request_id",
]

#: the correlation header, both directions: accepted on requests,
#: echoed on every response.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: client-supplied IDs must be header/log/JSON-safe; anything else is
#: ignored and a fresh ID generated (never a 4xx — correlation is a
#: convenience, not a contract).
_VALID_ID = re.compile(r"[A-Za-z0-9._-]{1,64}")

#: the active request ID, tracked per context (thread / async task).
_request_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_request_id", default=None
)


def new_request_id() -> str:
    """A fresh 16-hex-char request ID (64 random bits)."""
    return os.urandom(8).hex()


def current_request_id() -> str | None:
    """The request ID bound in this context, or ``None``."""
    return _request_id.get()


def set_request_id(request_id: str | None) -> contextvars.Token:
    """Bind ``request_id`` in this context; returns the reset token."""
    return _request_id.set(request_id)


def reset_request_id(token: contextvars.Token) -> None:
    """Undo a :func:`set_request_id` (restores the previous binding)."""
    _request_id.reset(token)


def accept_request_id(raw: str | None) -> str:
    """The ID to use for a request that arrived with header value
    ``raw``: the client's ID when well-formed (1-64 chars of
    ``[A-Za-z0-9._-]``), else a freshly generated one.
    """
    if raw is not None and _VALID_ID.fullmatch(raw):
        return raw
    return new_request_id()


class request_scope:
    """Context manager binding a request ID for a region of code.

    ``request_scope()`` generates a fresh ID;
    ``request_scope("abc123")`` binds an existing one (the pipeline
    worker re-binding a queued request's ID).  The bound ID is
    available as the ``with`` target and via
    :func:`current_request_id`.
    """

    __slots__ = ("request_id", "_token")

    def __init__(self, request_id: str | None = None) -> None:
        self.request_id = (
            request_id if request_id is not None else new_request_id()
        )

    def __enter__(self) -> str:
        self._token = _request_id.set(self.request_id)
        return self.request_id

    def __exit__(self, *exc) -> bool:
        _request_id.reset(self._token)
        return False
