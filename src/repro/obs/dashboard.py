"""The live in-terminal dashboard behind ``repro watch``.

Polls an :class:`~repro.obs.server.ObsServer`'s ``/stats`` endpoint
and renders the registry snapshot as refreshing tables: the
simulation's per-step series (eligible / allocatable / completed
gauges), the per-policy quality series (makespan, utilization,
starvation, mean headroom — the heuristic-vs-IC-optimal comparison,
live), and the search/cache/scheduler counters.  Zero dependencies:
``urllib`` for the poll, ANSI clear-screen for the refresh.

The renderer is a pure function of the ``/stats`` JSON
(:func:`render_dashboard`), so it is golden-testable without a
network; :func:`watch` adds the poll-render-sleep loop.  Snapshot
decoding (values, labeled series, number formatting) comes from
:mod:`repro.obs.exposition`, the same helper the servers encode with.

:func:`fetch_stats` and :func:`fetch_traces` retry reset connections
through the shared bounded-backoff helper (:mod:`repro.retry` —
servers restart; one refused poll should not kill a ``watch``
session), and :func:`fetch_traces` follows the ``/traces?since=``
cursor so repeated polls ship only new records instead of the full
ring buffer.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

from ..retry import retry_call
from .exposition import format_number as _fmt
from .exposition import snapshot_series as _series
from .exposition import snapshot_value as _value

__all__ = ["fetch_stats", "fetch_traces", "render_dashboard", "watch"]

#: ANSI: clear screen + cursor home (the refresh between frames).
_CLEAR = "\x1b[2J\x1b[H"


def _is_reset(exc: BaseException) -> bool:
    """A connection reset, bare or wrapped in a ``URLError``."""
    return isinstance(exc, ConnectionResetError) or isinstance(
        getattr(exc, "reason", None), ConnectionResetError
    )


def fetch_stats(url: str, timeout: float = 5.0) -> dict:
    """GET ``<url>/stats`` and parse the JSON payload.

    ``url`` is the server root (e.g. ``http://127.0.0.1:9100``); a
    trailing slash or an explicit ``/stats`` suffix are both accepted.
    A connection reset mid-poll (server restarting, listener cycling)
    is retried with a short jittered backoff before the error
    propagates.
    """
    base = url.rstrip("/")
    if not base.endswith("/stats"):
        base += "/stats"

    def poll() -> dict:
        with urllib.request.urlopen(base, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))

    return retry_call(
        poll, attempts=2, base_delay=0.05,
        retry_on=(ConnectionResetError, urllib.error.URLError),
        should_retry=_is_reset,
    )


def fetch_traces(url: str, since: int = 0,
                 timeout: float = 5.0) -> tuple[list[dict], int]:
    """GET ``<url>/traces?since=<seq>``: the trace records appended
    after cursor ``since``, plus the new cursor.

    Returns ``(records, latest_seq)`` where ``latest_seq`` comes from
    the server's ``X-Repro-Trace-Seq`` header (falling back to
    ``since + len(records)`` for older servers).  Feed ``latest_seq``
    back as ``since`` on the next poll so repeated scrapes ship only
    the delta, not the whole ring buffer.  Reset connections retry
    like :func:`fetch_stats`.
    """
    base = url.rstrip("/")
    if not base.endswith("/traces"):
        base += "/traces"
    sep = "&" if "?" in base else "?"

    def poll() -> tuple[list[dict], int]:
        with urllib.request.urlopen(
            f"{base}{sep}since={int(since)}", timeout=timeout
        ) as resp:
            body = resp.read().decode("utf-8")
            header = resp.headers.get("X-Repro-Trace-Seq")
        records = [json.loads(line) for line in body.splitlines() if line]
        latest = (int(header) if header is not None
                  else since + len(records))
        return records, latest

    return retry_call(
        poll, attempts=2, base_delay=0.05,
        retry_on=(ConnectionResetError, urllib.error.URLError),
        should_retry=_is_reset,
    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def _histogram_totals(metric: dict) -> tuple[int, float]:
    """``(count, sum)`` for a histogram snapshot entry, labeled
    children summed."""
    leaves = (
        [e["value"] for e in metric["series"]]
        if "series" in metric
        else [metric.get("value", {})]
    )
    count = sum(int(v.get("count", 0)) for v in leaves)
    total = sum(float(v.get("sum", 0.0)) for v in leaves)
    return count, total


def render_dashboard(stats: dict) -> str:
    """Render one ``/stats`` payload as the dashboard text frame.

    Tolerates sparse payloads: an empty registry snapshot, a missing
    ``service`` section, and histograms with zero observations all
    render (with zeros / omitted tables) rather than raising.
    """
    from ..analysis import render_table

    metrics = stats.get("metrics", {})
    tracer = stats.get("tracer", {})
    sections: list[str] = []

    up = stats.get("uptime_seconds", 0.0)
    sections.append(
        f"repro observability — server up {up:.1f}s, "
        f"{'ready' if stats.get('ready', True) else 'NOT READY'}; "
        f"tracer {'on' if tracer.get('enabled') else 'off'} "
        f"({tracer.get('retained', 0)} records, "
        f"{tracer.get('dropped', 0)} dropped)"
    )

    # -- live simulation series ---------------------------------------
    sim_rows = [
        ("eligible now", _fmt(_value(metrics, "sim_eligible"))),
        ("allocatable now", _fmt(_value(metrics, "sim_allocatable"))),
        ("completed now", _fmt(_value(metrics, "sim_completed"))),
        ("steps", _fmt(_value(metrics, "sim_steps_total"))),
        ("allocations", _fmt(_value(metrics, "sim_allocations_total"))),
        ("completions", _fmt(_value(metrics, "sim_completions_total"))),
        ("losses", _fmt(_value(metrics, "sim_losses_total"))),
        ("starvation", _fmt(_value(metrics, "sim_starvation_total"))),
    ]
    sections.append(render_table(["simulation", "value"], sim_rows))

    # -- per-policy quality series ------------------------------------
    runs = _series(metrics, "sim_runs_total")
    if runs:
        mk = _series(metrics, "sim_quality_makespan")
        ut = _series(metrics, "sim_quality_utilization")
        st = _series(metrics, "sim_quality_starvation")
        hr = _series(metrics, "sim_quality_mean_headroom")
        rows = [
            (
                policy[0],
                _fmt(runs[policy]),
                _fmt(mk.get(policy, 0.0)),
                _fmt(ut.get(policy, 0.0)),
                _fmt(st.get(policy, 0)),
                _fmt(hr.get(policy, 0.0)),
            )
            for policy in sorted(runs)
        ]
        sections.append(
            render_table(
                ["policy", "runs", "makespan", "util", "starv",
                 "headroom"],
                rows,
                title="latest per-policy quality",
            )
        )

    # -- search / cache / scheduler -----------------------------------
    search_rows = []
    for (mode,), count in sorted(
        _series(metrics, "search_profile_total").items()
    ):
        search_rows.append((f"searches ({mode})", _fmt(count)))
    search_rows += [
        ("states expanded",
         _fmt(_value(metrics, "search_states_expanded_total"))),
        ("frontier peak", _fmt(_value(metrics, "search_frontier_peak"))),
        ("branch raw states",
         _fmt(_value(metrics, "search_branch_states_total"))),
        ("cache lookups",
         _fmt(_value(metrics, "profile_cache_lookups_total"))),
        ("scheduler requests",
         _fmt(_value(metrics, "scheduler_requests_total"))),
    ]
    sections.append(render_table(["search/cache", "value"], search_rows))

    # -- call-latency histograms (zero-observation safe) --------------
    lat_rows = []
    for name in sorted(metrics):
        metric = metrics[name]
        if not isinstance(metric, dict) or metric.get("type") != "histogram":
            continue
        count, total = _histogram_totals(metric)
        mean = total / count if count else 0.0
        lat_rows.append(
            (name, _fmt(count), _fmt(total), _fmt(mean) if count else "-")
        )
    if lat_rows:
        sections.append(
            render_table(["histogram", "count", "sum", "mean"], lat_rows)
        )

    # -- service-level objectives (evaluated on the snapshot) ---------
    from .slo import evaluate

    slo_rows = [
        (
            r["name"],
            "ok" if r["ok"] else "VIOLATED",
            _fmt(r["value"]),
            _fmt(r["threshold"]),
            r["detail"],
        )
        for r in evaluate(metrics)
    ]
    sections.append(
        render_table(["slo", "state", "value", "budget", "detail"],
                     slo_rows)
    )

    # -- scheduling-service section (when serving one) ----------------
    service = stats.get("service")
    if isinstance(service, dict):
        reg = service.get("registry") or {}
        pipe = service.get("pipeline") or {}
        svc_rows = [
            ("api version", str(service.get("api_version", "?"))),
            ("registry entries", _fmt(reg.get("entries", 0))),
            ("registry shards", _fmt(reg.get("shards", 0))),
            ("certified", _fmt(reg.get("certified", 0))),
            ("largest shard", _fmt(reg.get("largest_shard", 0))),
            ("workers", _fmt(pipe.get("workers", 0))),
            ("max inflight", _fmt(pipe.get("max_inflight", 0))),
            ("strategy", str(pipe.get("strategy", "?"))),
        ]
        sections.append(render_table(["service", "value"], svc_rows))
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# the watch loop
# ----------------------------------------------------------------------


def watch(
    url: str,
    interval: float = 2.0,
    count: int | None = None,
    clear: bool = True,
    out=None,
) -> int:
    """Poll ``url`` and render the dashboard every ``interval`` seconds.

    ``count`` bounds the number of frames (``None`` = until
    interrupted); ``clear`` uses ANSI clear-screen between frames (off
    for piped output).  A poll that fails (server not up yet, or gone)
    renders a waiting notice instead of aborting, so ``repro watch``
    can be started before the workload.  Returns a process exit code.
    """
    out = out if out is not None else sys.stdout
    frame = 0
    try:
        while count is None or frame < count:
            if frame:
                time.sleep(interval)
            frame += 1
            try:
                body = render_dashboard(fetch_stats(url))
            except (urllib.error.URLError, OSError, ValueError) as e:
                body = f"waiting for {url} ... ({e})"
            if clear:
                out.write(_CLEAR)
            out.write(body + "\n")
            out.flush()
    except KeyboardInterrupt:
        pass
    return 0
