"""Shared JSON / Prometheus exposition helpers.

One serialization vocabulary for every HTTP surface of the library —
the observability server (:mod:`repro.obs.server`), the in-terminal
dashboard (:mod:`repro.obs.dashboard`), and the scheduling service
(:mod:`repro.service.http`) — so payload shapes, content types, and
number formatting cannot drift apart:

* content-type constants (:data:`PROM_CONTENT_TYPE`,
  :data:`JSON_CONTENT_TYPE`, ...);
* :func:`json_body` / :func:`prometheus_body` — the canonical wire
  encodings (sorted keys, trailing newline);
* :func:`stats_payload` — the ``/stats`` JSON document (registry
  snapshot + tracer/uptime meta), built identically by every server;
* :func:`snapshot_value` / :func:`snapshot_series` /
  :func:`format_number` — the matching *readers*, used by anything
  consuming a registry snapshot shipped as JSON (the dashboard, the
  service benchmarks, tests).
"""

from __future__ import annotations

import json

from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = [
    "HTML_CONTENT_TYPE",
    "JSON_CONTENT_TYPE",
    "NDJSON_CONTENT_TYPE",
    "PROM_CONTENT_TYPE",
    "SSE_CONTENT_TYPE",
    "TEXT_CONTENT_TYPE",
    "format_number",
    "json_body",
    "prometheus_body",
    "snapshot_series",
    "snapshot_value",
    "stats_payload",
]

#: the Prometheus text exposition content type (format version 0.0.4).
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
#: every text-bearing content type carries an explicit charset — repro
#: servers always encode UTF-8 and intermediaries must not guess.
JSON_CONTENT_TYPE = "application/json; charset=utf-8"
NDJSON_CONTENT_TYPE = "application/x-ndjson; charset=utf-8"
TEXT_CONTENT_TYPE = "text/plain; charset=utf-8"
HTML_CONTENT_TYPE = "text/html; charset=utf-8"
SSE_CONTENT_TYPE = "text/event-stream; charset=utf-8"


# ----------------------------------------------------------------------
# writers
# ----------------------------------------------------------------------


def json_body(payload) -> str:
    """The canonical JSON wire encoding: sorted keys, one trailing
    newline (byte-stable for a given payload — golden-test friendly)."""
    return json.dumps(payload, sort_keys=True) + "\n"


def prometheus_body(registry: MetricsRegistry) -> str:
    """The Prometheus text-format body for ``registry``."""
    return registry.to_prometheus()


def stats_payload(
    registry: MetricsRegistry,
    tracer: Tracer,
    *,
    ready: bool,
    uptime_seconds: float,
    extra: dict | None = None,
) -> dict:
    """The ``/stats`` JSON document every repro HTTP server publishes.

    ``extra`` merges additional top-level sections (the scheduling
    service adds its ``service`` block) without letting them shadow the
    shared keys.
    """
    payload = {
        "metrics": registry.snapshot(),
        "tracer": {
            "enabled": tracer.enabled,
            "retained": len(tracer),
            "dropped": tracer.dropped,
        },
        "ready": ready,
        "uptime_seconds": uptime_seconds,
    }
    if extra:
        for key, value in extra.items():
            payload.setdefault(key, value)
    return payload


# ----------------------------------------------------------------------
# snapshot readers
# ----------------------------------------------------------------------


def snapshot_value(metrics: dict, name: str, default=0):
    """The unlabeled value of ``name`` in a registry snapshot (label
    children summed, like ``MetricsRegistry.value``)."""
    m = metrics.get(name)
    if m is None:
        return default
    if "series" in m:
        total = default
        for entry in m["series"]:
            total += entry["value"]
        return total
    return m.get("value", default)


def snapshot_series(metrics: dict, name: str) -> dict[tuple, float]:
    """``{label-values-tuple: value}`` for a labeled metric in a
    registry snapshot."""
    m = metrics.get(name)
    if m is None or "series" not in m:
        return {}
    names = m.get("labelnames", [])
    return {
        tuple(str(entry["labels"][n]) for n in names): entry["value"]
        for entry in m["series"]
    }


def format_number(v) -> str:
    """Human-facing number formatting shared by the dashboard and CLI
    tables: integers bare, floats to three decimals."""
    if isinstance(v, float):
        return f"{v:g}" if v == int(v) else f"{v:.3f}"
    return str(v)
