"""The degradation flight recorder: an always-on black box.

When something goes visibly wrong — the pipeline degrades a search to
a fallback certificate, a request dies with a 5xx, the parallel
search falls back from its process pool, the fault-injecting
simulator quarantines a client — the :class:`FlightRecorder` dumps a
**correlated bundle** to disk: the triggering request ID, the recent
trace spans, the counter delta since the previous dump, the newest
schedule frames per dag, and the fault events visible in them.  The
bundle is everything needed to answer "what was this process doing
when request X degraded?" after the fact, without having had debug
logging on.

Design constraints:

* **Always on, bounded.**  There is no enable flag; instead every
  cost is bounded — at most :attr:`max_dumps` bundles on disk (oldest
  pruned), at most one dump per request ID (the seeded-fault
  acceptance test relies on *exactly one* dump per triggering
  request), and uncorrelated triggers rate-limited to one per
  :attr:`min_interval_seconds`.
* **Off the hot path.**  Triggers fire only where failures are
  already being counted (degradations, 5xx responses, pool
  fallbacks, quarantines) — the happy path never calls in.
* **Lazy disk.**  The dump directory (``tempfile.mkdtemp`` under the
  system temp dir unless configured) is created on the first dump,
  so a process that never fails never writes.

Bundles are listable and fetchable over HTTP (``GET /v1/debug/dumps``
and ``GET /v1/debug/dumps/{id}``, mounted on the scheduling service
and the obs server via :func:`dispatch_debug`) and from the CLI
(``repro debug dump``).  Dump counts surface as
``obs_flight_dumps_total{reason}``.  See ``docs/OBSERVABILITY.md``
§8 for the bundle schema.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import OrderedDict

from ..fsio import atomic_write_json
from .metrics import global_registry
from .observatory import global_frame_store
from .tracing import global_tracer

__all__ = [
    "DEBUG_ENDPOINTS",
    "FlightRecorder",
    "dispatch_debug",
    "global_flight_recorder",
    "set_global_flight_recorder",
]

#: bundles retained on disk (oldest pruned first).
DEFAULT_MAX_DUMPS = 16
#: trace records captured per bundle (the tail of the ring).
DEFAULT_SPAN_TAIL = 256
#: frames captured per dag channel per bundle.
DEFAULT_FRAMES_PER_CHANNEL = 8
#: floor between dumps that carry no request ID (correlated triggers
#: dedupe by request instead).
DEFAULT_MIN_INTERVAL_SECONDS = 1.0

#: debug endpoint templates (listed in 404 payloads).
DEBUG_ENDPOINTS = (
    "GET /v1/debug/dumps",
    "GET /v1/debug/dumps/{id}",
)


class FlightRecorder:
    """Always-on bounded capture of failure context (see module doc).

    Parameters
    ----------
    dump_dir:
        Where bundles land; created lazily (a private temp dir by
        default, so unconfigured processes stay clean).
    max_dumps:
        On-disk retention; the oldest bundle is pruned past this.
    min_interval_seconds:
        Rate floor for triggers without a request ID.
    """

    def __init__(self, dump_dir: str | None = None, *,
                 max_dumps: int = DEFAULT_MAX_DUMPS,
                 min_interval_seconds: float =
                 DEFAULT_MIN_INTERVAL_SECONDS,
                 span_tail: int = DEFAULT_SPAN_TAIL,
                 frames_per_channel: int =
                 DEFAULT_FRAMES_PER_CHANNEL) -> None:
        if max_dumps < 1:
            raise ValueError(f"max_dumps must be >= 1, got {max_dumps}")
        self._configured_dir = dump_dir
        self._dir: str | None = None
        self.max_dumps = max_dumps
        self.min_interval_seconds = min_interval_seconds
        self.span_tail = span_tail
        self.frames_per_channel = frames_per_channel
        self._lock = threading.Lock()
        #: dump id -> meta (insertion order = dump order)
        self._index: OrderedDict[str, dict] = OrderedDict()
        #: request IDs already dumped (exactly-one-dump guarantee)
        self._seen_requests: OrderedDict[str, None] = OrderedDict()
        self._last_uncorrelated = 0.0
        self._n = 0
        #: counter values at the previous dump, for the delta section
        self._baseline: dict[str, float] = {}

    # -- capture -------------------------------------------------------
    @property
    def dump_dir(self) -> str | None:
        """The directory bundles land in (``None`` until first dump
        when unconfigured)."""
        return self._dir or self._configured_dir

    def _ensure_dir(self) -> str:
        if self._dir is None:
            if self._configured_dir is not None:
                os.makedirs(self._configured_dir, exist_ok=True)
                self._dir = self._configured_dir
            else:
                self._dir = tempfile.mkdtemp(prefix="repro-flight-")
        return self._dir

    def trigger(self, reason: str, *, request_id: str | None = None,
                detail: str | None = None) -> str | None:
        """Capture and persist one bundle; returns its dump id, or
        ``None`` when suppressed (request already dumped, or an
        uncorrelated trigger inside the rate floor).

        Never raises: a black box that can take its process down is
        worse than no black box.
        """
        try:
            return self._trigger(reason, request_id, detail)
        except Exception:  # pragma: no cover - defensive
            return None

    def _trigger(self, reason: str, request_id: str | None,
                 detail: str | None) -> str | None:
        now = time.time()
        with self._lock:
            if request_id is not None:
                if request_id in self._seen_requests:
                    return None
                self._seen_requests[request_id] = None
                while len(self._seen_requests) > 4 * self.max_dumps:
                    self._seen_requests.popitem(last=False)
            else:
                if (now - self._last_uncorrelated
                        < self.min_interval_seconds):
                    return None
                self._last_uncorrelated = now
            self._n += 1
            dump_id = f"{self._n:04d}-{reason}"
        bundle = self._capture(dump_id, reason, request_id, detail, now)
        self._persist(dump_id, bundle)
        global_registry().counter(
            "obs_flight_dumps_total",
            "flight-recorder bundles written",
            ("reason",),
        ).labels(reason).inc()
        return dump_id

    def _capture(self, dump_id: str, reason: str,
                 request_id: str | None, detail: str | None,
                 now: float) -> dict:
        records = global_tracer().records()[-self.span_tail:]
        spans = [json.loads(r.to_json()) for r in records]
        snapshot = global_registry().snapshot()
        counters = _flat_counters(snapshot)
        with self._lock:
            delta = {k: v - self._baseline.get(k, 0.0)
                     for k, v in counters.items()
                     if v != self._baseline.get(k, 0.0)}
            self._baseline = counters
        frames = global_frame_store().recent(self.frames_per_channel)
        faults = [
            dict(ev, dag=fp, frame_seq=frame["seq"])
            for fp, payloads in frames.items()
            for frame in payloads
            for ev in frame["events"]
        ]
        return {
            "schema": 1,
            "id": dump_id,
            "reason": reason,
            "request_id": request_id,
            "detail": detail,
            "ts": round(now, 3),
            "spans": spans,
            "metrics": snapshot,
            "counters_delta": delta,
            "frames": frames,
            "faults": faults,
        }

    def _persist(self, dump_id: str, bundle: dict) -> None:
        path = os.path.join(self._ensure_dir(), f"{dump_id}.json")
        # power-loss-safe atomic replace: a half-written black box is
        # worse than none (it reads as evidence but lies)
        atomic_write_json(path, bundle)
        with self._lock:
            self._index[dump_id] = {
                "id": dump_id,
                "reason": bundle["reason"],
                "request_id": bundle["request_id"],
                "detail": bundle["detail"],
                "ts": bundle["ts"],
                "spans": len(bundle["spans"]),
                "faults": len(bundle["faults"]),
            }
            evicted = []
            while len(self._index) > self.max_dumps:
                old_id, _ = self._index.popitem(last=False)
                evicted.append(old_id)
        for old_id in evicted:
            try:
                os.unlink(os.path.join(self._dir, f"{old_id}.json"))
            except OSError:
                pass

    # -- reads ---------------------------------------------------------
    def list(self) -> list[dict]:
        """Bundle metadata, oldest first."""
        with self._lock:
            return [dict(meta) for meta in self._index.values()]

    def get(self, dump_id: str) -> dict | None:
        """The full bundle, or ``None`` when unknown/pruned."""
        with self._lock:
            if dump_id not in self._index:
                return None
            path = os.path.join(self._dir, f"{dump_id}.json")
        try:
            with open(path, encoding="utf-8") as f:
                return json.load(f)
        except (OSError, ValueError):
            return None


def _flat_counters(snapshot: dict) -> dict[str, float]:
    """Counters of a registry snapshot flattened to
    ``name{k=v,...} -> value`` (the delta-section keyspace)."""
    out: dict[str, float] = {}
    for name, data in snapshot.items():
        if data.get("type") != "counter":
            continue
        if "series" in data:
            for entry in data["series"]:
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(entry["labels"].items())
                )
                out[f"{name}{{{labels}}}"] = entry["value"]
        elif "value" in data:
            out[name] = data["value"]
    return out


#: the process-wide recorder (created eagerly: always-on by design).
_GLOBAL_FLIGHT_RECORDER = FlightRecorder()


def global_flight_recorder() -> FlightRecorder:
    """The process-wide default :class:`FlightRecorder`."""
    return _GLOBAL_FLIGHT_RECORDER


def set_global_flight_recorder(rec: FlightRecorder) -> FlightRecorder:
    """Replace the process-wide recorder; returns the old one."""
    global _GLOBAL_FLIGHT_RECORDER
    old = _GLOBAL_FLIGHT_RECORDER
    _GLOBAL_FLIGHT_RECORDER = rec
    return old


def dispatch_debug(svc, handler, method: str, path: str,
                   query: dict) -> bool:
    """Route one debug request; returns ``False`` when ``path`` is
    not a debug endpoint (the caller falls through)."""
    if (path != "/v1/debug/dumps"
            and not path.startswith("/v1/debug/dumps/")):
        return False
    from .server import RequestError
    if method != "GET":
        raise RequestError(405, "method not allowed")
    rec = global_flight_recorder()
    if path == "/v1/debug/dumps":
        handler.respond_json(200, {
            "dumps": rec.list(),
            "dump_dir": rec.dump_dir,
        })
        return True
    rest = path[len("/v1/debug/dumps/"):]
    if not rest or "/" in rest:
        raise RequestError(404, "unknown debug endpoint")
    bundle = rec.get(rest)
    if bundle is None:
        raise RequestError(404, f"unknown dump {rest!r}")
    handler.respond_json(200, bundle)
    return True
