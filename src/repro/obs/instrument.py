"""The single instrumentation API: ``span()`` and ``@profiled``.

Instrumented library code never talks to a concrete registry or tracer
instance — it calls :func:`span` (a context manager opening a trace
span on the process-wide tracer) or decorates a function with
:func:`profiled` (which additionally times each call into a labeled
histogram on the process-wide registry).  Swapping the global registry
or tracer (``set_global_registry`` / ``set_global_tracer``) redirects
every instrumented layer at once.

Both helpers resolve the globals *at call time*, not decoration time,
so a benchmark that installs a fresh registry sees every subsequent
call, including through functions decorated at import.
"""

from __future__ import annotations

import functools
import time

from .metrics import global_registry
from .tracing import global_tracer

__all__ = ["span", "profiled"]


def span(name: str, **attrs):
    """Open a trace span named ``name`` on the process-wide tracer.

    Returns the tracer's no-op context manager when tracing is
    disabled — safe (and near-free) to leave in hot call paths.
    """
    return global_tracer().span(name, **attrs)


def profiled(name: str | None = None, **const_labels):
    """Decorate a function to time every call.

    Each call observes its wall-clock duration into the histogram
    ``<name>_seconds`` on the process-wide registry (labeled with
    ``const_labels`` if given) and opens a span ``<name>`` on the
    process-wide tracer.  ``name`` defaults to the function's
    qualified name with ``.`` for ``<locals>``-free nesting.

    Exceptions propagate; the failed call is still timed, and the
    span records the exception type in its ``error`` attribute.
    """

    def decorate(fn):
        metric_name = name or fn.__qualname__.replace(".<locals>", "")
        hist_name = f"{metric_name.replace('.', '_')}_seconds"
        labelnames = tuple(sorted(const_labels))
        labelvalues = tuple(str(const_labels[k]) for k in labelnames)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            hist = global_registry().histogram(
                hist_name, f"call duration of {metric_name}", labelnames
            )
            if labelnames:
                hist = hist.labels(*labelvalues)
            t0 = time.perf_counter()
            try:
                with global_tracer().span(metric_name):
                    return fn(*args, **kwargs)
            finally:
                hist.observe(time.perf_counter() - t0)

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
