"""Process-wide metrics: counters, gauges, histogram timers.

A :class:`MetricsRegistry` is a thread-safe, zero-dependency registry
of named metrics, each optionally split by a fixed label schema.  The
registry is the single source of truth for every number the library's
hot layers report — search effort (`repro.core.optimality`), cache
behaviour (`repro.core.profile_cache`), scheduling outcomes
(`repro.core.scheduler`), and simulation events (`repro.sim.server`)
all record here, and `SearchStats` / `repro verify` / `repro stats`
are *views* over it.

Design constraints (see ``docs/OBSERVABILITY.md``):

* **Aggregate-only on hot paths.**  Instrumented code records a few
  counter increments and one histogram observation *per call*, never
  per inner-loop state — the disabled-path overhead gate in
  ``benchmarks/bench_observability.py`` holds the whole layer under
  5% of the bare kernel.
* **Deterministic exposition.**  :meth:`MetricsRegistry.snapshot`
  orders metrics and label-children lexicographically, so JSON and
  Prometheus output are byte-stable for a given history (golden-test
  friendly).
* **Two exposition formats.**  :meth:`~MetricsRegistry.to_json` for
  machine consumption and :meth:`~MetricsRegistry.to_prometheus` for
  the standard text format (``# HELP`` / ``# TYPE`` / samples,
  histograms as cumulative ``_bucket{le=...}`` series).  Label values
  and help text are escaped per the format spec (``\\``, ``"``,
  newlines), and ``# HELP`` / ``# TYPE`` are emitted exactly once per
  metric family.
* **Mergeable snapshots.**  :meth:`MetricsRegistry.merge` folds the
  snapshot of another registry — typically shipped back from a
  ``multiprocessing`` pool worker — into this one: counters sum,
  histograms add bucket-wise, gauges take the value with the latest
  wall-clock write (each gauge carries an ``updated_at`` timestamp in
  its snapshot for exactly this).  See "Cross-process semantics" in
  ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import bisect
import json
import threading
import time
from collections.abc import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "set_global_registry",
]

#: default histogram bucket upper bounds (seconds-oriented, spanning
#: microsecond primitives to multi-second searches).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)


def _format_value(v: float) -> str:
    """Prometheus sample formatting: integers without a trailing .0."""
    if isinstance(v, bool):
        return str(int(v))
    if isinstance(v, int) or (isinstance(v, float) and v.is_integer()):
        return str(int(v))
    return repr(v)


def _escape_label_value(v: str) -> str:
    """Escape a label value per the Prometheus text format: backslash,
    double quote, and line feed."""
    return (
        v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text: backslash and line feed (quotes are
    legal in help text)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


class _Metric:
    """Shared machinery: naming, labels, child management.

    A metric declared with ``labelnames`` is a *parent*: it holds no
    value itself, only children keyed by their label-value tuple
    (obtained via :meth:`labels`).  A metric declared without labels
    holds its value directly.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        _lock: threading.Lock | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = _lock if _lock is not None else threading.Lock()
        self._children: dict[tuple[str, ...], _Metric] = {}

    # -- labels --------------------------------------------------------
    def labels(self, *values, **kwvalues) -> "_Metric":
        """The child metric for one label-value combination.

        Accepts positional values (in ``labelnames`` order) or
        keyword values; children are created on first use and reused
        thereafter.
        """
        if not self.labelnames:
            raise ValueError(f"metric {self.name!r} has no labels")
        if kwvalues:
            if values:
                raise ValueError("pass label values positionally or by "
                                 "keyword, not both")
            try:
                values = tuple(str(kwvalues[n]) for n in self.labelnames)
            except KeyError as e:
                raise ValueError(
                    f"metric {self.name!r} missing label {e.args[0]!r}"
                ) from None
            if len(kwvalues) != len(self.labelnames):
                extra = set(kwvalues) - set(self.labelnames)
                raise ValueError(
                    f"metric {self.name!r} got unknown labels {sorted(extra)}"
                )
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {values}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child()
                child.name = self.name
                child.help = self.help
                self._children[values] = child
            return child

    def _make_child(self) -> "_Metric":
        raise NotImplementedError

    def _series(self):
        """Yield ``(label_values, leaf)`` pairs, sorted by labels."""
        if self.labelnames:
            with self._lock:
                items = sorted(self._children.items())
            for values, child in items:
                yield values, child
        else:
            yield (), self

    # -- exposition ----------------------------------------------------
    def snapshot(self) -> dict:
        out: dict = {"type": self.kind, "help": self.help}
        if self.labelnames:
            out["labelnames"] = list(self.labelnames)
            series = []
            for vals, leaf in self._series():
                entry = {"labels": dict(zip(self.labelnames, vals)),
                         "value": leaf._value()}
                entry.update(leaf._extra())
                series.append(entry)
            out["series"] = series
        else:
            out["value"] = self._value()
            out.update(self._extra())
        return out

    def _value(self):
        raise NotImplementedError

    def _extra(self) -> dict:
        """Extra per-leaf snapshot fields (e.g. gauge timestamps)."""
        return {}

    def _merge_value(self, value, extra: dict) -> None:
        """Fold one snapshot leaf into this leaf (merge semantics are
        per metric kind; see :meth:`MetricsRegistry.merge`)."""
        raise NotImplementedError

    def prometheus_lines(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for vals, leaf in self._series():
            lines.extend(leaf._sample_lines(self.name, self.labelnames, vals))
        return lines

    def _sample_lines(self, name, labelnames, labelvalues) -> list[str]:
        return [
            f"{name}{_label_str(labelnames, labelvalues)} "
            f"{_format_value(self._value())}"
        ]

    def _reset(self) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Zero this metric (and every label child)."""
        if self.labelnames:
            with self._lock:
                children = list(self._children.values())
            for c in children:
                c._reset()
        else:
            self._reset()


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._count = 0

    def _make_child(self) -> "Counter":
        return Counter("", _lock=self._lock)

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._count += amount

    @property
    def value(self) -> float:
        return self._count

    def _value(self):
        return self._count

    def _merge_value(self, value, extra: dict) -> None:
        self.inc(value)

    def _reset(self) -> None:
        with self._lock:
            self._count = 0


class Gauge(_Metric):
    """A value that can go up and down (or track a running max).

    Every write stamps the gauge with the wall-clock time
    (``time.time()``); the stamp travels in snapshots as
    ``updated_at`` so cross-process merges can resolve conflicting
    gauge values by recency (last write wins).
    """

    kind = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._gauge = 0.0
        self._updated = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge("", _lock=self._lock)

    def set(self, value: float) -> None:
        with self._lock:
            self._gauge = value
            self._updated = time.time()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._gauge += amount
            self._updated = time.time()

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._gauge -= amount
            self._updated = time.time()

    def set_max(self, value: float) -> None:
        """Keep the running maximum of observed values."""
        with self._lock:
            if value > self._gauge:
                self._gauge = value
                self._updated = time.time()

    @property
    def value(self) -> float:
        return self._gauge

    @property
    def updated_at(self) -> float:
        """Wall-clock time of the last write (0.0 = never written)."""
        return self._updated

    def _value(self):
        return self._gauge

    def _extra(self) -> dict:
        return {"updated_at": self._updated}

    def _merge_value(self, value, extra: dict) -> None:
        ts = extra.get("updated_at", 0.0)
        with self._lock:
            # last write wins; ties go to the incoming snapshot so
            # merge order defines recency when clocks collide.
            if ts >= self._updated:
                self._gauge = value
                self._updated = ts

    def _reset(self) -> None:
        with self._lock:
            self._gauge = 0.0
            self._updated = 0.0


class Histogram(_Metric):
    """Bucketed distribution of observations (typically durations).

    Quantiles are estimated from the cumulative bucket counts with
    linear interpolation inside the crossing bucket — the standard
    Prometheus ``histogram_quantile`` estimator, computed locally.
    """

    kind = "histogram"

    def __init__(self, name="", help="", labelnames=(), *,
                 buckets: Iterable[float] = DEFAULT_BUCKETS,
                 _lock=None) -> None:
        super().__init__(name, help, labelnames, _lock=_lock)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # +inf bucket last
        self._sum = 0.0
        self._exemplar: dict | None = None

    def _make_child(self) -> "Histogram":
        return Histogram(buckets=self.bounds, _lock=self._lock)

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation.

        ``exemplar`` (optionally) names the correlation id — in
        practice the request ID — behind this observation; the leaf
        keeps the most recent one and surfaces it in snapshots, so a
        latency series can be traced back to a concrete request.
        Hot-path callers omit it and pay nothing.
        """
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            if exemplar is not None:
                self._exemplar = {
                    "id": exemplar, "value": value, "ts": time.time(),
                }

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        n = self.count
        return self._sum / n if n else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return 0.0
        rank = q * total
        cum = 0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            prev = cum
            cum += self._counts[i]
            if cum >= rank:
                in_bucket = cum - prev
                if in_bucket == 0:
                    return bound
                frac = (rank - prev) / in_bucket
                return lower + frac * (bound - lower)
            lower = bound
        return self.bounds[-1]  # observations beyond the last bound

    def _value(self):
        return {
            "count": self.count,
            "sum": self._sum,
            "buckets": {
                _format_value(b): c
                for b, c in zip(self.bounds, self._counts)
            },
            "inf": self._counts[-1],
        }

    def _extra(self) -> dict:
        with self._lock:
            if self._exemplar is None:
                return {}
            return {"exemplar": dict(self._exemplar)}

    def _merge_value(self, value, extra: dict) -> None:
        incoming = value["buckets"]
        expected = [_format_value(b) for b in self.bounds]
        if list(incoming) != expected:
            raise ValueError(
                f"histogram {self.name!r} bucket bounds "
                f"{list(incoming)} do not match {expected}"
            )
        with self._lock:
            for i, c in enumerate(incoming.values()):
                self._counts[i] += c
            self._counts[-1] += value["inf"]
            self._sum += value["sum"]
            ex = extra.get("exemplar")
            if ex is not None and (
                    self._exemplar is None
                    or ex.get("ts", 0.0) >= self._exemplar.get("ts", 0.0)):
                self._exemplar = dict(ex)

    def _sample_lines(self, name, labelnames, labelvalues) -> list[str]:
        lines = []
        cum = 0
        for bound, c in zip(self.bounds, self._counts):
            cum += c
            ls = _label_str(
                labelnames + ("le",), labelvalues + (_format_value(bound),)
            )
            lines.append(f"{name}_bucket{ls} {cum}")
        cum += self._counts[-1]
        ls = _label_str(labelnames + ("le",), labelvalues + ("+Inf",))
        lines.append(f"{name}_bucket{ls} {cum}")
        base = _label_str(labelnames, labelvalues)
        lines.append(f"{name}_sum{base} {_format_value(self._sum)}")
        lines.append(f"{name}_count{base} {cum}")
        return lines

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._exemplar = None


class MetricsRegistry:
    """A named collection of metrics with JSON/Prometheus exposition.

    Declaring the same name twice returns the existing metric when the
    type and label schema match (so modules can declare their metrics
    at call time without coordination) and raises otherwise.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- declaration ---------------------------------------------------
    def _declare(self, cls, name: str, help: str,
                 labelnames: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.labelnames != tuple(labelnames)):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._declare(Histogram, name, help, labelnames,
                             buckets=buckets)

    # -- access --------------------------------------------------------
    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, **labels):
        """Convenience: the current value of a metric (0 if absent).

        For labeled metrics pass the label values; a missing child is
        also 0 (nothing recorded there yet).
        """
        m = self.get(name)
        if m is None:
            return 0
        if labels:
            key = tuple(str(labels[n]) for n in m.labelnames)
            with m._lock:
                child = m._children.get(key)
            return child._value() if child is not None else 0
        if m.labelnames:
            total = 0
            for _vals, leaf in m._series():
                total += leaf._value()
            return total
        return m._value()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Zero every metric's value; registrations survive."""
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            m.reset()

    # -- cross-process merge -------------------------------------------
    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is the cross-process aggregation primitive: a pool worker
        records into its own private registry, ships
        ``registry.snapshot()`` back with its result (snapshots are
        plain JSON-able dicts, so they pickle under every
        multiprocessing start method), and the coordinating process
        merges every worker delta here.  Merge semantics per kind:

        * **counter** — values sum (a count of events is additive
          across processes);
        * **gauge** — last write wins, decided by each gauge's
          ``updated_at`` wall-clock stamp (ties go to the incoming
          snapshot, so merge order defines recency);
        * **histogram** — bucket-wise addition (including the ``+Inf``
          bucket) and summed ``sum``; bucket bounds must match.

        Metrics absent locally are declared from the snapshot's type,
        help, label schema, and (for histograms) bucket bounds, so
        merging into a fresh registry reproduces the source exactly.
        Raises ``ValueError`` when a name is already registered with a
        conflicting type, label schema, or histogram bounds.
        """
        for name, data in sorted(snapshot.items()):
            kind = data.get("type")
            help = data.get("help", "")
            labelnames = tuple(data.get("labelnames", ()))
            if data.get("series"):
                first_value = data["series"][0]["value"]
            else:
                first_value = data.get("value")
            if kind == "counter":
                metric = self.counter(name, help, labelnames)
            elif kind == "gauge":
                metric = self.gauge(name, help, labelnames)
            elif kind == "histogram":
                if first_value is None:
                    # labeled histogram with no children yet: nothing
                    # to merge and no bounds to recover; skip.
                    continue
                bounds = [float(b) for b in first_value["buckets"]]
                metric = self.histogram(name, help, labelnames,
                                        buckets=bounds)
            else:
                raise ValueError(
                    f"cannot merge metric {name!r} of unknown "
                    f"kind {kind!r}"
                )
            if labelnames:
                for entry in data.get("series", ()):
                    values = tuple(
                        str(entry["labels"][n]) for n in labelnames
                    )
                    metric.labels(*values)._merge_value(
                        entry["value"], entry
                    )
            elif "value" in data:
                metric._merge_value(data["value"], data)

    # -- exposition ----------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-able, deterministically ordered view of every metric."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: m.snapshot() for name, m in items}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            items = sorted(self._metrics.items())
        lines: list[str] = []
        for _name, m in items:
            lines.extend(m.prometheus_lines())
        return "\n".join(lines) + ("\n" if lines else "")


#: the process-wide default registry every instrumented layer records
#: to unless handed a private one.
_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the old one.

    Benchmarks and tests install a fresh registry so their counters
    describe only their own workload.
    """
    global _GLOBAL_REGISTRY
    old = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return old
