"""Process-wide metrics: counters, gauges, histogram timers.

A :class:`MetricsRegistry` is a thread-safe, zero-dependency registry
of named metrics, each optionally split by a fixed label schema.  The
registry is the single source of truth for every number the library's
hot layers report — search effort (`repro.core.optimality`), cache
behaviour (`repro.core.profile_cache`), scheduling outcomes
(`repro.core.scheduler`), and simulation events (`repro.sim.server`)
all record here, and `SearchStats` / `repro verify` / `repro stats`
are *views* over it.

Design constraints (see ``docs/OBSERVABILITY.md``):

* **Aggregate-only on hot paths.**  Instrumented code records a few
  counter increments and one histogram observation *per call*, never
  per inner-loop state — the disabled-path overhead gate in
  ``benchmarks/bench_observability.py`` holds the whole layer under
  5% of the bare kernel.
* **Deterministic exposition.**  :meth:`MetricsRegistry.snapshot`
  orders metrics and label-children lexicographically, so JSON and
  Prometheus output are byte-stable for a given history (golden-test
  friendly).
* **Two exposition formats.**  :meth:`~MetricsRegistry.to_json` for
  machine consumption and :meth:`~MetricsRegistry.to_prometheus` for
  the standard text format (``# HELP`` / ``# TYPE`` / samples,
  histograms as cumulative ``_bucket{le=...}`` series).
"""

from __future__ import annotations

import bisect
import json
import threading
from collections.abc import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "set_global_registry",
]

#: default histogram bucket upper bounds (seconds-oriented, spanning
#: microsecond primitives to multi-second searches).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)


def _format_value(v: float) -> str:
    """Prometheus sample formatting: integers without a trailing .0."""
    if isinstance(v, bool):
        return str(int(v))
    if isinstance(v, int) or (isinstance(v, float) and v.is_integer()):
        return str(int(v))
    return repr(v)


def _label_str(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{v}"' for n, v in zip(names, values))
    return "{" + inner + "}"


class _Metric:
    """Shared machinery: naming, labels, child management.

    A metric declared with ``labelnames`` is a *parent*: it holds no
    value itself, only children keyed by their label-value tuple
    (obtained via :meth:`labels`).  A metric declared without labels
    holds its value directly.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        _lock: threading.Lock | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = _lock if _lock is not None else threading.Lock()
        self._children: dict[tuple[str, ...], _Metric] = {}

    # -- labels --------------------------------------------------------
    def labels(self, *values, **kwvalues) -> "_Metric":
        """The child metric for one label-value combination.

        Accepts positional values (in ``labelnames`` order) or
        keyword values; children are created on first use and reused
        thereafter.
        """
        if not self.labelnames:
            raise ValueError(f"metric {self.name!r} has no labels")
        if kwvalues:
            if values:
                raise ValueError("pass label values positionally or by "
                                 "keyword, not both")
            try:
                values = tuple(str(kwvalues[n]) for n in self.labelnames)
            except KeyError as e:
                raise ValueError(
                    f"metric {self.name!r} missing label {e.args[0]!r}"
                ) from None
            if len(kwvalues) != len(self.labelnames):
                extra = set(kwvalues) - set(self.labelnames)
                raise ValueError(
                    f"metric {self.name!r} got unknown labels {sorted(extra)}"
                )
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {values}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child()
                child.name = self.name
                child.help = self.help
                self._children[values] = child
            return child

    def _make_child(self) -> "_Metric":
        raise NotImplementedError

    def _series(self):
        """Yield ``(label_values, leaf)`` pairs, sorted by labels."""
        if self.labelnames:
            with self._lock:
                items = sorted(self._children.items())
            for values, child in items:
                yield values, child
        else:
            yield (), self

    # -- exposition ----------------------------------------------------
    def snapshot(self) -> dict:
        out: dict = {"type": self.kind, "help": self.help}
        if self.labelnames:
            out["labelnames"] = list(self.labelnames)
            out["series"] = [
                dict(zip(("labels", "value"),
                         (dict(zip(self.labelnames, vals)), leaf._value())))
                for vals, leaf in self._series()
            ]
        else:
            out["value"] = self._value()
        return out

    def _value(self):
        raise NotImplementedError

    def prometheus_lines(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for vals, leaf in self._series():
            lines.extend(leaf._sample_lines(self.name, self.labelnames, vals))
        return lines

    def _sample_lines(self, name, labelnames, labelvalues) -> list[str]:
        return [
            f"{name}{_label_str(labelnames, labelvalues)} "
            f"{_format_value(self._value())}"
        ]

    def _reset(self) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Zero this metric (and every label child)."""
        if self.labelnames:
            with self._lock:
                children = list(self._children.values())
            for c in children:
                c._reset()
        else:
            self._reset()


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._count = 0

    def _make_child(self) -> "Counter":
        return Counter("", _lock=self._lock)

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._count += amount

    @property
    def value(self) -> float:
        return self._count

    def _value(self):
        return self._count

    def _reset(self) -> None:
        with self._lock:
            self._count = 0


class Gauge(_Metric):
    """A value that can go up and down (or track a running max)."""

    kind = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._gauge = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge("", _lock=self._lock)

    def set(self, value: float) -> None:
        with self._lock:
            self._gauge = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._gauge += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._gauge -= amount

    def set_max(self, value: float) -> None:
        """Keep the running maximum of observed values."""
        with self._lock:
            if value > self._gauge:
                self._gauge = value

    @property
    def value(self) -> float:
        return self._gauge

    def _value(self):
        return self._gauge

    def _reset(self) -> None:
        with self._lock:
            self._gauge = 0.0


class Histogram(_Metric):
    """Bucketed distribution of observations (typically durations).

    Quantiles are estimated from the cumulative bucket counts with
    linear interpolation inside the crossing bucket — the standard
    Prometheus ``histogram_quantile`` estimator, computed locally.
    """

    kind = "histogram"

    def __init__(self, name="", help="", labelnames=(), *,
                 buckets: Iterable[float] = DEFAULT_BUCKETS,
                 _lock=None) -> None:
        super().__init__(name, help, labelnames, _lock=_lock)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # +inf bucket last
        self._sum = 0.0

    def _make_child(self) -> "Histogram":
        return Histogram(buckets=self.bounds, _lock=self._lock)

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        n = self.count
        return self._sum / n if n else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return 0.0
        rank = q * total
        cum = 0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            prev = cum
            cum += self._counts[i]
            if cum >= rank:
                in_bucket = cum - prev
                if in_bucket == 0:
                    return bound
                frac = (rank - prev) / in_bucket
                return lower + frac * (bound - lower)
            lower = bound
        return self.bounds[-1]  # observations beyond the last bound

    def _value(self):
        return {
            "count": self.count,
            "sum": self._sum,
            "buckets": {
                _format_value(b): c
                for b, c in zip(self.bounds, self._counts)
            },
            "inf": self._counts[-1],
        }

    def _sample_lines(self, name, labelnames, labelvalues) -> list[str]:
        lines = []
        cum = 0
        for bound, c in zip(self.bounds, self._counts):
            cum += c
            ls = _label_str(
                labelnames + ("le",), labelvalues + (_format_value(bound),)
            )
            lines.append(f"{name}_bucket{ls} {cum}")
        cum += self._counts[-1]
        ls = _label_str(labelnames + ("le",), labelvalues + ("+Inf",))
        lines.append(f"{name}_bucket{ls} {cum}")
        base = _label_str(labelnames, labelvalues)
        lines.append(f"{name}_sum{base} {_format_value(self._sum)}")
        lines.append(f"{name}_count{base} {cum}")
        return lines

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0


class MetricsRegistry:
    """A named collection of metrics with JSON/Prometheus exposition.

    Declaring the same name twice returns the existing metric when the
    type and label schema match (so modules can declare their metrics
    at call time without coordination) and raises otherwise.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- declaration ---------------------------------------------------
    def _declare(self, cls, name: str, help: str,
                 labelnames: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.labelnames != tuple(labelnames)):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._declare(Histogram, name, help, labelnames,
                             buckets=buckets)

    # -- access --------------------------------------------------------
    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, **labels):
        """Convenience: the current value of a metric (0 if absent).

        For labeled metrics pass the label values; a missing child is
        also 0 (nothing recorded there yet).
        """
        m = self.get(name)
        if m is None:
            return 0
        if labels:
            key = tuple(str(labels[n]) for n in m.labelnames)
            with m._lock:
                child = m._children.get(key)
            return child._value() if child is not None else 0
        if m.labelnames:
            total = 0
            for _vals, leaf in m._series():
                total += leaf._value()
            return total
        return m._value()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Zero every metric's value; registrations survive."""
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            m.reset()

    # -- exposition ----------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-able, deterministically ordered view of every metric."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: m.snapshot() for name, m in items}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            items = sorted(self._metrics.items())
        lines: list[str] = []
        for _name, m in items:
            lines.extend(m.prometheus_lines())
        return "\n".join(lines) + ("\n" if lines else "")


#: the process-wide default registry every instrumented layer records
#: to unless handed a private one.
_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the old one.

    Benchmarks and tests install a fresh registry so their counters
    describe only their own workload.
    """
    global _GLOBAL_REGISTRY
    old = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return old
