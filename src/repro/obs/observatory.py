"""The live schedule observatory: frame capture and exposition.

The paper's central object — the eligibility profile, and the frontier
of ELIGIBLE tasks a schedule maximizes — only existed as aggregate
counters until now.  This module records *frames*: per-event-step
snapshots of a running simulation (executed / eligible / blocked node
sets, per-client occupancy, the achieved eligibility count next to the
certified ceiling ``M(t)``, fault events) into bounded per-dag ring
buffers, and exposes them over the same hardened HTTP base every repro
server uses — including a long-lived ``/v1/events`` stream so the
browser UI (``/ui``, :mod:`repro.obs.ui`) never busy-polls.

Three layers:

* :class:`ScheduleFrame` / :class:`FrameChannel` / :class:`FrameStore`
  — the capture side.  The store is **disabled by default** and the
  disabled path is one attribute check at simulation start (the same
  disabled-is-free contract as the tracer; gated by the frame-capture
  scenario in ``benchmarks/bench_observability.py``).  Enabled, the
  simulator calls :meth:`FrameStore.record` once per event-loop step;
  each channel keeps the newest ``frames_per_dag`` frames with a
  monotonic per-channel ``seq`` (and the store keeps one global seq
  across channels, the ``/v1/events`` cursor).
* :func:`dispatch_observatory` — the HTTP routes, shared verbatim by
  :class:`~repro.obs.server.ObsServer` and
  :class:`~repro.service.http.SchedulingService`:

  ================================  ==================================
  endpoint                          response
  ================================  ==================================
  ``GET /ui``                       the self-contained observatory
                                    page (zero external assets)
  ``GET /v1/frames``                index of dags with frames
  ``GET /v1/dags/{fp}/frame``       the latest frame + seq cursor
  ``GET /v1/dags/{fp}/frames``      catch-up: frames after ``?since=``
  ``GET /v1/dags/{fp}/graph``       structure + layout + certified
                                    ``M(t)`` profile for rendering
  ``GET /v1/events``                Server-Sent Events stream of
                                    frame-seq + stats deltas
  ================================  ==================================

* :func:`render_frame_svg` — the server-side renderer behind
  ``repro observe --snapshot`` (one SVG frame for CI and docs), the
  same visual the browser page draws live.

See ``docs/OBSERVABILITY.md`` §7.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict, deque
from typing import Any, NamedTuple

from .context import current_request_id
from .metrics import global_registry

__all__ = [
    "FrameChannel",
    "FrameStore",
    "ScheduleFrame",
    "dispatch_observatory",
    "global_frame_store",
    "graph_payload",
    "render_frame_svg",
    "set_global_frame_store",
]

#: frames retained per dag channel (ring buffer).
DEFAULT_FRAMES_PER_DAG = 512
#: dag channels retained per store (LRU).
DEFAULT_MAX_DAGS = 32
#: longest a single ``/v1/events`` stream stays open before the client
#: (``EventSource`` auto-reconnects with ``Last-Event-ID``) re-opens it.
EVENTS_MAX_STREAM_SECONDS = 60.0
#: heartbeat cadence of the events stream: stats deltas flow at least
#: this often even when no frames are being captured.
EVENTS_HEARTBEAT_SECONDS = 2.0


class ScheduleFrame(NamedTuple):
    """One snapshot of a schedule executing.

    All node references are the stringified labels (the wire form);
    ``executed``/``eligible``/``blocked`` partition the dag's nodes at
    this step, sorted for byte-stable serialization.
    """

    #: per-channel monotonic sequence number, from 1
    seq: int
    #: simulation event-loop step index
    step: int
    #: simulation clock at capture
    t: float
    #: executed tasks
    executed: tuple[str, ...]
    #: ELIGIBLE unexecuted tasks (allocatable + in flight) — the
    #: frontier the paper's schedules maximize
    eligible: tuple[str, ...]
    #: tasks still blocked on an unexecuted parent
    blocked: tuple[str, ...]
    #: per-client current task (``None`` = idle), index = client id
    occupancy: tuple[str | None, ...]
    #: the certified ceiling ``M(t)`` at ``t = len(executed)`` steps,
    #: when a certified profile is attached to the channel
    optimal: int | None
    #: notable events since the previous frame: ``{"kind": ..., ...}``
    #: dicts (lost allocations, injected faults, quarantines, ...)
    events: tuple[dict, ...]
    #: the simulation finished at (or before) this frame
    done: bool
    #: the request ID active when the frame was captured, or ``None``
    #: for runs outside any request scope (``docs/OBSERVABILITY.md``
    #: §8 — correlation with ``/traces?request_id=``)
    request: str | None = None

    def to_payload(self) -> dict:
        """The JSON wire form (``docs/OBSERVABILITY.md`` §7)."""
        return {
            "seq": self.seq,
            "step": self.step,
            "t": round(self.t, 6),
            "executed": list(self.executed),
            "eligible": list(self.eligible),
            "blocked": list(self.blocked),
            "occupancy": list(self.occupancy),
            "eligible_count": len(self.eligible),
            "optimal": self.optimal,
            "events": [dict(e) for e in self.events],
            "done": self.done,
            "request": self.request,
        }


def graph_payload(dag) -> dict:
    """Structure + level layout of ``dag`` for the observatory UI.

    Levels are longest-path depths (sources at depth 0), the layout
    both the browser page and :func:`render_frame_svg` position nodes
    by.  Node labels are stringified; label collisions (distinct
    hashables with equal ``str``) degrade the display, not the data.
    """
    depth: dict[Any, int] = {}
    for v in dag.topological_order():
        parents = dag.parents(v)
        depth[v] = 1 + max(depth[p] for p in parents) if parents else 0
    levels: list[list[str]] = [[] for _ in range(max(depth.values(), default=0) + 1)] \
        if depth else []
    for v in dag.nodes:
        levels[depth[v]].append(str(v))
    return {
        "name": dag.name,
        "n": len(dag),
        "nodes": [str(v) for v in dag.nodes],
        "arcs": [[str(u), str(v)] for u, v in dag.arcs],
        "levels": levels,
    }


class FrameChannel:
    """The frame ring buffer of one dag (keyed by fingerprint).

    Not thread-safe on its own — every mutation goes through the
    owning :class:`FrameStore`'s lock.
    """

    __slots__ = ("fingerprint", "name", "graph", "names", "frames",
                 "seq", "dropped", "profile", "clients", "policy")

    def __init__(self, fingerprint: str, dag,
                 capacity: int = DEFAULT_FRAMES_PER_DAG) -> None:
        self.fingerprint = fingerprint
        self.name = dag.name
        self.graph = graph_payload(dag)
        #: node -> wire label, so capture never re-stringifies
        self.names = {v: str(v) for v in dag.nodes}
        self.frames: deque[ScheduleFrame] = deque(maxlen=capacity)
        #: last assigned per-channel seq (frames carry 1..seq)
        self.seq = 0
        #: frames pushed out of the ring
        self.dropped = 0
        #: certified ``M(t)`` profile, attached by whoever certified
        self.profile: list[int] | None = None
        self.clients = 0
        self.policy = ""

    # -- reads (call with the store lock held) -------------------------
    def latest(self) -> ScheduleFrame | None:
        return self.frames[-1] if self.frames else None

    def since(self, seq: int) -> list[ScheduleFrame]:
        """Frames with ``frame.seq > seq`` (oldest first).  A cursor
        older than the ring's tail simply returns every retained frame
        — the skipped span is visible as ``dropped``/seq gaps."""
        if not self.frames or seq >= self.seq:
            return []
        oldest = self.frames[0].seq
        if seq < oldest:
            return list(self.frames)
        # frames are contiguous in seq: index straight in
        return [f for f in self.frames if f.seq > seq]

    def describe(self) -> dict:
        last = self.latest()
        return {
            "name": self.name,
            "n": self.graph["n"],
            "latest": self.seq,
            "retained": len(self.frames),
            "dropped": self.dropped,
            "clients": self.clients,
            "policy": self.policy,
            "done": bool(last.done) if last is not None else False,
            "has_profile": self.profile is not None,
        }


class FrameStore:
    """Bounded, thread-safe store of per-dag frame channels.

    Parameters
    ----------
    frames_per_dag:
        Ring-buffer capacity of each channel.
    max_dags:
        Channels retained; the least recently written is evicted.

    ``enabled`` gates capture exactly like the tracer's flag: the
    simulator checks it **once per run** and records nothing when off,
    so the disabled path costs one attribute read.  Serving reads
    (:func:`dispatch_observatory`) work regardless of the flag — a
    disabled store still serves whatever was captured earlier.
    """

    def __init__(self, frames_per_dag: int = DEFAULT_FRAMES_PER_DAG,
                 max_dags: int = DEFAULT_MAX_DAGS) -> None:
        if frames_per_dag < 1:
            raise ValueError(
                f"frames_per_dag must be >= 1, got {frames_per_dag}"
            )
        if max_dags < 1:
            raise ValueError(f"max_dags must be >= 1, got {max_dags}")
        self.enabled = False
        self.frames_per_dag = frames_per_dag
        self.max_dags = max_dags
        self._channels: OrderedDict[str, FrameChannel] = OrderedDict()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: global frame seq across every channel — the events cursor
        self._seq = 0

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._cond:
            self._channels.clear()
            self._seq = 0
            self._cond.notify_all()

    # -- capture -------------------------------------------------------
    def channel(self, dag, *, clients: int = 0,
                policy: str = "") -> FrameChannel:
        """The channel for ``dag`` (created on first use), keyed by
        its content-addressed fingerprint.  A re-run of the same dag
        structure continues the existing channel's seq."""
        fp = dag.fingerprint()
        with self._cond:
            ch = self._channels.get(fp)
            if ch is None:
                ch = FrameChannel(fp, dag, self.frames_per_dag)
                self._channels[fp] = ch
                while len(self._channels) > self.max_dags:
                    self._channels.popitem(last=False)
            else:
                self._channels.move_to_end(fp)
            ch.clients = clients or ch.clients
            if policy:
                ch.policy = policy
            self._m_channels().set(len(self._channels))
            return ch

    def record(
        self,
        channel: FrameChannel,
        *,
        step: int,
        t: float,
        executed,
        eligible,
        occupancy,
        events: tuple[dict, ...] = (),
        done: bool = False,
    ) -> int:
        """Append one frame to ``channel``; returns its seq.

        ``executed`` / ``eligible`` are iterables of dag nodes (not
        yet stringified); ``blocked`` is derived — the three sets
        partition the dag.  Wakes every ``/v1/events`` waiter.
        """
        names = channel.names
        executed_w = sorted({names[v] for v in executed})
        eligible_w = sorted({names[v] for v in eligible})
        taken = set(executed_w)
        taken.update(eligible_w)
        blocked_w = sorted(
            w for w in names.values() if w not in taken
        )
        occupancy_w: list[str | None] = []
        for v in occupancy:
            if v is None:
                occupancy_w.append(None)
            else:
                w = names.get(v)
                occupancy_w.append(w if w is not None else str(v))
        with self._cond:
            channel.seq += 1
            self._seq += 1
            profile = channel.profile
            t_exec = len(executed_w)
            optimal = (
                profile[t_exec] if profile is not None
                and t_exec < len(profile) else
                (profile[-1] if profile else None)
            )
            if len(channel.frames) == channel.frames.maxlen:
                channel.dropped += 1
            channel.frames.append(ScheduleFrame(
                seq=channel.seq,
                step=step,
                t=t,
                executed=tuple(executed_w),
                eligible=tuple(eligible_w),
                blocked=tuple(blocked_w),
                occupancy=tuple(occupancy_w),
                optimal=optimal,
                events=tuple(events),
                done=done,
                request=current_request_id(),
            ))
            self._channels.move_to_end(channel.fingerprint)
            self._m_frames().inc()
            self._cond.notify_all()
            return channel.seq

    def set_profile(self, dag, profile) -> None:
        """Attach the certified ``M(t)`` profile for ``dag`` so frames
        carry the achieved-vs-optimal comparison.  Creates the channel
        when absent (certification usually precedes simulation)."""
        ch = self.channel(dag)
        with self._cond:
            ch.profile = list(profile)
            self._cond.notify_all()

    # -- reads ---------------------------------------------------------
    def get(self, fingerprint: str) -> FrameChannel | None:
        with self._lock:
            return self._channels.get(fingerprint)

    @property
    def seq(self) -> int:
        """Global frame count across channels (the events cursor)."""
        with self._lock:
            return self._seq

    def index(self) -> dict:
        """The ``/v1/frames`` payload."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "seq": self._seq,
                "dags": {
                    fp: ch.describe()
                    for fp, ch in self._channels.items()
                },
            }

    def latest_seqs(self) -> dict[str, int]:
        with self._lock:
            return {fp: ch.seq for fp, ch in self._channels.items()}

    def recent(self, per_channel: int = 8) -> dict[str, list[dict]]:
        """The newest ``per_channel`` frame payloads of every channel,
        keyed by fingerprint — the flight recorder's frame capture."""
        with self._lock:
            return {
                fp: [f.to_payload()
                     for f in list(ch.frames)[-per_channel:]]
                for fp, ch in self._channels.items()
                if ch.frames
            }

    def wait(self, since: int, timeout: float) -> int:
        """Block until the global seq passes ``since`` (or ``timeout``
        elapses); returns the current global seq.  The long-poll / SSE
        primitive — waiters burn no CPU."""
        with self._cond:
            if self._seq <= since and timeout > 0:
                self._cond.wait(timeout)
            return self._seq

    # -- metrics -------------------------------------------------------
    @staticmethod
    def _m_frames():
        return global_registry().counter(
            "obs_frames_captured_total",
            "schedule frames captured by the observatory",
        )

    @staticmethod
    def _m_channels():
        return global_registry().gauge(
            "obs_frame_channels",
            "dag frame channels currently retained",
        )


#: the process-wide frame store (capture disabled until someone —
#: ``repro serve``, ``repro observe --snapshot``, a test — enables it).
_GLOBAL_FRAME_STORE = FrameStore()


def global_frame_store() -> FrameStore:
    """The process-wide default :class:`FrameStore`."""
    return _GLOBAL_FRAME_STORE


def set_global_frame_store(store: FrameStore) -> FrameStore:
    """Replace the process-wide frame store; returns the old one."""
    global _GLOBAL_FRAME_STORE
    old = _GLOBAL_FRAME_STORE
    _GLOBAL_FRAME_STORE = store
    return old


# ----------------------------------------------------------------------
# HTTP routes (shared by ObsServer and SchedulingService)
# ----------------------------------------------------------------------

#: observatory endpoint templates (listed in 404 payloads).
OBSERVATORY_ENDPOINTS = (
    "GET /ui",
    "GET /v1/frames",
    "GET /v1/dags/{fingerprint}/frame",
    "GET /v1/dags/{fingerprint}/frames?since=SEQ",
    "GET /v1/dags/{fingerprint}/graph",
    "GET /v1/events",
)


def dispatch_observatory(svc, handler, method: str, path: str,
                         query: dict) -> bool:
    """Route one observatory request; returns ``False`` when ``path``
    is not an observatory endpoint (the caller falls through to its
    own routing).  ``svc`` is any
    :class:`~repro.obs.server.HTTPServiceBase` (used for the
    drain-on-stop flag during event streams)."""
    from .server import RequestError  # import cycle guard

    if path == "/ui":
        _require_get(method)
        from .exposition import HTML_CONTENT_TYPE
        from .ui import OBSERVATORY_HTML

        handler.respond(200, OBSERVATORY_HTML, HTML_CONTENT_TYPE)
        return True
    if path == "/v1/frames":
        _require_get(method)
        handler.respond_json(200, global_frame_store().index())
        return True
    if path == "/v1/events":
        _require_get(method)
        _route_events(svc, handler, query)
        return True
    if path.startswith("/v1/dags/") and path != "/v1/dags":
        rest = path[len("/v1/dags/"):]
        fp, _, verb = rest.partition("/")
        if verb not in ("frame", "frames", "graph"):
            return False
        _require_get(method)
        ch = global_frame_store().get(fp)
        if ch is None:
            raise RequestError(
                404, f"no frames recorded for fingerprint {fp!r} "
                     "(frame capture disabled, or the dag never ran)"
            )
        if verb == "graph":
            _route_graph(handler, ch)
        elif verb == "frame":
            _route_frame(handler, ch)
        else:
            _route_frames(handler, ch, query)
        return True
    return False


def _require_get(method: str) -> None:
    from .server import RequestError

    if method != "GET":
        raise RequestError(405, f"method {method} not allowed")


def _route_graph(handler, ch: FrameChannel) -> None:
    store = global_frame_store()
    with store._lock:
        payload = dict(ch.graph)
        payload.update({
            "fingerprint": ch.fingerprint,
            "profile": list(ch.profile) if ch.profile is not None
            else None,
            "clients": ch.clients,
            "policy": ch.policy,
            "latest": ch.seq,
        })
    handler.respond_json(200, payload)


def _route_frame(handler, ch: FrameChannel) -> None:
    from .server import RequestError

    store = global_frame_store()
    with store._lock:
        frame = ch.latest()
        if frame is None:
            raise RequestError(
                404, f"channel {ch.fingerprint!r} holds no frames yet"
            )
        payload = {
            "fingerprint": ch.fingerprint,
            "name": ch.name,
            "latest": ch.seq,
            "frame": frame.to_payload(),
        }
    handler.respond_json(200, payload)


def _route_frames(handler, ch: FrameChannel, query: dict) -> None:
    from .server import RequestError

    since = 0
    if "since" in query:
        try:
            since = int(query["since"][0])
            if since < 0:
                raise ValueError
        except ValueError:
            raise RequestError(
                400, "since must be a non-negative integer"
            ) from None
    store = global_frame_store()
    with store._lock:
        frames = ch.since(since)
        payload = {
            "fingerprint": ch.fingerprint,
            "name": ch.name,
            "latest": ch.seq,
            "dropped": ch.dropped,
            "frames": [f.to_payload() for f in frames],
        }
    handler.respond_json(200, payload)


def _events_stats_delta() -> dict:
    """The compact stats summary shipped with every events message —
    enough for the UI's header/fleet strips without a /stats fetch."""
    from .exposition import snapshot_value

    snap = global_registry().snapshot()
    return {
        "sim_steps": snapshot_value(snap, "sim_steps_total"),
        "sim_completions": snapshot_value(snap, "sim_completions_total"),
        "sim_eligible": snapshot_value(snap, "sim_eligible"),
        "sim_starvation": snapshot_value(snap, "sim_starvation_total"),
        "searches": snapshot_value(snap, "service_searches_total"),
        "registry_entries": snapshot_value(snap, "registry_entries"),
        "frames": snapshot_value(snap, "obs_frames_captured_total"),
    }


def _route_events(svc, handler, query: dict) -> None:
    """``GET /v1/events`` — a Server-Sent Events stream of frame-seq +
    stats deltas.

    The client supplies its cursor via ``?since=SEQ`` or (on
    ``EventSource`` auto-reconnect) the ``Last-Event-ID`` header; each
    message's ``id:`` is the global frame seq, so reconnects resume
    without replay.  Messages are sent when frames land (woken by the
    store's condition variable — no server-side polling) and at a
    ≤ ``EVENTS_HEARTBEAT_SECONDS`` heartbeat so stats deltas flow even
    while nothing simulates.  The stream closes itself after
    ``?timeout=`` seconds (default/maximum
    ``EVENTS_MAX_STREAM_SECONDS``) or when the server drains;
    ``EventSource`` transparently reconnects.
    """
    from .server import RequestError

    store = global_frame_store()
    cursor = 0
    raw = None
    if "since" in query:
        raw = query["since"][0]
    elif handler.headers.get("Last-Event-ID"):
        raw = handler.headers.get("Last-Event-ID")
    if raw is not None:
        try:
            cursor = max(0, int(raw))
        except ValueError:
            raise RequestError(
                400, "since must be a non-negative integer"
            ) from None
    max_stream = EVENTS_MAX_STREAM_SECONDS
    if "timeout" in query:
        try:
            max_stream = min(max_stream,
                             max(0.0, float(query["timeout"][0])))
        except ValueError:
            raise RequestError(400, "timeout must be a number") \
                from None

    from .exposition import SSE_CONTENT_TYPE

    handler.response_status = 200  # bypasses respond(); keep the
    handler.send_response(200)     # post-request accounting honest
    handler.send_header("Content-Type", SSE_CONTENT_TYPE)
    handler.send_header("Cache-Control", "no-store")
    handler.send_header("Connection", "close")
    if getattr(handler, "request_id", None) is not None:
        from .context import REQUEST_ID_HEADER
        handler.send_header(REQUEST_ID_HEADER, handler.request_id)
    handler.close_connection = True
    handler.end_headers()

    deadline = time.monotonic() + max_stream
    try:
        while not svc.closing:
            remaining = deadline - time.monotonic()
            seq = store.wait(
                cursor, min(EVENTS_HEARTBEAT_SECONDS,
                            max(0.0, remaining)))
            kind = "frames" if seq > cursor else "tick"
            data = json.dumps({
                "seq": seq,
                "dags": store.latest_seqs(),
                "stats": _events_stats_delta(),
            }, sort_keys=True)
            handler.wfile.write(
                f"id: {seq}\nevent: {kind}\ndata: {data}\n\n"
                .encode("utf-8")
            )
            handler.wfile.flush()
            cursor = seq
            if time.monotonic() >= deadline:
                break
    except (BrokenPipeError, ConnectionResetError, OSError):
        pass  # client went away; EventSource reconnects on its own


# ----------------------------------------------------------------------
# server-side SVG rendering (repro observe --snapshot)
# ----------------------------------------------------------------------

#: the observatory palette (validated categorical slots 1-3 of the
#: repo's viz palette + neutral grays; see docs/OBSERVABILITY.md §7).
_C_EXECUTED = "#2a78d6"   # slot 1 blue — executed tasks / achieved E(t)
_C_ELIGIBLE = "#1baf7a"   # slot 3 aqua — the ELIGIBLE frontier
_C_INFLIGHT = "#eb6834"   # slot 2 orange — in flight / optimal M(t)
_C_BLOCKED = "#d6d4cf"    # neutral — blocked tasks / idle clients
_C_SURFACE = "#fcfcfb"
_C_INK = "#0b0b0b"
_C_INK_2 = "#52514e"


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def render_frame_svg(
    graph: dict,
    frame: dict | None,
    *,
    achieved: list[int] | None = None,
    profile: list[int] | None = None,
    occupancy: list[str | None] | None = None,
    title: str | None = None,
    width: int = 720,
) -> str:
    """One observatory frame as a standalone SVG document.

    ``graph`` is a :func:`graph_payload` dict (optionally with the
    ``profile`` attached); ``frame`` a ``ScheduleFrame.to_payload``
    dict (``None`` renders the unexecuted dag).  ``achieved`` is the
    eligibility series across frames for the sparkline; ``profile``
    overrides ``graph["profile"]`` as the certified ``M(t)`` overlay.
    This mirrors what the browser page draws — committed to
    ``docs/observatory.svg`` by ``repro observe --snapshot``.
    """
    levels: list[list[str]] = graph.get("levels", [])
    arcs = graph.get("arcs", [])
    profile = profile if profile is not None else graph.get("profile")
    executed = set(frame.get("executed", [])) if frame else set()
    eligible = set(frame.get("eligible", [])) if frame else set()
    occupancy = occupancy if occupancy is not None else (
        list(frame.get("occupancy", [])) if frame else [])
    inflight = {t for t in occupancy if t}

    row_h = 56
    top = 64
    n_levels = max(1, len(levels))
    dag_h = top + n_levels * row_h
    # node radius shrinks for wide dags so levels never overlap
    widest = max((len(lv) for lv in levels), default=1)
    radius = max(4, min(13, (width - 60) // max(1, 2 * widest + 2)))
    pos: dict[str, tuple[float, float]] = {}
    for d, lv in enumerate(levels):
        y = top + d * row_h
        for i, name in enumerate(lv):
            pos[name] = (30 + (width - 60) * (i + 1) / (len(lv) + 1), y)

    parts: list[str] = []
    # arcs first, under the nodes
    for u, v in arcs:
        if u in pos and v in pos:
            (x1, y1), (x2, y2) = pos[u], pos[v]
            parts.append(
                f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                f'y2="{y2:.1f}" stroke="#d6d4cf" stroke-width="1"/>'
            )
    label_nodes = len(pos) <= 64 and radius >= 9
    for name, (x, y) in pos.items():
        if name in executed:
            fill, stroke = _C_EXECUTED, _C_EXECUTED
        elif name in inflight:
            fill, stroke = _C_INFLIGHT, _C_INFLIGHT
        elif name in eligible:
            fill, stroke = _C_ELIGIBLE, _C_ELIGIBLE
        else:
            fill, stroke = _C_SURFACE, _C_BLOCKED
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="1.5"/>'
        )
        if label_nodes:
            parts.append(
                f'<text x="{x:.1f}" y="{y + radius + 11:.1f}" '
                f'text-anchor="middle" font-size="8" '
                f'fill="{_C_INK_2}">{_esc(name)}</text>'
            )

    # eligibility sparkline: achieved E(t) (blue) vs certified M(t)
    # (orange), direct-labeled — one shared y-scale, baseline at 0.
    spark_top = dag_h + 26
    spark_h = 64
    spark_w = width - 130
    series = [s for s in (achieved, profile) if s]
    if series:
        peak = max(max(s) for s in series) or 1

        def pts(values: list[int]) -> str:
            n = max(1, len(values) - 1)
            return " ".join(
                f"{30 + spark_w * i / n:.1f},"
                f"{spark_top + spark_h * (1 - v / peak):.1f}"
                for i, v in enumerate(values)
            )

        parts.append(
            f'<line x1="30" y1="{spark_top + spark_h}" '
            f'x2="{30 + spark_w}" y2="{spark_top + spark_h}" '
            f'stroke="#e5e3de" stroke-width="1"/>'
        )
        if profile:
            parts.append(
                f'<polyline points="{pts(list(profile))}" fill="none" '
                f'stroke="{_C_INFLIGHT}" stroke-width="2" '
                f'stroke-dasharray="5 3"/>'
            )
            parts.append(
                f'<text x="{36 + spark_w}" '
                f'y="{spark_top + spark_h * (1 - profile[-1] / peak) + 3:.1f}" '
                f'font-size="9" fill="{_C_INK_2}">M(t)</text>'
            )
        if achieved:
            parts.append(
                f'<polyline points="{pts(list(achieved))}" fill="none" '
                f'stroke="{_C_EXECUTED}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{36 + spark_w}" '
                f'y="{spark_top + spark_h * (1 - achieved[-1] / peak) + 12:.1f}" '
                f'font-size="9" fill="{_C_INK_2}">E(t)</text>'
            )
        parts.append(
            f'<text x="30" y="{spark_top - 8}" font-size="10" '
            f'fill="{_C_INK_2}">eligibility: achieved E(t) vs certified '
            f'ceiling M(t), peak {peak}</text>'
        )

    # per-client occupancy strip
    occ_top = spark_top + spark_h + 26
    strip_h = 14
    for cid, task in enumerate(occupancy):
        y = occ_top + cid * (strip_h + 4)
        fill = _C_INFLIGHT if task else _C_BLOCKED
        parts.append(
            f'<text x="30" y="{y + strip_h - 3}" font-size="9" '
            f'fill="{_C_INK_2}">c{cid}</text>'
        )
        parts.append(
            f'<rect x="52" y="{y}" width="{width - 182}" '
            f'height="{strip_h}" rx="4" fill="{fill}"/>'
        )
        parts.append(
            f'<text x="{width - 122}" y="{y + strip_h - 3}" '
            f'font-size="9" fill="{_C_INK}">'
            f'{_esc(task) if task else "idle"}</text>'
        )

    height = occ_top + max(1, len(occupancy)) * (strip_h + 4) + 16
    head = title or (
        f'{graph.get("name", "dag")} — step '
        f'{frame.get("step", 0) if frame else 0}, '
        f'{len(executed)}/{graph.get("n", len(pos))} executed, '
        f'{len(eligible)} eligible'
    )
    legend = (
        f'<g font-size="9" fill="{_C_INK_2}">'
        f'<circle cx="36" cy="40" r="5" fill="{_C_EXECUTED}"/>'
        f'<text x="45" y="43">executed</text>'
        f'<circle cx="110" cy="40" r="5" fill="{_C_ELIGIBLE}"/>'
        f'<text x="119" y="43">eligible</text>'
        f'<circle cx="180" cy="40" r="5" fill="{_C_INFLIGHT}"/>'
        f'<text x="189" y="43">in flight</text>'
        f'<circle cx="252" cy="40" r="5" fill="{_C_SURFACE}" '
        f'stroke="{_C_BLOCKED}" stroke-width="1.5"/>'
        f'<text x="261" y="43">blocked</text></g>'
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="system-ui, sans-serif">'
        f'<rect width="{width}" height="{height}" fill="{_C_SURFACE}"/>'
        f'<text x="30" y="24" font-size="13" fill="{_C_INK}" '
        f'font-weight="600">{_esc(head)}</text>'
        f'{legend}{"".join(parts)}</svg>'
    )
