"""HTTP exposition of the observability subsystem.

:class:`ObsServer` is a zero-dependency (stdlib ``http.server``),
thread-based HTTP service publishing the process-wide metrics registry
and tracer, so a running scheduler/simulation can be scraped and
watched from outside the process:

=============  =====================================================
endpoint       response
=============  =====================================================
``/metrics``   Prometheus text exposition format 0.0.4
               (``text/plain; version=0.0.4``)
``/stats``     JSON: the registry snapshot plus tracer/uptime meta
``/healthz``   ``200 ok`` while the process is alive (liveness)
``/readyz``    ``200 ready`` / ``503 not ready`` (readiness; toggle
               via :attr:`ObsServer.ready`)
``/traces``    recent trace records as JSONL
               (``?limit=N`` keeps the newest N)
=============  =====================================================

The server resolves the *global* registry/tracer at request time
unless constructed with explicit instances, so ``set_global_registry``
swaps are visible to scrapers immediately.  Requests are served from a
daemon thread pool (``ThreadingHTTPServer``); exposition only ever
takes the registry locks briefly to snapshot, so scraping a live
search perturbs it minimally (measured in
``benchmarks/bench_observability.py``, gated under the same 5%
instrumentation budget).

CLI surface: ``repro serve-metrics --port P`` runs a standalone
exposition process; ``--serve-metrics PORT`` on ``schedule`` /
``verify`` / ``simulate`` serves during the command; ``repro watch``
renders a live dashboard from ``/stats`` (see
:mod:`repro.obs.dashboard`).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .metrics import MetricsRegistry, global_registry
from .tracing import Tracer, global_tracer

__all__ = ["ObsServer", "PROM_CONTENT_TYPE"]

#: the Prometheus text exposition content type (format version 0.0.4).
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


#: per-request socket timeout (seconds) unless the server overrides it:
#: a client that stalls mid-request (slow-loris) or parks an idle
#: keep-alive connection is cut off after this long, so stalled
#: scrapers can never pin serving threads indefinitely.
DEFAULT_REQUEST_TIMEOUT = 5.0

#: longest accepted request path; anything longer is answered ``414``
#: and the connection closed (the stdlib already caps the whole request
#: line at 64 KiB — this keeps hostile paths out of routing/logs much
#: earlier).
MAX_PATH_LENGTH = 2048


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`ObsServer` (set as the
    ``obs`` class attribute of a per-server subclass)."""

    obs: "ObsServer"
    protocol_version = "HTTP/1.1"
    server_version = "repro-obs"
    #: socket timeout; ``BaseHTTPRequestHandler`` applies it to the
    #: connection and turns a mid-request stall into a closed
    #: connection (the per-server subclass overrides this with
    #: ``ObsServer.request_timeout``).
    timeout = DEFAULT_REQUEST_TIMEOUT

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # scrapers poll; default stderr logging would spam

    def _respond(self, status: int, body: str, content_type: str,
                 close: bool = False) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)

    def _json(self, status: int, payload) -> None:
        self._respond(status, json.dumps(payload, sort_keys=True) + "\n",
                      "application/json")

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        if self.obs.closing:
            # shutdown drain: answer (don't hang) and shed the
            # connection, so a scraper mid-poll can never wedge stop().
            self._respond(503, "shutting down\n",
                          "text/plain; charset=utf-8", close=True)
            return
        if len(self.path) > MAX_PATH_LENGTH:
            self._respond(414, "request path too long\n",
                          "text/plain; charset=utf-8", close=True)
            return
        url = urlsplit(self.path)
        route = getattr(self, f"_route_{url.path.strip('/')}", None)
        if route is None:
            self._json(404, {"error": f"no such endpoint {url.path!r}",
                             "endpoints": sorted(ENDPOINTS)})
            return
        try:
            route(parse_qs(url.query))
        except BrokenPipeError:  # client went away mid-response
            pass

    def _route_metrics(self, _query) -> None:
        self._respond(200, self.obs.registry.to_prometheus(),
                      PROM_CONTENT_TYPE)

    def _route_stats(self, _query) -> None:
        self._json(200, self.obs.stats())

    def _route_healthz(self, _query) -> None:
        self._respond(200, "ok\n", "text/plain; charset=utf-8")

    def _route_readyz(self, _query) -> None:
        if self.obs.ready:
            self._respond(200, "ready\n", "text/plain; charset=utf-8")
        else:
            self._respond(503, "not ready\n", "text/plain; charset=utf-8")

    def _route_traces(self, query) -> None:
        records = self.obs.tracer.records()
        if "limit" in query:
            try:
                limit = int(query["limit"][0])
                if limit < 0:
                    raise ValueError
            except ValueError:
                self._json(400, {"error": "limit must be a "
                                          "non-negative integer"})
                return
            records = records[len(records) - limit:] if limit else []
        body = "".join(rec.to_json() + "\n" for rec in records)
        self._respond(200, body, "application/x-ndjson")


#: served endpoint paths (the 404 payload lists them).
ENDPOINTS = ("/metrics", "/stats", "/healthz", "/readyz", "/traces")


class ObsServer:
    """Thread-based HTTP exposition of a registry and tracer.

    Parameters
    ----------
    registry, tracer:
        Explicit instances to serve; default ``None`` resolves the
        process-wide globals *at request time* (so global swaps are
        picked up immediately).
    host, port:
        Bind address; port 0 asks the OS for an ephemeral port (read
        it back from :attr:`port` after :meth:`start`).
    request_timeout:
        Per-request socket timeout (seconds).  A connection that
        stalls mid-request — a slow-loris scraper — or idles between
        keep-alive requests longer than this is closed, so wedged
        clients cannot pin serving threads.

    Usable as a context manager (``with ObsServer() as srv: ...``);
    the served URL is :attr:`url`.  :attr:`ready` backs ``/readyz``
    and starts ``True``; :attr:`closing` flips during :meth:`stop`,
    making every in-flight or new request answer ``503`` and drop the
    connection so shutdown can never be held hostage by a scraper.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self._registry = registry
        self._tracer = tracer
        self.host = host
        self._port = port
        self.request_timeout = request_timeout
        self.ready = True
        self.closing = False
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- resolution ----------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None \
            else global_registry()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None \
            else global_tracer()

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 after start)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stats(self) -> dict:
        """The ``/stats`` payload: registry snapshot + process meta."""
        tracer = self.tracer
        return {
            "metrics": self.registry.snapshot(),
            "tracer": {
                "enabled": tracer.enabled,
                "retained": len(tracer),
                "dropped": tracer.dropped,
            },
            "ready": self.ready,
            "uptime_seconds": (
                time.time() - self._started_at if self._started_at else 0.0
            ),
        }

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ObsServer":
        """Bind and serve from a daemon thread; returns ``self``.

        Raises ``OSError`` when the address is unavailable (port in
        use, privileged port, ...).
        """
        if self._httpd is not None:
            raise RuntimeError("server already started")
        self.closing = False
        handler = type("_BoundHandler", (_Handler,),
                       {"obs": self, "timeout": self.request_timeout})
        self._httpd = ThreadingHTTPServer((self.host, self._port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"repro-obs-server:{self.port}",
            daemon=True,
        )
        self._started_at = time.time()
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread.

        Enters drain mode first (``closing = True`` — every request
        from here on is answered ``503`` with the connection closed),
        so shutdown is never blocked behind a slow scraper."""
        if self._httpd is None:
            return
        self.closing = True
        self.ready = False
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
