"""HTTP exposition of the observability subsystem — and the hardened
stdlib HTTP base every repro server builds on.

Two layers live here:

* :class:`HTTPServiceBase` / :class:`HardenedHandler` — a reusable,
  zero-dependency (stdlib ``http.server``) threading HTTP server with
  the hardening every long-lived repro endpoint needs: per-request
  socket timeouts (slow-loris cutoff), a request-path length cap
  (``414``), bounded JSON request bodies (``413``/``400``), and
  drain-on-stop (every in-flight or new request is answered ``503``
  with ``Connection: close`` while shutting down, so a stalled client
  can never wedge :meth:`~HTTPServiceBase.stop`).  The scheduling
  service (:mod:`repro.service.http`) subclasses this base.
* :class:`ObsServer` — the observability endpoints on that base:

  =============  =====================================================
  endpoint       response
  =============  =====================================================
  ``/metrics``   Prometheus text exposition format 0.0.4
                 (``text/plain; version=0.0.4``)
  ``/stats``     JSON: the registry snapshot plus tracer/uptime meta
  ``/healthz``   ``200 ok`` while the process is alive (liveness)
  ``/readyz``    ``200 ready`` / ``503 not ready`` (readiness; toggle
                 via :attr:`ObsServer.ready`)
  ``/traces``    recent trace records as JSONL
                 (``?limit=N`` keeps the newest N; ``?since=SEQ``
                 returns only records appended after the cursor, with
                 the resume cursor in ``X-Repro-Trace-Seq``)
  =============  =====================================================

  plus the shared observatory endpoints (``/ui``, ``/v1/frames``,
  ``/v1/dags/{fp}/frame|frames|graph``, ``/v1/events``) routed through
  :func:`repro.obs.observatory.dispatch_observatory` — see
  :mod:`repro.obs.observatory` and ``docs/OBSERVABILITY.md`` §7.

The server resolves the *global* registry/tracer at request time
unless constructed with explicit instances, so ``set_global_registry``
swaps are visible to scrapers immediately.  Requests are served from a
daemon thread pool (``ThreadingHTTPServer``); exposition only ever
takes the registry locks briefly to snapshot, so scraping a live
search perturbs it minimally (measured in
``benchmarks/bench_observability.py``, gated under the same 5%
instrumentation budget).

CLI surface: ``repro serve-metrics --port P`` runs a standalone
exposition process; ``--serve-metrics PORT`` on ``schedule`` /
``verify`` / ``simulate`` serves during the command; ``repro watch``
renders a live dashboard from ``/stats`` (see
:mod:`repro.obs.dashboard`).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .context import (
    REQUEST_ID_HEADER,
    accept_request_id,
    reset_request_id,
    set_request_id,
)
from .exposition import (
    JSON_CONTENT_TYPE,
    NDJSON_CONTENT_TYPE,
    PROM_CONTENT_TYPE,
    TEXT_CONTENT_TYPE,
    json_body,
    prometheus_body,
    stats_payload,
)
from .metrics import MetricsRegistry, global_registry
from .tracing import Tracer, global_tracer

__all__ = [
    "HTTPServiceBase",
    "HardenedHandler",
    "ObsServer",
    "PROM_CONTENT_TYPE",
    "RequestError",
    "route_template",
]


#: per-request socket timeout (seconds) unless the server overrides it:
#: a client that stalls mid-request (slow-loris) or parks an idle
#: keep-alive connection is cut off after this long, so stalled
#: scrapers can never pin serving threads indefinitely.
DEFAULT_REQUEST_TIMEOUT = 5.0

#: longest accepted request path; anything longer is answered ``414``
#: and the connection closed (the stdlib already caps the whole request
#: line at 64 KiB — this keeps hostile paths out of routing/logs much
#: earlier).
MAX_PATH_LENGTH = 2048

#: largest accepted JSON request body (bytes); bigger bodies are
#: answered ``413`` without being read into memory.
MAX_BODY_BYTES = 4 * 1024 * 1024


class RequestError(Exception):
    """A client error a route wants turned into an HTTP response.

    Raised inside a route handler with a status and message;
    :class:`HardenedHandler` converts it to a JSON error payload.
    ``retry_after`` (seconds) adds a ``Retry-After`` header — every
    backpressure rejection (429/503) should set it so well-behaved
    clients know when to come back.
    """

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


#: route templates with a path parameter, longest prefix first —
#: :func:`route_template` maps concrete paths onto these so the
#: ``route`` label of ``service_request_seconds`` stays bounded.
_ROUTE_PREFIXES = (
    ("/v1/debug/dumps/", "/v1/debug/dumps/{id}"),
    ("/v1/schedules/", "/v1/schedules/{fingerprint}"),
    ("/v1/dags/", "/v1/dags/{fingerprint}/*"),
)

#: literal paths served somewhere in the repo's servers.
_ROUTE_LITERALS = frozenset({
    "/healthz", "/readyz", "/metrics", "/stats", "/traces", "/ui",
    "/v1/dags", "/v1/simulate", "/v1/frames", "/v1/events",
    "/v1/slo", "/v1/debug/dumps",
})


def route_template(path: str) -> str:
    """The bounded-cardinality route label for a request path:
    literal paths pass through, parameterized paths collapse to
    their template, anything else becomes ``"other"`` (so hostile
    paths cannot mint unbounded label values)."""
    if path in _ROUTE_LITERALS:
        return path
    for prefix, template in _ROUTE_PREFIXES:
        if path.startswith(prefix):
            return template
    return "other"


class HardenedHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`HTTPServiceBase` (set as
    the ``svc`` class attribute of a per-server subclass).

    Applies the shared hardening before any routing: drain-on-stop
    (503 + close), the path length cap (414), and per-request socket
    timeouts (the per-server subclass overrides :attr:`timeout`).
    Routing itself is delegated to ``svc.dispatch``.
    """

    svc: "HTTPServiceBase"
    protocol_version = "HTTP/1.1"
    server_version = "repro"
    #: socket timeout; ``BaseHTTPRequestHandler`` applies it to the
    #: connection and turns a mid-request stall into a closed
    #: connection (the per-server subclass overrides this with
    #: ``HTTPServiceBase.request_timeout``).
    timeout = DEFAULT_REQUEST_TIMEOUT
    #: the correlation ID of the request being served (set per request
    #: in :meth:`_handle`; echoed by :meth:`respond`).
    request_id: str | None = None
    #: status of the response already sent (0 = none yet) — read by
    #: :meth:`HTTPServiceBase.observe_request` after dispatch.
    response_status: int = 0

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # the opt-in JSON access log replaces stderr noise

    def respond(self, status: int, body: str, content_type: str,
                close: bool = False,
                headers: dict[str, str] | None = None) -> None:
        data = body.encode("utf-8")
        self.response_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        # every repro response is live state (frames, stats, metrics);
        # an intermediary serving a cached copy would show the UI and
        # scrapers stale data, so caching is disabled across the board.
        self.send_header("Cache-Control", "no-store")
        if self.request_id is not None:
            self.send_header(REQUEST_ID_HEADER, self.request_id)
        if headers:
            for name, value in headers.items():
                self.send_header(name, value)
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)

    def respond_json(self, status: int, payload) -> None:
        self.respond(status, json_body(payload), JSON_CONTENT_TYPE)

    def read_json_body(self, max_bytes: int = MAX_BODY_BYTES):
        """Parse the request body as JSON, enforcing the size cap.

        Raises :class:`RequestError` (413 oversized / 400 malformed),
        which :meth:`_handle` converts into the JSON error response.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise RequestError(411, "missing or bad Content-Length") \
                from None
        if length > max_bytes:
            raise RequestError(
                413, f"request body exceeds {max_bytes} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError(400, "empty request body; expected JSON")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(400, f"malformed JSON body: {exc}") \
                from None

    # -- dispatch ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib API
        self._handle("POST")

    def _handle(self, method: str) -> None:
        # request correlation starts here: accept the client's ID or
        # mint one, bind it for everything this request causally
        # touches (spans, frames, exemplars, dumps), echo it on the
        # response — even the drain/hardening short-circuits below.
        self.request_id = accept_request_id(
            self.headers.get(REQUEST_ID_HEADER))
        self.response_status = 0
        if self.svc.closing:
            # shutdown drain: answer (don't hang) and shed the
            # connection, so a client mid-request can never wedge
            # stop().
            self.respond(503, "shutting down\n", TEXT_CONTENT_TYPE,
                         close=True)
            return
        url = urlsplit(self.path)
        token = set_request_id(self.request_id)
        t0 = time.perf_counter()
        try:
            if len(self.path) > self.svc.max_path_length:
                self.respond(414, "request path too long\n",
                             TEXT_CONTENT_TYPE, close=True)
                return
            try:
                self.svc.dispatch(self, method, url.path,
                                  parse_qs(url.query))
            except RequestError as exc:
                headers = None
                if exc.retry_after is not None:
                    headers = {"Retry-After":
                               f"{exc.retry_after:g}"}
                self.respond(exc.status,
                             json_body({"error": exc.message}),
                             JSON_CONTENT_TYPE, headers=headers)
            except BrokenPipeError:  # client went away mid-response
                pass
        finally:
            reset_request_id(token)
            self.svc.observe_request(
                method, url.path, self.response_status,
                time.perf_counter() - t0, self.request_id,
            )


class HTTPServiceBase:
    """Lifecycle and hardening shared by every repro HTTP server.

    Parameters
    ----------
    host, port:
        Bind address; port 0 asks the OS for an ephemeral port (read
        it back from :attr:`port` after :meth:`start`).
    request_timeout:
        Per-request socket timeout (seconds).  A connection that
        stalls mid-request — a slow-loris client — or idles between
        keep-alive requests longer than this is closed, so wedged
        clients cannot pin serving threads.

    Usable as a context manager; the served URL is :attr:`url`.
    :attr:`ready` backs ``/readyz`` handlers and starts ``True``;
    :attr:`closing` flips during :meth:`stop`, making every in-flight
    or new request answer ``503`` and drop the connection so shutdown
    can never be held hostage by a client.  Subclasses implement
    :meth:`dispatch`.
    """

    handler_class: type[HardenedHandler] = HardenedHandler
    max_path_length = MAX_PATH_LENGTH

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        access_log: bool = False,
    ) -> None:
        self.host = host
        self._port = port
        self.request_timeout = request_timeout
        #: opt-in structured access log: one JSON line per request
        #: (request ID, route, status, duration) on
        #: :attr:`access_log_stream`; off by default.
        self.access_log = access_log
        #: where access-log lines go; ``None`` = ``sys.stderr``
        #: resolved at write time (tests point this at a buffer).
        self.access_log_stream = None
        self.ready = True
        self.closing = False
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- routing -------------------------------------------------------
    def dispatch(self, handler: HardenedHandler, method: str,
                 path: str, query: dict) -> None:
        """Route one hardened request; subclasses override."""
        raise NotImplementedError

    # -- request observation -------------------------------------------
    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The registry request-level metrics and ``/v1/slo`` read
        from; the process-wide default unless a subclass serves an
        explicit one (:class:`ObsServer` does)."""
        return global_registry()

    def observe_request(self, method: str, path: str, status: int,
                        duration: float, request_id: str) -> None:
        """Post-response accounting, called once per request by
        :meth:`HardenedHandler._handle`: the RED metric
        ``service_request_seconds{route,status}`` (with the request
        ID as exemplar), the opt-in access log, and the
        flight-recorder trigger on unexpected 5xx.
        """
        route = route_template(path)
        self.metrics_registry.histogram(
            "service_request_seconds",
            "end-to-end request latency by route and status",
            ("route", "status"),
        ).labels(route, str(status)).observe(
            duration, exemplar=request_id)
        if self.access_log:
            line = json.dumps({
                "ts": round(time.time(), 3),
                "request_id": request_id,
                "method": method,
                "path": path,
                "route": route,
                "status": status,
                "duration_ms": round(duration * 1e3, 3),
            }, sort_keys=True)
            stream = self.access_log_stream or sys.stderr
            try:
                print(line, file=stream, flush=True)
            except (OSError, ValueError):
                pass  # a dead log stream must not kill serving
        # 5xx means the server failed the request — capture the black
        # box.  503 is excluded: readiness probes and shutdown drains
        # answer 503 by design.
        if status >= 500 and status != 503:
            from .flightrecorder import global_flight_recorder
            global_flight_recorder().trigger(
                "http-5xx", request_id=request_id,
                detail=f"{method} {path} -> {status}")

    # -- introspection -------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 after start)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def uptime_seconds(self) -> float:
        return time.time() - self._started_at if self._started_at else 0.0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "HTTPServiceBase":
        """Bind and serve from a daemon thread; returns ``self``.

        Raises ``OSError`` when the address is unavailable (port in
        use, privileged port, ...).
        """
        if self._httpd is not None:
            raise RuntimeError("server already started")
        self.closing = False
        handler = type("_BoundHandler", (self.handler_class,),
                       {"svc": self, "timeout": self.request_timeout})
        self._httpd = ThreadingHTTPServer((self.host, self._port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"{type(self).__name__}:{self.port}",
            daemon=True,
        )
        self._started_at = time.time()
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread.

        Enters drain mode first (``closing = True`` — every request
        from here on is answered ``503`` with the connection closed),
        so shutdown is never blocked behind a slow client."""
        if self._httpd is None:
            return
        self.closing = True
        self.ready = False
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "HTTPServiceBase":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


#: served endpoint paths (the 404 payload lists them); the observatory
#: endpoints (``/ui``, ``/v1/...``) are shared with the scheduling
#: service via :func:`repro.obs.observatory.dispatch_observatory`.
ENDPOINTS = (
    "/metrics", "/stats", "/healthz", "/readyz", "/traces",
    "/ui", "/v1/frames", "/v1/dags/{fingerprint}/frame",
    "/v1/dags/{fingerprint}/frames", "/v1/dags/{fingerprint}/graph",
    "/v1/events", "/v1/slo", "/v1/debug/dumps",
    "/v1/debug/dumps/{id}",
)


class ObsServer(HTTPServiceBase):
    """Thread-based HTTP exposition of a registry and tracer.

    Parameters
    ----------
    registry, tracer:
        Explicit instances to serve; default ``None`` resolves the
        process-wide globals *at request time* (so global swaps are
        picked up immediately).
    host, port, request_timeout:
        See :class:`HTTPServiceBase`.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        access_log: bool = False,
    ) -> None:
        super().__init__(host, port, request_timeout,
                         access_log=access_log)
        self._registry = registry
        self._tracer = tracer

    # -- resolution ----------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None \
            else global_registry()

    @property
    def metrics_registry(self) -> MetricsRegistry:
        return self.registry

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None \
            else global_tracer()

    def stats(self) -> dict:
        """The ``/stats`` payload: registry snapshot + process meta."""
        return stats_payload(
            self.registry,
            self.tracer,
            ready=self.ready,
            uptime_seconds=self.uptime_seconds,
        )

    # -- routes --------------------------------------------------------
    def dispatch(self, handler: HardenedHandler, method: str,
                 path: str, query: dict) -> None:
        from .flightrecorder import dispatch_debug
        from .observatory import dispatch_observatory
        from .slo import dispatch_slo

        # shared routes first: they contain slashes, which the
        # attribute-based routing below cannot express
        if dispatch_observatory(self, handler, method, path, query):
            return
        if dispatch_slo(self, handler, method, path):
            return
        if dispatch_debug(self, handler, method, path, query):
            return
        if method != "GET":
            handler.respond_json(
                405, {"error": f"method {method} not allowed"}
            )
            return
        route = getattr(self, f"_route_{path.strip('/')}", None)
        if route is None or "/" in path.strip("/"):
            handler.respond_json(
                404, {"error": f"no such endpoint {path!r}",
                      "endpoints": sorted(ENDPOINTS)})
            return
        route(handler, query)

    def _route_metrics(self, handler, _query) -> None:
        handler.respond(200, prometheus_body(self.registry),
                        PROM_CONTENT_TYPE)

    def _route_stats(self, handler, _query) -> None:
        handler.respond_json(200, self.stats())

    def _route_healthz(self, handler, _query) -> None:
        handler.respond(200, "ok\n", TEXT_CONTENT_TYPE)

    def _route_readyz(self, handler, _query) -> None:
        if self.ready:
            handler.respond(200, "ready\n", TEXT_CONTENT_TYPE)
        else:
            handler.respond(503, "not ready\n", TEXT_CONTENT_TYPE)

    def _route_traces(self, handler, query) -> None:
        tracer = self.tracer
        if "since" in query:
            # incremental scrape: only records appended after the
            # cursor; the response carries the cursor to resume from
            try:
                since = int(query["since"][0])
                if since < 0:
                    raise ValueError
            except ValueError:
                raise RequestError(
                    400, "since must be a non-negative integer"
                ) from None
            records, latest = tracer.records_since(since)
        else:
            records, latest = tracer.records(), tracer.seq
        if "request_id" in query:
            # correlation view: only the records stamped with this
            # request (spans/events it causally touched, including
            # adopted pool-worker branches)
            wanted = query["request_id"][0]
            records = [r for r in records
                       if r.attrs.get("request") == wanted]
        if "limit" in query:
            try:
                limit = int(query["limit"][0])
                if limit < 0:
                    raise ValueError
            except ValueError:
                raise RequestError(
                    400, "limit must be a non-negative integer"
                ) from None
            records = records[len(records) - limit:] if limit else []
        body = "".join(rec.to_json() + "\n" for rec in records)
        handler.respond(200, body, NDJSON_CONTENT_TYPE,
                        headers={"X-Repro-Trace-Seq": str(latest)})
