"""Declarative service-level objectives over the metrics registry.

An :class:`SLObjective` names a budget — a latency quantile, an
error-rate share, or a ratio of two counters — and
:func:`evaluate` checks a set of them against a registry
**snapshot** (the plain dict from
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`), so the same
engine runs in-process (``GET /v1/slo``, the dashboard) and offline
against captured stats.  Three objective kinds:

``latency``
    The ``quantile`` of a histogram metric must stay at or under
    ``threshold`` seconds.  With a label filter, matching series are
    bucket-summed first (the cross-series aggregation
    ``histogram_quantile`` would do server-side).
``error_rate``
    The share of a labeled histogram's observations whose ``status``
    label is 5xx must stay at or under ``threshold``.
``ratio``
    ``numerator / denominator`` (two counters) must stay at or under
    ``threshold``; a zero denominator is vacuously met.

The default objectives (:data:`DEFAULT_OBJECTIVES`) encode the
service's standing budgets: p99 submit and simulate latency, the 5xx
error-rate, and the certificate degradation-rate — the numbers
ROADMAP item 1's throughput work will be measured against.  No
observation yet (empty histogram, zero denominator) evaluates as
**met**: an idle service is inside every budget.

``GET /v1/slo`` (mounted on both the scheduling service and the obs
server via :func:`dispatch_slo`) returns::

    {"ok": true, "objectives": [
      {"name": "submit-p99", "kind": "latency", "ok": true,
       "value": 0.0123, "threshold": 2.5, "detail": "...", ...},
      ...]}

See ``docs/OBSERVABILITY.md`` §8.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import Histogram

__all__ = [
    "DEFAULT_OBJECTIVES",
    "SLObjective",
    "dispatch_slo",
    "evaluate",
    "slo_payload",
]


@dataclass(frozen=True)
class SLObjective:
    """One declarative budget.  ``labels`` is a tuple of
    ``(name, value)`` pairs restricting which series of ``metric``
    count (hashable, so objectives stay frozen/comparable)."""

    name: str
    kind: str  # "latency" | "error_rate" | "ratio"
    description: str
    metric: str
    threshold: float
    labels: tuple[tuple[str, str], ...] = ()
    quantile: float = 0.99  # latency only
    denominator: str = ""  # ratio only

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "error_rate", "ratio"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "ratio" and not self.denominator:
            raise ValueError(f"ratio objective {self.name!r} needs a "
                             "denominator metric")


DEFAULT_OBJECTIVES: tuple[SLObjective, ...] = (
    SLObjective(
        name="submit-p99",
        kind="latency",
        description="p99 schedule-submission latency",
        metric="service_request_seconds",
        labels=(("route", "/v1/dags"),),
        quantile=0.99,
        threshold=2.5,
    ),
    SLObjective(
        name="simulate-p99",
        kind="latency",
        description="p99 simulation latency",
        metric="service_request_seconds",
        labels=(("route", "/v1/simulate"),),
        quantile=0.99,
        threshold=2.5,
    ),
    SLObjective(
        name="error-rate",
        kind="error_rate",
        description="share of requests answered 5xx",
        metric="service_request_seconds",
        threshold=0.01,
    ),
    SLObjective(
        name="degradation-rate",
        kind="ratio",
        description="share of searches degraded to a fallback "
                    "certificate",
        metric="service_degraded_total",
        denominator="service_searches_total",
        threshold=0.05,
    ),
)


def _series_of(data: dict):
    """Yield ``(labels_dict, value)`` leaves of one metric snapshot
    entry, uniformly for labeled and unlabeled metrics."""
    if "series" in data:
        for entry in data["series"]:
            yield entry["labels"], entry["value"]
    elif "value" in data:
        yield {}, data["value"]


def _matches(labels: dict, wanted: tuple[tuple[str, str], ...]) -> bool:
    return all(labels.get(k) == v for k, v in wanted)


def _sum_histogram(data: dict, wanted) -> Histogram | None:
    """Bucket-sum the matching series of a histogram snapshot entry
    into a fresh :class:`Histogram` (None when nothing matches)."""
    out: Histogram | None = None
    for labels, value in _series_of(data):
        if not _matches(labels, wanted):
            continue
        if out is None:
            bounds = [float(b) for b in value["buckets"]]
            if not bounds:
                continue
            out = Histogram(buckets=bounds)
        out._merge_value(value, {})
    return out


def _counter_total(snapshot: dict, metric: str, wanted=()) -> float:
    data = snapshot.get(metric)
    if data is None:
        return 0.0
    return sum(value for labels, value in _series_of(data)
               if _matches(labels, wanted))


def _eval_one(obj: SLObjective, snapshot: dict) -> dict:
    out = {
        "name": obj.name,
        "kind": obj.kind,
        "description": obj.description,
        "metric": obj.metric,
        "threshold": obj.threshold,
        "value": 0.0,
        "ok": True,
        "detail": "no observations",
    }
    if obj.labels:
        out["labels"] = dict(obj.labels)
    data = snapshot.get(obj.metric)
    if obj.kind == "latency":
        hist = _sum_histogram(data, obj.labels) if data else None
        if hist is not None and hist.count:
            value = hist.quantile(obj.quantile)
            out["value"] = round(value, 6)
            out["ok"] = value <= obj.threshold
            out["detail"] = (f"p{round(obj.quantile * 100)} of "
                             f"{hist.count} requests")
        out["quantile"] = obj.quantile
    elif obj.kind == "error_rate":
        total = errors = 0
        if data is not None:
            for labels, value in _series_of(data):
                if not _matches(labels, obj.labels):
                    continue
                n = value["count"] if isinstance(value, dict) else value
                total += n
                if str(labels.get("status", "")).startswith("5"):
                    errors += n
        if total:
            rate = errors / total
            out["value"] = round(rate, 6)
            out["ok"] = rate <= obj.threshold
            out["detail"] = f"{errors} of {total} requests 5xx"
    else:  # ratio
        num = _counter_total(snapshot, obj.metric, obj.labels)
        den = _counter_total(snapshot, obj.denominator)
        out["denominator"] = obj.denominator
        if den:
            rate = num / den
            out["value"] = round(rate, 6)
            out["ok"] = rate <= obj.threshold
            out["detail"] = (f"{round(num)} of {round(den)} "
                             f"{obj.denominator}")
    return out


def evaluate(snapshot: dict,
             objectives=DEFAULT_OBJECTIVES) -> list[dict]:
    """Evaluate ``objectives`` against a registry snapshot; one
    result dict per objective, in declaration order."""
    return [_eval_one(obj, snapshot) for obj in objectives]


def slo_payload(snapshot: dict,
                objectives=DEFAULT_OBJECTIVES) -> dict:
    """The ``GET /v1/slo`` wire document."""
    results = evaluate(snapshot, objectives)
    return {"ok": all(r["ok"] for r in results), "objectives": results}


def dispatch_slo(svc, handler, method: str, path: str) -> bool:
    """Serve ``GET /v1/slo`` if ``path`` matches; returns whether the
    request was handled.  ``svc`` supplies ``metrics_registry``."""
    if path != "/v1/slo":
        return False
    from .server import RequestError
    if method != "GET":
        raise RequestError(405, "method not allowed")
    handler.respond_json(
        200, slo_payload(svc.metrics_registry.snapshot()))
    return True
