"""Structured tracing: nested spans and point events.

A :class:`Tracer` collects :class:`TraceEvent` entries — spans (a
named region with monotonic start/duration) and events (a point in
time) — into a bounded ring buffer, with parent/child nesting tracked
through a ``contextvars.ContextVar`` so traces are correct across
threads and async tasks without any caller bookkeeping.

The tracer is **disabled by default** and the disabled path is a
near-free fast path: ``span()`` checks one attribute and returns a
preallocated no-op context manager (no allocation, no clock read), and
``event()`` returns immediately.  The observability benchmark
(``benchmarks/bench_observability.py``) gates this cost at under 5% of
the bare search kernel.

Export is JSONL (one record per line, schema below), round-trippable
via :func:`load_jsonl`::

    {"kind": "span", "name": "optimality.max_profile", "id": 3,
     "parent": null, "t": 0.01234, "dur": 0.00518,
     "attrs": {"dag": "B_3", "nodes": 32}}
    {"kind": "event", "name": "sim.loss", "id": 7, "parent": 3,
     "t": 0.01301, "dur": null, "attrs": {"client": 2, "task": "v4"}}

``t`` is seconds since the tracer's own epoch (``perf_counter`` at
construction or last :meth:`Tracer.clear`), so timestamps within one
trace are comparable; they are *not* wall-clock times.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from collections import deque
from collections.abc import Sequence
from typing import Any, NamedTuple

from .context import current_request_id

#: sentinel distinguishing "no parent given" from "top-level" in adopt().
_UNSET = object()

__all__ = [
    "TraceEvent",
    "Tracer",
    "global_tracer",
    "set_global_tracer",
    "load_jsonl",
]

#: default ring-buffer capacity (records retained).
DEFAULT_CAPACITY = 65536


class TraceEvent(NamedTuple):
    """One structured trace entry (span or point event).

    Not to be confused with ``repro.sim.server.TraceRecord`` (a
    simulation allocation record); this is the tracer-side schema.
    """

    #: "span" or "event"
    kind: str
    #: dotted record name, e.g. ``"optimality.max_profile"``
    name: str
    #: unique id within this tracer
    id: int
    #: id of the enclosing span, or ``None`` at top level
    parent: int | None
    #: start time, seconds since the tracer epoch (monotonic)
    t: float
    #: span duration in seconds; ``None`` for events
    dur: float | None
    #: free-form JSON-able attributes
    attrs: dict[str, Any]

    def to_json(self) -> str:
        return json.dumps(
            {"kind": self.kind, "name": self.name, "id": self.id,
             "parent": self.parent, "t": self.t, "dur": self.dur,
             "attrs": self.attrs},
            sort_keys=True,
        )


class _NoopSpan:
    """The preallocated disabled-path context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:  # attribute sink, also no-op
        pass


_NOOP_SPAN = _NoopSpan()

#: the active span id, tracked per context (thread / async task).
_current_span: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def detach_current_span() -> None:
    """Clear the context-local span nesting.

    Pool workers call this first: under the ``fork`` start method a
    worker inherits the forking process's context — including the span
    that was open at fan-out time — and a span id from *another
    process* must never parent records in this one (it would collide
    with the worker's own ids and corrupt nesting on adoption).
    """
    _current_span.set(None)


class _LiveSpan:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_id", "_parent",
                 "_t0", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self._attrs.update(attrs)

    def __enter__(self):
        self._id = next(self._tracer._ids)
        self._parent = _current_span.get()
        self._token = _current_span.set(self._id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur = time.perf_counter() - self._t0
        _current_span.reset(self._token)
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        rid = current_request_id()
        if rid is not None:
            self._attrs.setdefault("request", rid)
        self._tracer._append(
            TraceEvent(
                "span", self._name, self._id, self._parent,
                self._t0 - self._tracer._epoch, dur, self._attrs,
            )
        )
        return False


class Tracer:
    """Bounded collector of structured spans and events.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest records are dropped once
        exceeded (``dropped`` counts them).
    enabled:
        Start enabled; default off (the no-op fast path).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = False) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._lock = threading.Lock()
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._epoch = time.perf_counter()
        self.dropped = 0
        #: total records ever appended — the ``/traces?since=`` cursor.
        #: Append order, NOT ``TraceEvent.id`` order: ids are assigned
        #: at span *entry* but spans are appended at *exit*, so a
        #: parent span lands after its children despite its lower id.
        self._appended = 0

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs):
        """A context manager timing a named region.

        Disabled tracers return a shared no-op (no allocation)."""
        if not self.enabled:
            return _NOOP_SPAN
        return _LiveSpan(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point event under the current span (if any)."""
        if not self.enabled:
            return
        rid = current_request_id()
        if rid is not None:
            attrs.setdefault("request", rid)
        self._append(
            TraceEvent(
                "event", name, next(self._ids), _current_span.get(),
                time.perf_counter() - self._epoch, None, attrs,
            )
        )

    def _append(self, rec: TraceEvent) -> None:
        with self._lock:
            if len(self._buf) == self.capacity:
                self.dropped += 1
            self._buf.append(rec)
            self._appended += 1

    # -- adoption ------------------------------------------------------
    def now(self) -> float:
        """Seconds since this tracer's epoch (the ``t`` timebase)."""
        return time.perf_counter() - self._epoch

    def adopt(
        self,
        records: "Sequence[TraceEvent]",
        *,
        t_offset: float = 0.0,
        parent: int | None | object = _UNSET,
    ) -> int:
        """Graft trace records from another tracer into this one.

        This is the cross-process counterpart of
        :meth:`~repro.obs.metrics.MetricsRegistry.merge`: a pool
        worker records spans/events into its own tracer and ships
        ``tracer.records()`` back with its result; the coordinating
        process adopts them here.  Adoption rewrites the records so
        they are indistinguishable from native ones:

        * every record gets a fresh id from this tracer's counter (the
          worker's ids would collide with local ones);
        * parent pointers *within* the adopted batch are remapped to
          the fresh ids; records whose parent is ``None`` or missing
          from the batch (e.g. dropped by the worker's ring buffer)
          are attached under ``parent`` — by default the caller's
          current span, so worker spans nest where the fan-out
          happened;
        * timestamps are shifted by ``t_offset`` — pass
          :meth:`now` captured at fan-out time to place worker records
          on this tracer's timeline (``perf_counter`` epochs are not
          comparable across processes, so this is an alignment to the
          fan-out instant, not a clock sync).

        Adoption is unconditional (it does not check ``enabled``):
        the decision to trace was made by whoever recorded.  Returns
        the number of records adopted.
        """
        if parent is _UNSET:
            parent = _current_span.get()
        # two passes: spans are recorded child-before-parent (on exit),
        # so ids must all be assigned before parents can be remapped.
        id_map = {rec.id: next(self._ids) for rec in records}
        for rec in records:
            self._append(
                rec._replace(
                    id=id_map[rec.id],
                    parent=id_map.get(rec.parent, parent),
                    t=rec.t + t_offset,
                )
            )
        return len(records)

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop all records and restart the epoch.

        The append cursor (:attr:`seq`) is deliberately *not* reset:
        it must stay monotonic for the lifetime of the tracer so a
        scraper's ``?since=`` cursor never silently re-reads records.
        """
        with self._lock:
            self._buf.clear()
            self.dropped = 0
            self._epoch = time.perf_counter()

    # -- access --------------------------------------------------------
    def records(self) -> list[TraceEvent]:
        """The retained records, oldest first."""
        with self._lock:
            return list(self._buf)

    @property
    def seq(self) -> int:
        """Total records ever appended (monotonic; survives
        :meth:`clear`).  The ``/traces?since=`` cursor timebase."""
        with self._lock:
            return self._appended

    def records_since(self, seq: int) -> tuple[list[TraceEvent], int]:
        """Records appended after cursor ``seq``, oldest first, plus
        the current cursor to resume from.

        The cursor counts *appends*, not :attr:`TraceEvent.id` values
        (ids are entry-ordered, the buffer exit-ordered — see
        :attr:`seq`).  A cursor older than the ring's tail returns
        every retained record; the overwritten span shows up in
        ``dropped``.  A cursor at or past the current seq returns no
        records.
        """
        with self._lock:
            latest = self._appended
            missing = latest - seq
            if missing <= 0:
                return [], latest
            if missing >= len(self._buf):
                return list(self._buf), latest
            return list(self._buf)[len(self._buf) - missing:], latest

    def __len__(self) -> int:
        with self._lock:
            return len(self._buf)

    # -- export --------------------------------------------------------
    def to_jsonl(self) -> str:
        """All retained records as JSONL text (one record per line)."""
        return "".join(rec.to_json() + "\n" for rec in self.records())

    def export_jsonl(self, path) -> int:
        """Write the retained records to ``path``; returns the count."""
        records = self.records()
        with open(path, "w") as fh:
            for rec in records:
                fh.write(rec.to_json() + "\n")
        return len(records)


def load_jsonl(text_or_path) -> list[TraceEvent]:
    """Parse JSONL trace text (or a file path) back into records."""
    text = text_or_path
    if "\n" not in text and not text.lstrip().startswith("{"):
        with open(text_or_path) as fh:
            text = fh.read()
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        records.append(
            TraceEvent(d["kind"], d["name"], d["id"], d["parent"],
                        d["t"], d["dur"], d.get("attrs", {}))
        )
    return records


#: the process-wide default tracer (disabled until someone enables it —
#: e.g. the CLI's ``--trace FILE`` flag).
_GLOBAL_TRACER = Tracer()


def global_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`."""
    return _GLOBAL_TRACER


def set_global_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer; returns the old one."""
    global _GLOBAL_TRACER
    old = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return old
