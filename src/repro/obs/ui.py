"""The observatory page served at ``GET /ui``.

One self-contained HTML document — inline CSS and JS, zero external
assets, no CDN — rendering the live schedule observatory in any
browser pointed at a running :class:`~repro.service.http.SchedulingService`
or :class:`~repro.obs.server.ObsServer`:

* the **DAG view**: an SVG of the selected dag (layout from
  ``/v1/dags/{fp}/graph``) whose nodes recolor per frame — executed /
  eligible / in-flight / blocked;
* the **eligibility sparkline**: achieved ``E(t)`` across frames
  overlaid on the certified ceiling ``M(t)``;
* **per-client occupancy strips** from the latest frame;
* a **fleet strip**: registry shard occupancy from ``/stats`` (shown
  when the serving process is the scheduling service).

The page is *push-driven*: one ``EventSource`` on ``/v1/events``
supplies frame-seq deltas (``Last-Event-ID`` makes reconnects resume
at the cursor), and the page fetches ``/v1/dags/{fp}/frames?since=``
only when the stream reports new frames — there is no fixed-interval
busy polling.  Colors follow the repo's validated viz palette (slots
1–3 + neutral ink/surface tokens) with light and dark scopes; the
theme follows the OS setting.
"""

from __future__ import annotations

__all__ = ["OBSERVATORY_HTML"]

OBSERVATORY_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro observatory</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;  /* executed / achieved E(t) */
  --series-2: #eb6834;  /* in flight / certified M(t) */
  --series-3: #1baf7a;  /* eligible frontier */
  --blocked: #d6d4cf;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --blocked: #3a3a38;
    --border: rgba(255,255,255,0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 16px 20px; background: var(--page);
  color: var(--text-primary);
  font: 13px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header { display: flex; align-items: baseline; gap: 14px;
         flex-wrap: wrap; margin-bottom: 12px; }
h1 { font-size: 16px; margin: 0; font-weight: 600; }
#conn { color: var(--text-secondary); font-size: 12px; }
#conn.down { color: var(--series-2); }
select {
  font: inherit; color: var(--text-primary);
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 2px 6px;
}
.cards { display: grid; gap: 12px;
         grid-template-columns: minmax(380px, 3fr) minmax(280px, 2fr); }
@media (max-width: 860px) { .cards { grid-template-columns: 1fr; } }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 12px 14px; min-width: 0;
}
.card h2 { font-size: 12px; font-weight: 600; margin: 0 0 8px;
           color: var(--text-secondary); }
.legend { display: flex; gap: 14px; flex-wrap: wrap;
          font-size: 11px; color: var(--text-secondary);
          margin-top: 6px; }
.legend span { display: inline-flex; align-items: center; gap: 5px; }
.chip { width: 9px; height: 9px; border-radius: 50%; display: inline-block; }
.statrow { display: flex; gap: 18px; flex-wrap: wrap;
           color: var(--text-secondary); font-size: 12px;
           margin-bottom: 10px; }
.statrow b { color: var(--text-primary); font-weight: 600;
             font-variant-numeric: tabular-nums; }
svg { display: block; max-width: 100%; height: auto; }
svg text { font-family: inherit; }
.occrow { display: flex; align-items: center; gap: 8px;
          margin: 3px 0; font-size: 11px;
          color: var(--text-secondary); }
.occrow .bar { flex: 1; height: 13px; border-radius: 4px;
               background: var(--blocked); position: relative;
               overflow: hidden; }
.occrow .bar.busy { background: var(--series-2); }
.occrow .task { min-width: 64px; text-align: right;
                color: var(--text-primary);
                font-variant-numeric: tabular-nums; }
.fleet { display: flex; gap: 4px; align-items: flex-end;
         height: 46px; margin-top: 4px; }
.fleet div { flex: 1; background: var(--series-1); border-radius: 3px 3px 0 0;
             min-height: 2px; }
.fleet-axis { display: flex; justify-content: space-between;
              font-size: 10px; color: var(--muted); }
#empty { color: var(--text-secondary); padding: 30px 8px; }
#slo span.obj { display: inline-flex; align-items: center; gap: 5px; }
#slo .ok { color: var(--series-3); }
#slo .bad { color: var(--series-2); font-weight: 600; }
</style>
</head>
<body>
<header>
  <h1>repro observatory</h1>
  <select id="dagsel" title="dag channel"></select>
  <span id="conn">connecting&hellip;</span>
</header>
<div class="statrow" id="stats"></div>
<div class="statrow" id="slo" title="service-level objectives (/v1/slo)"></div>
<div id="empty">No frames yet &mdash; frame capture is enabled by
<code>repro serve</code>; run a <code>POST /v1/simulate</code> (or
<code>repro observe --snapshot</code> locally) and frames will stream
in here.</div>
<div class="cards" id="cards" style="display:none">
  <div class="card">
    <h2 id="dagtitle">dag</h2>
    <svg id="dag"></svg>
    <div class="legend">
      <span><i class="chip" style="background:var(--series-1)"></i>executed</span>
      <span><i class="chip" style="background:var(--series-3)"></i>eligible</span>
      <span><i class="chip" style="background:var(--series-2)"></i>in flight</span>
      <span><i class="chip" style="background:var(--blocked)"></i>blocked</span>
    </div>
  </div>
  <div class="card">
    <h2>eligibility &mdash; achieved E(t) vs certified ceiling M(t)</h2>
    <svg id="spark" viewBox="0 0 320 90" preserveAspectRatio="none"
         style="width:100%;height:90px"></svg>
    <div class="legend">
      <span><i class="chip" style="background:var(--series-1)"></i>achieved E(t)</span>
      <span><i class="chip" style="background:var(--series-2)"></i>certified M(t)</span>
    </div>
    <h2 style="margin-top:14px">client occupancy</h2>
    <div id="occ"></div>
    <div id="fleetcard" style="display:none">
      <h2 style="margin-top:14px">registry shards (entries per shard)</h2>
      <div class="fleet" id="fleet"></div>
      <div class="fleet-axis" id="fleetaxis"></div>
    </div>
  </div>
</div>
<script>
"use strict";
const SVGNS = "http://www.w3.org/2000/svg";
const state = {
  fp: null,        // selected dag fingerprint
  cursor: 0,       // per-dag frame cursor (frames?since=)
  graph: null,     // /v1/dags/{fp}/graph payload
  achieved: [],    // E(t) per executed-count index for the sparkline
  frame: null,     // latest applied frame
  fetching: false, // one catch-up fetch at a time
  pendingSeqs: {}, // latest per-dag seqs from the events stream
};

function el(id) { return document.getElementById(id); }

// -- events stream (the only push channel; no interval polling) -------
const es = new EventSource("/v1/events");
es.onopen = () => { el("conn").textContent = "live"; el("conn").className = ""; };
es.onerror = () => { el("conn").textContent = "reconnecting\\u2026";
                     el("conn").className = "down"; };
es.addEventListener("frames", (ev) => onDelta(JSON.parse(ev.data), true));
es.addEventListener("tick", (ev) => onDelta(JSON.parse(ev.data), false));

let tickCount = 0;
function onDelta(msg, hasFrames) {
  state.pendingSeqs = msg.dags || {};
  renderStats(msg.stats || {});
  const fps = Object.keys(state.pendingSeqs);
  if (!state.fp && fps.length) {
    // auto-select the most active channel
    selectDag(fps.reduce((a, b) =>
      state.pendingSeqs[a] >= state.pendingSeqs[b] ? a : b));
  }
  refreshSelector(fps);
  if (state.fp && (state.pendingSeqs[state.fp] || 0) > state.cursor) {
    pullFrames();
  }
  // fleet + SLO refresh ride the stream's heartbeat (every ~10
  // msgs), never their own timer
  if (hasFrames || (tickCount++ % 10) === 0) { refreshFleet(); refreshSlo(); }
}

function refreshSelector(fps) {
  const sel = el("dagsel");
  const have = new Set(Array.from(sel.options).map(o => o.value));
  for (const fp of fps) {
    if (have.has(fp)) continue;
    const o = document.createElement("option");
    o.value = fp; o.textContent = fp.slice(0, 12);
    sel.appendChild(o);
  }
  if (state.fp) sel.value = state.fp;
}
el("dagsel").addEventListener("change", (e) => selectDag(e.target.value));

function selectDag(fp) {
  state.fp = fp; state.cursor = 0; state.graph = null;
  state.achieved = []; state.frame = null;
  fetch("/v1/dags/" + fp + "/graph").then(r => r.json()).then(g => {
    state.graph = g;
    el("dagtitle").textContent = g.name + " \\u2014 " + g.n + " tasks" +
      (g.policy ? ", policy " + g.policy : "");
    drawGraph();
    pullFrames();
  });
}

function pullFrames() {
  if (state.fetching || !state.fp) return;
  state.fetching = true;
  fetch("/v1/dags/" + state.fp + "/frames?since=" + state.cursor)
    .then(r => r.json())
    .then(payload => {
      state.fetching = false;
      const frames = payload.frames || [];
      if (!frames.length) return;
      state.cursor = payload.latest;
      for (const f of frames) {
        // index achieved E(t) by executed count: one series even
        // when the ring drops intermediate frames
        state.achieved[f.executed.length] = f.eligible_count;
      }
      applyFrame(frames[frames.length - 1]);
      if ((state.pendingSeqs[state.fp] || 0) > state.cursor) pullFrames();
    })
    .catch(() => { state.fetching = false; });
}

// -- DAG drawing ------------------------------------------------------
const nodeEls = {};
function drawGraph() {
  const g = state.graph, svg = el("dag");
  while (svg.firstChild) svg.removeChild(svg.firstChild);
  for (const k in nodeEls) delete nodeEls[k];
  if (!g) return;
  const W = 640, rowH = 52, top = 26;
  const H = top + Math.max(1, g.levels.length) * rowH;
  svg.setAttribute("viewBox", "0 0 " + W + " " + H);
  const widest = Math.max(1, ...g.levels.map(lv => lv.length));
  const r = Math.max(3.5, Math.min(12, (W - 40) / (2 * widest + 2)));
  const pos = {};
  g.levels.forEach((lv, d) => {
    lv.forEach((name, i) => {
      pos[name] = [20 + (W - 40) * (i + 1) / (lv.length + 1),
                   top + d * rowH];
    });
  });
  for (const [u, v] of g.arcs) {
    if (!(u in pos) || !(v in pos)) continue;
    const ln = document.createElementNS(SVGNS, "line");
    ln.setAttribute("x1", pos[u][0]); ln.setAttribute("y1", pos[u][1]);
    ln.setAttribute("x2", pos[v][0]); ln.setAttribute("y2", pos[v][1]);
    ln.setAttribute("stroke", "var(--grid)");
    svg.appendChild(ln);
  }
  const label = g.nodes.length <= 64 && r >= 8;
  for (const name of g.nodes) {
    const [x, y] = pos[name];
    const c = document.createElementNS(SVGNS, "circle");
    c.setAttribute("cx", x); c.setAttribute("cy", y);
    c.setAttribute("r", r);
    c.setAttribute("fill", "var(--surface-1)");
    c.setAttribute("stroke", "var(--blocked)");
    c.setAttribute("stroke-width", "1.5");
    const t = document.createElementNS(SVGNS, "title");
    t.textContent = name;
    c.appendChild(t);
    svg.appendChild(c);
    nodeEls[name] = c;
    if (label) {
      const tx = document.createElementNS(SVGNS, "text");
      tx.setAttribute("x", x); tx.setAttribute("y", y + r + 10);
      tx.setAttribute("text-anchor", "middle");
      tx.setAttribute("font-size", "8");
      tx.setAttribute("fill", "var(--text-secondary)");
      tx.textContent = name;
      svg.appendChild(tx);
    }
  }
}

function paintNode(name, fillVar) {
  const c = nodeEls[name];
  if (!c) return;
  if (fillVar) {
    c.setAttribute("fill", "var(" + fillVar + ")");
    c.setAttribute("stroke", "var(" + fillVar + ")");
  } else {
    c.setAttribute("fill", "var(--surface-1)");
    c.setAttribute("stroke", "var(--blocked)");
  }
}

function applyFrame(f) {
  state.frame = f;
  el("empty").style.display = "none";
  el("cards").style.display = "";
  const inflight = new Set(f.occupancy.filter(Boolean));
  for (const name in nodeEls) paintNode(name, null);
  for (const name of f.eligible)
    paintNode(name, inflight.has(name) ? "--series-2" : "--series-3");
  for (const name of f.executed) paintNode(name, "--series-1");
  drawSpark();
  drawOccupancy(f);
  const g = state.graph;
  if (g) {
    el("dagtitle").textContent = g.name + " \\u2014 step " + f.step +
      ", " + f.executed.length + "/" + g.n + " executed, " +
      f.eligible_count + " eligible" + (f.done ? " \\u2014 done" : "");
  }
}

// -- sparkline --------------------------------------------------------
function drawSpark() {
  const svg = el("spark");
  while (svg.firstChild) svg.removeChild(svg.firstChild);
  const profile = (state.graph && state.graph.profile) || null;
  const achieved = [];
  for (let i = 0; i < state.achieved.length; i++)
    achieved.push(state.achieved[i] === undefined ? null : state.achieved[i]);
  const peak = Math.max(1,
    ...achieved.filter(v => v !== null),
    ...(profile || [0]));
  const W = 320, H = 80, pad = 6;
  const n = Math.max((profile || []).length, achieved.length, 2) - 1;
  const X = i => pad + (W - 2 * pad) * i / n;
  const Y = v => pad + (H - 2 * pad) * (1 - v / peak);
  const base = document.createElementNS(SVGNS, "line");
  base.setAttribute("x1", pad); base.setAttribute("x2", W - pad);
  base.setAttribute("y1", Y(0)); base.setAttribute("y2", Y(0));
  base.setAttribute("stroke", "var(--baseline)");
  svg.appendChild(base);
  const line = (pts, cssVar, dash) => {
    if (pts.length < 2) return;
    const p = document.createElementNS(SVGNS, "polyline");
    p.setAttribute("points", pts.map(([x, y]) => x + "," + y).join(" "));
    p.setAttribute("fill", "none");
    p.setAttribute("stroke", "var(" + cssVar + ")");
    p.setAttribute("stroke-width", "2");
    p.setAttribute("vector-effect", "non-scaling-stroke");
    if (dash) p.setAttribute("stroke-dasharray", "5 3");
    svg.appendChild(p);
  };
  if (profile) line(profile.map((v, i) => [X(i), Y(v)]), "--series-2", true);
  const apts = [];
  achieved.forEach((v, i) => { if (v !== null) apts.push([X(i), Y(v)]); });
  line(apts, "--series-1", false);
}

// -- occupancy + fleet ------------------------------------------------
function drawOccupancy(f) {
  const box = el("occ");
  box.textContent = "";
  f.occupancy.forEach((task, cid) => {
    const row = document.createElement("div");
    row.className = "occrow";
    const lab = document.createElement("span");
    lab.textContent = "c" + cid;
    const bar = document.createElement("div");
    bar.className = "bar" + (task ? " busy" : "");
    const val = document.createElement("span");
    val.className = "task";
    val.textContent = task || "idle";
    row.append(lab, bar, val);
    box.appendChild(row);
  });
}

function renderStats(s) {
  const pairs = [["steps", s.sim_steps], ["completions", s.sim_completions],
                 ["eligible now", s.sim_eligible],
                 ["starvation", s.sim_starvation],
                 ["searches", s.searches], ["frames", s.frames]];
  el("stats").innerHTML = pairs
    .map(([k, v]) => k + " <b>" + (v === undefined ? 0 : v) + "</b>")
    .join("<span style='color:var(--grid)'>|</span>");
}

function refreshSlo() {
  fetch("/v1/slo").then(r => r.json()).then(doc => {
    const objs = doc.objectives || [];
    if (!objs.length) return;
    el("slo").innerHTML = objs.map(o =>
      "<span class='obj' title='" + o.description + " \\u2014 " +
      o.detail + "'>" + o.name + " <b class='" +
      (o.ok ? "ok" : "bad") + "'>" +
      (o.ok ? o.value : o.value + " &gt; " + o.threshold) +
      "</b></span>"
    ).join("<span style='color:var(--grid)'>|</span>");
  }).catch(() => {});
}

function refreshFleet() {
  fetch("/stats").then(r => r.json()).then(st => {
    const svc = st.service;
    if (!svc || !svc.registry) return;
    const reg = svc.registry;
    const shards = reg.per_shard || [];
    if (!shards.length) return;
    el("fleetcard").style.display = "";
    const peak = Math.max(1, ...shards, reg.capacity_per_shard || 0);
    const box = el("fleet");
    box.textContent = "";
    shards.forEach(nr => {
      const bar = document.createElement("div");
      bar.style.height = Math.max(4, 100 * nr / peak) + "%";
      bar.title = nr + " entries";
      box.appendChild(bar);
    });
    el("fleetaxis").innerHTML =
      "<span>" + shards.length + " shards, " + (reg.entries || 0) +
      " entries (" + (reg.certified || 0) + " certified)</span>" +
      "<span>cap " + (reg.capacity_per_shard || "?") + "/shard</span>";
  }).catch(() => {});
}
</script>
</body>
</html>
"""
