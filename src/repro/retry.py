"""Bounded retry with jittered exponential backoff.

One shared helper for every "the other side may be restarting" call
site: the terminal dashboard's ``/stats`` poll, the trace-cursor
fetch, and the chaos harness's wait-until-``/readyz`` restart poll.
The policy is deliberately boring and *bounded* — a fixed attempt
budget with exponentially growing, jittered sleeps — because an
unbounded retry loop turns a dead server into a hung client, and
synchronized (jitter-free) retries turn a restart into a thundering
herd.

The jitter source and sleep function are injectable so tests are
deterministic and instant.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Sequence

__all__ = ["RetryBudgetExceeded", "backoff_delays", "retry_call"]


class RetryBudgetExceeded(Exception):
    """Every attempt failed; ``last`` carries the final exception."""

    def __init__(self, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"gave up after {attempts} attempts: "
            f"{type(last).__name__}: {last}"
        )
        self.attempts = attempts
        self.last = last


def backoff_delays(
    attempts: int,
    *,
    base_delay: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 2.0,
    jitter: float = 0.5,
    rng: random.Random | None = None,
) -> list[float]:
    """The sleep schedule between ``attempts`` tries: exponential
    growth from ``base_delay`` capped at ``max_delay``, each delay
    stretched by up to ``jitter`` (relative, uniform).  Length is
    ``attempts - 1`` — there is no sleep after the last failure."""
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    rand = rng.random if rng is not None else random.random
    delays = []
    for i in range(attempts - 1):
        delay = min(max_delay, base_delay * (factor ** i))
        delays.append(delay * (1.0 + jitter * rand()))
    return delays


def retry_call(
    fn: Callable,
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 2.0,
    jitter: float = 0.5,
    retry_on: Sequence[type[BaseException]] = (OSError,),
    should_retry: Callable[[BaseException], bool] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    rng: random.Random | None = None,
):
    """Call ``fn()`` up to ``attempts`` times, sleeping a jittered
    exponential backoff between failures.

    An exception is retried only when it is an instance of a
    ``retry_on`` type *and* ``should_retry`` (when given) approves
    it; anything else propagates immediately.  When the attempt
    budget runs out the *original* final exception is re-raised (not
    a wrapper), so callers' existing error handling keeps working.
    """
    delays = backoff_delays(
        attempts, base_delay=base_delay, factor=factor,
        max_delay=max_delay, jitter=jitter, rng=rng,
    )
    for i in range(attempts):
        try:
            return fn()
        except BaseException as exc:
            retryable = isinstance(exc, tuple(retry_on)) and (
                should_retry is None or should_retry(exc)
            )
            if not retryable or i == attempts - 1:
                raise
            sleep(delays[i])
    raise AssertionError("unreachable")  # pragma: no cover
