"""``repro.service`` — scheduling-as-a-service.

The library's certification and simulation machinery behind a
long-lived, multi-client HTTP endpoint (see ``docs/SERVICE.md``):

:mod:`repro.service.registry`
    :class:`DagRegistry` — the sharded, lock-striped,
    content-addressed store of submitted dags and their certified
    schedules (bounded by per-shard LRU spill).
:mod:`repro.service.pipeline`
    :class:`RequestPipeline` — bounded admission (backpressure →
    429), single-flight coalescing of concurrent certification
    requests per fingerprint, micro-batched simulation on a worker
    pool, and graceful degradation to the heuristic schedule.
:mod:`repro.service.durability`
    :class:`DurabilityManager` — the opt-in durable core: a
    CRC32-checksummed write-ahead journal of registry events,
    atomic snapshots, and replay-on-boot crash recovery
    (``docs/ROBUSTNESS.md``; proven by ``tools/chaos_restart.py``).
:mod:`repro.service.http`
    :class:`SchedulingService` — the stdlib HTTP JSON API on the
    hardened :class:`~repro.obs.server.HTTPServiceBase`.

The service consumes the library only through the stable
:mod:`repro.api` facade.  Start one with ``repro serve --port 8080``
(add ``--data-dir`` for crash-durable state) or programmatically::

    from repro.service import SchedulingService

    with SchedulingService(port=8080, data_dir="var/repro") as svc:
        print("serving on", svc.url)
        ...
"""

from .durability import (
    FSYNC_POLICIES,
    DurabilityManager,
    RecoveryReport,
    scan_journal,
)
from .http import ENDPOINTS, SchedulingService
from .pipeline import PipelineConfig, RejectedError, RequestPipeline
from .registry import DagEntry, DagRegistry

__all__ = [
    "ENDPOINTS",
    "FSYNC_POLICIES",
    "DagEntry",
    "DagRegistry",
    "DurabilityManager",
    "PipelineConfig",
    "RecoveryReport",
    "RejectedError",
    "RequestPipeline",
    "SchedulingService",
    "scan_journal",
]
