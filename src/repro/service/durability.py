"""The durable service core: write-ahead journal + crash recovery.

Everything the service would lose in a crash — which dags were
admitted, which certificates the (worst-case exponential) search
paid for, which entries the LRU spilled — is appended to a
**write-ahead journal** before the in-memory state is considered
authoritative, and replayed on boot so a restarted service converges
to its pre-crash state (ROADMAP item 1; the chaos harness
``tools/chaos_restart.py`` proves it with a live ``SIGKILL``).

Journal format (``journal.wal``)
--------------------------------

A 10-byte magic header (``REPROWAL1\\n``) followed by length-prefixed,
CRC32-checksummed records::

    [4B big-endian payload length][4B CRC32 of payload][payload JSON]

The payload is compact JSON with a monotonically increasing ``seq``
and a ``type`` of ``admitted`` (carries the dag wire format),
``certificate`` (carries the full schedule result, self-contained —
it can restore an entry even when the matching ``admitted`` record is
gone), or ``spilled``.  Appends are flushed to the OS on every write
(so a ``SIGKILL`` loses nothing) and ``fsync``'d per the configured
policy (so power loss is bounded):

``always``
    fsync after every append — zero-loss, slowest;
``interval`` (default)
    fsync at most once per ``fsync_interval`` seconds — bounded loss;
``never``
    never fsync — survives process kills, not power loss.

Snapshots and truncation
------------------------

Every ``snapshot_every`` appends (and on graceful close) the full
shadow state is written as an **atomic, fsync'd snapshot**
(``snapshot.json`` via :func:`repro.fsio.atomic_write_json`; the
prior snapshot is kept as ``snapshot.prev.json``) and the journal is
truncated.  A crash between snapshot and truncation merely replays
duplicates — every record applies idempotently.

Recovery state machine (see ``docs/ROBUSTNESS.md``)
---------------------------------------------------

1. load ``snapshot.json``; on corruption fall back to
   ``snapshot.prev.json``, then to an empty state (full journal
   replay) — corruption is *counted*, never raised;
2. scan the journal, stopping at the first bad length/checksum/JSON
   (a torn tail from a crash mid-append); the good prefix is kept,
   the tail is truncated off and counted;
3. apply surviving records with ``seq`` beyond the snapshot's,
   idempotently;
4. rebuild each entry: the dag from its wire format, the schedule
   re-validated by construction (an invalid order cannot build a
   :class:`~repro.core.schedule.Schedule`) and its journaled profile
   must match the replayed one — so a corrupt certificate is
   *discarded and counted*, never served;
5. restore into the :class:`~repro.service.registry.DagRegistry`
   keyed by the journaled content-addressed fingerprint, verifying
   it against the rebuilt dag's fingerprint.

Any disk error during normal operation **degrades** the manager to
in-memory mode (``healthy = False``; counted by
``service_durability_degraded_total``, captured by the flight
recorder) instead of failing requests: durability is a property the
service *reports* losing, never a reason to serve 500s.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field

from ..api import ScheduleResult
from ..core.dag import ComputationDag
from ..core.io import (
    dag_from_dict,
    dag_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from ..exceptions import ReproError
from ..fsio import atomic_write_json
from ..obs import global_registry

__all__ = [
    "DurabilityManager",
    "FSYNC_POLICIES",
    "JournalScan",
    "RecoveryReport",
    "result_from_dict",
    "result_to_dict",
    "scan_journal",
]

#: journal file magic: identifies the format and its version.
JOURNAL_MAGIC = b"REPROWAL1\n"
#: per-record header: payload length + CRC32, both big-endian u32.
_HEADER = struct.Struct(">II")
#: largest accepted record payload; a length prefix beyond this is
#: corruption, not a real record.
MAX_RECORD_BYTES = 16 * 1024 * 1024

#: accepted fsync policies, laxest-loss-bound last.
FSYNC_POLICIES = ("always", "interval", "never")

JOURNAL_FILE = "journal.wal"
SNAPSHOT_FILE = "snapshot.json"
SNAPSHOT_PREV_FILE = "snapshot.prev.json"
_SNAPSHOT_VERSION = 1


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------


def _m_appends():
    return global_registry().counter(
        "journal_appends_total",
        "write-ahead journal records appended", ("type",),
    )


def _m_fsyncs():
    return global_registry().counter(
        "journal_fsyncs_total", "write-ahead journal fsync calls",
    )


def _m_snapshots():
    return global_registry().counter(
        "journal_snapshots_total",
        "atomic snapshots written (each truncates the journal)",
    )


def _m_replay():
    return global_registry().counter(
        "journal_replay_records_total",
        "journal records processed during recovery, by outcome",
        ("outcome",),
    )


def _m_degraded():
    return global_registry().counter(
        "service_durability_degraded_total",
        "disk failures that degraded the service to in-memory mode",
    )


def _g_healthy():
    return global_registry().gauge(
        "durability_healthy",
        "1 while the journal is accepting appends, 0 once degraded",
    )


def _g_journal_bytes():
    return global_registry().gauge(
        "journal_size_bytes", "current write-ahead journal size",
    )


def _g_recovered():
    return global_registry().gauge(
        "registry_recovered_entries",
        "registry entries restored by the last replay-on-boot",
    )


def _g_recovery_seconds():
    return global_registry().gauge(
        "journal_recovery_seconds",
        "wall time of the last replay-on-boot recovery",
    )


# ----------------------------------------------------------------------
# schedule-result wire format
# ----------------------------------------------------------------------


def result_to_dict(result: ScheduleResult) -> dict:
    """A self-contained JSON encoding of a
    :class:`~repro.api.results.ScheduleResult` (the dag travels
    inside the bundled schedule)."""
    return {
        "certificate": result.certificate,
        "ic_optimal": bool(result.ic_optimal),
        "kind": result.kind,
        "strategy": result.strategy,
        "bounds": (list(result.bounds)
                   if result.bounds is not None else None),
        "provenance": [list(p) for p in result.provenance],
        "profile": list(result.profile),
        "schedule": schedule_to_dict(result.schedule),
    }


def result_from_dict(fingerprint: str, data: dict) -> ScheduleResult:
    """Rebuild — and *re-verify* — a journaled schedule result.

    The schedule order is replayed against the rebuilt dag
    (:class:`~repro.core.schedule.Schedule` construction validates
    every precedence arc) and the replayed eligibility profile must
    equal the journaled one; any mismatch raises, so recovery counts
    the record as corrupt instead of serving it.
    """
    sched = schedule_from_dict(data["schedule"])
    profile = data["profile"]
    if not isinstance(profile, list) or \
            list(sched.profile) != list(profile):
        raise ReproError(
            f"journaled profile does not match replayed schedule for "
            f"{fingerprint[:12]} (corrupt certificate)"
        )
    bounds = data.get("bounds")
    return ScheduleResult(
        fingerprint=fingerprint,
        certificate=str(data["certificate"]),
        ic_optimal=bool(data["ic_optimal"]),
        profile=tuple(profile),
        schedule=sched,
        kind=str(data.get("kind", "exact")),
        strategy=str(data.get("strategy", "auto")),
        bounds=tuple(bounds) if bounds is not None else None,
        provenance=tuple(
            tuple(p) for p in data.get("provenance", [])
        ),
    )


# ----------------------------------------------------------------------
# journal scan
# ----------------------------------------------------------------------


@dataclass
class JournalScan:
    """Outcome of one pass over a journal file."""

    #: records that decoded cleanly, in append order
    records: list = field(default_factory=list)
    #: bytes of the valid prefix (magic + clean records)
    good_bytes: int = 0
    #: bytes past the valid prefix (torn tail / corruption)
    torn_bytes: int = 0
    #: why the scan stopped early, ``None`` for a clean file
    stopped: str | None = None
    #: the file was missing entirely
    missing: bool = False


def scan_journal(path: str) -> JournalScan:
    """Scan a journal file tolerantly (see module doc, recovery
    step 2).  Never raises on corruption: the valid prefix is
    returned and everything after the first bad length, checksum, or
    JSON payload is reported as ``torn_bytes``."""
    scan = JournalScan()
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        scan.missing = True
        return scan
    except OSError:
        scan.stopped = "unreadable"
        return scan
    if not data:
        return scan
    off = 0
    if data.startswith(JOURNAL_MAGIC):
        off = len(JOURNAL_MAGIC)
    elif len(data) < len(JOURNAL_MAGIC) and \
            JOURNAL_MAGIC.startswith(data):
        # crash mid-header-write: an incomplete magic is a torn file
        scan.torn_bytes = len(data)
        scan.stopped = "torn-magic"
        return scan
    else:
        scan.torn_bytes = len(data)
        scan.stopped = "bad-magic"
        return scan
    while True:
        if off + _HEADER.size > len(data):
            if off < len(data):
                scan.stopped = "torn-header"
            break
        length, crc = _HEADER.unpack_from(data, off)
        if length == 0 or length > MAX_RECORD_BYTES:
            scan.stopped = "bad-length"
            break
        end = off + _HEADER.size + length
        if end > len(data):
            scan.stopped = "torn-payload"
            break
        payload = data[off + _HEADER.size:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            scan.stopped = "bad-checksum"
            break
        try:
            record = json.loads(payload)
        except ValueError:
            scan.stopped = "bad-json"
            break
        if not isinstance(record, dict):
            scan.stopped = "bad-json"
            break
        scan.records.append(record)
        off = end
    scan.good_bytes = off
    scan.torn_bytes = len(data) - off
    return scan


# ----------------------------------------------------------------------
# recovery report
# ----------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What replay-on-boot found, applied, and discarded."""

    #: registry entries restored (``registry_recovered_entries``)
    entries_restored: int = 0
    #: restored entries carrying a verified certificate
    certified_restored: int = 0
    #: journal records applied beyond the snapshot
    records_applied: int = 0
    #: records at or below the snapshot seq, or re-stating known facts
    records_duplicate: int = 0
    #: records or entries discarded as invalid/corrupt
    records_invalid: int = 0
    #: bytes of torn tail truncated off the journal
    torn_bytes_discarded: int = 0
    #: why the journal scan stopped, ``None`` when clean
    journal_stopped: str | None = None
    #: which snapshot generation seeded the state
    snapshot_used: str = "none"
    #: a snapshot file existed but failed to load/validate
    snapshot_corrupt: bool = False
    #: entries whose journaled fingerprint != the rebuilt dag's
    #: (served under the journaled key; labels were not wire-native)
    fingerprint_mismatches: int = 0
    #: wall-clock recovery time
    seconds: float = 0.0

    @property
    def anomalies(self) -> list[str]:
        """Human-readable recovery anomalies (empty = clean boot)."""
        out = []
        if self.snapshot_corrupt:
            out.append(f"corrupt snapshot (fell back to "
                       f"{self.snapshot_used})")
        if self.torn_bytes_discarded:
            out.append(
                f"torn journal tail: {self.torn_bytes_discarded} bytes "
                f"truncated ({self.journal_stopped})"
            )
        if self.records_invalid:
            out.append(f"{self.records_invalid} corrupt record(s) "
                       "discarded")
        return out

    def to_dict(self) -> dict:
        return {
            "entries_restored": self.entries_restored,
            "certified_restored": self.certified_restored,
            "records_applied": self.records_applied,
            "records_duplicate": self.records_duplicate,
            "records_invalid": self.records_invalid,
            "torn_bytes_discarded": self.torn_bytes_discarded,
            "journal_stopped": self.journal_stopped,
            "snapshot_used": self.snapshot_used,
            "snapshot_corrupt": self.snapshot_corrupt,
            "fingerprint_mismatches": self.fingerprint_mismatches,
            "seconds": round(self.seconds, 6),
            "anomalies": self.anomalies,
        }


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------


class DurabilityManager:
    """Write-ahead journal + snapshots + recovery for one data dir.

    Parameters
    ----------
    data_dir:
        Directory holding ``journal.wal`` and the snapshots; created
        if missing.
    fsync:
        One of :data:`FSYNC_POLICIES` (see module doc).
    fsync_interval:
        Seconds between fsyncs under the ``interval`` policy.
    snapshot_every:
        Appends between automatic snapshot+truncate cycles; ``0``
        disables automatic snapshots (graceful close still writes
        one).

    Thread-safe: appends serialize on one internal lock.  All disk
    failures degrade to in-memory mode (:attr:`healthy`) instead of
    raising into request handlers.
    """

    def __init__(self, data_dir: str, *, fsync: str = "interval",
                 fsync_interval: float = 0.1,
                 snapshot_every: int = 1024) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        self.data_dir = data_dir
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.snapshot_every = snapshot_every
        os.makedirs(data_dir, exist_ok=True)
        self.journal_path = os.path.join(data_dir, JOURNAL_FILE)
        self.snapshot_path = os.path.join(data_dir, SNAPSHOT_FILE)
        self.snapshot_prev_path = os.path.join(data_dir,
                                               SNAPSHOT_PREV_FILE)
        self.healthy = True
        self.last_error: str | None = None
        self._recovering = False
        self._lock = threading.RLock()
        self._fh = None
        self._seq = 0
        self._appends_since_snapshot = 0
        self._bytes = 0
        self._last_fsync = 0.0
        #: fp -> {"dag": wire dict | None, "result": wire dict | None}
        self._state: dict[str, dict] = {}
        _g_healthy().set(1)

    # -- shadow state --------------------------------------------------
    @staticmethod
    def _apply(state: dict, record: dict) -> str:
        """Apply one journal record to the shadow state, idempotently;
        returns ``"applied"``, ``"duplicate"``, or ``"invalid"``."""
        rtype = record.get("type")
        fp = record.get("fp")
        if not isinstance(fp, str) or not fp:
            return "invalid"
        if rtype == "admitted":
            dag = record.get("dag")
            if not isinstance(dag, dict):
                return "invalid"
            entry = state.setdefault(fp, {})
            known = entry.get("dag") is not None
            entry["dag"] = dag
            return "duplicate" if known else "applied"
        if rtype == "certificate":
            result = record.get("result")
            if not isinstance(result, dict):
                return "invalid"
            entry = state.setdefault(fp, {})
            known = entry.get("result") == result
            entry["result"] = result
            if entry.get("dag") is None and \
                    isinstance(result.get("schedule"), dict):
                entry["dag"] = result["schedule"].get("dag")
            return "duplicate" if known else "applied"
        if rtype == "spilled":
            if state.pop(fp, None) is None:
                return "duplicate"
            return "applied"
        return "invalid"

    # -- appends -------------------------------------------------------
    def record_admitted(self, fingerprint: str,
                        dag: ComputationDag) -> bool:
        """Journal a dag admission; False when suppressed/degraded."""
        return self._append({
            "type": "admitted", "fp": fingerprint,
            "dag": dag_to_dict(dag),
        })

    def record_certificate(self, fingerprint: str,
                           result: ScheduleResult) -> bool:
        """Journal a certified schedule (self-contained record)."""
        return self._append({
            "type": "certificate", "fp": fingerprint,
            "result": result_to_dict(result),
        })

    def record_spilled(self, fingerprint: str) -> bool:
        """Journal an LRU spill, so replay stays bounded too."""
        return self._append({"type": "spilled", "fp": fingerprint})

    def _append(self, record: dict) -> bool:
        with self._lock:
            if not self.healthy or self._recovering:
                return False
            try:
                self._seq += 1
                record = dict(record, seq=self._seq)
                payload = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
                fh = self._ensure_open()
                fh.write(_HEADER.pack(
                    len(payload), zlib.crc32(payload) & 0xFFFFFFFF
                ))
                fh.write(payload)
                # flush to the OS on every append: a SIGKILL'd process
                # loses nothing, only power loss is at the mercy of
                # the fsync policy below
                fh.flush()
                self._maybe_fsync(fh)
            except (OSError, ValueError) as exc:
                # ValueError covers writes to a closed/invalid file
                # object — an I/O failure in everything but name
                self._degrade(exc)
                return False
            self._bytes += _HEADER.size + len(payload)
            _g_journal_bytes().set(self._bytes)
            _m_appends().labels(record["type"]).inc()
            self._apply(self._state, record)
            self._appends_since_snapshot += 1
            if self.snapshot_every and \
                    self._appends_since_snapshot >= self.snapshot_every:
                self.snapshot_now()
            return True

    def _ensure_open(self):
        if self._fh is None:
            fresh = not os.path.exists(self.journal_path) or \
                os.path.getsize(self.journal_path) == 0
            self._fh = open(self.journal_path, "ab")
            if fresh:
                self._fh.write(JOURNAL_MAGIC)
                self._fh.flush()
                self._bytes = len(JOURNAL_MAGIC)
            else:
                self._bytes = os.path.getsize(self.journal_path)
        return self._fh

    def _maybe_fsync(self, fh) -> None:
        if self.fsync == "never":
            return
        now = time.monotonic()
        if self.fsync == "interval" and \
                now - self._last_fsync < self.fsync_interval:
            return
        os.fsync(fh.fileno())
        self._last_fsync = now
        _m_fsyncs().inc()

    def flush(self) -> None:
        """Flush and fsync the journal regardless of policy (the
        graceful-drain path)."""
        with self._lock:
            if not self.healthy or self._fh is None:
                return
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                _m_fsyncs().inc()
            except (OSError, ValueError) as exc:
                self._degrade(exc)

    # -- snapshots -----------------------------------------------------
    def snapshot_now(self) -> bool:
        """Write an atomic snapshot of the shadow state and truncate
        the journal; the prior snapshot is kept one generation back.
        Returns False when degraded."""
        with self._lock:
            if not self.healthy or self._recovering:
                return False
            try:
                if os.path.exists(self.snapshot_path):
                    os.replace(self.snapshot_path,
                               self.snapshot_prev_path)
                atomic_write_json(self.snapshot_path, {
                    "version": _SNAPSHOT_VERSION,
                    "seq": self._seq,
                    "entries": self._state,
                })
                # the snapshot is durable; the journal's records are
                # now redundant — truncate.  A crash landing between
                # the two replays duplicates, which apply idempotently.
                if self._fh is not None:
                    self._fh.close()
                    self._fh = None
                with open(self.journal_path, "wb") as fh:
                    fh.write(JOURNAL_MAGIC)
                    fh.flush()
                    os.fsync(fh.fileno())
                self._bytes = len(JOURNAL_MAGIC)
            except OSError as exc:
                self._degrade(exc)
                return False
            self._appends_since_snapshot = 0
            _m_snapshots().inc()
            _g_journal_bytes().set(self._bytes)
            return True

    # -- recovery ------------------------------------------------------
    def recover(self, registry=None, *,
                truncate: bool = True) -> RecoveryReport:
        """Replay snapshot + journal into ``registry`` (a
        :class:`~repro.service.registry.DagRegistry`; ``None``
        rebuilds the shadow state only, e.g. ``repro journal
        compact``).  ``truncate=False`` leaves a torn tail on disk
        untouched (the read-only ``repro journal verify`` path).
        Never raises on corrupt input — see the module doc's
        recovery state machine."""
        t0 = time.perf_counter()
        report = RecoveryReport()
        with self._lock:
            self._recovering = True
            try:
                state, snap_seq = self._load_snapshots(report)
                scan = scan_journal(self.journal_path)
                report.journal_stopped = scan.stopped
                report.torn_bytes_discarded = scan.torn_bytes
                max_seq = snap_seq
                for record in scan.records:
                    seq = record.get("seq")
                    if not isinstance(seq, int):
                        report.records_invalid += 1
                        _m_replay().labels("invalid").inc()
                        continue
                    max_seq = max(max_seq, seq)
                    if seq <= snap_seq:
                        report.records_duplicate += 1
                        _m_replay().labels("duplicate").inc()
                        continue
                    outcome = self._apply(state, record)
                    setattr(report, f"records_{outcome}",
                            getattr(report, f"records_{outcome}") + 1)
                    _m_replay().labels(outcome).inc()
                self._restore_entries(state, registry, report)
                # truncate the torn tail so future appends extend a
                # clean prefix instead of burying records after junk
                if truncate and scan.torn_bytes and not scan.missing:
                    try:
                        os.truncate(self.journal_path, scan.good_bytes)
                    except OSError as exc:
                        self._degrade(exc)
                self._state = state
                self._seq = max_seq
                self._appends_since_snapshot = 0
                self._bytes = (scan.good_bytes
                               or len(JOURNAL_MAGIC))
            finally:
                self._recovering = False
        report.seconds = time.perf_counter() - t0
        _g_recovered().set(report.entries_restored)
        _g_recovery_seconds().set(report.seconds)
        _g_journal_bytes().set(self._bytes)
        if report.anomalies:
            from ..obs.flightrecorder import global_flight_recorder
            global_flight_recorder().trigger(
                "recovery",
                detail="; ".join(report.anomalies),
            )
        return report

    def _load_snapshots(self, report: RecoveryReport) -> tuple[dict, int]:
        """Recovery step 1: newest loadable snapshot generation."""
        for path, label in ((self.snapshot_path, "current"),
                            (self.snapshot_prev_path, "previous")):
            exists = os.path.exists(path)
            if not exists:
                continue
            loaded = self._read_snapshot(path)
            if loaded is None:
                report.snapshot_corrupt = True
                continue
            report.snapshot_used = label
            return loaded
        return {}, 0

    @staticmethod
    def _read_snapshot(path: str) -> tuple[dict, int] | None:
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or \
                data.get("version") != _SNAPSHOT_VERSION:
            return None
        entries = data.get("entries")
        seq = data.get("seq")
        if not isinstance(entries, dict) or not isinstance(seq, int):
            return None
        state = {
            fp: dict(entry)
            for fp, entry in entries.items()
            if isinstance(fp, str) and isinstance(entry, dict)
        }
        return state, seq

    def _restore_entries(self, state: dict, registry,
                         report: RecoveryReport) -> None:
        """Recovery steps 4-5: rebuild, verify, restore."""
        corrupt = []
        for fp, entry in state.items():
            try:
                result = None
                if entry.get("result") is not None:
                    result = result_from_dict(fp, entry["result"])
                dag = None
                if entry.get("dag") is not None:
                    dag = dag_from_dict(entry["dag"])
                elif result is not None:
                    dag = result.schedule.dag
                if dag is None:
                    raise ReproError("entry carries neither dag nor "
                                     "certificate")
                if dag.fingerprint() != fp:
                    # intact record (CRC passed) whose original labels
                    # were not wire-native; serve under the journaled
                    # key clients actually hold
                    report.fingerprint_mismatches += 1
            except Exception:
                report.records_invalid += 1
                _m_replay().labels("invalid").inc()
                corrupt.append(fp)
                continue
            if registry is not None:
                registry.restore_entry(fp, dag, result)
            report.entries_restored += 1
            if result is not None:
                report.certified_restored += 1
        for fp in corrupt:
            state.pop(fp, None)

    # -- failure + lifecycle -------------------------------------------
    def _degrade(self, exc: BaseException) -> None:
        self.healthy = False
        self.last_error = f"{type(exc).__name__}: {exc}"
        _m_degraded().inc()
        _g_healthy().set(0)
        try:
            if self._fh is not None:
                self._fh.close()
        except OSError:
            pass
        self._fh = None
        from ..obs.flightrecorder import global_flight_recorder
        global_flight_recorder().trigger(
            "durability",
            detail=f"journal degraded to in-memory mode: "
                   f"{self.last_error}",
        )

    def close(self) -> None:
        """Graceful shutdown: snapshot (fast next boot) + flush +
        fsync + close.  Safe to call repeatedly or degraded."""
        with self._lock:
            if self.healthy:
                self.snapshot_now()
                self.flush()
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        """A JSON-able summary for ``/stats`` and ``repro journal
        stat``."""
        with self._lock:
            snap_bytes = 0
            try:
                snap_bytes = os.path.getsize(self.snapshot_path)
            except OSError:
                pass
            return {
                "data_dir": self.data_dir,
                "fsync": self.fsync,
                "healthy": self.healthy,
                "last_error": self.last_error,
                "seq": self._seq,
                "entries": len(self._state),
                "certified": sum(
                    1 for e in self._state.values()
                    if e.get("result") is not None
                ),
                "journal_bytes": self._bytes,
                "snapshot_bytes": snap_bytes,
                "appends_since_snapshot": self._appends_since_snapshot,
                "snapshot_every": self.snapshot_every,
            }
