"""Scheduling-as-a-service: the HTTP JSON API.

A zero-dependency (stdlib ``http.server``) JSON service over the
request pipeline, built on the same hardened base as the
observability server (:class:`repro.obs.server.HTTPServiceBase` —
per-request socket timeouts, path-length cap, bounded JSON bodies,
drain-on-stop):

==========================  ==========================================
endpoint                    semantics
==========================  ==========================================
``POST /v1/dags``           submit a dag (the ``dag_to_dict`` wire
                            format); registers it content-addressed
                            and certifies a schedule — coalesced with
                            concurrent submissions of the same
                            structure; ``429`` under backpressure
``GET /v1/schedules/{fp}``  the certified schedule for a registered
                            fingerprint
``POST /v1/simulate``       run the simulator on a submitted dag
                            (micro-batched onto the worker pool);
                            ``429`` when the queue is full, ``504``
                            when the batch window backs up past the
                            request timeout
``GET /healthz``            liveness
``GET /readyz``             readiness (pipeline running)
``GET /metrics``            Prometheus text format 0.0.4
``GET /stats``              JSON: metrics snapshot + ``service``
                            section (registry occupancy, pipeline
                            config, journal/recovery state when
                            serving with ``--data-dir``)
``GET /v1/slo``             declarative service-level objectives
                            evaluated live (:mod:`repro.obs.slo`)
``GET /v1/debug/dumps``     flight-recorder bundle index (and
                            ``/{id}`` fetches one;
                            :mod:`repro.obs.flightrecorder`)
==========================  ==========================================

Every request is correlated: the service accepts or mints an
``X-Repro-Request-Id`` at ingress, binds it for everything the
request touches (spans, frames, exemplars, flight-recorder dumps)
and echoes it on the response; ``429`` backpressure responses carry
``Retry-After`` (docs/OBSERVABILITY.md §8, docs/SERVICE.md).

The service also mounts the live observatory
(:mod:`repro.obs.observatory`): ``GET /ui`` serves the
self-contained HTML page, ``GET /v1/events`` streams frame/stats
deltas (SSE), and ``GET /v1/dags/{fp}/frame|frames|graph`` expose
the per-dag schedule-frame ring buffers.  Frame capture is enabled
on ``start()`` unless constructed with ``frames=False``.

Responses are the canonical JSON wire encoding
(:func:`repro.obs.exposition.json_body`: sorted keys, trailing
newline).  Errors are ``{"error": ...}`` JSON with conventional status
codes.  The service consumes the library exclusively through the
:mod:`repro.api` facade (via the pipeline) — it performs no scheduling
itself.

CLI surface: ``repro serve --port P`` (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

from ..api import API_VERSION, MachineSpec, dag_from_dict, schedule_to_dict
from ..exceptions import ReproError, SimulationError
from ..obs.exposition import (
    PROM_CONTENT_TYPE,
    TEXT_CONTENT_TYPE,
    prometheus_body,
    stats_payload,
)
from ..obs.flightrecorder import (
    DEBUG_ENDPOINTS,
    FlightRecorder,
    dispatch_debug,
    set_global_flight_recorder,
)
from ..obs.metrics import global_registry
from ..obs.observatory import (
    OBSERVATORY_ENDPOINTS,
    dispatch_observatory,
    global_frame_store,
)
from ..obs.server import (
    DEFAULT_REQUEST_TIMEOUT,
    HardenedHandler,
    HTTPServiceBase,
    RequestError,
)
from ..obs.slo import dispatch_slo
from ..obs.tracing import global_tracer
from .durability import DurabilityManager, RecoveryReport
from .pipeline import (
    PipelineConfig,
    RejectedError,
    RequestPipeline,
    _observe_phase,
)
from .registry import DagRegistry

__all__ = ["ENDPOINTS", "SchedulingService"]

#: seconds a 429-rejected client should back off before retrying —
#: sent as ``Retry-After`` on every backpressure response.  One
#: second comfortably outlasts a batch window or a typical certify.
RETRY_AFTER_SECONDS = 1.0

#: served endpoints (the 404 payload lists them).
ENDPOINTS = (
    "POST /v1/dags",
    "GET /v1/schedules/{fingerprint}",
    "POST /v1/simulate",
    "GET /healthz",
    "GET /readyz",
    "GET /metrics",
    "GET /stats",
    "GET /v1/slo",
) + OBSERVATORY_ENDPOINTS + DEBUG_ENDPOINTS

#: simulation options accepted over the wire, with their validators.
#: Everything else in :func:`repro.api.simulate`'s signature (work
#: callables, fault plans, trace recording, explicit schedules) is
#: process-local by nature and not exposed.
_SIM_OPTIONS: dict[str, type] = {
    "policy": str,
    "clients": int,
    "seed": int,
    "work": float,
    "comm_per_input": float,
    "exhaustive_limit": int,
    "state_budget": int,
    "strategy": str,
    "budget": int,
    "machine": str,
}


class SchedulingService(HTTPServiceBase):
    """The scheduling service: registry + pipeline behind HTTP JSON.

    Parameters
    ----------
    host, port, request_timeout:
        See :class:`~repro.obs.server.HTTPServiceBase`.
    registry:
        The :class:`~repro.service.registry.DagRegistry` to serve
        from; default builds a fresh one.
    pipeline_config:
        Admission / coalescing / batching knobs
        (:class:`~repro.service.pipeline.PipelineConfig`).
    frames:
        When true (the default), ``start()`` enables the global
        :class:`~repro.obs.observatory.FrameStore` so simulations
        driven through the service record schedule frames for the
        live observatory (``/ui``, ``/v1/events``).  Pass ``False``
        to keep frame capture off (zero per-step cost).
    access_log:
        Opt-in structured JSON access log (one line per request on
        stderr: request ID, route, status, duration); off by
        default.  See :class:`~repro.obs.server.HTTPServiceBase`.
    dump_dir:
        Where the flight recorder writes its bundles; installs a
        fresh process-wide recorder targeting that directory.
        Default ``None`` keeps the existing global recorder (which
        lazily uses a private temp dir).
    data_dir:
        Opt-in durability (:mod:`repro.service.durability`): a
        directory for the write-ahead journal and snapshots.  On
        ``start()`` the listener comes up **not ready** (``/readyz``
        → 503) while the journal replays into the registry, flipping
        ready only once replay completes; every subsequent store /
        certificate / spill is journaled, and a graceful ``stop()``
        snapshots + fsyncs before exit.  ``None`` (default) serves
        purely in-memory, exactly as before.
    fsync, snapshot_every:
        Journal knobs, forwarded to
        :class:`~repro.service.durability.DurabilityManager`;
        ignored without ``data_dir``.

    ``start()`` spins up the request pipeline (collector thread +
    worker pool) alongside the listener; ``stop()`` drains both.
    Usable as a context manager, like every repro server.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        registry: DagRegistry | None = None,
        pipeline_config: PipelineConfig | None = None,
        frames: bool = True,
        access_log: bool = False,
        dump_dir: str | None = None,
        data_dir: str | None = None,
        fsync: str = "interval",
        snapshot_every: int = 1024,
    ) -> None:
        super().__init__(host, port, request_timeout,
                         access_log=access_log)
        self.registry = registry if registry is not None else DagRegistry()
        self.pipeline = RequestPipeline(self.registry, pipeline_config)
        self.frames = frames
        if dump_dir is not None:
            set_global_flight_recorder(FlightRecorder(dump_dir))
        self.durability: DurabilityManager | None = None
        self.recovery: RecoveryReport | None = None
        if data_dir is not None:
            self.durability = DurabilityManager(
                data_dir, fsync=fsync, snapshot_every=snapshot_every,
            )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "SchedulingService":
        if self.frames:
            global_frame_store().enable()
        self.pipeline.start()
        if self.durability is not None:
            # come up NOT ready: the listener answers (503 on
            # /readyz, 200 on /healthz) while the journal replays,
            # so orchestrators see "alive, warming" — never a served
            # request against a half-recovered registry
            self.ready = False
        try:
            super().start()
        except BaseException:
            self.pipeline.stop()
            raise
        if self.durability is not None:
            self.recovery = self.durability.recover(self.registry)
            # replay done — journal future writes, open for traffic
            self.registry.journal = self.durability
            self.ready = True
        return self

    def stop(self) -> None:
        super().stop()  # drain HTTP first so no new work arrives
        self.pipeline.stop()
        if self.durability is not None:
            # every journaled write is already on disk; snapshot +
            # fsync so the next boot replays from a compact prefix
            self.durability.close()

    # -- routing -------------------------------------------------------
    def dispatch(self, handler: HardenedHandler, method: str,
                 path: str, query: dict) -> None:
        if dispatch_observatory(self, handler, method, path, query):
            return
        if dispatch_slo(self, handler, method, path):
            return
        if dispatch_debug(self, handler, method, path, query):
            return
        if path == "/v1/dags":
            self._require(method, "POST")
            self._route_submit(handler)
        elif path.startswith("/v1/schedules/"):
            self._require(method, "GET")
            self._route_schedule(handler, path[len("/v1/schedules/"):])
        elif path == "/v1/simulate":
            self._require(method, "POST")
            self._route_simulate(handler)
        elif path == "/healthz":
            self._require(method, "GET")
            handler.respond(200, "ok\n", TEXT_CONTENT_TYPE)
        elif path == "/readyz":
            self._require(method, "GET")
            if self.ready:
                handler.respond(200, "ready\n", TEXT_CONTENT_TYPE)
            else:
                handler.respond(503, "not ready\n", TEXT_CONTENT_TYPE)
        elif path == "/metrics":
            self._require(method, "GET")
            handler.respond(200, prometheus_body(global_registry()),
                            PROM_CONTENT_TYPE)
        elif path == "/stats":
            self._require(method, "GET")
            handler.respond_json(200, self.stats())
        else:
            handler.respond_json(
                404, {"error": f"no such endpoint {path!r}",
                      "endpoints": list(ENDPOINTS)})

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise RequestError(405, f"method {method} not allowed")

    @staticmethod
    def _respond_timed(handler: HardenedHandler, route: str,
                       payload: dict) -> None:
        """``respond_json`` with the serialization + socket write
        attributed as the route's ``serialize`` phase."""
        t0 = time.perf_counter()
        handler.respond_json(200, payload)
        _observe_phase(route, "serialize", t0)

    # -- routes --------------------------------------------------------
    def _route_submit(self, handler: HardenedHandler) -> None:
        body = handler.read_json_body()
        if not isinstance(body, dict):
            raise RequestError(400, "expected a JSON object")
        # accept the dag either bare or wrapped as {"dag": {...}}
        payload = body.get("dag", body)
        if not isinstance(payload, dict):
            raise RequestError(400, "'dag' must be a JSON object")
        try:
            dag = dag_from_dict(payload)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            raise RequestError(400, f"bad dag: {exc}") from None
        try:
            entry, how = self.pipeline.submit_dag(dag)
        except RejectedError as exc:
            raise RequestError(429, str(exc),
                               retry_after=RETRY_AFTER_SECONDS) \
                from None
        sched = entry.schedule
        assert sched is not None, "submit_dag returns certified entries"
        self._respond_timed(handler, "/v1/dags", {
            "api_version": API_VERSION,
            "fingerprint": entry.fingerprint,
            "how": how,
            "certificate": sched.certificate,
            "kind": sched.kind,
            "strategy": sched.strategy,
            "bounds": list(sched.bounds) if sched.bounds else sched.bounds,
            "provenance": [list(p) for p in sched.provenance],
            "ic_optimal": sched.ic_optimal,
            "profile": list(sched.profile),
            "schedule_path": f"/v1/schedules/{entry.fingerprint}",
        })

    def _route_schedule(self, handler: HardenedHandler,
                        fingerprint: str) -> None:
        entry = self.registry.get(fingerprint)
        if entry is None:
            raise RequestError(
                404, f"no registered dag with fingerprint "
                     f"{fingerprint!r} (never submitted, or spilled "
                     f"from the registry — resubmit via POST /v1/dags)"
            )
        sched = entry.schedule
        if sched is None:
            raise RequestError(
                409, "dag registered but not certified yet"
            )
        handler.respond_json(200, {
            "api_version": API_VERSION,
            "fingerprint": entry.fingerprint,
            "certificate": sched.certificate,
            "kind": sched.kind,
            "strategy": sched.strategy,
            "bounds": list(sched.bounds) if sched.bounds else sched.bounds,
            "provenance": [list(p) for p in sched.provenance],
            "ic_optimal": sched.ic_optimal,
            "profile": list(sched.profile),
            "hits": entry.hits,
            "schedule": schedule_to_dict(sched.schedule),
        })

    def _route_simulate(self, handler: HardenedHandler) -> None:
        body = handler.read_json_body()
        if not isinstance(body, dict):
            raise RequestError(400, "expected a JSON object")
        dag = self._resolve_sim_dag(body)
        kwargs = {}
        for key, value in body.items():
            if key in ("dag", "fingerprint"):
                continue
            caster = _SIM_OPTIONS.get(key)
            if caster is None:
                raise RequestError(
                    400, f"unknown simulation option {key!r} "
                         f"(accepted: {sorted(_SIM_OPTIONS)})"
                )
            try:
                kwargs[key] = caster(value)
            except (TypeError, ValueError):
                raise RequestError(
                    400, f"option {key!r} must be {caster.__name__}"
                ) from None
        if "machine" in kwargs:
            # validate the spec at admission so a typo is a fast 400,
            # not a queued simulation that fails later
            try:
                MachineSpec.parse(kwargs["machine"])
            except SimulationError as exc:
                raise RequestError(
                    400, f"invalid machine spec: {exc}"
                ) from None
        try:
            future = self.pipeline.submit_simulation(dag, **kwargs)
        except RejectedError as exc:
            raise RequestError(429, str(exc),
                               retry_after=RETRY_AFTER_SECONDS) \
                from None
        try:
            result = future.result(
                timeout=self.pipeline.config.request_timeout
            )
        except FutureTimeoutError:
            future.cancel()
            raise RequestError(504, "simulation timed out") from None
        except RejectedError as exc:
            raise RequestError(429, str(exc),
                               retry_after=RETRY_AFTER_SECONDS) \
                from None
        except (ReproError, SimulationError, ValueError) as exc:
            raise RequestError(400, f"simulation failed: {exc}") \
                from None
        self._respond_timed(handler, "/v1/simulate", {
            "api_version": API_VERSION,
            "fingerprint": result.fingerprint,
            "policy": result.policy,
            "certificate": result.certificate,
            "kind": result.kind,
            "makespan": result.makespan,
            "utilization": result.utilization,
            "starvation_events": result.starvation_events,
            "idle_time": result.idle_time,
            "completed": result.completed,
            "lost_allocations": result.lost_allocations,
            "mean_headroom": result.mean_headroom,
            "machine": result.machine,
            "machine_report": (
                None if result.machine_report is None
                else dataclasses.asdict(result.machine_report)
            ),
        })

    def _resolve_sim_dag(self, body: dict):
        """The dag to simulate: inline (``dag``) or by reference to a
        previously submitted fingerprint (``fingerprint``)."""
        if "dag" in body:
            if not isinstance(body["dag"], dict):
                raise RequestError(400, "'dag' must be a JSON object")
            try:
                return dag_from_dict(body["dag"])
            except (ReproError, KeyError, TypeError, ValueError) as exc:
                raise RequestError(400, f"bad dag: {exc}") from None
        if "fingerprint" in body:
            entry = self.registry.get(str(body["fingerprint"]))
            if entry is None:
                raise RequestError(
                    404, f"no registered dag with fingerprint "
                         f"{body['fingerprint']!r}"
                )
            return entry.dag
        raise RequestError(400, "provide 'dag' or 'fingerprint'")

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict:
        cfg = self.pipeline.config
        durability = None
        if self.durability is not None:
            durability = self.durability.stats()
            durability["recovery"] = (
                self.recovery.to_dict()
                if self.recovery is not None else None
            )
        return stats_payload(
            global_registry(),
            global_tracer(),
            ready=self.ready,
            uptime_seconds=self.uptime_seconds,
            extra={
                "service": {
                    "api_version": API_VERSION,
                    "registry": self.registry.stats(),
                    "pipeline": {
                        "max_inflight": cfg.max_inflight,
                        "max_queue": cfg.max_queue,
                        "workers": cfg.workers,
                        "batch_max": cfg.batch_max,
                        "batch_window": cfg.batch_window,
                        "exhaustive_limit": cfg.exhaustive_limit,
                        "state_budget": cfg.state_budget,
                        "strategy": cfg.strategy,
                        "budget": cfg.budget,
                    },
                    "durability": durability,
                },
            },
        )
