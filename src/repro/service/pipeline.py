"""The service request pipeline: admission, coalescing, batching.

Between the HTTP layer and the :mod:`repro.api` facade sits one
pipeline enforcing the serving disciplines the ROADMAP's
heavy-traffic goal needs:

* **bounded admission** — at most ``max_inflight`` scheduling
  requests and ``max_queue`` queued simulation requests exist at any
  moment; excess load is *rejected immediately* (the HTTP layer turns
  that into ``429 Too Many Requests``) rather than queued without
  bound, so latency stays bounded and memory per request cannot grow
  with offered load (``service_rejected_total{reason}``);
* **coalescing (single-flight)** — concurrent scheduling requests for
  the same dag fingerprint share *one* certification search: the
  first requester runs it, every concurrent duplicate parks on an
  event and receives the same result
  (``service_coalesced_total`` / ``service_searches_total`` — the
  coalescing hit rate gated by ``benchmarks/bench_service.py``).
  This is the cross-request analogue of the in-process
  :class:`~repro.core.profile_cache.ProfileCache`, which only
  helps *after* a result is stored — under a thundering herd all
  first requests miss the cache simultaneously and would each run
  the exhaustive search without this;
* **micro-batching** — simulation requests are drained from the
  admission queue by a collector thread in small batches (up to
  ``batch_max`` requests or ``batch_window`` seconds, whichever
  first) and fanned onto a fixed worker pool, amortizing dispatch
  and keeping worker threads hot
  (``service_batches_total`` / ``service_batched_requests_total``);
* **graceful degradation, stamped** — per ``docs/ROBUSTNESS.md`` and
  ``docs/CERTIFICATION.md``: when certification fails (state-budget
  exhaustion, worker-pool loss, any unexpected error) the pipeline
  retries through the facade with ``strategy="anytime"`` when the
  config carries a ``budget`` (certificate ``"anytime"`` with sound
  loss bounds), else ``strategy="heuristic"`` — never an unlabeled
  schedule.  Every certified result's coarse kind is counted under
  ``service_certificates_total{kind}``, degradations under
  ``service_degraded_total``;
* **durability without availability coupling** — when the registry
  carries a write-ahead journal
  (:class:`~repro.service.durability.DurabilityManager`), each
  certified result is journaled as part of
  :meth:`~repro.service.registry.DagRegistry.attach_schedule` (timed
  as the ``journal`` phase of ``/v1/dags``).  A failing disk
  *degrades durability, never requests*: the manager flips itself to
  in-memory mode (``service_durability_degraded_total``, flight
  recorder) and appends become no-ops — the pipeline keeps serving
  200s from memory.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from .. import api
from ..core.dag import ComputationDag
from ..obs import global_registry, span
from ..obs.context import (
    current_request_id,
    reset_request_id,
    set_request_id,
)
from ..obs.observatory import global_frame_store
from .registry import DagEntry, DagRegistry

__all__ = ["PipelineConfig", "RejectedError", "RequestPipeline"]


def _m_phases():
    """``service_phase_seconds{route,phase}`` — where a request's
    time went, attributable against the end-to-end
    ``service_request_seconds`` (docs/OBSERVABILITY.md §8)."""
    return global_registry().histogram(
        "service_phase_seconds",
        "time spent per pipeline phase, by route",
        ("route", "phase"),
    )


def _observe_phase(route: str, phase: str, t0: float) -> float:
    """Record one phase ending now; returns the new phase start."""
    t1 = time.perf_counter()
    _m_phases().labels(route, phase).observe(
        t1 - t0, exemplar=current_request_id())
    return t1


class RejectedError(Exception):
    """Admission control rejected the request (backpressure).

    The HTTP layer maps this onto ``429 Too Many Requests``.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"request rejected: {reason}")
        self.reason = reason


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs for one :class:`RequestPipeline`."""

    #: concurrent scheduling requests admitted (searches + waiters)
    max_inflight: int = 32
    #: queued simulation requests admitted
    max_queue: int = 64
    #: simulation worker threads
    workers: int = 4
    #: micro-batch: max requests drained per batch
    batch_max: int = 16
    #: micro-batch: max seconds the collector waits to fill a batch
    batch_window: float = 0.005
    #: seconds a coalesced waiter / queued simulation may wait before
    #: the request times out (the HTTP layer answers 504)
    request_timeout: float = 60.0
    #: scheduling options forwarded to :func:`repro.api.schedule`
    exhaustive_limit: int = 24
    state_budget: int = 500_000
    parallel: bool = False
    #: certification strategy forwarded to :func:`repro.api.schedule`
    strategy: str = "auto"
    #: anytime state budget; when set, failed certifications degrade
    #: to a bounded ``"anytime"`` schedule instead of the bare
    #: heuristic (``docs/CERTIFICATION.md``)
    budget: int | None = None


class _Flight:
    """One in-progress certification search (single-flight slot)."""

    __slots__ = ("done", "entry", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.entry: DagEntry | None = None
        self.error: BaseException | None = None


class _SimRequest:
    """One queued simulation request awaiting its micro-batch.

    Captures the originating request ID at enqueue time so the worker
    thread — a different context — can re-bind it around the actual
    simulation (frames, spans, and exemplars stay correlated), and
    the enqueue timestamp so queue time is attributable.
    """

    __slots__ = ("dag", "kwargs", "future", "request_id", "enqueued_at")

    def __init__(self, dag: ComputationDag, kwargs: dict) -> None:
        self.dag = dag
        self.kwargs = kwargs
        self.future: Future = Future()
        self.request_id = current_request_id()
        self.enqueued_at = time.perf_counter()


class RequestPipeline:
    """Admission + coalescing + batching in front of the facade.

    Thread-safe; one instance serves every HTTP handler thread of a
    :class:`~repro.service.http.SchedulingService`.
    """

    def __init__(self, registry: DagRegistry | None = None,
                 config: PipelineConfig | None = None) -> None:
        self.registry = registry if registry is not None else DagRegistry()
        self.config = config if config is not None else PipelineConfig()
        self._admission = threading.Semaphore(self.config.max_inflight)
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._sim_queue: queue.Queue[_SimRequest | None] = queue.Queue(
            maxsize=self.config.max_queue
        )
        self._pool: ThreadPoolExecutor | None = None
        self._collector: threading.Thread | None = None
        self._stopping = False

    # -- metrics -------------------------------------------------------
    @staticmethod
    def _m_rejected():
        return global_registry().counter(
            "service_rejected_total",
            "requests rejected by admission control", ("reason",),
        )

    @staticmethod
    def _m_coalesced():
        return global_registry().counter(
            "service_coalesced_total",
            "scheduling requests that joined an in-flight search "
            "for the same fingerprint",
        )

    @staticmethod
    def _m_searches():
        return global_registry().counter(
            "service_searches_total",
            "certification searches the service actually ran",
        )

    @staticmethod
    def _m_cached():
        return global_registry().counter(
            "service_schedule_cached_total",
            "scheduling requests answered from the registry without "
            "any search",
        )

    @staticmethod
    def _m_degraded():
        return global_registry().counter(
            "service_degraded_total",
            "requests served a fallback (anytime/heuristic) schedule "
            "after a failed certification search",
        )

    @staticmethod
    def _m_certificates():
        return global_registry().counter(
            "service_certificates_total",
            "schedules served by coarse certificate kind", ("kind",),
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "RequestPipeline":
        if self._pool is not None:
            raise RuntimeError("pipeline already started")
        self._stopping = False
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service-worker",
        )
        self._collector = threading.Thread(
            target=self._collect_batches,
            name="repro-service-batcher",
            daemon=True,
        )
        self._collector.start()
        return self

    def stop(self) -> None:
        if self._pool is None:
            return
        self._stopping = True
        self._sim_queue.put(None)  # wake the collector
        self._collector.join(timeout=5.0)
        self._pool.shutdown(wait=True)
        self._pool = None
        self._collector = None
        # fail any requests stranded in the queue
        while True:
            try:
                req = self._sim_queue.get_nowait()
            except queue.Empty:
                break
            if req is not None:
                req.future.set_exception(
                    RejectedError("service shutting down")
                )

    # -- scheduling (single-flight) ------------------------------------
    def submit_dag(self, dag: ComputationDag) -> tuple[DagEntry, str]:
        """Register ``dag`` and certify it, coalescing duplicates.

        Returns ``(entry, how)`` where ``how`` is ``"cached"`` (the
        registry already held a certified schedule), ``"search"``
        (this request ran the certification), ``"coalesced"`` (it
        joined another request's in-flight search), or ``"degraded"``
        (the search failed and the greedy fallback was served).
        Raises :class:`RejectedError` under backpressure.
        """
        t0 = time.perf_counter()
        if not self._admission.acquire(blocking=False):
            self._m_rejected().labels("schedule_capacity").inc()
            raise RejectedError("scheduling capacity exhausted")
        t0 = _observe_phase("/v1/dags", "admission", t0)
        try:
            entry = self.registry.put(dag)
            _observe_phase("/v1/dags", "registry", t0)
            if entry.schedule is not None:
                self._m_cached().inc()
                return entry, "cached"
            return self._single_flight(entry)
        finally:
            self._admission.release()

    def _single_flight(self, entry: DagEntry) -> tuple[DagEntry, str]:
        fp = entry.fingerprint
        with self._flights_lock:
            flight = self._flights.get(fp)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[fp] = flight
        if not leader:
            self._m_coalesced().inc()
            t0 = time.perf_counter()
            done = flight.done.wait(self.config.request_timeout)
            _observe_phase("/v1/dags", "coalesce_wait", t0)
            if not done:
                raise RejectedError("coalesced wait timed out")
            if flight.error is not None:
                raise flight.error
            assert flight.entry is not None
            return flight.entry, "coalesced"
        how = "search"
        try:
            t0 = time.perf_counter()
            with span("service.schedule", fingerprint=fp,
                      dag=entry.dag.name):
                how = self._certify(entry)
            _observe_phase("/v1/dags", "certify", t0)
            flight.entry = entry
            return entry, how
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._flights_lock:
                self._flights.pop(fp, None)
            flight.done.set()

    def _certify(self, entry: DagEntry) -> str:
        """Run the certification through the facade, degrading to a
        *stamped* fallback on failure (docs/ROBUSTNESS.md): anytime
        with certified loss bounds when the config carries a
        ``budget``, else the labeled heuristic."""
        cfg = self.config
        self._m_searches().inc()
        try:
            result = api.schedule(
                entry.dag,
                strategy=cfg.strategy,
                budget=cfg.budget,
                exhaustive_limit=cfg.exhaustive_limit,
                state_budget=cfg.state_budget,
                parallel=cfg.parallel,
            )
            how = "search"
        except Exception as exc:
            # certification machinery failed — serve a labeled
            # fallback (anytime/heuristic strategies cannot fail)
            fallback = "anytime" if cfg.budget is not None \
                else "heuristic"
            result = api.schedule(
                entry.dag, strategy=fallback, budget=cfg.budget,
            )
            self._m_degraded().inc()
            how = "degraded"
            # black-box capture: the degradation is served silently
            # (a 200 with a fallback certificate), so the flight
            # recorder is the only place its cause survives
            from ..obs.flightrecorder import global_flight_recorder
            global_flight_recorder().trigger(
                "degradation",
                request_id=current_request_id(),
                detail=(f"{entry.dag.name} ({entry.fingerprint}): "
                        f"{type(exc).__name__}: {exc} -> {fallback}"),
            )
        self._m_certificates().labels(result.kind).inc()
        entry.schedule = result
        t_journal = time.perf_counter()
        self.registry.attach_schedule(entry.fingerprint, result)
        if self.registry.journal is not None:
            _observe_phase("/v1/dags", "journal", t_journal)
        store = global_frame_store()
        if store.enabled:
            # attach the certified M(t) so subsequent frames carry the
            # achieved-vs-optimal comparison (observatory sparkline)
            store.set_profile(entry.dag, result.profile)
        return how

    # -- simulation (micro-batched) ------------------------------------
    def submit_simulation(self, dag: ComputationDag,
                          **kwargs) -> Future:
        """Queue one simulation request; resolves to a
        :class:`~repro.api.results.SimulateResult`.

        Raises :class:`RejectedError` when the admission queue is
        full (backpressure) or the pipeline is stopping.
        """
        if self._pool is None or self._stopping:
            self._m_rejected().labels("not_running").inc()
            raise RejectedError("pipeline not running")
        t0 = time.perf_counter()
        req = _SimRequest(dag, kwargs)
        try:
            self._sim_queue.put_nowait(req)
        except queue.Full:
            self._m_rejected().labels("simulate_capacity").inc()
            raise RejectedError("simulation queue full") from None
        _observe_phase("/v1/simulate", "admission", t0)
        return req.future

    def _collect_batches(self) -> None:
        """Collector loop: drain the queue into micro-batches and fan
        them onto the worker pool."""
        m_batches = global_registry().counter(
            "service_batches_total",
            "simulation micro-batches dispatched to the worker pool",
        )
        m_batched = global_registry().counter(
            "service_batched_requests_total",
            "simulation requests dispatched inside micro-batches",
        )
        g_size = global_registry().gauge(
            "service_batch_size_last",
            "size of the most recent simulation micro-batch",
        )
        while True:
            try:
                first = self._sim_queue.get(timeout=0.5)
            except queue.Empty:
                if self._stopping:
                    return
                continue
            if first is None:
                return
            batch = [first]
            deadline = self.config.batch_window
            while len(batch) < self.config.batch_max:
                try:
                    nxt = self._sim_queue.get(timeout=deadline)
                except queue.Empty:
                    break
                if nxt is None:
                    self._dispatch(batch)
                    return
                batch.append(nxt)
            m_batches.inc()
            m_batched.inc(len(batch))
            g_size.set(len(batch))
            self._dispatch(batch)

    def _dispatch(self, batch: list[_SimRequest]) -> None:
        pool = self._pool
        if pool is None:
            for req in batch:
                req.future.set_exception(
                    RejectedError("service shutting down")
                )
            return
        for req in batch:
            pool.submit(self._run_simulation, req)

    @staticmethod
    def _run_simulation(req: _SimRequest) -> None:
        if not req.future.set_running_or_notify_cancel():
            return
        # the worker thread runs outside the HTTP handler's context —
        # re-bind the originating request so the simulation's spans,
        # frames, and exemplars stay correlated with it
        token = set_request_id(req.request_id)
        try:
            t0 = time.perf_counter()
            _m_phases().labels("/v1/simulate", "queue").observe(
                t0 - req.enqueued_at, exemplar=req.request_id)
            with span("service.simulate", dag=req.dag.name):
                result = api.simulate(req.dag, **req.kwargs)
            _observe_phase("/v1/simulate", "simulate", t0)
            req.future.set_result(result)
        except BaseException as exc:
            req.future.set_exception(exc)
        finally:
            reset_request_id(token)
