"""The sharded, content-addressed dag registry.

The service's store of submitted dags and their certified schedules.
Entries are keyed by :meth:`~repro.core.dag.ComputationDag.fingerprint`
— the same content-addressed identity the certification cache uses —
so resubmitting a structurally identical dag (whatever its node
labels, name, or insertion order) lands on the existing entry.

Scale properties:

* **lock striping** — the keyspace is split into N independent
  segments, each with its own lock and LRU order, so concurrent
  requests for different dags never contend on one global lock; a
  fingerprint's segment is a pure function of its hex prefix, and
  uniform SHA-256 fingerprints spread uniformly across segments;
* **bounded memory via LRU spill** — each segment holds at most
  ``capacity_per_shard`` entries and evicts the least recently *used*
  beyond that (the memory-bounding concern of *Multiprocessor
  Scheduling with Memory Constraints*: per-request state must not
  grow with the submission history).  A spilled dag is gone from the
  registry but not from the world — resubmitting it re-certifies
  through the profile cache, which keys by the same fingerprint;
* **observable** — every lookup, store, and eviction is counted in
  the process-wide metrics registry (``registry_*`` series), and the
  entry count is published as a gauge the dashboard and ``/stats``
  expose;
* **durable (opt-in)** — attach a
  :class:`~repro.service.durability.DurabilityManager` as
  :attr:`DagRegistry.journal` and every store, certificate attach,
  and LRU spill is journaled write-ahead, so a crashed service
  replays back to this registry's pre-crash contents on boot
  (:meth:`restore_entry` is the replay entry point).  Journal appends
  happen *outside* the shard locks: the journal serializes on its own
  lock, and the worst interleaving under concurrent writers is a
  reordered admit/spill pair for the same fingerprint — both orders
  replay to a state the LRU could legitimately have reached.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..api import ScheduleResult
from ..core.dag import ComputationDag
from ..obs import global_registry

__all__ = ["DagEntry", "DagRegistry"]


@dataclass
class DagEntry:
    """One registered dag and (once certified) its schedule."""

    fingerprint: str
    dag: ComputationDag
    #: filled by the pipeline after certification; ``None`` while a
    #: dag is registered but not yet scheduled
    schedule: ScheduleResult | None = None
    submitted_at: float = field(default_factory=time.time)
    #: how many times this entry was looked up (hit count)
    hits: int = 0


class _Shard:
    """One lock-striped LRU segment."""

    __slots__ = ("lock", "entries")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: OrderedDict[str, DagEntry] = OrderedDict()


class DagRegistry:
    """Sharded, bounded, content-addressed store of dag entries.

    Parameters
    ----------
    shards:
        Number of lock-striped segments (a power of two keeps the
        prefix modulo unbiased, but any positive count works).
    capacity_per_shard:
        LRU bound per segment; total capacity is
        ``shards * capacity_per_shard``.
    """

    def __init__(self, shards: int = 8,
                 capacity_per_shard: int = 256) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if capacity_per_shard < 1:
            raise ValueError(
                f"capacity_per_shard must be >= 1, got "
                f"{capacity_per_shard}"
            )
        self.shards = shards
        self.capacity_per_shard = capacity_per_shard
        self._shards = [_Shard() for _ in range(shards)]
        #: optional :class:`~repro.service.durability.DurabilityManager`;
        #: when set, stores/attaches/spills are journaled write-ahead
        self.journal = None

    # -- metrics -------------------------------------------------------
    @staticmethod
    def _m_lookups():
        return global_registry().counter(
            "registry_lookups_total",
            "dag registry lookups", ("result",),
        )

    @staticmethod
    def _m_evictions():
        return global_registry().counter(
            "registry_evictions_total",
            "dag registry entries dropped by the per-shard LRU bound",
        )

    @staticmethod
    def _m_stores():
        return global_registry().counter(
            "registry_stores_total", "dag registry entries created",
        )

    def _publish_size(self) -> None:
        global_registry().gauge(
            "registry_entries", "dags currently registered",
        ).set(len(self))

    # -- sharding ------------------------------------------------------
    def _shard_for(self, fingerprint: str) -> _Shard:
        return self._shards[int(fingerprint[:8], 16) % self.shards]

    # -- operations ----------------------------------------------------
    def put(self, dag: ComputationDag) -> DagEntry:
        """Register ``dag``, returning the (possibly existing) entry.

        Content-addressed: a structurally identical dag maps onto the
        existing entry and refreshes its LRU position; a new dag may
        spill the segment's least recently used entry.
        """
        fp = dag.fingerprint()
        shard = self._shard_for(fp)
        with shard.lock:
            entry = shard.entries.get(fp)
            if entry is not None:
                shard.entries.move_to_end(fp)
                self._m_lookups().labels("hit").inc()
                entry.hits += 1
                return entry
            entry = DagEntry(fingerprint=fp, dag=dag)
            shard.entries[fp] = entry
            self._m_stores().inc()
            evicted: list[str] = []
            while len(shard.entries) > self.capacity_per_shard:
                old_fp, _ = shard.entries.popitem(last=False)
                evicted.append(old_fp)
        if evicted:
            self._m_evictions().inc(len(evicted))
        if self.journal is not None:
            self.journal.record_admitted(fp, dag)
            for old_fp in evicted:
                self.journal.record_spilled(old_fp)
        self._publish_size()
        return entry

    def get(self, fingerprint: str) -> DagEntry | None:
        """The entry for ``fingerprint``, refreshing its LRU position;
        ``None`` when absent (never stored, or spilled)."""
        try:
            shard = self._shard_for(fingerprint)
        except ValueError:  # not a hex fingerprint
            self._m_lookups().labels("miss").inc()
            return None
        with shard.lock:
            entry = shard.entries.get(fingerprint)
            if entry is None:
                self._m_lookups().labels("miss").inc()
                return None
            shard.entries.move_to_end(fingerprint)
            self._m_lookups().labels("hit").inc()
            entry.hits += 1
            return entry

    def attach_schedule(self, fingerprint: str,
                        schedule: ScheduleResult) -> None:
        """Record a certified schedule on an existing entry (no-op if
        the entry spilled while the search ran)."""
        shard = self._shard_for(fingerprint)
        with shard.lock:
            entry = shard.entries.get(fingerprint)
            if entry is not None:
                entry.schedule = schedule
        if entry is not None and self.journal is not None:
            # journaled only when actually attached: replaying a
            # certificate for an entry the LRU already dropped would
            # resurrect state the live registry never held
            self.journal.record_certificate(fingerprint, schedule)

    def restore_entry(self, fingerprint: str, dag: ComputationDag,
                      schedule: ScheduleResult | None = None) -> DagEntry:
        """Re-insert an entry during replay-on-boot, keyed by its
        *journaled* fingerprint (authoritative even if the rebuilt
        dag's labels hash differently — clients hold the journaled
        key).  Does **not** journal (the records being replayed are
        already on disk) and does not count as a store; the volatile
        ``hits`` counter restarts at 0.  LRU capacity still applies.
        """
        shard = self._shard_for(fingerprint)
        with shard.lock:
            entry = shard.entries.get(fingerprint)
            if entry is None:
                entry = DagEntry(fingerprint=fingerprint, dag=dag)
                shard.entries[fingerprint] = entry
            if schedule is not None:
                entry.schedule = schedule
            shard.entries.move_to_end(fingerprint)
            evicted = 0
            while len(shard.entries) > self.capacity_per_shard:
                shard.entries.popitem(last=False)
                evicted += 1
        if evicted:
            self._m_evictions().inc(evicted)
        self._publish_size()
        return entry

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)

    def __contains__(self, fingerprint: str) -> bool:
        shard = self._shard_for(fingerprint)
        with shard.lock:
            return fingerprint in shard.entries

    def stats(self) -> dict:
        """A JSON-able summary for ``/stats``."""
        per_shard = []
        certified = 0
        for s in self._shards:
            with s.lock:
                per_shard.append(len(s.entries))
                certified += sum(
                    1 for e in s.entries.values()
                    if e.schedule is not None
                )
        return {
            "shards": self.shards,
            "capacity_per_shard": self.capacity_per_shard,
            "entries": sum(per_shard),
            "per_shard": per_shard,
            "largest_shard": max(per_shard),
            "certified": certified,
        }
