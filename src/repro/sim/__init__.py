"""Event-driven IC server/client simulation with heuristic baselines —
the assessment substrate standing in for the studies the paper cites
([15], [19]); see DESIGN.md "Substitutions"."""

from . import faults, heuristics, machines, metrics, scientific, server, workloads
from .scientific import SCIENTIFIC_WORKFLOWS
from .faults import (
    FAULT_SCENARIOS,
    FaultEvent,
    FaultPlan,
    FaultReport,
    ServerPolicy,
    simulate_with_faults,
)
from .heuristics import BASELINE_POLICIES, Policy, make_policy
from .machines import (
    BspMachine,
    HeteroMachine,
    IdealMachine,
    MachineModel,
    MachineReport,
    MemcapMachine,
    build_machine,
    resolve_machine,
)
from .metrics import (
    PolicyComparison,
    batch_satisfaction,
    compare_policies,
    granularity_tradeoff,
)
from .server import (
    ClientSpec,
    SimulationResult,
    TraceRecord,
    simulate,
    simulate_batched,
    simulate_scheduled,
)

__all__ = [
    "BASELINE_POLICIES",
    "BspMachine",
    "ClientSpec",
    "FAULT_SCENARIOS",
    "FaultEvent",
    "FaultPlan",
    "FaultReport",
    "HeteroMachine",
    "IdealMachine",
    "MachineModel",
    "MachineReport",
    "MemcapMachine",
    "Policy",
    "PolicyComparison",
    "ServerPolicy",
    "SimulationResult",
    "TraceRecord",
    "batch_satisfaction",
    "build_machine",
    "compare_policies",
    "faults",
    "granularity_tradeoff",
    "heuristics",
    "machines",
    "make_policy",
    "metrics",
    "resolve_machine",
    "SCIENTIFIC_WORKFLOWS",
    "scientific",
    "server",
    "simulate",
    "simulate_batched",
    "simulate_scheduled",
    "simulate_with_faults",
    "workloads",
]
