"""Event-driven IC server/client simulation with heuristic baselines —
the assessment substrate standing in for the studies the paper cites
([15], [19]); see DESIGN.md "Substitutions"."""

from . import faults, heuristics, metrics, scientific, server, workloads
from .scientific import SCIENTIFIC_WORKFLOWS
from .faults import (
    FAULT_SCENARIOS,
    FaultEvent,
    FaultPlan,
    FaultReport,
    ServerPolicy,
    simulate_with_faults,
)
from .heuristics import BASELINE_POLICIES, Policy, make_policy
from .metrics import (
    PolicyComparison,
    batch_satisfaction,
    compare_policies,
    granularity_tradeoff,
)
from .server import (
    ClientSpec,
    SimulationResult,
    TraceRecord,
    simulate,
    simulate_batched,
    simulate_scheduled,
)

__all__ = [
    "BASELINE_POLICIES",
    "ClientSpec",
    "FAULT_SCENARIOS",
    "FaultEvent",
    "FaultPlan",
    "FaultReport",
    "Policy",
    "PolicyComparison",
    "ServerPolicy",
    "SimulationResult",
    "TraceRecord",
    "batch_satisfaction",
    "compare_policies",
    "faults",
    "granularity_tradeoff",
    "heuristics",
    "make_policy",
    "metrics",
    "SCIENTIFIC_WORKFLOWS",
    "scientific",
    "server",
    "simulate",
    "simulate_batched",
    "simulate_scheduled",
    "simulate_with_faults",
    "workloads",
]
