"""Fault injection and fault-tolerant serving for the IC simulation.

The paper's premise is that Internet-based computing is *temporally
unpredictable* — remote clients crash, stall, and vanish — yet the
baseline simulation (:func:`repro.sim.server.simulate`) idealizes
failure: losses are detected instantly at nominal duration, tasks
silently requeue, and clients never permanently die.  This module
replaces that idealization with a realistic, fully deterministic
failure model in two halves:

* a :class:`FaultPlan` — a seedable, reproducible chaos script of
  **permanent client crashes**, **late joins** (churn), **transient
  stalls**, and **result corruption** (corruption-as-loss: the server
  discards a corrupt result, so it costs exactly what a loss costs);
* a :class:`ServerPolicy` — the server's fault-tolerance machinery:
  **timeout-based loss detection** (a deadline as a multiple of each
  task's expected duration, instead of the magic instant detection of
  the ideal model), **retry with exponential backoff + jitter**
  (backoff growth bounded by ``max_retries``; retries themselves never
  give up, which is what guarantees completion), **speculative
  re-execution** of stragglers, **k-replication** of critical-path
  tasks onto spare clients, and **quarantine** of flaky clients.

Every run is byte-identical for a given ``(dag, policy, clients,
FaultPlan, seed)`` tuple — the chaos harness draws from its own seeded
stream, separate from the client-behaviour stream — and every run
terminates with all tasks completed as long as the plan leaves at
least one live client (the server never quarantines its last live
client, and releases quarantined clients when crashes leave no one
else).

Outcomes are reported three ways: a
:class:`FaultReport` attached to the
:class:`~repro.sim.server.SimulationResult`, the ``sim_retries_total``
/ ``sim_timeouts_total`` / ``sim_speculations_total`` /
``sim_quarantined_clients`` / ``sim_faults_injected_total{kind=...}``
metrics in the process registry (rendered live by ``repro watch``),
and per-attempt :class:`~repro.sim.server.TraceRecord` entries when
tracing is on.  See ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from math import isfinite

from ..core.dag import ComputationDag, Node
from ..exceptions import FaultPlanError, ServerPolicyError, SimulationError
from ..obs import global_registry, global_tracer, span
from ..obs.context import current_request_id
from .heuristics import Policy
from .server import ClientSpec, SimulationResult, TraceRecord, _record_quality

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultReport",
    "ServerPolicy",
    "FAULT_SCENARIOS",
    "simulate_with_faults",
]

#: recognized fault kinds (the ``sim_faults_injected_total`` label set).
FAULT_KINDS = ("crash", "join", "stall")

#: floor on a task's expected duration when deriving deadlines, so a
#: zero-work task still gets a positive timeout.
_MIN_NOMINAL = 1e-9


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    ``kind``
        ``"crash"`` — client ``client`` dies permanently at ``time``
        (its in-flight result never arrives; the server only learns of
        it when the attempt's deadline fires);
        ``"join"`` — a new client (``spec``, default unit-speed)
        appears at ``time`` and starts requesting work;
        ``"stall"`` — client ``client`` freezes for ``duration`` time
        units at ``time`` (an in-flight task finishes late; an idle
        client requests nothing until it recovers).
    """

    time: float
    kind: str
    client: int = 0
    duration: float = 0.0
    spec: ClientSpec | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not self.time >= 0.0:
            raise FaultPlanError(
                f"fault time must be >= 0, got {self.time}"
            )
        if self.kind == "stall" and not self.duration > 0.0:
            raise FaultPlanError(
                f"stall needs a positive duration, got {self.duration}"
            )
        if self.kind != "join" and self.client < 0:
            raise FaultPlanError(
                f"fault client index must be >= 0, got {self.client}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable chaos script.

    ``events`` are the scripted faults; ``corrupt_rate`` is the
    probability that any arriving result is corrupt — the server
    discards it, so corruption costs exactly what a loss costs
    (corruption-as-loss).  ``seed`` drives the plan's private random
    stream (corruption draws, backoff jitter), kept separate from the
    client-behaviour stream so adding chaos never perturbs the
    underlying dropout/loss draws.

    Build plans directly, from a canned scenario
    (:meth:`scenario`), or from a CLI spec string (:meth:`parse`).
    """

    events: tuple[FaultEvent, ...] = ()
    corrupt_rate: float = 0.0
    seed: int = 0
    name: str = "custom"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if not 0.0 <= self.corrupt_rate < 1.0:
            raise FaultPlanError(
                "corrupt_rate must be in [0, 1) so runs terminate, "
                f"got {self.corrupt_rate}"
            )

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not self.events and self.corrupt_rate == 0.0

    @classmethod
    def scenario(cls, name: str, n_clients: int = 4,
                 seed: int = 0) -> "FaultPlan":
        """A canned chaos scenario sized for ``n_clients`` (see
        :data:`FAULT_SCENARIOS` for the catalog)."""
        try:
            builder = FAULT_SCENARIOS[name]
        except KeyError:
            raise FaultPlanError(
                f"unknown fault scenario {name!r}; known: "
                f"{sorted(FAULT_SCENARIOS)}"
            ) from None
        return builder(n_clients, seed)

    @classmethod
    def parse(cls, spec: str, n_clients: int = 4) -> "FaultPlan":
        """Parse a CLI fault spec (the shared grammar of
        :mod:`repro.api.specs`).

        Either a scenario name with optional seed —
        ``churn`` / ``churn:seed=3`` — or a comma-separated event
        list::

            crash:CID@T          client CID dies at time T
            stall:CID@TxDUR      client CID stalls for DUR at time T
            join@T  join@TxSPD   a client (speed SPD) joins at time T
            corrupt=RATE         corrupt each result with prob. RATE
            seed=N               the plan's private random seed

        Example: ``crash:0@2,stall:1@1.5x4,join@5x2.0,corrupt=0.1``.
        """
        from ..api.specs import parse_fault_plan

        return parse_fault_plan(spec, n_clients=n_clients)

    def __str__(self) -> str:
        """The plan's round-trip spec form (see
        :func:`repro.api.specs.fault_plan_str`)."""
        from ..api.specs import fault_plan_str

        return fault_plan_str(self)


def _deprecated_parser(name: str, impl):
    """A shim for the grammar helpers that moved to
    :mod:`repro.api.specs`: same behavior, plus a
    ``DeprecationWarning`` pointing at the shared parser."""

    def shim(*args, **kwargs):
        import warnings

        warnings.warn(
            f"repro.sim.faults.{name} moved to repro.api.specs as part "
            "of the unified spec grammar; import it from there",
            DeprecationWarning,
            stacklevel=2,
        )
        return impl(*args, **kwargs)

    shim.__name__ = name
    shim.__doc__ = impl.__doc__
    return shim


def _specs_module():
    from ..api import specs

    return specs


_parse_float = _deprecated_parser(
    "_parse_float", lambda *a, **k: _specs_module()._parse_float(*a, **k)
)
_parse_int = _deprecated_parser(
    "_parse_int", lambda *a, **k: _specs_module()._parse_int(*a, **k)
)
_parse_at = _deprecated_parser(
    "_parse_at", lambda *a, **k: _specs_module()._parse_at(*a, **k)
)
_parse_x = _deprecated_parser(
    "_parse_x", lambda *a, **k: _specs_module()._parse_x(*a, **k)
)


# ----------------------------------------------------------------------
# canned scenarios
# ----------------------------------------------------------------------


def _scenario_churn(n_clients: int, seed: int) -> FaultPlan:
    """Half the clients crash at staggered times; replacements join
    shortly after each crash — the classic volunteer-computing churn."""
    rng = random.Random(f"repro-churn:{seed}")
    events: list[FaultEvent] = []
    for i in range(max(1, n_clients // 2)):
        t = 2.0 + 1.5 * i + rng.random()
        events.append(FaultEvent(time=t, kind="crash", client=i))
        events.append(FaultEvent(time=t + 1.0 + rng.random(),
                                 kind="join", spec=ClientSpec()))
    return FaultPlan(events=tuple(events), seed=seed, name="churn")


def _scenario_stragglers(n_clients: int, seed: int) -> FaultPlan:
    """Repeated transient stalls spread over every client — the
    straggler regime speculative re-execution targets."""
    rng = random.Random(f"repro-stragglers:{seed}")
    events = [
        FaultEvent(
            time=1.0 + 0.8 * k + rng.random(),
            kind="stall",
            client=k % max(1, n_clients),
            duration=2.0 + 2.0 * rng.random(),
        )
        for k in range(2 * max(1, n_clients))
    ]
    return FaultPlan(events=tuple(events), seed=seed, name="stragglers")


def _scenario_flaky(n_clients: int, seed: int) -> FaultPlan:
    """A corruption-prone fleet with an occasional stall — the regime
    quarantine and retry absorb."""
    rng = random.Random(f"repro-flaky:{seed}")
    events = [
        FaultEvent(time=1.5 + 2.0 * k + rng.random(), kind="stall",
                   client=0, duration=1.0 + rng.random())
        for k in range(2)
    ]
    return FaultPlan(events=tuple(events), corrupt_rate=0.15,
                     seed=seed, name="flaky")


def _scenario_blackout(n_clients: int, seed: int) -> FaultPlan:
    """Everything but one client dies at once; two replacements arrive
    much later — the worst case the completion guarantee covers."""
    rng = random.Random(f"repro-blackout:{seed}")
    events = [
        FaultEvent(time=3.0 + 0.1 * i + rng.random() * 0.1,
                   kind="crash", client=i)
        for i in range(1, max(2, n_clients))
    ]
    events += [
        FaultEvent(time=9.0 + i + rng.random(), kind="join",
                   spec=ClientSpec())
        for i in range(2)
    ]
    return FaultPlan(events=tuple(events), seed=seed, name="blackout")


#: the canned chaos scenarios ``FaultPlan.scenario`` / ``--faults``
#: accept: name -> builder(n_clients, seed).
FAULT_SCENARIOS: dict[str, Callable[[int, int], FaultPlan]] = {
    "churn": _scenario_churn,
    "stragglers": _scenario_stragglers,
    "flaky": _scenario_flaky,
    "blackout": _scenario_blackout,
}


# ----------------------------------------------------------------------
# server policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServerPolicy:
    """The server's fault-tolerance machinery.

    ``timeout_factor``
        Loss-detection deadline: an attempt is written off
        ``timeout_factor`` times its *expected* duration after
        allocation (expected = nominal compute time at the client's
        advertised speed plus communication — the server cannot see
        dropout slowdowns coming).  Must be finite and >= 1: the
        timeout is what converts permanent losses into retries, so an
        infinite deadline would break the completion guarantee.
    ``max_retries``
        Bound on exponential-backoff *growth* (the exponent is capped
        here).  Retries themselves never give up — dropping a task
        would violate the no-permanent-loss guarantee — they just stop
        backing off harder.
    ``backoff_base`` / ``backoff_jitter``
        The ``k``-th retry of a task is delayed
        ``backoff_base * 2**min(k-1, max_retries)`` time units,
        stretched by a uniform jitter fraction in
        ``[0, backoff_jitter]`` drawn from the fault plan's seeded
        stream.
    ``speculate_factor``
        Straggler mitigation: once an attempt has been in flight
        ``speculate_factor`` times its expected duration, a backup
        copy is launched on the next spare client; the first result
        wins and the loser is wasted replica time.  ``None`` disables
        speculation.
    ``replicas`` / ``critical_fraction``
        k-replication: the top ``critical_fraction`` of tasks by
        height (longest path to a sink) are eagerly replicated onto
        spare clients up to ``replicas`` concurrent copies.
        ``replicas=1`` disables replication.
    ``quarantine_after``
        A client with this many *consecutive* failures (timeouts or
        corrupt results) is quarantined — no further allocations —
        except that the server never quarantines its last live client,
        and releases quarantined clients when crashes leave no one
        else.  ``0`` disables quarantine.
    """

    timeout_factor: float = 3.0
    max_retries: int = 8
    backoff_base: float = 0.25
    backoff_jitter: float = 0.1
    speculate_factor: float | None = 2.0
    replicas: int = 1
    critical_fraction: float = 0.1
    quarantine_after: int = 3

    def __post_init__(self) -> None:
        if not (isfinite(self.timeout_factor)
                and self.timeout_factor >= 1.0):
            raise ServerPolicyError(
                "timeout_factor must be finite and >= 1 (the deadline "
                "is what detects permanent losses), got "
                f"{self.timeout_factor}"
            )
        if self.max_retries < 0:
            raise ServerPolicyError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_jitter < 0:
            raise ServerPolicyError(
                "backoff_base and backoff_jitter must be >= 0, got "
                f"{self.backoff_base}/{self.backoff_jitter}"
            )
        if self.speculate_factor is not None and not (
                isfinite(self.speculate_factor)
                and self.speculate_factor >= 1.0):
            raise ServerPolicyError(
                "speculate_factor must be None or finite and >= 1, "
                f"got {self.speculate_factor}"
            )
        if self.replicas < 1:
            raise ServerPolicyError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if not 0.0 < self.critical_fraction <= 1.0:
            raise ServerPolicyError(
                "critical_fraction must be in (0, 1], got "
                f"{self.critical_fraction}"
            )
        if self.quarantine_after < 0:
            raise ServerPolicyError(
                f"quarantine_after must be >= 0, got "
                f"{self.quarantine_after}"
            )

    _PARSE_KEYS = {
        "timeout": ("timeout_factor", float),
        "retries": ("max_retries", int),
        "backoff": ("backoff_base", float),
        "jitter": ("backoff_jitter", float),
        "speculate": ("speculate_factor", float),
        "replicas": ("replicas", int),
        "critical": ("critical_fraction", float),
        "quarantine": ("quarantine_after", int),
    }

    @classmethod
    def parse(cls, spec: str) -> "ServerPolicy":
        """Parse a CLI policy spec (the shared grammar of
        :mod:`repro.api.specs`): comma-separated ``key=value`` with
        keys ``timeout``, ``retries``, ``backoff``, ``jitter``,
        ``speculate`` (a factor, or ``off``), ``replicas``,
        ``critical``, ``quarantine``.  An empty spec is the default
        policy.  Example: ``timeout=4,retries=3,speculate=off``.
        """
        from ..api.specs import parse_server_policy

        return parse_server_policy(spec)

    def __str__(self) -> str:
        """The policy's round-trip spec form:
        ``ServerPolicy.parse(str(p)) == p`` (see
        :func:`repro.api.specs.server_policy_str`)."""
        from ..api.specs import server_policy_str

        return server_policy_str(self)


@dataclass
class FaultReport:
    """Fault-path accounting for one simulated run (attached to
    ``SimulationResult.fault_report``; the same numbers land in the
    ``sim_*`` fault metrics).
    """

    #: name of the fault plan in force
    plan: str = "none"
    #: tasks re-queued after a failure (timeout or corrupt result)
    retries: int = 0
    #: loss-detection deadlines that fired on an unresolved attempt
    timeouts_fired: int = 0
    #: backup copies launched for stragglers
    speculative_launches: int = 0
    #: tasks whose *speculative* copy delivered the winning result
    speculative_wins: int = 0
    #: eager replicas launched for critical tasks
    replicas_launched: int = 0
    #: client-time burnt by duplicate attempts of already-done tasks
    wasted_replica_time: float = 0.0
    #: total backoff delay imposed before retries
    backoff_delay_total: float = 0.0
    #: clients ever quarantined (sorted ids)
    quarantined_clients: tuple[int, ...] = ()
    #: scripted faults applied, by kind
    crashes: int = 0
    late_joins: int = 0
    stalls: int = 0
    #: results discarded as corrupt
    corruptions: int = 0


# ----------------------------------------------------------------------
# the fault-tolerant event engine
# ----------------------------------------------------------------------


@dataclass
class _Attempt:
    """One allocation of a task to a client (a task may have several
    concurrent attempts: retries racing written-off stragglers,
    speculative copies, eager replicas)."""

    aid: int
    task: Node
    client: int
    start: float
    duration: float       # true wall time until the result would arrive
    nominal: float        # the server's expectation (no slowdown)
    lost: bool            # result silently never arrives (spec.loss)
    speculative: bool = False
    replica: bool = False
    delay: float = 0.0    # accrued stall delay, applied at finish pop
    arrived: bool = False
    written_off: bool = False
    vanished: bool = False     # client crashed mid-flight
    vanish_time: float = 0.0
    traced: bool = False


class _FaultEngine:
    """Event-driven simulation with fault injection and a
    fault-tolerant server; see :func:`simulate_with_faults`."""

    def __init__(
        self,
        dag: ComputationDag,
        policy: Policy,
        clients: list[ClientSpec],
        work_fn: Callable[[Node], float],
        seed: int,
        comm_per_input: float,
        record_trace: bool,
        server_policy: ServerPolicy,
        fault_plan: FaultPlan,
        machine=None,
    ) -> None:
        self.dag = dag
        self.policy = policy
        self.clients = list(clients)
        self.work_fn = work_fn
        self.comm_per_input = comm_per_input
        self.record_trace = record_trace
        self.sp = server_policy
        self.plan = fault_plan
        self.total = len(dag)
        #: machine model (:mod:`repro.sim.machines`) threading the
        #: same pricing/placement hooks as the no-fault machine loop;
        #: ``None`` keeps the pre-machine event sequence byte-exact.
        self.machine = machine
        if machine is not None:
            machine.attach(dag, len(self.clients), work_fn)

        #: client-behaviour stream (dropout/loss draws) — seeded the
        #: same way the ideal engine seeds its stream.
        self.rng = random.Random(seed)
        #: fault-plan stream (corruption, backoff jitter) — private,
        #: so chaos never perturbs the client-behaviour draws.
        self.frng = random.Random(
            f"repro-faults:{seed}:{fault_plan.seed}")

        self.report = FaultReport(plan=fault_plan.name)
        self.tracer = global_tracer()
        reg = global_registry()
        self.reg = reg
        self.m_alloc = reg.counter("sim_allocations_total",
                                   "tasks handed to clients")
        self.m_done = reg.counter("sim_completions_total",
                                  "task results received by the server")
        self.m_lost = reg.counter("sim_losses_total",
                                  "allocations lost (client vanished)")
        self.m_starve = reg.counter(
            "sim_starvation_total",
            "client requests that found no allocatable task")
        self.m_steps = reg.counter(
            "sim_steps_total", "simulation event-loop steps processed")
        self.m_retries = reg.counter(
            "sim_retries_total",
            "tasks re-queued after a detected failure")
        self.m_timeouts = reg.counter(
            "sim_timeouts_total",
            "loss-detection deadlines fired on unresolved attempts")
        self.m_spec = reg.counter(
            "sim_speculations_total",
            "speculative straggler re-executions launched")
        self.m_faults = reg.counter(
            "sim_faults_injected_total",
            "scripted faults applied to the running simulation",
            ("kind",))
        self.g_quar = reg.gauge(
            "sim_quarantined_clients",
            "clients currently quarantined by the simulated server")
        self.g_allocatable = reg.gauge(
            "sim_allocatable",
            "allocatable (eligible, unallocated) tasks at the latest "
            "simulation step")
        self.g_eligible = reg.gauge(
            "sim_eligible",
            "ELIGIBLE unexecuted tasks (allocatable + in flight) at the "
            "latest simulation step")
        self.g_completed = reg.gauge(
            "sim_completed",
            "tasks completed at the latest simulation step")

        # -- dag state ------------------------------------------------
        self.pending_parents = {v: dag.indegree(v) for v in dag.nodes}
        self.allocatable: list[Node] = [
            v for v in dag.nodes if self.pending_parents[v] == 0
        ]
        self.done: set[Node] = set()
        #: task -> set of live attempt ids (not arrived / written off /
        #: vanished) — what the server believes is in flight.
        self.in_flight: dict[Node, set[int]] = {}
        self.backing_off: set[Node] = set()
        self.task_failures: dict[Node, int] = {}
        self.want_spec: list[Node] = []
        self.critical: set[Node] = (
            self._critical_set() if server_policy.replicas > 1 else set()
        )

        # -- client state ---------------------------------------------
        n = len(self.clients)
        self.alive: set[int] = set(range(n))
        self.quarantined: set[int] = set()
        self.ever_quarantined: set[int] = set()
        self.parked: set[int] = set()          # quarantined and idle
        self.fail_streak: dict[int, int] = {}
        self.current: dict[int, int | None] = {c: None for c in range(n)}
        self.stalled_until: dict[int, float] = {}
        self.idle: list[int] = []
        self.idle_since: dict[int, float] = {}
        self.service_start: dict[int, float] = {c: 0.0 for c in range(n)}
        self.service_end: dict[int, float] = {}

        # -- observatory frame capture (docs/OBSERVABILITY.md §7) -----
        # resolved once, like the ideal engine: a disabled store costs
        # one lookup here and a None check per event below.
        from ..obs.observatory import global_frame_store

        self.frame_store = global_frame_store()
        self.channel = (
            self.frame_store.channel(
                dag, clients=len(self.clients), policy=policy.name
            )
            if self.frame_store.enabled else None
        )
        self.frame_events: list[dict] = []
        self.frame_step = 0

        # -- accounting -----------------------------------------------
        self.busy_time = 0.0
        self.idle_time = 0.0
        self.starvation = 0
        self.lost_allocations = 0
        self.wasted_work = 0.0
        self.headroom: list[tuple[float, int]] = [
            (0.0, len(self.allocatable))
        ]
        self.trace: list[TraceRecord] = []
        self.attempts: dict[int, _Attempt] = {}
        self._aid = itertools.count()
        self._tb = itertools.count()
        self.events: list[tuple[float, int, str, object]] = []
        self.makespan = 0.0

    # -- setup helpers -----------------------------------------------
    def _critical_set(self) -> set[Node]:
        """The top ``critical_fraction`` of tasks by height (longest
        path to a sink), the replication targets."""
        height: dict[Node, int] = {}
        for v in reversed(self.dag.topological_order()):
            height[v] = 1 + max(
                (height[c] for c in self.dag.children(v)), default=-1
            )
        index = {v: i for i, v in enumerate(self.dag.nodes)}
        ranked = sorted(
            self.dag.nodes, key=lambda v: (-height[v], index[v])
        )
        k = max(1, round(self.sp.critical_fraction * len(ranked)))
        return set(ranked[:k])

    def _push(self, time: float, kind: str, payload) -> None:
        heapq.heappush(self.events, (time, next(self._tb), kind, payload))

    # -- allocation ---------------------------------------------------
    def _launch(self, cid: int, task: Node, now: float,
                speculative: bool = False, replica: bool = False) -> None:
        spec = self.clients[cid]
        compute = self.work_fn(task)
        if self.machine is not None:
            # the machine transforms the task's work (hetero duration
            # factors) before the client-speed division; the server
            # knows the model, so nominal expectations shift with it
            compute = self.machine.duration(task, cid, compute)
            self.machine.on_start(task, cid, now)
        base = compute / spec.speed
        duration = base
        if spec.dropout and self.rng.random() < spec.dropout:
            duration *= spec.slowdown
        comm = self.comm_per_input * self.dag.indegree(task)
        duration += comm
        nominal = max(base + comm, _MIN_NOMINAL)
        lost = bool(spec.loss) and self.rng.random() < spec.loss
        aid = next(self._aid)
        att = _Attempt(aid, task, cid, now, duration, nominal, lost,
                       speculative, replica)
        self.attempts[aid] = att
        self.in_flight.setdefault(task, set()).add(aid)
        self.current[cid] = aid
        self.m_alloc.inc()
        if speculative:
            self.m_spec.inc()
            self.report.speculative_launches += 1
        if replica:
            self.report.replicas_launched += 1
        self.tracer.event(
            "sim.allocate", client=cid, task=str(task), t=now,
            speculative=speculative, replica=replica,
        )
        self._push(now + duration, "finish", aid)
        self._push(now + self.sp.timeout_factor * nominal, "timeout", aid)
        if (self.sp.speculate_factor is not None
                and not speculative and not replica):
            self._push(now + self.sp.speculate_factor * nominal,
                       "speculate", aid)

    def _pool(self, cid: int, now: float) -> list[Node]:
        """The allocatable tasks the machine will place on ``cid``
        (the allocatable list itself when no machine interposes, so
        the pre-machine selection sequence stays byte-exact)."""
        if self.machine is None:
            return self.allocatable
        return [t for t in self.allocatable
                if self.machine.placeable(t, cid, now)]

    def _allocate_next(self, cid: int, now: float) -> None:
        task = self.policy.select(self._pool(cid, now))
        self.allocatable.remove(task)
        self._launch(cid, task, now)

    def _request(self, cid: int, now: float) -> None:
        """A free client asks the server for work."""
        if cid not in self.alive:
            return
        self.current[cid] = None
        if cid in self.quarantined:
            self.parked.add(cid)
            return
        if self.stalled_until.get(cid, 0.0) > now:
            return  # a wake event will re-request
        if self.allocatable:
            if self._pool(cid, now):
                self._allocate_next(cid, now)
                return
            # work exists but the machine refuses to place it here
            # (barrier wait, memory-full client): idle without a
            # starvation count — the dag is not the bottleneck
            self.machine.note_stall()
            self.idle.append(cid)
            self.idle_since[cid] = now
            return
        if len(self.done) < self.total:
            self.starvation += 1
            self.m_starve.inc()
        self.idle.append(cid)
        self.idle_since[cid] = now

    def _take_idle(self, now: float) -> int:
        cid = self.idle.pop(0)
        self.idle_time += now - self.idle_since.pop(cid)
        return cid

    def _take_idle_for(self, task: Node, now: float) -> int | None:
        """The first idle client the machine lets run ``task``; the
        head of the queue when no machine interposes."""
        if self.machine is None:
            return self._take_idle(now)
        for i, cid in enumerate(self.idle):
            if self.machine.placeable(task, cid, now):
                self.idle.pop(i)
                self.idle_time += now - self.idle_since.pop(cid)
                return cid
        return None

    def _dispatch_idle(self, now: float) -> None:
        """Put spare clients to use: fresh tasks first, then pending
        speculative re-executions, then eager replicas of critical
        in-flight tasks."""
        while self.idle and self.allocatable:
            if self.machine is None:
                self._allocate_next(self._take_idle(now), now)
                continue
            picked = None
            for i, cid in enumerate(self.idle):
                if self._pool(cid, now):
                    picked = i
                    break
            if picked is None:
                break
            cid = self.idle.pop(picked)
            self.idle_time += now - self.idle_since.pop(cid)
            self._allocate_next(cid, now)
        while self.idle and self.want_spec:
            task = self.want_spec.pop(0)
            if task in self.done or not self.in_flight.get(task):
                continue
            cid = self._take_idle_for(task, now)
            if cid is None:
                self.want_spec.insert(0, task)
                break
            self._launch(cid, task, now, speculative=True)
        if self.sp.replicas > 1 and self.idle:
            for task in [v for v in self.dag.nodes
                         if v in self.critical and v not in self.done]:
                live = self.in_flight.get(task)
                while (self.idle and live
                       and 0 < len(live) < self.sp.replicas):
                    cid = self._take_idle_for(task, now)
                    if cid is None:
                        break
                    self._launch(cid, task, now, replica=True)
                if not self.idle:
                    break

    # -- failure handling ---------------------------------------------
    def _schedule_retry(self, task: Node, now: float) -> None:
        """Re-queue a failed task after exponential backoff + jitter.

        Backoff growth is bounded by ``max_retries``; the retry itself
        always happens (completion guarantee)."""
        if (task in self.done or task in self.backing_off
                or self.in_flight.get(task) or task in self.allocatable):
            return
        failures = self.task_failures.get(task, 0) + 1
        self.task_failures[task] = failures
        exponent = min(failures - 1, self.sp.max_retries)
        delay = self.sp.backoff_base * (2 ** exponent)
        if self.sp.backoff_jitter:
            delay *= 1.0 + self.sp.backoff_jitter * self.frng.random()
        self.report.retries += 1
        self.report.backoff_delay_total += delay
        self.m_retries.inc()
        self.backing_off.add(task)
        self.tracer.event("sim.retry", task=str(task), t=now,
                          attempt=failures, delay=delay)
        self._push(now + delay, "retry", task)

    def _client_failed(self, cid: int, now: float) -> None:
        """Attribute one failure to a client; quarantine a streak."""
        self.fail_streak[cid] = self.fail_streak.get(cid, 0) + 1
        after = self.sp.quarantine_after
        if after <= 0 or cid in self.quarantined or cid not in self.alive:
            return
        if self.fail_streak[cid] < after:
            return
        live_free = [c for c in self.alive if c not in self.quarantined]
        if len(live_free) <= 1:
            return  # never quarantine the last live client
        self.quarantined.add(cid)
        self.ever_quarantined.add(cid)
        self.g_quar.set(len(self.quarantined))
        self.tracer.event("sim.quarantine", client=cid, t=now)
        rid = current_request_id()
        if self.channel is not None:
            ev = {"kind": "quarantine", "client": cid,
                  "t": round(now, 6)}
            if rid is not None:
                ev["request"] = rid
            self.frame_events.append(ev)
        # a quarantine means the fault plan beat a client's streak
        # budget — black-box the surrounding context
        from ..obs.flightrecorder import global_flight_recorder
        global_flight_recorder().trigger(
            "quarantine", request_id=rid,
            detail=f"client {cid} quarantined at t={round(now, 6)} "
                   f"after {self.fail_streak[cid]} consecutive "
                   f"failures",
        )
        if cid in self.idle:
            self.idle.remove(cid)
            self.idle_time += now - self.idle_since.pop(cid)
            self.parked.add(cid)

    def _release_quarantine(self, now: float) -> None:
        """Amnesty: crashes left only quarantined clients — release
        them (they are the completion guarantee's last resort)."""
        released = [c for c in self.quarantined if c in self.alive]
        self.quarantined.clear()
        self.g_quar.set(0)
        for cid in released:
            self.fail_streak[cid] = 0
            if cid in self.parked:
                self.parked.discard(cid)
                self._request(cid, now)

    def _retire(self, aid: int) -> None:
        """Drop an attempt from the live in-flight view."""
        att = self.attempts[aid]
        live = self.in_flight.get(att.task)
        if live is not None:
            live.discard(aid)
            if not live:
                del self.in_flight[att.task]

    def _emit(self, att: _Attempt, end: float, kind: str) -> None:
        if att.traced:
            return
        att.traced = True
        if self.record_trace:
            self.trace.append(
                TraceRecord(att.client, att.task, att.start, end, kind)
            )

    # -- event handlers -----------------------------------------------
    def _on_finish(self, aid: int, now: float) -> None:
        att = self.attempts[aid]
        if att.vanished:
            return  # the client died mid-flight; nothing arrives
        if att.delay > 0.0:
            # a stall pushed the completion back; re-arm once
            self._push(now + att.delay, "finish", aid)
            att.delay = 0.0
            return
        cid = att.client
        if att.lost:
            # the result silently never arrives (the client vanished
            # transiently); the deadline will detect it.  The client
            # itself resurfaces and asks for more work.
            if self.machine is not None:
                self.machine.on_abort(att.task, cid, now)
            if self.current.get(cid) == aid:
                self._request(cid, now)
            return
        att.arrived = True
        self._retire(aid)
        if att.task in self.done:
            # a duplicate (replica / speculative / written-off
            # straggler) landed after the winner: pure waste.
            if self.machine is not None:
                self.machine.on_abort(att.task, cid, now)
            self.report.wasted_replica_time += att.duration
            self._emit(att, now, "replica")
            self.fail_streak[cid] = 0
        elif (self.plan.corrupt_rate
                and self.frng.random() < self.plan.corrupt_rate):
            if self.machine is not None:
                self.machine.on_abort(att.task, cid, now)
            self.report.corruptions += 1
            self.wasted_work += att.duration
            self.m_lost.inc()
            self.lost_allocations += 1
            self._emit(att, now, "corrupt")
            self.tracer.event("sim.corrupt", client=cid,
                              task=str(att.task), t=now)
            self._client_failed(cid, now)
            self._schedule_retry(att.task, now)
        else:
            if self.machine is not None:
                release = self.machine.on_complete(att.task, cid, now)
                if release is not None:
                    self._push(release, "machine", None)
            self.done.add(att.task)
            self.busy_time += att.duration
            self.m_done.inc()
            self.fail_streak[cid] = 0
            if att.speculative:
                self.report.speculative_wins += 1
            self._emit(att, now, "done")
            self.tracer.event("sim.complete", client=cid,
                              task=str(att.task), t=now)
            for child in self.dag.children(att.task):
                self.pending_parents[child] -= 1
                if self.pending_parents[child] == 0:
                    self.allocatable.append(child)
        if self.current.get(cid) == aid:
            self._request(cid, now)

    def _on_timeout(self, aid: int, now: float) -> None:
        att = self.attempts[aid]
        if att.arrived or att.written_off or att.task in self.done:
            return
        att.written_off = True
        self.report.timeouts_fired += 1
        self.m_timeouts.inc()
        self._retire(aid)
        self.tracer.event("sim.timeout", client=att.client,
                          task=str(att.task), t=now)
        if att.lost or att.vanished:
            # genuinely gone: account the burnt client time now
            self.m_lost.inc()
            self.lost_allocations += 1
            self.wasted_work += (
                att.vanish_time - att.start if att.vanished
                else att.duration
            )
            self._emit(att, now, "lost")
        # else: a straggler the server wrote off — it may still land
        # (and even win); its trace record is emitted on arrival.
        self._client_failed(att.client, now)
        self._schedule_retry(att.task, now)

    def _on_speculate(self, aid: int, now: float) -> None:
        att = self.attempts[aid]
        if (att.arrived or att.written_off or att.vanished
                or att.task in self.done):
            return
        if len(self.in_flight.get(att.task, ())) >= self.sp.replicas + 1:
            return  # already replicated to the hilt
        if att.task not in self.want_spec:
            self.want_spec.append(att.task)

    def _on_retry(self, task: Node, now: float) -> None:
        self.backing_off.discard(task)
        if task in self.done or task in self.allocatable:
            return
        self.allocatable.append(task)

    def _on_wake(self, cid: int, now: float) -> None:
        if cid not in self.alive or self.current.get(cid) is not None:
            return
        if self.stalled_until.get(cid, 0.0) > now:
            return  # a longer stall superseded this wake
        self._request(cid, now)

    def _on_fault(self, ev: FaultEvent, now: float) -> None:
        self.m_faults.labels(ev.kind).inc()
        self.tracer.event("sim.fault", kind=ev.kind, client=ev.client,
                          t=now)
        if self.channel is not None:
            self.frame_events.append(
                {"kind": ev.kind, "client": ev.client, "t": round(now, 6)}
            )
        if ev.kind == "crash":
            cid = ev.client
            if cid not in self.alive:
                return
            if self.machine is not None:
                self.machine.on_crash(cid, now)
            self.alive.discard(cid)
            self.service_end[cid] = now
            self.report.crashes += 1
            aid = self.current.get(cid)
            if aid is not None:
                att = self.attempts[aid]
                if not att.arrived:
                    att.vanished = True
                    att.vanish_time = now
                    self._retire(aid)
            if cid in self.idle:
                self.idle.remove(cid)
                self.idle_time += now - self.idle_since.pop(cid)
            self.parked.discard(cid)
            was_quarantined = cid in self.quarantined
            self.quarantined.discard(cid)
            if was_quarantined:
                self.g_quar.set(len(self.quarantined))
            if not any(c not in self.quarantined for c in self.alive):
                self._release_quarantine(now)
        elif ev.kind == "join":
            cid = len(self.clients)
            self.clients.append(ev.spec or ClientSpec())
            self.alive.add(cid)
            self.current[cid] = None
            self.service_start[cid] = now
            self.report.late_joins += 1
            self._request(cid, now)
        elif ev.kind == "stall":
            cid = ev.client
            if cid not in self.alive:
                return
            self.report.stalls += 1
            aid = self.current.get(cid)
            if aid is not None:
                self.attempts[aid].delay += ev.duration
                return
            until = max(self.stalled_until.get(cid, 0.0),
                        now + ev.duration)
            self.stalled_until[cid] = until
            if cid in self.idle:
                self.idle.remove(cid)
                self.idle_time += now - self.idle_since.pop(cid)
            self._push(until, "wake", cid)

    def _on_machine(self, _payload, now: float) -> None:
        """A machine release time arrived (bsp barrier opening, memcap
        spill completing); ``_dispatch_idle`` re-examines blocked
        clients right after."""
        if self.machine is not None:
            self.machine.on_release(now)

    # -- main loop -----------------------------------------------------
    _HANDLERS = {
        "finish": _on_finish,
        "timeout": _on_timeout,
        "speculate": _on_speculate,
        "retry": _on_retry,
        "wake": _on_wake,
        "fault": _on_fault,
        "machine": _on_machine,
    }

    def _publish(self, now: float = 0.0) -> None:
        self.g_allocatable.set(len(self.allocatable))
        in_flight_tasks = len(self.in_flight) + len(self.backing_off)
        self.g_eligible.set(len(self.allocatable) + in_flight_tasks)
        self.g_completed.set(len(self.done))
        if self.channel is not None:
            self.frame_step += 1
            occupancy: list = []
            for cid in range(len(self.clients)):
                aid = self.current.get(cid)
                occupancy.append(
                    self.attempts[aid].task if aid is not None else None
                )
            eligible = list(self.allocatable)
            eligible.extend(self.in_flight)
            eligible.extend(self.backing_off)
            self.frame_store.record(
                self.channel,
                step=self.frame_step,
                t=now,
                executed=self.done,
                eligible=eligible,
                occupancy=occupancy,
                events=tuple(self.frame_events),
                done=len(self.done) >= self.total,
            )
            self.frame_events.clear()

    def run(self) -> SimulationResult:
        with span("sim.simulate", dag=self.dag.name,
                  policy=self.policy.name, clients=len(self.clients),
                  faults=self.plan.name):
            for ev in self.plan.events:
                self._push(ev.time, "fault", ev)
            now = 0.0
            for cid in range(len(self.clients)):
                if cid in self.alive:
                    self._request(cid, now)
            self.headroom.append((now, len(self.allocatable)))
            self._publish()

            while self.events and len(self.done) < self.total:
                now, _tb, kind, payload = heapq.heappop(self.events)
                self.m_steps.inc()
                self._HANDLERS[kind](self, payload, now)
                if len(self.done) >= self.total:
                    break
                self._dispatch_idle(now)
                self.headroom.append((now, len(self.allocatable)))
                self._publish(now)
                if (not self.events and self.machine is not None
                        and self.allocatable):
                    # wedged by the machine (all clients blocked, no
                    # attempt in flight): trade for progress or stall
                    wake = self.machine.force_progress(now)
                    if wake is not None:
                        self._push(wake, "machine", None)

        if len(self.done) != self.total:
            raise SimulationError(
                f"simulation stalled under fault plan "
                f"{self.plan.name!r}: {len(self.done)}/{self.total} "
                "tasks done (did every client crash?)"
            )
        self.makespan = now
        for cid in self.idle:
            self.idle_time += now - self.idle_since.pop(cid, now)
        # duplicates still in flight at completion would be cancelled:
        # their partial execution is wasted replica time.
        for aids in list(self.in_flight.values()):
            for aid in sorted(aids):
                att = self.attempts[aid]
                self.report.wasted_replica_time += max(
                    0.0, now - att.start)
                self._emit(att, now, "replica")
        capacity = sum(
            self.service_end.get(cid, now) - self.service_start[cid]
            for cid in range(len(self.clients))
        )
        util = self.busy_time / capacity if capacity > 0 else 1.0
        self.report.quarantined_clients = tuple(
            sorted(self.ever_quarantined))
        self.headroom.append((now, len(self.allocatable)))
        self._publish(now)
        result = SimulationResult(
            policy=self.policy.name,
            makespan=self.makespan,
            starvation_events=self.starvation,
            idle_time=self.idle_time,
            utilization=util,
            headroom_series=self.headroom,
            completed=len(self.done),
            lost_allocations=self.lost_allocations,
            wasted_work=self.wasted_work,
            trace=self.trace,
            fault_report=self.report,
        )
        if self.machine is not None:
            from .machines import _record_machine

            result.machine_report = self.machine.report()
            _record_machine(self.reg, result.machine_report)
        _record_quality(self.reg, result)
        return result


def simulate_with_faults(
    dag: ComputationDag,
    policy: Policy,
    clients: Sequence[ClientSpec] | int = 4,
    work: Callable[[Node], float] | float = 1.0,
    seed: int = 0,
    comm_per_input: float = 0.0,
    record_trace: bool = False,
    server_policy: ServerPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    machine=None,
) -> SimulationResult:
    """Simulate ``dag`` under ``policy`` with fault injection and a
    fault-tolerant server.

    This is the realistic-model sibling of
    :func:`repro.sim.server.simulate` (which dispatches here whenever
    a ``server_policy`` or ``fault_plan`` is given): losses are
    detected by *timeouts* rather than by magic, failed tasks retry
    with exponential backoff, stragglers are speculatively re-executed,
    critical tasks may be k-replicated, and flaky clients are
    quarantined — all governed by ``server_policy`` (default
    :class:`ServerPolicy`).  ``fault_plan`` (default: no faults)
    scripts crashes, churn, stalls, and result corruption.

    Deterministic: a fixed ``(dag, policy, clients, work, seed,
    comm_per_input, server_policy, fault_plan)`` tuple reproduces the
    run byte-for-byte, including ``fault_report`` and the trace.
    Completion is guaranteed whenever the plan leaves at least one
    live client.
    """
    if isinstance(clients, int):
        clients = [ClientSpec() for _ in range(clients)]
    else:
        clients = list(clients)
    if not clients:
        raise SimulationError("need at least one client")
    work_fn = work if callable(work) else (lambda _v, _w=float(work): _w)
    policy.attach(dag)
    engine = _FaultEngine(
        dag, policy, clients, work_fn, seed, comm_per_input,
        record_trace,
        server_policy if server_policy is not None else ServerPolicy(),
        fault_plan if fault_plan is not None else FaultPlan(name="none"),
        machine=machine,
    )
    return engine.run()
