"""Task-allocation policies for the IC server.

The IC-optimal policy follows a precomputed schedule as a priority
list; the baselines are the natural heuristics of the comparison
studies the paper cites ([15] compares the scheduler of [21] against
FIFO and other natural heuristics; [19] against Condor DAGMan's FIFO):

* ``FIFO``     — allocate the task that became ELIGIBLE earliest;
* ``LIFO``     — ... most recently;
* ``RANDOM``   — uniformly among eligible tasks (seeded);
* ``MAXOUT``   — greatest out-degree first (most immediate children);
* ``CRITPATH`` — longest path to a sink first (classic list
  scheduling);
* ``PACKING``  — largest resource footprint (degree sum) first, after
  the packing heuristics of DAGPS/Graphene;
* ``TROUBLESOME`` — most descendants first: clear the tasks that
  gate the largest residual subgraph (DAGPS "troublesome first").

A policy is an object with ``select(eligible, context) -> Node``;
``eligible`` is the allocatable-task list in the order they became
eligible, and ``context`` gives read access to the dag.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..exceptions import SimulationError
from ..core.dag import ComputationDag, Node
from ..core.schedule import Schedule

__all__ = [
    "Policy",
    "FifoPolicy",
    "LifoPolicy",
    "RandomPolicy",
    "MaxOutDegreePolicy",
    "CriticalPathPolicy",
    "PackingPolicy",
    "TroublesomePolicy",
    "SchedulePolicy",
    "make_policy",
    "BASELINE_POLICIES",
]


class Policy:
    """Base class: pick the next task to allocate."""

    name = "policy"

    def attach(self, dag: ComputationDag) -> None:
        """Called once before a run; precompute static priorities."""

    def select(self, eligible: Sequence[Node]) -> Node:
        raise NotImplementedError


class FifoPolicy(Policy):
    """Earliest-eligible first (the Condor DAGMan order of [19])."""

    name = "FIFO"

    def select(self, eligible: Sequence[Node]) -> Node:
        return eligible[0]


class LifoPolicy(Policy):
    """Latest-eligible first."""

    name = "LIFO"

    def select(self, eligible: Sequence[Node]) -> Node:
        return eligible[-1]


class RandomPolicy(Policy):
    """Uniformly random among eligible tasks (seeded for repeatability)."""

    name = "RANDOM"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(self, eligible: Sequence[Node]) -> Node:
        return eligible[self._rng.randrange(len(eligible))]


class MaxOutDegreePolicy(Policy):
    """Most immediate children first (a natural greedy proxy for
    eligibility production)."""

    name = "MAXOUT"

    def attach(self, dag: ComputationDag) -> None:
        self._out = {v: dag.outdegree(v) for v in dag.nodes}
        self._idx = {v: i for i, v in enumerate(dag.nodes)}

    def select(self, eligible: Sequence[Node]) -> Node:
        return max(eligible, key=lambda v: (self._out[v], -self._idx[v]))


class CriticalPathPolicy(Policy):
    """Longest-path-to-sink first (classic HLF/list scheduling)."""

    name = "CRITPATH"

    def attach(self, dag: ComputationDag) -> None:
        height: dict[Node, int] = {}
        for v in reversed(dag.topological_order()):
            height[v] = 1 + max(
                (height[c] for c in dag.children(v)), default=-1
            )
        self._height = height
        self._idx = {v: i for i, v in enumerate(dag.nodes)}

    def select(self, eligible: Sequence[Node]) -> Node:
        return max(eligible, key=lambda v: (self._height[v], -self._idx[v]))


class PackingPolicy(Policy):
    """Largest resource footprint first.

    The footprint of a task is its degree sum (inputs it must gather
    plus outputs it must ship) — the simulator's analogue of the
    multi-resource demand vector that DAGPS-style packers schedule
    early so fragmentation does not strand them at the end."""

    name = "PACKING"

    def attach(self, dag: ComputationDag) -> None:
        self._foot = {
            v: dag.indegree(v) + dag.outdegree(v) for v in dag.nodes
        }
        self._idx = {v: i for i, v in enumerate(dag.nodes)}

    def select(self, eligible: Sequence[Node]) -> Node:
        return max(eligible, key=lambda v: (self._foot[v], -self._idx[v]))


class TroublesomePolicy(Policy):
    """Most descendants first (DAGPS "troublesome tasks first").

    A task's descendant count measures how much of the dag is gated
    behind it; finishing high-count tasks early keeps the eligible
    frontier from collapsing when a machine model delays them."""

    name = "TROUBLESOME"

    def attach(self, dag: ComputationDag) -> None:
        height: dict[Node, int] = {}
        for v in reversed(dag.topological_order()):
            height[v] = 1 + max(
                (height[c] for c in dag.children(v)), default=-1
            )
        self._desc = {v: len(dag.descendants(v)) for v in dag.nodes}
        self._height = height
        self._idx = {v: i for i, v in enumerate(dag.nodes)}

    def select(self, eligible: Sequence[Node]) -> Node:
        return max(
            eligible,
            key=lambda v: (self._desc[v], self._height[v], -self._idx[v]),
        )


class SchedulePolicy(Policy):
    """Follow a precomputed schedule as a priority list: allocate the
    eligible task that appears earliest in the schedule.

    With an IC-optimal schedule this is the paper's scheduler; the
    policy degrades gracefully when completion order diverges from
    allocation order (the idealization of Section 1 relaxed)."""

    name = "IC-OPT"

    def __init__(self, schedule: Schedule, name: str = "IC-OPT") -> None:
        self.name = name
        self._rank = {v: i for i, v in enumerate(schedule.order)}

    def select(self, eligible: Sequence[Node]) -> Node:
        return min(eligible, key=lambda v: self._rank[v])


#: zero-argument constructors for the baseline policies of [15]/[19]
#: plus the DAGPS-inspired packers.
BASELINE_POLICIES = {
    "FIFO": FifoPolicy,
    "LIFO": LifoPolicy,
    "RANDOM": RandomPolicy,
    "MAXOUT": MaxOutDegreePolicy,
    "CRITPATH": CriticalPathPolicy,
    "PACKING": PackingPolicy,
    "TROUBLESOME": TroublesomePolicy,
}

#: accepted alternate spellings for :func:`make_policy`.
_POLICY_ALIASES = {
    "PACKING-FIRST": "PACKING",
    "TROUBLESOME-FIRST": "TROUBLESOME",
}


def make_policy(name: str, schedule: Schedule | None = None) -> Policy:
    """Instantiate a policy by name (``IC-OPT`` requires ``schedule``).

    Lookup is case-insensitive and accepts the ``-first`` aliases
    (``troublesome-first``, ``packing-first``)."""
    key = name.upper()
    key = _POLICY_ALIASES.get(key, key)
    if key == "IC-OPT":
        if schedule is None:
            raise SimulationError("IC-OPT policy needs a schedule")
        return SchedulePolicy(schedule)
    try:
        return BASELINE_POLICIES[key]()
    except KeyError:
        raise SimulationError(
            f"unknown policy {name!r}; known: "
            f"{sorted(BASELINE_POLICIES) + ['IC-OPT']}"
        ) from None
