"""Pluggable machine models for the IC server/client simulation.

The ideal simulator (:func:`repro.sim.server.simulate`) executes under
the exact idealization the source paper assumes: communication is
free, client memory is unbounded, and a task costs the same wherever
it runs.  Modern DAG-scheduling work drops each of those assumptions —
Papp et al. (*DAG Scheduling in the BSP Model*) price supersteps and
communication, Grandl et al. (DAGPS) pack tasks under resource
budgets — and ROADMAP item 3 asks when IC-optimality still wins once
they are gone.  This module answers with a pluggable
:class:`MachineModel` layer behind one :class:`~repro.api.specs.MachineSpec`
API:

``ideal``
    Today's semantics.  The dispatch layer routes ``machine="ideal"``
    to the untouched ideal kernel, so results stay byte-identical to
    the pre-machine simulator (regression-pinned by
    ``benchmarks/bench_machines.py``).
``bsp``
    Bulk-synchronous execution: tasks of dag level ℓ form superstep ℓ;
    when the last level-ℓ task completes, a barrier costing
    ``g·h + L`` opens level ℓ+1, where ``h`` is the largest per-client
    communication volume (sum of outdegrees of the level's tasks run
    on that client) — the h-relation of the BSP literature.  Full
    fan-out is charged because allocation is dynamic: at barrier time
    the server cannot know which consumers land where.
``memcap``
    Per-client memory budgets gate *placement*: a running attempt
    holds one slot, and a completed task's output stays resident on
    its client until every child has completed (sinks release
    immediately; the server keeps result copies, so crashes free a
    client's memory without losing data).  An ELIGIBLE task may be
    schedulable by the dag yet placeable nowhere — the regime where
    eager eligibility maximization can *hurt*.  A forced-spill valve
    (evict the oldest resident output on the fullest client after
    ``spill`` time units) guarantees termination.
``hetero``
    Per-task-kind duration distributions: each task kind draws a
    deterministic speed scale, each task a jitter within ``spread``,
    from seeded streams keyed by ``(seed, kind, task)`` alone — so
    durations are independent of allocation order and identical across
    policies, which is what makes cross-policy comparison fair.

Fault plans compose with any machine: :class:`~repro.sim.faults._FaultEngine`
threads the same hook surface (duration transform, placement gate,
barrier release, abort/crash cleanup), so ``blackout`` under ``bsp``
is one call away.  Accounting lands in a frozen :class:`MachineReport`
on ``SimulationResult.machine_report`` and in the ``sim_machine_*``
metrics.  See ``docs/MACHINES.md``.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.dag import ComputationDag, Node
from ..exceptions import MachineSpecError, SimulationError
from ..obs import global_registry, global_tracer, span
from .heuristics import Policy
from .server import ClientSpec, SimulationResult, TraceRecord, _record_quality

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..api.specs import MachineSpec

__all__ = [
    "BspMachine",
    "HeteroMachine",
    "IdealMachine",
    "MachineModel",
    "MachineReport",
    "MemcapMachine",
    "build_machine",
    "resolve_machine",
]


@dataclass(frozen=True)
class MachineReport:
    """Machine-model accounting for one simulated run (attached to
    ``SimulationResult.machine_report``; the same numbers land in the
    ``sim_machine_*`` metrics).  Fields irrelevant to a model keep
    their zero defaults.
    """

    #: round-trip spec string of the machine in force
    machine: str = "ideal"
    #: model kind (``ideal`` / ``bsp`` / ``memcap`` / ``hetero``)
    kind: str = "ideal"
    #: bsp: barriers crossed (one per non-final dag level)
    supersteps: int = 0
    #: bsp: total barrier time added (``sum g·h + L``)
    barrier_cost: float = 0.0
    #: bsp: total h-relation volume across barriers
    comm_volume: float = 0.0
    #: requests that found allocatable work the machine refused to
    #: place (barrier waits, memory-full clients)
    placement_stalls: int = 0
    #: memcap: forced evictions by the progress valve
    spills: int = 0
    #: memcap: total time consumed by forced spills
    spill_time: float = 0.0
    #: memcap: peak slots in use on any single client
    peak_memory: int = 0
    #: hetero: smallest duration factor drawn this run
    duration_min_factor: float = 1.0
    #: hetero: largest duration factor drawn this run
    duration_max_factor: float = 1.0


class MachineModel:
    """Base machine model: the hook surface both event engines
    (:func:`_simulate_machine` and the fault engine) thread.

    The default implementation is the ideal machine — every hook is a
    no-op — so a model overrides only the costs it prices.  Models are
    stateful within a run; :meth:`attach` (re)initializes all mutable
    state, so one instance may be reused across sequential runs but
    never shared between concurrent ones.
    """

    kind = "ideal"

    def __init__(self) -> None:
        self.stalls = 0
        self._spec_str: str | None = None

    # -- lifecycle ----------------------------------------------------
    def attach(self, dag: ComputationDag, n_clients: int,
               work_fn: Callable[[Node], float]) -> None:
        """Called once before a run; resets per-run state."""
        self.stalls = 0

    # -- pricing hooks ------------------------------------------------
    def duration(self, task: Node, cid: int, base: float) -> float:
        """Transform a task's compute work (before the client-speed
        division and communication add)."""
        return base

    def placeable(self, task: Node, cid: int, now: float) -> bool:
        """May ``task`` start on client ``cid`` at ``now``?"""
        return True

    # -- state hooks --------------------------------------------------
    def on_start(self, task: Node, cid: int, now: float) -> None:
        """An attempt of ``task`` began on ``cid``."""

    def on_complete(self, task: Node, cid: int,
                    now: float) -> float | None:
        """``task``'s winning result arrived from ``cid``.  Returns a
        future wake time (the engine schedules a release event and
        re-dispatches idle clients then) or ``None``."""
        return None

    def on_abort(self, task: Node, cid: int, now: float) -> None:
        """An attempt ended without a usable result (lost result,
        duplicate arrival, corruption) — ``cid`` is free again."""

    def on_crash(self, cid: int, now: float) -> None:
        """Client ``cid`` died permanently; its resources vanish."""

    def on_release(self, now: float) -> None:
        """A previously returned wake time arrived."""

    def force_progress(self, now: float) -> float | None:
        """Called when the engine is wedged (idle clients, allocatable
        tasks, empty event queue): trade something for progress and
        return the wake time, or ``None`` if nothing can be done."""
        return None

    # -- accounting ---------------------------------------------------
    def note_stall(self) -> None:
        """A request found allocatable work this machine refused."""
        self.stalls += 1

    def spec_str(self) -> str:
        return self._spec_str if self._spec_str is not None else self.kind

    def report(self) -> MachineReport:
        return MachineReport(machine=self.spec_str(), kind=self.kind,
                             placement_stalls=self.stalls)


class IdealMachine(MachineModel):
    """Today's semantics, as a model object.

    The dispatch layer (:func:`resolve_machine`) short-circuits
    ``ideal`` to the untouched ideal kernel, so this class exists for
    the model interface's sake (custom models subclass the same
    no-ops) and for callers that want an explicit object.
    """

    kind = "ideal"


class BspMachine(MachineModel):
    """Bulk-synchronous supersteps with ``g·h + L`` barriers (after
    Papp et al.).  Superstep ℓ is dag level ℓ; level ℓ+1 opens
    ``g·h + L`` after the last level-ℓ task completes, ``h`` = the
    largest per-client outdegree volume of the closing level."""

    kind = "bsp"

    def __init__(self, g: float = 0.5, L: float = 1.0) -> None:
        super().__init__()
        if g < 0 or L < 0:
            raise MachineSpecError(
                f"bsp g and L must be >= 0, got g={g}, L={L}"
            )
        self.g = float(g)
        self.L = float(L)

    def attach(self, dag, n_clients, work_fn):
        super().attach(dag, n_clients, work_fn)
        self._out = {v: dag.outdegree(v) for v in dag.nodes}
        self._level = dag.node_levels()
        self._remaining: dict[int, int] = {}
        for lvl in self._level.values():
            self._remaining[lvl] = self._remaining.get(lvl, 0) + 1
        self._depth = max(self._remaining, default=0)
        self._release: dict[int, float] = {0: 0.0}
        self._volume: dict[int, dict[int, float]] = {}
        self.supersteps = 0
        self.barrier_cost = 0.0
        self.comm_volume = 0.0

    def placeable(self, task, cid, now):
        release = self._release.get(self._level[task])
        return release is not None and release <= now

    def on_complete(self, task, cid, now):
        lvl = self._level[task]
        per_client = self._volume.setdefault(lvl, {})
        per_client[cid] = per_client.get(cid, 0.0) + self._out[task]
        self._remaining[lvl] -= 1
        if self._remaining[lvl] > 0 or lvl >= self._depth:
            return None
        h = max(per_client.values(), default=0.0)
        cost = self.g * h + self.L
        self.supersteps += 1
        self.barrier_cost += cost
        self.comm_volume += h
        self._release[lvl + 1] = now + cost
        return now + cost

    def report(self):
        return MachineReport(
            machine=self.spec_str(), kind=self.kind,
            supersteps=self.supersteps,
            barrier_cost=self.barrier_cost,
            comm_volume=self.comm_volume,
            placement_stalls=self.stalls,
        )


class MemcapMachine(MachineModel):
    """Per-client memory budgets gating placement (DAGPS-style
    packing pressure).

    A running attempt holds one slot; a completed task's output stays
    resident on its client until every child completes (sinks release
    immediately).  ``placeable`` admits a task only where a slot is
    free, so an ELIGIBLE task may be momentarily unplaceable
    everywhere.  When that wedges the run (all clients full, nothing
    in flight), the progress valve evicts the oldest resident output
    on the fullest client at a cost of ``spill`` time units — the
    server re-hosts it, modeling a paged transfer back over the
    Internet.
    """

    kind = "memcap"

    def __init__(self, cap: float = 3, spill: float = 2.0) -> None:
        super().__init__()
        if cap < 1:
            raise MachineSpecError(
                f"memcap cap must be >= 1, got {cap}"
            )
        if not spill > 0:
            raise MachineSpecError(
                f"memcap spill cost must be > 0, got {spill}"
            )
        self.cap = int(cap)
        self.spill = float(spill)

    def attach(self, dag, n_clients, work_fn):
        super().attach(dag, n_clients, work_fn)
        self._dag = dag
        self._usage: dict[int, int] = {}
        #: task -> client holding its resident output, insertion-ordered
        self._resident: dict[Node, int] = {}
        self._child_left = {v: dag.outdegree(v) for v in dag.nodes}
        self._pending_spills: list[int] = []
        self.spills = 0
        self.spill_time = 0.0
        self.peak = 0

    def _bump(self, cid: int, delta: int) -> None:
        use = self._usage.get(cid, 0) + delta
        self._usage[cid] = use
        if use > self.peak:
            self.peak = use

    def placeable(self, task, cid, now):
        return self._usage.get(cid, 0) < self.cap

    def on_start(self, task, cid, now):
        self._bump(cid, 1)

    def on_complete(self, task, cid, now):
        if self._child_left[task] == 0:
            self._bump(cid, -1)      # sink: running slot freed outright
        else:
            self._resident[task] = cid   # slot converts to output
        for parent in self._dag.parents(task):
            self._child_left[parent] -= 1
            if self._child_left[parent] == 0:
                owner = self._resident.pop(parent, None)
                if owner is not None:
                    self._bump(owner, -1)
        return None

    def on_abort(self, task, cid, now):
        self._bump(cid, -1)

    def on_crash(self, cid, now):
        # the client's RAM is gone: running slot and resident outputs
        # alike.  The server holds copies of every received result, so
        # nothing is lost — descendants refetch from the server.
        self._usage[cid] = 0
        for task, owner in list(self._resident.items()):
            if owner == cid:
                del self._resident[task]

    def force_progress(self, now):
        if not self._resident:
            return None
        counts: dict[int, int] = {}
        for owner in self._resident.values():
            counts[owner] = counts.get(owner, 0) + 1
        victim_cid = max(sorted(counts), key=lambda c: counts[c])
        for task, owner in self._resident.items():
            if owner == victim_cid:
                del self._resident[task]     # oldest resident first
                break
        self._pending_spills.append(victim_cid)
        self.spills += 1
        self.spill_time += self.spill
        return now + self.spill

    def on_release(self, now):
        if self._pending_spills:
            self._bump(self._pending_spills.pop(0), -1)

    def report(self):
        return MachineReport(
            machine=self.spec_str(), kind=self.kind,
            placement_stalls=self.stalls,
            spills=self.spills,
            spill_time=self.spill_time,
            peak_memory=self.peak,
        )


def _task_kind(task: Node) -> str:
    """A task's *kind* for heterogeneous duration draws: the leading
    role label of its name (tuple head, or the alpha prefix of its
    string form), so structured node names — ``("mul", i, j)``,
    ``"v3-2"``, ``N(2,1)`` — group into families."""
    if isinstance(task, tuple) and task:
        return str(task[0])
    s = str(task)
    for cut in "(:-,0123456789":
        idx = s.find(cut)
        if idx > 0:
            s = s[:idx]
    return s or str(task)


class HeteroMachine(MachineModel):
    """Per-task-kind duration distributions, seedable and
    deterministic.

    Each kind draws a speed scale in ``[0.5, 2)`` from
    ``Random(f"repro-hetero-kind:{seed}:{kind}")``; each task a jitter
    factor in ``[1-spread, 1+spread)`` from
    ``Random(f"repro-hetero:{seed}:{task!r}")``.  Factors are pure
    functions of ``(seed, task)`` — never of allocation order — so
    every policy faces the identical duration surface and two runs are
    bit-equal.
    """

    kind = "hetero"

    def __init__(self, spread: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= spread < 1.0:
            raise MachineSpecError(
                f"hetero spread must be in [0, 1), got {spread}"
            )
        self.spread = float(spread)
        self.seed = int(seed)

    def attach(self, dag, n_clients, work_fn):
        super().attach(dag, n_clients, work_fn)
        self._factors: dict[Node, float] = {}
        self._scales: dict[str, float] = {}
        self.min_factor = 1.0
        self.max_factor = 1.0
        self._drawn = False

    def _factor(self, task: Node) -> float:
        f = self._factors.get(task)
        if f is None:
            kind = _task_kind(task)
            scale = self._scales.get(kind)
            if scale is None:
                scale = 0.5 + 1.5 * random.Random(
                    f"repro-hetero-kind:{self.seed}:{kind}").random()
                self._scales[kind] = scale
            u = random.Random(
                f"repro-hetero:{self.seed}:{task!r}").random()
            f = max(scale * (1.0 + self.spread * (2.0 * u - 1.0)), 0.05)
            self._factors[task] = f
            if not self._drawn:
                self.min_factor = self.max_factor = f
                self._drawn = True
            else:
                self.min_factor = min(self.min_factor, f)
                self.max_factor = max(self.max_factor, f)
        return f

    def duration(self, task, cid, base):
        return base * self._factor(task)

    def report(self):
        return MachineReport(
            machine=self.spec_str(), kind=self.kind,
            placement_stalls=self.stalls,
            duration_min_factor=self.min_factor,
            duration_max_factor=self.max_factor,
        )


# ----------------------------------------------------------------------
# spec resolution
# ----------------------------------------------------------------------


def build_machine(spec: "MachineSpec") -> MachineModel:
    """Construct a fresh :class:`MachineModel` for a validated
    :class:`~repro.api.specs.MachineSpec`."""
    if spec.kind == "ideal":
        model: MachineModel = IdealMachine()
    elif spec.kind == "bsp":
        model = BspMachine(g=spec.get("g"), L=spec.get("L"))
    elif spec.kind == "memcap":
        model = MemcapMachine(cap=spec.get("cap"),
                              spill=spec.get("spill"))
    elif spec.kind == "hetero":
        model = HeteroMachine(spread=spec.get("spread"),
                              seed=int(spec.get("seed")))
    else:  # pragma: no cover - MachineSpec validates kinds
        raise MachineSpecError(f"unknown machine kind {spec.kind!r}")
    model._spec_str = str(spec)
    return model


def resolve_machine(machine) -> MachineModel | None:
    """Resolve a ``machine=`` argument — ``None``, a spec string, a
    :class:`~repro.api.specs.MachineSpec`, or a ready
    :class:`MachineModel` — to the model the engines thread, or
    ``None`` for the ideal machine (the dispatch layer keeps the ideal
    path byte-identical by never interposing a model there)."""
    if machine is None or isinstance(machine, MachineModel):
        if machine is not None and machine.kind == "ideal":
            return None
        return machine
    from ..api.specs import MachineSpec

    spec = MachineSpec.parse(machine) if isinstance(machine, str) \
        else machine
    if not isinstance(spec, MachineSpec):
        raise MachineSpecError(
            f"machine must be a spec string, MachineSpec, or "
            f"MachineModel, got {type(machine).__name__}"
        )
    if spec.kind == "ideal":
        return None
    return build_machine(spec)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------


def _record_machine(reg, report: MachineReport) -> None:
    """Publish a run's machine accounting as per-kind labeled series
    (the ``sim_machine_*`` family; rendered by ``repro watch`` and the
    service ``/metrics``)."""
    labels = ("machine",)
    reg.counter("sim_machine_runs_total",
                "completed simulation runs under a machine model",
                labels).labels(report.kind).inc()
    reg.gauge("sim_machine_supersteps",
              "bsp supersteps of the latest machine-model run",
              labels).labels(report.kind).set(report.supersteps)
    reg.gauge("sim_machine_barrier_cost",
              "total bsp barrier time of the latest machine-model run",
              labels).labels(report.kind).set(report.barrier_cost)
    reg.gauge("sim_machine_placement_stalls",
              "requests the machine refused to place in the latest run",
              labels).labels(report.kind).set(report.placement_stalls)
    reg.gauge("sim_machine_spills",
              "forced memory spills of the latest machine-model run",
              labels).labels(report.kind).set(report.spills)
    reg.gauge("sim_machine_peak_memory",
              "peak per-client memory slots of the latest run",
              labels).labels(report.kind).set(report.peak_memory)


# ----------------------------------------------------------------------
# the machine-aware event loop (no-fault path)
# ----------------------------------------------------------------------


def _simulate_machine(
    dag: ComputationDag,
    policy: Policy,
    clients: Sequence[ClientSpec] | int,
    work: Callable[[Node], float] | float,
    seed: int,
    comm_per_input: float,
    record_trace: bool,
    machine: MachineModel,
) -> SimulationResult:
    """The machine-aware sibling of
    :func:`repro.sim.server._simulate_ideal`: the same event loop with
    the model's pricing/placement hooks threaded.

    Kept separate so the ideal kernel stays untouched (byte-identity
    is the acceptance bar, pinned by ``benchmarks/bench_machines.py``).
    Observatory frame capture is ideal-path-only for now; metrics and
    tracing are recorded identically.
    """
    if isinstance(clients, int):
        clients = [ClientSpec() for _ in range(clients)]
    if not clients:
        raise SimulationError("need at least one client")
    work_fn = work if callable(work) else (lambda _v, _w=float(work): _w)
    rng = random.Random(seed)
    policy.attach(dag)
    machine.attach(dag, len(clients), work_fn)

    reg = global_registry()
    m_alloc = reg.counter("sim_allocations_total",
                          "tasks handed to clients")
    m_done = reg.counter("sim_completions_total",
                         "task results received by the server")
    m_lost = reg.counter("sim_losses_total",
                         "allocations lost (client vanished)")
    m_starve = reg.counter(
        "sim_starvation_total",
        "client requests that found no allocatable task")
    g_allocatable = reg.gauge(
        "sim_allocatable",
        "allocatable (eligible, unallocated) tasks at the latest "
        "simulation step")
    g_eligible = reg.gauge(
        "sim_eligible",
        "ELIGIBLE unexecuted tasks (allocatable + in flight) at the "
        "latest simulation step")
    g_completed = reg.gauge(
        "sim_completed",
        "tasks completed at the latest simulation step")
    m_steps = reg.counter(
        "sim_steps_total", "simulation event-loop steps processed")
    tracer = global_tracer()

    pending_parents = {v: dag.indegree(v) for v in dag.nodes}
    allocatable: list[Node] = [
        v for v in dag.nodes if pending_parents[v] == 0
    ]
    allocated: set[Node] = set()
    done: set[Node] = set()

    counter = itertools.count()
    events: list[tuple[float, int, str, int, Node | None]] = []
    idle_clients: list[int] = []
    idle_since: dict[int, float] = {}
    busy_time = 0.0
    idle_time = 0.0
    starvation = 0
    headroom: list[tuple[float, int]] = [(0.0, len(allocatable))]
    lost_allocations = 0
    wasted_work = 0.0
    trace: list[TraceRecord] = []

    def start_task(cid: int, task: Node, now: float) -> None:
        nonlocal busy_time, lost_allocations, wasted_work
        allocatable.remove(task)
        allocated.add(task)
        spec = clients[cid]
        duration = machine.duration(task, cid, work_fn(task)) / spec.speed
        if spec.dropout and rng.random() < spec.dropout:
            duration *= spec.slowdown
        duration += comm_per_input * dag.indegree(task)
        lost = bool(spec.loss) and rng.random() < spec.loss
        machine.on_start(task, cid, now)
        if lost:
            lost_allocations += 1
            wasted_work += duration
        else:
            busy_time += duration
        kind = "lost" if lost else "done"
        m_alloc.inc()
        tracer.event("sim.allocate", client=cid, task=str(task),
                     t=now, kind=kind)
        if record_trace:
            trace.append(
                TraceRecord(cid, task, now, now + duration, kind)
            )
        heapq.heappush(
            events, (now + duration, next(counter), kind, cid, task)
        )

    def try_allocate(cid: int, now: float) -> bool:
        if not allocatable:
            return False
        ready = [t for t in allocatable
                 if machine.placeable(t, cid, now)]
        if not ready:
            machine.note_stall()
            return False
        start_task(cid, policy.select(ready), now)
        return True

    def go_idle(cid: int, now: float) -> None:
        nonlocal starvation
        if not allocatable and len(done) < len(dag):
            starvation += 1
            m_starve.inc()
        idle_clients.append(cid)
        idle_since[cid] = now

    def publish_step() -> None:
        g_allocatable.set(len(allocatable))
        g_eligible.set(len(allocatable) + len(allocated))
        g_completed.set(len(done))

    with span("sim.simulate", dag=dag.name, policy=policy.name,
              clients=len(clients), machine=machine.kind):
        now = 0.0
        for cid in range(len(clients)):
            if not try_allocate(cid, now):
                go_idle(cid, now)
        headroom.append((now, len(allocatable)))
        publish_step()

        while events:
            now, _tb, kind, cid, task = heapq.heappop(events)
            m_steps.inc()
            if kind == "release":
                machine.on_release(now)
            elif kind == "lost":
                assert task is not None
                allocated.discard(task)
                allocatable.append(task)
                machine.on_abort(task, cid, now)
                m_lost.inc()
                tracer.event("sim.loss", client=cid, task=str(task),
                             t=now)
            else:
                assert task is not None
                allocated.discard(task)
                done.add(task)
                m_done.inc()
                tracer.event("sim.complete", client=cid,
                             task=str(task), t=now)
                release = machine.on_complete(task, cid, now)
                if release is not None:
                    heapq.heappush(
                        events,
                        (release, next(counter), "release", -1, None),
                    )
                for child in dag.children(task):
                    pending_parents[child] -= 1
                    if pending_parents[child] == 0:
                        allocatable.append(child)
            # wake idle clients the machine will serve; restart the
            # scan after a success — each placement can change what is
            # placeable elsewhere (memory freed, levels opened)
            i = 0
            while i < len(idle_clients) and allocatable:
                wid = idle_clients[i]
                ready = [t for t in allocatable
                         if machine.placeable(t, wid, now)]
                if ready:
                    idle_clients.pop(i)
                    idle_time += now - idle_since.pop(wid)
                    start_task(wid, policy.select(ready), now)
                    i = 0
                else:
                    i += 1
            if kind in ("done", "lost"):
                # the finishing client requests again
                if not try_allocate(cid, now):
                    go_idle(cid, now)
            headroom.append((now, len(allocatable)))
            publish_step()
            if not events and allocatable and len(done) < len(dag):
                # wedged: idle clients, allocatable work, nothing in
                # flight — ask the machine to trade for progress
                wake = machine.force_progress(now)
                if wake is None:
                    raise SimulationError(
                        f"machine {machine.kind!r} wedged the "
                        f"simulation: {len(done)}/{len(dag)} tasks "
                        "done and no placement possible"
                    )
                heapq.heappush(
                    events, (wake, next(counter), "release", -1, None)
                )

    if len(done) != len(dag):
        raise SimulationError(
            f"simulation stalled: {len(done)}/{len(dag)} tasks done"
        )
    for wid in idle_clients:
        idle_time += now - idle_since.pop(wid, now)
    makespan = now
    util = (
        busy_time / (len(clients) * makespan) if makespan > 0 else 1.0
    )
    result = SimulationResult(
        policy=policy.name,
        makespan=makespan,
        starvation_events=starvation,
        idle_time=idle_time,
        utilization=util,
        headroom_series=headroom,
        completed=len(done),
        lost_allocations=lost_allocations,
        wasted_work=wasted_work,
        trace=trace,
        machine_report=machine.report(),
    )
    _record_quality(reg, result)
    _record_machine(reg, result.machine_report)
    return result
