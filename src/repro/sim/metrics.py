"""Derived metrics and policy comparisons.

The quality scenarios of Section 2.2 become measurable quantities
here:

1. gridlock avoidance -> starvation events / idle time in the server
   simulation (:func:`compare_policies`);
2. batch parallelism -> how many of ``r`` simultaneous requests an
   eligibility profile can satisfy (:func:`batch_satisfaction`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.dag import ComputationDag
from ..core.schedule import Schedule
from .heuristics import make_policy
from .server import ClientSpec, SimulationResult, simulate

__all__ = [
    "batch_satisfaction",
    "PolicyComparison",
    "compare_policies",
]


def batch_satisfaction(profile: Sequence[int], batch: int) -> float:
    """Mean fraction of a size-``batch`` request burst satisfiable
    along an eligibility profile: ``mean_t min(E(t), batch) / batch``.

    Scenario (2) of Section 2.2: when the server receives a batch of
    requests at (roughly) the same time, having more ELIGIBLE tasks
    satisfies more of them.  Higher is better; an IC-optimal profile
    maximizes every term simultaneously.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    terms = [min(e, batch) / batch for e in profile]
    return sum(terms) / len(terms) if terms else 0.0


@dataclass
class PolicyComparison:
    """Results of running several policies on one dag/client setup."""

    dag_name: str
    n_clients: int
    results: dict[str, SimulationResult]
    machine: str = "ideal"
    seeds: dict[str, int] = field(default_factory=dict)

    def best_by(self, attr: str, minimize: bool = True) -> str:
        vals = {k: getattr(r, attr) for k, r in self.results.items()}
        pick = min if minimize else max
        return pick(vals, key=vals.get)

    def table_rows(self) -> list[tuple]:
        """Rows ``(policy, makespan, starvation, idle, utilization,
        mean_headroom, seed)`` for report rendering.  The seed column
        records the rng seed each policy's run actually used, so a row
        can be reproduced in isolation."""
        return [
            (
                name,
                round(r.makespan, 3),
                r.starvation_events,
                round(r.idle_time, 3),
                round(r.utilization, 4),
                round(r.mean_headroom, 3),
                self.seeds.get(name, 0),
            )
            for name, r in self.results.items()
        ]


def compare_policies(
    dag: ComputationDag,
    ic_schedule: Schedule | None,
    clients: Sequence[ClientSpec] | int = 4,
    policies: Sequence[str] = ("FIFO", "LIFO", "RANDOM", "MAXOUT", "CRITPATH"),
    work=1.0,
    seed: int = 0,
    comm_per_input: float = 0.0,
    server_policy=None,
    fault_plan=None,
    machine=None,
) -> PolicyComparison:
    """Run the server simulation under each policy (plus IC-OPT when a
    schedule is given) with identical clients, seeds, and — when
    ``server_policy`` / ``fault_plan`` are given — an identical chaos
    script (every policy faces the same scripted faults and the same
    fault-tolerance machinery; see :mod:`repro.sim.faults`).

    ``machine`` selects the machine model every policy runs on (a
    :class:`~repro.api.specs.MachineSpec`, a spec string such as
    ``"bsp:g=1"``, or ``None``/``"ideal"`` for the free-communication
    default); each policy gets a fresh model instance built from the
    same spec, so model state never leaks between runs."""
    spec = machine
    if isinstance(machine, str):
        from ..api.specs import MachineSpec

        spec = MachineSpec.parse(machine)
    results: dict[str, SimulationResult] = {}
    seeds: dict[str, int] = {}
    if ic_schedule is not None:
        results["IC-OPT"] = simulate(
            dag,
            make_policy("IC-OPT", ic_schedule),
            clients,
            work,
            seed,
            comm_per_input,
            server_policy=server_policy,
            fault_plan=fault_plan,
            machine=spec,
        )
        seeds["IC-OPT"] = seed
    for name in policies:
        results[name] = simulate(
            dag, make_policy(name), clients, work, seed, comm_per_input,
            server_policy=server_policy, fault_plan=fault_plan,
            machine=spec,
        )
        seeds[name] = seed
    n = clients if isinstance(clients, int) else len(clients)
    machine_name = "ideal" if spec is None else str(spec)
    return PolicyComparison(
        dag_name=dag.name, n_clients=n, results=results,
        machine=machine_name, seeds=seeds,
    )


def granularity_tradeoff(
    fine_dag: ComputationDag,
    cluster_maps: dict,
    clients: Sequence[ClientSpec] | int = 4,
    comm_per_input: float = 0.5,
    seed: int = 0,
) -> list[tuple]:
    """Simulate a computation at several granularities (future thrust 3
    of Section 8 meets the multi-granularity theme of Sections 3-7).

    ``cluster_maps`` maps a label (e.g. block size) to a fine-node ->
    cluster map; each coarsening is simulated with coarse-task work
    equal to its fine-node count and per-input communication cost, on
    identical clients.  Returns rows
    ``(label, tasks, cut_arcs, makespan, utilization)`` — coarser runs
    trade parallelism for communication, and the sweet spot moves with
    ``comm_per_input``.
    """
    from ..core.scheduler import greedy_schedule
    from ..granularity.clustering import clustering_report

    rows: list[tuple] = []
    for label, cmap in cluster_maps.items():
        rep = clustering_report(fine_dag, cmap)
        coarse = rep.quotient
        sched = greedy_schedule(coarse)
        res = simulate(
            coarse,
            make_policy("IC-OPT", sched),
            clients,
            work=lambda v, _w=rep.work: float(_w[v]),
            seed=seed,
            comm_per_input=comm_per_input,
        )
        rows.append(
            (
                label,
                len(coarse),
                rep.cut_arcs,
                round(res.makespan, 3),
                round(res.utilization, 4),
            )
        )
    return rows
