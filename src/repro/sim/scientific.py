"""Synthetic replicas of real scientific-workflow dags.

The paper's assessment arm includes [19], which evaluated the
IC-scheduling algorithm against Condor DAGMan's FIFO on "four 'real'
scientific dags".  We do not have those traces (see DESIGN.md
"Substitutions"); this module provides structural stand-ins built from
the well-documented shapes of four canonical scientific workflows, so
the policy comparison can run on workflow topologies rather than only
on the paper's regular families:

* :func:`montage_like` — astronomy mosaicking: wide projection layer,
  pairwise overlap-fitting, a concentration spine (fit aggregation),
  then background-correction fan-out and a final co-addition funnel;
* :func:`cybershake_like` — seismic hazard: per-site preprocessing
  feeding very wide synthesis fan-outs that merge per site, then
  globally;
* :func:`epigenomics_like` — genome pipelines: many independent
  fixed-depth per-chunk pipelines joined by a final merge chain;
* :func:`ligo_like` — gravitational-wave inspiral: rounds of
  fork-join template banks chained by coarse coordination tasks.

Node counts and fan-outs are parameterized; per-task work callables
mirror the heavy/light stage split typical of each workflow.
"""

from __future__ import annotations

from collections.abc import Callable

from ..exceptions import SimulationError
from ..core.dag import ComputationDag, Node

__all__ = [
    "montage_like",
    "cybershake_like",
    "epigenomics_like",
    "ligo_like",
    "SCIENTIFIC_WORKFLOWS",
]

WorkFn = Callable[[Node], float]


def montage_like(tiles: int = 8) -> tuple[ComputationDag, WorkFn]:
    """A Montage-shaped mosaicking workflow over ``tiles`` sky tiles.

    Layers: mProject per tile -> mDiffFit per adjacent tile pair ->
    mConcatFit (single) -> mBgModel (single) -> mBackground per tile ->
    mImgtbl -> mAdd.  Returns ``(dag, work)`` with projection and
    co-addition marked heavy.
    """
    if tiles < 2:
        raise SimulationError("montage needs >= 2 tiles")
    dag = ComputationDag(name=f"montage({tiles})")
    for i in range(tiles):
        dag.add_node(("project", i))
    for i in range(tiles - 1):
        dag.add_arc(("project", i), ("difffit", i))
        dag.add_arc(("project", i + 1), ("difffit", i))
    for i in range(tiles - 1):
        dag.add_arc(("difffit", i), "concatfit")
    dag.add_arc("concatfit", "bgmodel")
    for i in range(tiles):
        dag.add_arc("bgmodel", ("background", i))
        dag.add_arc(("project", i), ("background", i))
        dag.add_arc(("background", i), "imgtbl")
    dag.add_arc("imgtbl", "madd")

    def work(v: Node) -> float:
        kind = v[0] if isinstance(v, tuple) else v
        return {"project": 3.0, "background": 1.5, "madd": 4.0}.get(
            kind, 1.0
        )

    return dag, work


def cybershake_like(
    sites: int = 3, synthesis_per_site: int = 12
) -> tuple[ComputationDag, WorkFn]:
    """A CyberShake-shaped hazard workflow: per-site strain-green-tensor
    pair feeding a wide seismogram-synthesis fan-out, peak-value
    extraction per synthesis, per-site merge, global merge."""
    if sites < 1 or synthesis_per_site < 1:
        raise SimulationError("need >= 1 site and synthesis task")
    dag = ComputationDag(
        name=f"cybershake({sites}x{synthesis_per_site})"
    )
    for s in range(sites):
        for half in (0, 1):
            dag.add_arc(("preSGT", s), ("sgt", s, half))
        for j in range(synthesis_per_site):
            for half in (0, 1):
                dag.add_arc(("sgt", s, half), ("synth", s, j))
            dag.add_arc(("synth", s, j), ("peak", s, j))
            dag.add_arc(("peak", s, j), ("site_merge", s))
        dag.add_arc(("site_merge", s), "hazard")

    def work(v: Node) -> float:
        kind = v[0] if isinstance(v, tuple) else v
        return {"sgt": 5.0, "synth": 2.0, "hazard": 3.0}.get(kind, 0.5)

    return dag, work


def epigenomics_like(
    lanes: int = 6, pipeline_depth: int = 4
) -> tuple[ComputationDag, WorkFn]:
    """An Epigenomics-shaped pipeline: a split task fans into ``lanes``
    independent linear pipelines of ``pipeline_depth`` stages (filter,
    map, align, ...) that rejoin through a merge-then-index chain."""
    if lanes < 1 or pipeline_depth < 1:
        raise SimulationError("need >= 1 lane and stage")
    dag = ComputationDag(name=f"epigenomics({lanes}x{pipeline_depth})")
    for lane in range(lanes):
        dag.add_arc("split", ("stage", lane, 0))
        for d in range(pipeline_depth - 1):
            dag.add_arc(("stage", lane, d), ("stage", lane, d + 1))
        dag.add_arc(("stage", lane, pipeline_depth - 1), "merge")
    dag.add_arc("merge", "index")
    dag.add_arc("index", "register")

    def work(v: Node) -> float:
        kind = v[0] if isinstance(v, tuple) else v
        if kind == "stage":
            # alignment stages (middle of the pipeline) dominate
            return 4.0 if v[2] == pipeline_depth // 2 else 1.0
        return {"merge": 3.0}.get(kind, 0.5)

    return dag, work


def ligo_like(
    rounds: int = 3, bank_width: int = 10
) -> tuple[ComputationDag, WorkFn]:
    """A LIGO-inspiral-shaped workflow: successive rounds of template-
    bank fork-joins (TmpltBank -> many Inspiral -> Thinca), each round's
    coordination task gating the next."""
    if rounds < 1 or bank_width < 1:
        raise SimulationError("need >= 1 round and template")
    dag = ComputationDag(name=f"ligo({rounds}x{bank_width})")
    prev: Node = ("bank", 0)
    dag.add_node(prev)
    for r in range(rounds):
        bank = ("bank", r)
        if r > 0:
            dag.add_arc(("thinca", r - 1), bank)
        for j in range(bank_width):
            dag.add_arc(bank, ("inspiral", r, j))
            dag.add_arc(("inspiral", r, j), ("thinca", r))

    def work(v: Node) -> float:
        kind = v[0] if isinstance(v, tuple) else v
        return {"inspiral": 3.0, "thinca": 1.5}.get(kind, 1.0)

    return dag, work


#: name -> zero-argument builder, for sweeps and the bench harness.
SCIENTIFIC_WORKFLOWS = {
    "montage": montage_like,
    "cybershake": cybershake_like,
    "epigenomics": epigenomics_like,
    "ligo": ligo_like,
}
