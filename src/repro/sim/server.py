"""The event-driven IC server/client simulation.

This is the assessment substrate standing in for the external
simulation studies the paper cites ([15], [19] — Condor/DAGMan traces
we do not have; see DESIGN.md "Substitutions").  The model:

* an **IC server** owns the dag and allocates one task per client
  request, chosen among ELIGIBLE-and-unallocated tasks by the active
  :class:`~repro.sim.heuristics.Policy`;
* **remote clients** pull work: each requests a task immediately, and
  again as soon as it finishes one; a client that finds no allocatable
  task goes idle — a **starvation event**, the "gridlock" precursor of
  Section 1 — and is woken by the next task completion;
* task *k* takes ``work(k) / speed(client)`` time units; heterogeneous
  speeds make completion order diverge from allocation order, which is
  precisely the regime where eligibility headroom pays off.

Reported metrics: makespan, client utilization, starvation counts and
idle time, and the eligible/allocatable headroom time-series.
"""

from __future__ import annotations

import heapq
import itertools
import random
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, NamedTuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..api.specs import MachineSpec
    from .faults import FaultPlan, FaultReport, ServerPolicy
    from .machines import MachineModel, MachineReport

from ..exceptions import SimulationError
from ..core.dag import ComputationDag, Node
from ..obs import global_registry, global_tracer, span
from ..obs.context import current_request_id
from .heuristics import Policy

__all__ = [
    "ClientSpec",
    "SimulationResult",
    "TraceRecord",
    "simulate",
    "simulate_batched",
    "simulate_scheduled",
]


class TraceRecord(NamedTuple):
    """One allocation in a simulation trace.

    Index-compatible with the bare ``(client_id, task, start, end,
    kind)`` tuples earlier versions recorded, so positional consumers
    (``analysis.ascii_dag.render_gantt``, archived traces) keep
    working; new code should use the field names.
    """

    #: index of the client the task was allocated to
    client_id: int
    #: the task (dag node)
    task: Node
    #: allocation time
    start: float
    #: completion (or loss-detection) time
    end: float
    #: ``"done"`` or ``"lost"``
    kind: str


@dataclass(frozen=True)
class ClientSpec:
    """A remote client.

    ``speed``
        Relative speed; a task of work *w* computes in ``w / speed``.
    ``dropout`` / ``slowdown``
        Probability that a task's result is late, and the factor by
        which it is delayed when so.
    ``loss``
        Probability that a task's result never arrives at all — the
        client vanished.  The server detects the loss after the task's
        nominal duration, returns the task to the allocatable pool (it
        was never executed, so no recomputation rule is violated), and
        the wasted client time is accounted.  This is the failure mode
        behind the paper's "gridlock" concern: already-allocated tasks
        that block progress.  Must be < 1 so runs terminate.
    """

    speed: float = 1.0
    dropout: float = 0.0
    slowdown: float = 4.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        if not self.speed > 0.0:
            raise SimulationError(
                f"client speed must be > 0, got {self.speed}"
            )
        if not 0.0 <= self.dropout < 1.0:
            raise SimulationError(
                f"dropout probability must be in [0, 1), got "
                f"{self.dropout}"
            )
        if not self.slowdown >= 1.0:
            raise SimulationError(
                f"slowdown factor must be >= 1, got {self.slowdown}"
            )
        if not 0.0 <= self.loss < 1.0:
            raise SimulationError(
                f"loss probability must be in [0, 1), got {self.loss}"
            )


@dataclass
class SimulationResult:
    """Outcome of one simulated execution."""

    policy: str
    makespan: float
    #: requests that found no allocatable task (computation unfinished)
    starvation_events: int
    #: total client-time spent idle waiting for work
    idle_time: float
    #: busy_time / (n_clients * makespan)
    utilization: float
    #: (time, allocatable_count) sampled at every event
    headroom_series: list[tuple[float, int]] = field(repr=False, default_factory=list)
    #: number of tasks executed (== |dag| on success)
    completed: int = 0
    #: allocations whose result was lost (client vanished)
    lost_allocations: int = 0
    #: client-time burnt on lost allocations
    wasted_work: float = 0.0
    #: per-allocation :class:`TraceRecord` entries; populated only
    #: when ``simulate(..., record_trace=True)`` (guaranteed empty —
    #: not merely discarded — on the non-trace path)
    trace: list[TraceRecord] = field(repr=False, default_factory=list)
    #: fault-path accounting (:class:`~repro.sim.faults.FaultReport`);
    #: ``None`` on the ideal (no server policy, no fault plan) path
    fault_report: "FaultReport | None" = None
    #: machine-model accounting
    #: (:class:`~repro.sim.machines.MachineReport`); ``None`` on the
    #: ideal machine (the default), so ideal results stay byte-
    #: identical to the pre-machine simulator
    machine_report: "MachineReport | None" = None

    @property
    def mean_headroom(self) -> float:
        """Time-averaged allocatable-task count."""
        if len(self.headroom_series) < 2:
            return 0.0
        area = 0.0
        for (t0, h), (t1, _h1) in zip(
            self.headroom_series, self.headroom_series[1:]
        ):
            area += h * (t1 - t0)
        span = self.headroom_series[-1][0] - self.headroom_series[0][0]
        return area / span if span > 0 else 0.0


def simulate(
    dag: ComputationDag,
    policy: Policy,
    clients: Sequence[ClientSpec] | int = 4,
    work: Callable[[Node], float] | float = 1.0,
    seed: int = 0,
    comm_per_input: float = 0.0,
    record_trace: bool = False,
    *,
    server_policy: "ServerPolicy | None" = None,
    fault_plan: "FaultPlan | None" = None,
    machine: "MachineSpec | MachineModel | str | None" = None,
) -> SimulationResult:
    """Simulate executing ``dag`` on remote clients under ``policy``.

    Parameters
    ----------
    clients:
        Client specs, or an int for that many unit-speed clients.
    work:
        Per-task work (callable or constant).
    seed:
        Drives dropout sampling and work jitter reproducibly.
    comm_per_input:
        Internet transfer cost per task input (future thrust 3 of
        Section 8): a task with indegree ``k`` pays an extra
        ``comm_per_input * k`` before computing — *not* scaled by
        client speed, since it is network- not CPU-bound.  Coarsening
        a dag reduces total indegree (cut arcs), which is exactly the
        granularity trade-off of Figs. 3/7.
    record_trace:
        Record one :class:`TraceRecord` per allocation into
        ``SimulationResult.trace``.  Off by default; the trace list
        stays empty (nothing is even appended) on the non-trace path.
    server_policy / fault_plan:
        Switch to the realistic failure model of
        :mod:`repro.sim.faults`: timeout-based loss detection, retry
        with backoff, speculative re-execution, k-replication, and
        quarantine under an injected chaos script.  Passing either (a
        :class:`~repro.sim.faults.ServerPolicy` /
        :class:`~repro.sim.faults.FaultPlan`) dispatches to
        :func:`~repro.sim.faults.simulate_with_faults` and populates
        ``SimulationResult.fault_report``; the default (both ``None``)
        keeps the ideal model and its exact event sequence.
    machine:
        A machine model (``docs/MACHINES.md``): a spec string
        (``"bsp:g=1.0"``), a :class:`~repro.api.specs.MachineSpec`, or
        a ready :class:`~repro.sim.machines.MachineModel`.  ``None``
        and ``"ideal"`` keep today's free-communication semantics on
        the untouched ideal kernel — byte-identical results, pinned by
        ``benchmarks/bench_machines.py``; any other kind routes to the
        machine-aware loop (or threads the model through the fault
        engine — fault plans compose with any machine) and populates
        ``SimulationResult.machine_report``.

    Allocation/completion/loss/starvation counts, the per-step
    eligibility / allocatable / completed gauges, and (on completion)
    the per-policy ``sim_quality_*`` series are recorded into the
    process-wide metrics registry — this is what ``repro watch``
    renders live; with tracing enabled, every allocation outcome also
    emits a structured trace event under the ``sim.simulate`` span.
    """
    model = None
    if machine is not None:
        from .machines import resolve_machine

        model = resolve_machine(machine)
    if server_policy is not None or fault_plan is not None:
        from .faults import simulate_with_faults

        return simulate_with_faults(
            dag, policy, clients, work, seed, comm_per_input,
            record_trace, server_policy=server_policy,
            fault_plan=fault_plan, machine=model,
        )
    if model is None:
        return _simulate_ideal(
            dag, policy, clients, work, seed, comm_per_input,
            record_trace
        )
    from .machines import _simulate_machine

    return _simulate_machine(
        dag, policy, clients, work, seed, comm_per_input, record_trace,
        model,
    )


def _simulate_ideal(
    dag: ComputationDag,
    policy: Policy,
    clients: Sequence[ClientSpec] | int = 4,
    work: Callable[[Node], float] | float = 1.0,
    seed: int = 0,
    comm_per_input: float = 0.0,
    record_trace: bool = False,
    _frames: bool = True,
) -> SimulationResult:
    """The ideal-model event loop behind :func:`simulate` (instant loss
    detection, no timeouts/retries/replication).  Kept as a separate
    kernel so the fault-path dispatch overhead is measurable
    (``benchmarks/bench_faults.py``).

    ``_frames=False`` is the benchmark reference knob
    (``benchmarks/bench_observability.py``): it skips the frame-store
    resolution entirely, isolating the observatory's disabled-path
    cost (one store lookup + an ``enabled`` check per run; the
    per-event capture branch tests a local ``None`` either way)."""
    if isinstance(clients, int):
        clients = [ClientSpec() for _ in range(clients)]
    if not clients:
        raise SimulationError("need at least one client")
    work_fn = work if callable(work) else (lambda _v, _w=float(work): _w)
    rng = random.Random(seed)
    policy.attach(dag)

    # -- observatory frame capture (docs/OBSERVABILITY.md §7) ----------
    # resolved ONCE per run, like the tracer's enabled flag: with the
    # global store disabled (the default), `channel` stays None and the
    # loop below only ever pays a pointer comparison per event.
    channel = None
    frame_store = None
    if _frames:
        from ..obs.observatory import global_frame_store

        frame_store = global_frame_store()
        if frame_store.enabled:
            channel = frame_store.channel(
                dag, clients=len(clients), policy=policy.name
            )
    occupancy: list[Node | None] = (
        [None] * len(clients) if channel is not None else []
    )
    frame_events: list[dict] = []
    frame_step = 0

    reg = global_registry()
    m_alloc = reg.counter("sim_allocations_total",
                          "tasks handed to clients")
    m_done = reg.counter("sim_completions_total",
                         "task results received by the server")
    m_lost = reg.counter("sim_losses_total",
                         "allocations lost (client vanished)")
    m_starve = reg.counter(
        "sim_starvation_total",
        "client requests that found no allocatable task")
    g_allocatable = reg.gauge(
        "sim_allocatable",
        "allocatable (eligible, unallocated) tasks at the latest "
        "simulation step")
    g_eligible = reg.gauge(
        "sim_eligible",
        "ELIGIBLE unexecuted tasks (allocatable + in flight) at the "
        "latest simulation step")
    g_completed = reg.gauge(
        "sim_completed",
        "tasks completed at the latest simulation step")
    m_steps = reg.counter(
        "sim_steps_total", "simulation event-loop steps processed")
    tracer = global_tracer()

    pending_parents = {v: dag.indegree(v) for v in dag.nodes}
    # allocatable = eligible and not yet handed to a client, in
    # eligibility order (FIFO semantics for the baseline).
    allocatable: list[Node] = [v for v in dag.nodes if pending_parents[v] == 0]
    allocated: set[Node] = set()
    done: set[Node] = set()

    # event queue: (time, tiebreak, kind, payload)
    counter = itertools.count()
    events: list[tuple[float, int, str, int, Node | None]] = []
    idle_clients: list[int] = []
    idle_since: dict[int, float] = {}
    busy_time = 0.0
    idle_time = 0.0
    starvation = 0
    headroom: list[tuple[float, int]] = [(0.0, len(allocatable))]

    lost_allocations = 0
    wasted_work = 0.0
    trace: list[TraceRecord] = []

    def try_allocate(client_id: int, now: float) -> bool:
        nonlocal busy_time, lost_allocations, wasted_work
        if not allocatable:
            return False
        task = policy.select(allocatable)
        allocatable.remove(task)
        allocated.add(task)
        spec = clients[client_id]
        duration = work_fn(task) / spec.speed
        if spec.dropout and rng.random() < spec.dropout:
            duration *= spec.slowdown
        duration += comm_per_input * dag.indegree(task)
        lost = bool(spec.loss) and rng.random() < spec.loss
        if lost:
            lost_allocations += 1
            wasted_work += duration
        else:
            busy_time += duration
        kind = "lost" if lost else "done"
        m_alloc.inc()
        if channel is not None:
            occupancy[client_id] = task
        tracer.event("sim.allocate", client=client_id, task=str(task),
                     t=now, kind=kind)
        if record_trace:
            trace.append(
                TraceRecord(client_id, task, now, now + duration, kind)
            )
        heapq.heappush(
            events, (now + duration, next(counter), kind, client_id, task)
        )
        return True

    def publish_step() -> None:
        # the per-step series the live dashboard (`repro watch`)
        # renders: latest-value gauges, one write each per event.
        g_allocatable.set(len(allocatable))
        g_eligible.set(len(allocatable) + len(allocated))
        g_completed.set(len(done))
        if channel is not None:
            nonlocal frame_step
            frame_step += 1
            frame_store.record(
                channel,
                step=frame_step,
                t=now,
                executed=done,
                eligible=list(allocatable) + list(allocated),
                occupancy=occupancy,
                events=tuple(frame_events),
                done=len(done) == len(dag),
            )
            frame_events.clear()

    with span("sim.simulate", dag=dag.name, policy=policy.name,
              clients=len(clients)):
        now = 0.0
        for cid in range(len(clients)):
            if not try_allocate(cid, now):
                starvation += 1
                m_starve.inc()
                idle_clients.append(cid)
                idle_since[cid] = now
        headroom.append((now, len(allocatable)))
        publish_step()

        while events:
            now, _tb, kind, cid, task = heapq.heappop(events)
            m_steps.inc()
            assert task is not None
            if channel is not None:
                occupancy[cid] = None
                if kind == "lost":
                    ev = {"kind": "loss", "client": cid,
                          "task": str(task)}
                    rid = current_request_id()
                    if rid is not None:
                        ev["request"] = rid
                    frame_events.append(ev)
            if kind == "lost":
                # server detects the loss; the task goes back in the pool
                allocated.discard(task)
                allocatable.append(task)
                m_lost.inc()
                tracer.event("sim.loss", client=cid, task=str(task), t=now)
            else:
                allocated.discard(task)
                done.add(task)
                m_done.inc()
                tracer.event("sim.complete", client=cid, task=str(task),
                             t=now)
                for child in dag.children(task):
                    pending_parents[child] -= 1
                    if pending_parents[child] == 0:
                        allocatable.append(child)
            # wake idle clients while work exists
            while idle_clients and allocatable:
                wid = idle_clients.pop(0)
                idle_time += now - idle_since.pop(wid)
                try_allocate(wid, now)
            # the finishing client requests again
            if not try_allocate(cid, now):
                if len(done) < len(dag):
                    starvation += 1
                    m_starve.inc()
                idle_clients.append(cid)
                idle_since[cid] = now
            headroom.append((now, len(allocatable)))
            publish_step()

    if len(done) != len(dag):
        raise SimulationError(
            f"simulation stalled: {len(done)}/{len(dag)} tasks done"
        )
    for wid in idle_clients:
        # trailing idleness up to makespan
        idle_time += now - idle_since.pop(wid, now)
    makespan = now
    util = (
        busy_time / (len(clients) * makespan) if makespan > 0 else 1.0
    )
    result = SimulationResult(
        policy=policy.name,
        makespan=makespan,
        starvation_events=starvation,
        idle_time=idle_time,
        utilization=util,
        headroom_series=headroom,
        completed=len(done),
        lost_allocations=lost_allocations,
        wasted_work=wasted_work,
        trace=trace,
    )
    _record_quality(reg, result)
    return result


def _record_quality(reg, result: SimulationResult) -> None:
    """Publish a run's quality summary as per-policy labeled series.

    A counter tracks how many runs each policy has completed; the
    gauges hold the *latest* run's quality figures, which is what the
    live dashboard compares policies by.
    """
    labels = ("policy",)
    reg.counter("sim_runs_total", "completed simulation runs",
                labels).labels(result.policy).inc()
    reg.gauge("sim_quality_makespan",
              "makespan of the latest completed run",
              labels).labels(result.policy).set(result.makespan)
    reg.gauge("sim_quality_utilization",
              "client utilization of the latest completed run",
              labels).labels(result.policy).set(result.utilization)
    reg.gauge("sim_quality_starvation",
              "starvation events in the latest completed run",
              labels).labels(result.policy).set(result.starvation_events)
    reg.gauge("sim_quality_mean_headroom",
              "time-averaged allocatable count of the latest run",
              labels).labels(result.policy).set(result.mean_headroom)


def simulate_scheduled(
    dag: ComputationDag,
    clients: Sequence[ClientSpec] | int = 4,
    work: Callable[[Node], float] | float = 1.0,
    seed: int = 0,
    comm_per_input: float = 0.0,
    record_trace: bool = False,
    *,
    parallel: bool = False,
    workers: int | None = None,
    cache=True,
):
    """Deprecated alias of the schedule-then-simulate path; use
    :func:`repro.api.simulate` (the default ``policy="IC-OPT"``
    regime) instead — see ``docs/API_MIGRATION.md``.

    Returns ``(SimulationResult, SchedulingResult)`` exactly as
    before.
    """
    warnings.warn(
        "sim.simulate_scheduled is deprecated; use repro.api.simulate "
        "(default IC-OPT regime) — see docs/API_MIGRATION.md",
        DeprecationWarning,
        stacklevel=2,
    )
    return _simulate_scheduled_impl(
        dag, clients, work, seed, comm_per_input, record_trace,
        parallel=parallel, workers=workers, cache=cache,
    )


def _simulate_scheduled_impl(
    dag: ComputationDag,
    clients: Sequence[ClientSpec] | int = 4,
    work: Callable[[Node], float] | float = 1.0,
    seed: int = 0,
    comm_per_input: float = 0.0,
    record_trace: bool = False,
    *,
    parallel: bool = False,
    workers: int | None = None,
    cache=True,
):
    """Schedule ``dag`` (strongest certificate) and :func:`simulate` it
    under the resulting priority order.

    This is the server's steady-state serving path: the certification
    goes through :func:`~repro.core.scheduler.schedule_dag` and hence
    (by default) the process-wide
    :func:`~repro.core.profile_cache.global_profile_cache`, so
    repeated requests for the same dag structure — the common case for
    a server replaying a workload family at fixed sizes — pay the
    exhaustive ideal-lattice search exactly once.

    Returns ``(SimulationResult, SchedulingResult)``.
    """
    from ..core.scheduler import schedule_dag
    from .heuristics import make_policy

    scheduling = schedule_dag(
        dag, parallel=parallel, workers=workers, cache=cache
    )
    result = simulate(
        dag,
        make_policy("IC-OPT", scheduling.schedule),
        clients,
        work,
        seed,
        comm_per_input,
        record_trace,
    )
    return result, scheduling


def simulate_batched(
    dag: ComputationDag,
    batches,
    clients: Sequence[ClientSpec] | int = 4,
    work: Callable[[Node], float] | float = 1.0,
    seed: int = 0,
    comm_per_input: float = 0.0,
) -> SimulationResult:
    """Deprecated alias of the batched regimen; use
    :func:`repro.api.simulate` with ``batches=`` instead — see
    ``docs/API_MIGRATION.md``."""
    warnings.warn(
        "sim.simulate_batched is deprecated; use repro.api.simulate("
        "..., batches=...) — see docs/API_MIGRATION.md",
        DeprecationWarning,
        stacklevel=2,
    )
    return _simulate_batched_impl(
        dag, batches, clients, work, seed, comm_per_input
    )


def _simulate_batched_impl(
    dag: ComputationDag,
    batches,
    clients: Sequence[ClientSpec] | int = 4,
    work: Callable[[Node], float] | float = 1.0,
    seed: int = 0,
    comm_per_input: float = 0.0,
) -> SimulationResult:
    """Simulate the *batched* regimen of [20]: the server hands out one
    batch per period and waits for the whole batch before issuing the
    next (a barrier per round).

    ``batches`` is a :class:`~repro.core.batched.BatchSchedule`.
    Within a round, tasks go to clients by longest-processing-time
    first onto the least-loaded client; the round lasts as long as its
    most loaded client.  Simpler to operate than the event-driven
    server — no eligibility tracking between requests — but the
    barriers idle fast clients, which is exactly the trade-off the
    batched framework accepts.
    """
    if isinstance(clients, int):
        clients = [ClientSpec() for _ in range(clients)]
    if not clients:
        raise SimulationError("need at least one client")
    work_fn = work if callable(work) else (lambda _v, _w=float(work): _w)
    rng = random.Random(seed)

    makespan = 0.0
    busy_time = 0.0
    idle_time = 0.0
    headroom: list[tuple[float, int]] = [(0.0, len(batches.batches[0]))]
    for batch in batches.batches:
        durations = []
        for task in batch:
            d = work_fn(task)
            durations.append((d, task))
        durations.sort(reverse=True, key=lambda x: x[0])
        loads = [0.0] * len(clients)
        for d, task in durations:
            cid = min(range(len(clients)), key=lambda c: loads[c])
            spec = clients[cid]
            dur = d / spec.speed
            if spec.dropout and rng.random() < spec.dropout:
                dur *= spec.slowdown
            dur += comm_per_input * dag.indegree(task)
            loads[cid] += dur
            busy_time += dur
        round_time = max(loads)
        idle_time += sum(round_time - ld for ld in loads)
        makespan += round_time
        headroom.append((makespan, len(batch)))
    util = busy_time / (len(clients) * makespan) if makespan > 0 else 1.0
    result = SimulationResult(
        policy=f"BATCHED({batches.name})",
        makespan=makespan,
        starvation_events=0,
        idle_time=idle_time,
        utilization=util,
        headroom_series=headroom,
        completed=len(dag),
    )
    _record_quality(global_registry(), result)
    return result
