"""Workload generators for the simulation benches.

Besides the paper's own families (importable from
:mod:`repro.families`), the comparison studies the paper cites run on
*artificially generated dags* ([15]); these generators provide the
synthetic population: random layered dags, random fork-join dags, and
random (irregular) expansion-reduction diamonds.
"""

from __future__ import annotations

import random

from ..exceptions import SimulationError
from ..core.dag import ComputationDag, Node
from ..core.composition import CompositionChain
from ..families.diamond import diamond_chain

__all__ = [
    "random_layered_dag",
    "random_fork_join",
    "random_out_tree_children",
    "random_diamond",
]


def random_layered_dag(
    layers: int,
    width: int,
    arc_prob: float = 0.4,
    seed: int = 0,
    name: str | None = None,
) -> ComputationDag:
    """A random layered dag: ``layers`` levels of ``width`` nodes;
    each node draws arcs to next-layer nodes with ``arc_prob`` (at
    least one, so no spurious sinks mid-dag)."""
    if layers < 2 or width < 1:
        raise SimulationError("need layers >= 2 and width >= 1")
    rng = random.Random(seed)
    dag = ComputationDag(name=name or f"layered({layers}x{width})")
    for lv in range(layers):
        for i in range(width):
            dag.add_node((lv, i))
    for lv in range(layers - 1):
        for i in range(width):
            targets = [j for j in range(width) if rng.random() < arc_prob]
            if not targets:
                targets = [rng.randrange(width)]
            for j in targets:
                dag.add_arc((lv, i), (lv + 1, j))
        # every next-layer node needs at least one parent, so the only
        # sources are layer-0 nodes
        for j in range(width):
            if dag.indegree((lv + 1, j)) == 0:
                dag.add_arc((lv, rng.randrange(width)), (lv + 1, j))
    return dag


def random_fork_join(
    stages: int,
    max_width: int = 6,
    seed: int = 0,
    name: str | None = None,
) -> ComputationDag:
    """A fork-join chain: each stage forks one node into a random
    number of parallel tasks and joins them again."""
    if stages < 1:
        raise SimulationError("need at least one stage")
    rng = random.Random(seed)
    dag = ComputationDag(name=name or f"forkjoin({stages})")
    prev: Node = ("join", 0)
    dag.add_node(prev)
    for s in range(1, stages + 1):
        width = rng.randint(2, max_width)
        join: Node = ("join", s)
        for i in range(width):
            mid: Node = ("task", s, i)
            dag.add_arc(prev, mid)
            dag.add_arc(mid, join)
        prev = join
    return dag


def random_out_tree_children(
    n_internal: int,
    max_arity: int = 3,
    seed: int = 0,
) -> tuple[dict[Node, list[Node]], Node]:
    """A random out-tree spec with ``n_internal`` internal nodes of
    arity ``2..max_arity`` (grown by repeatedly expanding a random
    leaf).  Returns ``(children, root)``."""
    if n_internal < 1:
        raise SimulationError("need at least one internal node")
    rng = random.Random(seed)
    counter = [0]

    def fresh() -> Node:
        counter[0] += 1
        return ("t", counter[0])

    root = fresh()
    children: dict[Node, list[Node]] = {}
    leaves = [root]
    for _ in range(n_internal):
        v = leaves.pop(rng.randrange(len(leaves)))
        kids = [fresh() for _ in range(rng.randint(2, max_arity))]
        children[v] = kids
        leaves.extend(kids)
    return children, root


def random_diamond(
    n_internal: int, max_arity: int = 3, seed: int = 0
) -> CompositionChain:
    """A random irregular expansion-reduction diamond (out-tree
    composed with its dual in-tree), as Section 3.2's adaptive
    quadrature would produce."""
    children, root = random_out_tree_children(n_internal, max_arity, seed)
    return diamond_chain(children, root, name=f"rand-diamond({n_internal})")
